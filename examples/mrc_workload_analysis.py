#!/usr/bin/env python
"""Workload analysis with SHARDS miss-ratio curves (paper's citation [24]).

Builds the MRC of a skewed cloud volume at two sampling rates, shows the
approximation error, and derives the working-set size — the quantity that
decides whether a volume's hot data fits any given cache/OP budget.

Usage::

    python examples/mrc_workload_analysis.py
"""

from repro.core.mrc import build_mrc
from repro.experiments.report import render_table
from repro.trace.synthetic.cloud import generate_fleet


def main() -> None:
    [trace] = generate_fleet("tencent", 1, unique_blocks=16_384,
                             num_requests=40_000, seed=5)
    print(f"volume {trace.volume}: {len(trace)} requests, "
          f"{trace.unique_write_blocks()} unique blocks written\n")

    full = build_mrc(trace, sample_rate=1.0, num_points=96)
    sampled = build_mrc(trace, sample_rate=0.1, num_points=96)

    rows = []
    for cache in (512, 2048, 4096, 8192, 16_384):
        rows.append([
            cache,
            full.miss_ratio_at(cache),
            sampled.miss_ratio_at(cache),
            abs(full.miss_ratio_at(cache) - sampled.miss_ratio_at(cache)),
        ])
    print(render_table(
        ["cache_blocks", "miss_full", "miss_sampled(r=0.1)", "abs_err"],
        rows,
        title="Miss-ratio curve: full trace vs 10% spatial sample"))

    print(f"\nsampled accesses: {sampled.sampled_accesses} of "
          f"{sampled.total_accesses} "
          f"({sampled.sampled_accesses / sampled.total_accesses:.1%})")
    ws = sampled.working_set_blocks(target_miss_ratio=0.2)
    print(f"working set for 20% miss ratio: ~{ws} blocks "
          f"({ws * 4 // 1024} MiB)")


if __name__ == "__main__":
    main()
