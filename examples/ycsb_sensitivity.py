#!/usr/bin/env python
"""Mini Fig 11: how access density and Zipf skew drive WA per scheme.

Usage::

    python examples/ycsb_sensitivity.py
"""

from repro.experiments.report import render_table
from repro.experiments.runner import replay_volume
from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a

SCHEMES = ("sepgc", "sepbit", "adapt")
BLOCKS = 16_384
WRITES = 40_000


def density_sweep() -> None:
    rows = []
    for preset in DensityPreset:
        trace = generate_ycsb_a(BLOCKS, WRITES, density=preset,
                                read_ratio=0.0, seed=1)
        for scheme in SCHEMES:
            r = replay_volume(scheme, trace, logical_blocks=BLOCKS)
            rows.append([preset.name, f"{preset.inter_arrival_us:.0f}us",
                         scheme, r.write_amplification, r.padding_ratio])
    print(render_table(
        ["density", "gap", "scheme", "WA", "padding_ratio"], rows,
        title="Access-density sensitivity (100 us SLA window)"))


def skew_sweep() -> None:
    rows = []
    for alpha in (0.0, 0.6, 0.99):
        trace = generate_ycsb_a(BLOCKS, WRITES, zipf_alpha=alpha,
                                density=DensityPreset.HEAVY,
                                read_ratio=0.0, seed=2)
        for scheme in SCHEMES:
            r = replay_volume(scheme, trace, logical_blocks=BLOCKS)
            rows.append([f"{alpha:.2f}", scheme, r.write_amplification])
    print(render_table(["zipf_alpha", "scheme", "WA"], rows,
                       title="Skewness sensitivity (dense traffic)"))


if __name__ == "__main__":
    density_sweep()
    print()
    skew_sweep()
