#!/usr/bin/env python
"""Watch ADAPT's density-aware threshold adaptation at work (§3.2).

Replays a workload that switches phases mid-run — dense Zipfian updates,
then a sparse phase — and prints each ghost-set adaptation round: the
candidate-threshold grid, the per-candidate WA-cost estimates, and the
threshold the policy applies.

Usage::

    python examples/adaptive_threshold_demo.py
"""

import numpy as np

from repro.core.config import AdaptConfig
from repro.core.policy import AdaptPolicy
from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.trace.model import OP_WRITE, Trace
from repro.trace.synthetic.zipf import ZipfSampler

BLOCKS = 16_384


def phase(n: int, gap_us: int, alpha: float, start_us: int,
          seed: int) -> Trace:
    rng = np.random.default_rng(seed)
    lbas = ZipfSampler(BLOCKS, alpha, rng=rng).sample(n)
    ts = start_us + np.arange(n, dtype=np.int64) * gap_us
    return Trace(ts, np.full(n, OP_WRITE, np.uint8), lbas,
                 np.ones(n, dtype=np.int64))


def main() -> None:
    config = LSSConfig(logical_blocks=BLOCKS, segment_blocks=128)
    policy = AdaptPolicy(config, adapt=AdaptConfig(sample_rate=0.3))
    store = LogStructuredStore(config, policy)

    dense = phase(40_000, gap_us=8, alpha=0.99, start_us=0, seed=1)
    sparse_start = int(dense.timestamps[-1]) + 1000
    sparse = phase(20_000, gap_us=300, alpha=0.7, start_us=sparse_start,
                   seed=2)
    trace = Trace.concat([dense, sparse])

    store.replay(trace)

    print(f"{len(policy.adaptation_log)} adaptation rounds; "
          f"final threshold = {policy.threshold:.0f} write-distance units\n")
    for i, round_ in enumerate(policy.adaptation_log):
        grid = ", ".join(f"{t:.0f}" for t in round_.thresholds)
        costs = ", ".join(f"{c:.2f}" for c in round_.costs)
        print(f"round {i:2d}  mode->{round_.mode:11s}  "
              f"best T={round_.best_threshold:7.0f} "
              f"(cost {round_.best_cost:.3f})  grid=[{grid}]  "
              f"costs=[{costs}]")

    stats = store.stats
    print(f"\nfinal WA            : {stats.write_amplification():.3f}")
    print(f"padding traffic     : {stats.padding_traffic_ratio():.3f}")
    print(f"shadow appends      : {policy.aggregator.shadow_appends}")
    print(f"proactive demotions : {policy.demotion.demotions}")


if __name__ == "__main__":
    main()
