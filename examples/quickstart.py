#!/usr/bin/env python
"""Quickstart: run ADAPT on a small YCSB-A workload and inspect the stats.

Usage::

    python examples/quickstart.py
"""

from repro import LSSConfig, LogStructuredStore, make_policy
from repro.trace.synthetic import ycsb


def main() -> None:
    # A 64 MiB volume (16k x 4 KiB blocks) with the paper's defaults:
    # 64 KiB chunks, 100 us coalescing SLA, 25 % over-provisioning.
    config = LSSConfig(logical_blocks=16_384, segment_blocks=128)

    # The placement policy under test; try "sepgc", "sepbit", "mida", ...
    policy = make_policy("adapt", config)
    store = LogStructuredStore(config, policy)

    # An update-heavy Zipfian workload: fill the volume, then 50k updates
    # arriving sparsely enough that chunk coalescing matters.
    trace = ycsb.generate_ycsb_a(
        unique_blocks=16_384,
        num_writes=50_000,
        zipf_alpha=0.99,
        density=ycsb.DensityPreset.LIGHT,
        read_ratio=0.0,
        seed=42,
    )

    stats = store.replay(trace)

    print(f"user blocks written      : {stats.user_blocks_requested}")
    print(f"flash blocks written     : {stats.flash_blocks_written}")
    print(f"  GC rewrites            : {stats.gc_blocks_written}")
    print(f"  zero-padding           : {stats.padding_blocks_written}")
    print(f"  shadow substitutes     : {stats.shadow_blocks_written}")
    print(f"write amplification      : {stats.write_amplification():.3f}")
    print(f"padding traffic ratio    : {stats.padding_traffic_ratio():.3f}")
    print(f"GC segments reclaimed    : {stats.gc_segments_reclaimed}")
    print(f"adapted hot/cold threshold: {policy.threshold:.0f} "
          f"(write-distance units)")


if __name__ == "__main__":
    main()
