#!/usr/bin/env python
"""Compare all six placement schemes on a production-like cloud volume.

Generates one Ali-like volume (sparse, bursty, small-write dominated — the
workload class the paper's motivation section characterises) and replays
it under every scheme with both victim-selection policies, reproducing a
single cell of Fig 8 end to end.

Usage::

    python examples/cloud_volume_replay.py [--profile ali|tencent|msrc]
"""

import argparse

from repro.experiments.report import render_table
from repro.experiments.runner import replay_volume
from repro.trace.stats import compute_stats
from repro.trace.synthetic.cloud import generate_fleet

SCHEMES = ("sepgc", "dac", "warcip", "mida", "sepbit", "adapt")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--profile", default="ali",
                        choices=["ali", "tencent", "msrc"])
    parser.add_argument("--blocks", type=int, default=16_384)
    parser.add_argument("--requests", type=int, default=30_000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    [trace] = generate_fleet(args.profile, 1, unique_blocks=args.blocks,
                             num_requests=args.requests, seed=args.seed)
    s = compute_stats(trace)
    print(f"volume {trace.volume}: {s.num_requests} requests, "
          f"{s.avg_request_rate:.1f} req/s, "
          f"{s.write_ratio:.0%} writes, "
          f"footprint {s.footprint_blocks} blocks\n")

    rows = []
    for victim in ("greedy", "cost-benefit"):
        for scheme in SCHEMES:
            r = replay_volume(scheme, trace, victim=victim,
                              logical_blocks=args.blocks)
            rows.append([victim, scheme, r.write_amplification,
                         r.padding_ratio, r.gc_ratio])
    print(render_table(
        ["victim", "scheme", "WA", "padding_ratio", "gc_ratio"], rows,
        title=f"One {args.profile}-like volume, all schemes "
              "(expect: adapt lowest WA)"))


if __name__ == "__main__":
    main()
