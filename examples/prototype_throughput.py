#!/usr/bin/env python
"""Prototype throughput demo (Fig 12a): client scaling on the RAID-5
bandwidth model.

Usage::

    python examples/prototype_throughput.py
"""

from repro.experiments.report import render_table
from repro.prototype.engine import PrototypeConfig, run_client_sweep

SCHEMES = ["sepgc", "dac", "warcip", "mida", "sepbit", "adapt"]


def main() -> None:
    cfg = PrototypeConfig(unique_blocks=16_384, num_writes=60_000)
    sweep = run_client_sweep(SCHEMES, [1, 2, 4, 8], cfg)

    rows = []
    for scheme in SCHEMES:
        for res in sweep[scheme]:
            rows.append([
                scheme, res.clients, res.throughput_ops / 1e3,
                res.throughput_mib,
                "bandwidth" if res.bandwidth_bound else "client",
                res.write_amplification,
            ])
    print(render_table(
        ["scheme", "clients", "kops/s", "MiB/s", "bound_by", "WA"], rows,
        title="Prototype throughput on 4xSSD RAID-5 "
              "(expect: ties at 1 client, adapt ahead at 4-8)"))

    eight = {s: sweep[s][-1].throughput_ops for s in SCHEMES}
    best_baseline = max((v for s, v in eight.items() if s != "adapt"))
    worst_baseline = min((v for s, v in eight.items() if s != "adapt"))
    print(f"\nADAPT at 8 clients: "
          f"{eight['adapt'] / best_baseline:.2f}x the best baseline, "
          f"{eight['adapt'] / worst_baseline:.2f}x the worst "
          f"(paper band: 1.10-1.58x)")


if __name__ == "__main__":
    main()
