"""Prototype throughput model (Fig 12a shape)."""

import pytest

from repro.common.errors import ConfigError
from repro.prototype.engine import (
    PrototypeConfig,
    run_client_sweep,
    run_prototype,
)

SMALL = PrototypeConfig(unique_blocks=8192, num_writes=30_000)


def test_single_client_is_client_bound():
    res = run_prototype("sepgc", 1, SMALL)
    assert not res.bandwidth_bound
    assert res.throughput_ops == pytest.approx(res.offered_ops)


def test_many_clients_hit_bandwidth():
    res = run_prototype("sepgc", 16, SMALL)
    assert res.bandwidth_bound
    assert res.throughput_ops == pytest.approx(res.capacity_ops)


def test_sweep_shares_profile_and_orders_schemes():
    sweep = run_client_sweep(["sepgc", "sepbit", "adapt"], [1, 8], SMALL)
    # One client: all schemes within a few percent (client-bound);
    # SepGC has the cheapest lookup, hence the slight edge (paper §4.4).
    one = {s: r[0].throughput_ops for s, r in sweep.items()}
    assert max(one.values()) / min(one.values()) < 1.05
    assert one["sepgc"] == max(one.values())
    # Eight clients: bandwidth-bound; lower WA means more user throughput.
    eight = {s: r[1] for s, r in sweep.items()}
    for s, r in eight.items():
        if r.bandwidth_bound:
            assert r.throughput_ops < sweep[s][0].offered_ops * 8


def test_throughput_monotone_in_clients():
    cfg = SMALL
    prev = 0.0
    cache: dict = {}
    for n in (1, 2, 4, 8):
        t = run_prototype("sepbit", n, cfg, _profile_cache=cache)
        assert t.throughput_ops >= prev - 1e-9
        prev = t.throughput_ops


def test_capacity_reflects_wa():
    cache: dict = {}
    a = run_prototype("adapt", 8, SMALL, _profile_cache=cache)
    assert a.capacity_ops > 0
    assert a.write_amplification >= 1.0
    assert 0 <= a.parity_overhead <= 1.0


def test_throughput_mib_conversion():
    res = run_prototype("sepgc", 1, SMALL)
    assert res.throughput_mib == pytest.approx(
        res.throughput_ops * 4096 / (1024 * 1024))


def test_validation():
    with pytest.raises(ConfigError):
        run_prototype("sepgc", 0, SMALL)
    with pytest.raises(ConfigError):
        PrototypeConfig(iodepth=0)
    with pytest.raises(ConfigError):
        PrototypeConfig(device_latency_us=0)
