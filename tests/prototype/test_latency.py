"""Closed-loop latency simulation."""

import pytest

from repro.common.errors import ConfigError
from repro.prototype.engine import PrototypeConfig
from repro.prototype.latency import simulate_latency

SMALL = PrototypeConfig(unique_blocks=8192, num_writes=25_000)


@pytest.fixture(scope="module")
def cache():
    return {}


def test_latency_distribution_sane(cache):
    res = simulate_latency("sepgc", clients=2, cfg=SMALL, num_ops=5_000,
                           _profile_cache=cache)
    assert res.ops_completed > 0
    assert 0 < res.p50_us <= res.p99_us <= res.max_us
    assert res.mean_us > 0


def test_sparse_load_latency_is_sla_dominated(cache):
    """With one client the open chunk rarely fills: ops persist at the
    100 us SLA flush, so the median sits at/above the window."""
    light = simulate_latency("sepgc", clients=1, cfg=SMALL, num_ops=5_000,
                             _profile_cache=cache)
    assert light.p50_us >= 90.0


def test_batching_then_queueing_with_load(cache):
    """Moderate load *improves* latency (chunks fill before the SLA);
    saturating load degrades the tail again as device queues build."""
    light = simulate_latency("sepgc", clients=1, cfg=SMALL, num_ops=5_000,
                             _profile_cache=cache)
    moderate = simulate_latency("sepgc", clients=8, cfg=SMALL,
                                num_ops=5_000, _profile_cache=cache)
    saturated = simulate_latency("sepgc", clients=128, cfg=SMALL,
                                 num_ops=20_000, _profile_cache=cache)
    assert moderate.p50_us <= light.p50_us
    assert saturated.p99_us >= moderate.p99_us


def test_lower_wa_means_lower_tail_under_saturation(cache):
    """ADAPT's smaller amplification surplus must not produce a worse tail
    than the highest-WA baseline at high client counts."""
    adapt = simulate_latency("adapt", clients=16, cfg=SMALL, num_ops=5_000,
                             _profile_cache=cache)
    worst = simulate_latency("warcip", clients=16, cfg=SMALL,
                             num_ops=5_000, _profile_cache=cache)
    assert adapt.p99_us <= worst.p99_us * 1.05


def test_validation(cache):
    with pytest.raises(ConfigError):
        simulate_latency("sepgc", clients=0, cfg=SMALL,
                         _profile_cache=cache)
    with pytest.raises(ConfigError):
        simulate_latency("sepgc", clients=1, cfg=SMALL, num_ops=10,
                         _profile_cache=cache)
