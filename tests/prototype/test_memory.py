"""Memory accounting (Fig 12b shape)."""

from repro.lss.config import LSSConfig
from repro.prototype.memory import measure_memory
from repro.trace.synthetic.ycsb import generate_ycsb_a


def test_adapt_memory_slightly_above_sepbit():
    cfg = LSSConfig(logical_blocks=16_384, segment_blocks=128)
    trace = generate_ycsb_a(16_384, 40_000, seed=3, read_ratio=0.0,
                            density=8.0)
    from repro.core.config import AdaptConfig
    sepbit = measure_memory("sepbit", trace, cfg)
    adapt = measure_memory("adapt", trace, cfg,
                           adapt=AdaptConfig(sample_rate=0.01))
    overhead = adapt.overhead_vs(sepbit)
    # ADAPT must cost more than SepBIT but stay modest (the paper reports
    # +4.56 % at 0.001 sampling on TB-scale volumes; at 0.01 sampling on a
    # 64 MiB volume the bloom cascades weigh relatively more).
    assert 0.0 < overhead < 0.30
    assert adapt.total_bytes > sepbit.total_bytes
    assert sepbit.mapping_bytes == adapt.mapping_bytes


def test_report_fields():
    cfg = LSSConfig(logical_blocks=8192, segment_blocks=128)
    trace = generate_ycsb_a(8192, 10_000, seed=4, read_ratio=0.0,
                            density=8.0)
    rep = measure_memory("sepgc", trace, cfg)
    assert rep.scheme == "sepgc"
    assert rep.policy_bytes == 0          # SepGC keeps no per-LBA state
    assert rep.mapping_bytes == 8192 * 8
    assert rep.write_amplification >= 1.0
