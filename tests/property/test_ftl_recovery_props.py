"""Property-based tests for the FTL substrate and crash recovery."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.array.chunk import ChunkGeometry
from repro.common.units import KiB
from repro.ftl.nand import FlashGeometry, PageMappedFTL
from repro.lss.config import LSSConfig
from repro.lss.recovery import verify_recovery
from repro.lss.store import LogStructuredStore
from repro.placement.registry import make_policy
from repro.trace.model import Trace
import pytest

pytestmark = pytest.mark.property

LOGICAL = 256


@given(
    ops=st.lists(
        st.tuples(st.integers(0, LOGICAL - 1),        # lpn
                  st.integers(0, 1),                  # stream
                  st.booleans()),                     # trim instead?
        min_size=1, max_size=500),
)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ftl_invariants_under_arbitrary_ops(ops):
    ftl = PageMappedFTL(FlashGeometry(num_blocks=30, pages_per_block=16),
                        logical_pages=LOGICAL, num_streams=2)
    live = set()
    for lpn, stream, is_trim in ops:
        if is_trim:
            ftl.trim(lpn, 4)
            live -= set(range(lpn, lpn + 4))
        else:
            ftl.write(lpn, stream)
            live.add(lpn)
    ftl.check_invariants()
    # Exactly the live LPNs are mapped.
    mapped = {int(l) for l in np.flatnonzero(ftl._mapping != -1)}
    assert mapped == live
    assert ftl.device_write_amplification() >= 1.0 or not live


CFG = LSSConfig(logical_blocks=512, segment_blocks=16,
                chunk=ChunkGeometry(chunk_bytes=16 * KiB),
                over_provisioning=0.6, gc_free_low=4, gc_free_high=6)

policy_names = st.sampled_from(["sepgc", "sepbit", "adapt", "midas-lite"])


@given(
    lbas=st.lists(st.integers(0, 511), min_size=1, max_size=400),
    gaps=st.lists(st.integers(1, 2000), min_size=1, max_size=400),
    policy_name=policy_names,
)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_recovery_reproduces_mapping_for_any_workload(lbas, gaps,
                                                      policy_name):
    n = min(len(lbas), len(gaps))
    ts = np.cumsum(np.asarray(gaps[:n], dtype=np.int64))
    trace = Trace(ts, np.ones(n, dtype=np.uint8),
                  np.asarray(lbas[:n], dtype=np.int64),
                  np.ones(n, dtype=np.int64))
    store = LogStructuredStore(CFG, make_policy(policy_name, CFG))
    store.replay(trace, finalize=False)
    verify_recovery(store)
    store.finalize()
    verify_recovery(store)
