"""Property-based tests of the store's core invariants.

For any write workload, under any policy:

* every written LBA maps to a valid slot holding exactly that LBA;
* the number of valid slots equals the number of distinct live LBAs;
* WA >= 1 and all traffic categories are non-negative;
* user blocks flushed + pending == user blocks requested.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.array.chunk import ChunkGeometry
from repro.common.units import KiB
from repro.lss.config import LSSConfig
from repro.lss.group import APPEND_USER
from repro.lss.store import LogStructuredStore
from repro.placement.registry import make_policy
from repro.trace.model import Trace

import numpy as np
import pytest

pytestmark = pytest.mark.property

LOGICAL = 512

CONFIG = LSSConfig(
    logical_blocks=LOGICAL,
    segment_blocks=8,
    chunk=ChunkGeometry(chunk_bytes=16 * KiB),  # 4 blocks
    over_provisioning=0.6,                      # headroom for 8 groups
    gc_free_low=4,
    gc_free_high=6,
)

workloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=LOGICAL - 1),   # lba
        st.integers(min_value=1, max_value=4),             # size
        st.integers(min_value=1, max_value=2000),          # gap us
    ),
    min_size=1, max_size=300,
)

policies = st.sampled_from(["sepgc", "dac", "warcip", "mida", "sepbit",
                            "adapt"])


def build_trace(ops) -> Trace:
    ts, off, sz = [], [], []
    now = 0
    for lba, size, gap in ops:
        now += gap
        ts.append(now)
        off.append(min(lba, LOGICAL - size))
        sz.append(size)
    n = len(ts)
    return Trace(np.array(ts), np.ones(n, dtype=np.uint8),
                 np.array(off), np.array(sz))


@given(ops=workloads, policy_name=policies)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mapping_and_traffic_invariants(ops, policy_name):
    policy = make_policy(policy_name, CONFIG)
    store = LogStructuredStore(CONFIG, policy)
    trace = build_trace(ops)
    store.replay(trace, finalize=False)

    # Cross-structure consistency (mapping <-> slots <-> counts).
    store.check_invariants()

    stats = store.stats
    assert stats.user_blocks_requested == trace.total_write_blocks()
    # Conservation: every requested user block was flushed or is pending.
    pending_user = sum(
        1 for g in store.groups
        for kind, _ in g.buffer.pending_tokens if kind == APPEND_USER)
    assert stats.user_blocks_written + pending_user == \
        stats.user_blocks_requested

    store.finalize()
    assert stats.user_blocks_written == stats.user_blocks_requested
    assert stats.write_amplification() >= 1.0
    assert stats.padding_blocks_written >= 0
    assert stats.gc_blocks_written >= 0

    # All written LBAs still readable.
    for lba, size, _ in ops:
        assert store.read_block(min(lba, LOGICAL - size))
