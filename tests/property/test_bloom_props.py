"""Property suite for the bloom filter and the cascaded discriminator
(§3.4): no false negatives, bounded false positives, and bloom-mode scores
dominating exact-mode scores."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter, CascadedDiscriminator

pytestmark = pytest.mark.property


@given(seed=st.integers(0, 2**16),
       capacity=st.integers(64, 1024))
@settings(max_examples=30, deadline=None)
def test_no_false_negatives(seed, capacity):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**62, size=capacity)
    bloom = BloomFilter(capacity, fp_rate=0.01)
    for key in keys:
        bloom.add(int(key))
    assert all(int(key) in bloom for key in keys)


@given(seed=st.integers(0, 2**16),
       fp_rate=st.sampled_from([0.01, 0.02, 0.05]))
@settings(max_examples=15, deadline=None)
def test_empirical_fp_rate_within_configured_bound(seed, fp_rate):
    """Fill to capacity, probe a disjoint key range; the empirical FP rate
    must stay near the configured bound (4x slack absorbs sampling noise
    and the rounding of bit/hash counts)."""
    capacity, probes = 2048, 4000
    rng = np.random.default_rng(seed)
    bloom = BloomFilter(capacity, fp_rate=fp_rate)
    for key in rng.permutation(capacity):
        bloom.add(int(key))
    # Probe keys from a range guaranteed disjoint from the inserts.
    fp = sum(1 for key in range(10**9, 10**9 + probes) if key in bloom)
    assert fp / probes <= fp_rate * 4


@given(seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_bloom_mode_score_dominates_exact_mode(seed):
    """False positives can only inflate a score, never deflate it, and the
    exact mode *is* the truth — so bloom >= exact, always, and both stay
    within [0, num_filters]."""
    rng = np.random.default_rng(seed)
    exact = CascadedDiscriminator(num_filters=3, capacity=128)
    bloom = CascadedDiscriminator(num_filters=3, capacity=128,
                                  use_bloom=True)
    inserts = rng.integers(0, 500, size=600)
    for key in inserts:
        exact.insert(int(key))
        bloom.insert(int(key))
    assert exact.evictions == bloom.evictions
    for key in range(700):
        es, bs = exact.score(key), bloom.score(key)
        assert 0 <= es <= 3 and 0 <= bs <= 3
        assert bs >= es
