"""Property: batch boundaries are semantically invisible.

The batched engine proves each chunk GC-free before placing it, and
chunk feasibility is prefix-closed — so capping how many requests (or
blocks) a chunk may span changes only *where* the replay is sliced,
never the result.  These tests sweep arbitrary chunk caps, including
degenerate one-request chunks, across every registered policy and check
the full observable state (mapping, statistics, per-group traffic, RAID
accounting, occupancy) against the scalar reference replay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lss.store import LogStructuredStore
from repro.perf.engine import BatchedReplayEngine
from repro.placement.registry import available_policies, make_policy
from repro.validate.differential import (default_workloads,
                                         differential_config)

pytestmark = pytest.mark.property


def scalar_reference(policy_name, trace):
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy(policy_name, cfg))
    store.replay(trace, engine="scalar")
    return store


def batched_with_caps(policy_name, trace, max_requests=None,
                      max_blocks=65536):
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy(policy_name, cfg))
    BatchedReplayEngine(store, max_chunk_blocks=max_blocks,
                        max_chunk_requests=max_requests).replay(trace)
    return store


def assert_same_state(ref, store):
    assert (ref.mapping == store.mapping).all()
    a, b = vars(ref.stats).copy(), vars(store.stats).copy()
    ag, bg = a.pop("groups"), b.pop("groups")
    ar, br = a.pop("raid"), b.pop("raid")
    assert a == b
    assert vars(ar) == vars(br)
    for x, y in zip(ag, bg):
        assert vars(x) == vars(y), x.name
    assert (ref.group_occupancy() == store.group_occupancy()).all()
    store.check_invariants()


@pytest.mark.parametrize("policy_name", available_policies())
def test_arbitrary_request_caps_every_policy(policy_name):
    """Chunks cut at arbitrary request boundaries reproduce the scalar
    replay exactly, for every policy."""
    trace = default_workloads(num_requests=400)[0]
    ref = scalar_reference(policy_name, trace)
    rng = np.random.default_rng(hash(policy_name) & 0xFFFF)
    caps = [1, 2, 3, 7] + [int(c) for c in rng.integers(4, 200, size=3)]
    for cap in caps:
        store = batched_with_caps(policy_name, trace, max_requests=cap)
        assert_same_state(ref, store)


@pytest.mark.parametrize("policy_name", ["sepgc", "adapt", "warcip"])
def test_arbitrary_block_caps(policy_name):
    """Chunks cut by written-block budget instead of request count."""
    trace = default_workloads(num_requests=400)[-1]  # YCSB-A
    ref = scalar_reference(policy_name, trace)
    for cap in (1, 3, 5, 16, 57):
        store = batched_with_caps(policy_name, trace, max_blocks=cap)
        assert_same_state(ref, store)


def test_mixed_caps_update_heavy():
    """Both caps at once on the churniest workload."""
    trace = default_workloads(num_requests=500)[-1]
    for policy_name in ("mida", "sepbit"):
        ref = scalar_reference(policy_name, trace)
        store = batched_with_caps(policy_name, trace, max_requests=11,
                                  max_blocks=23)
        assert_same_state(ref, store)


def test_invalid_caps_rejected():
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg))
    with pytest.raises(ValueError):
        BatchedReplayEngine(store, max_chunk_requests=0)
    with pytest.raises(ValueError):
        BatchedReplayEngine(store, max_chunk_blocks=0)
