"""Property suite: the batched ADAPT hot-path primitives are bit-identical
to their scalar reference loops over randomized interleavings.

Each test drives two copies of the same component from the same randomized
stream — one through the scalar per-record API, one through the batched
API with a random chop into sub-batches (including size-1 batches, which
must also compose with interleaved scalar calls) — and asserts the full
observable state matches, not just the final answers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.demotion import ProactiveDemotion
from repro.core.distance import DistanceTracker
from repro.core.ghost import GhostSet
from repro.core.sampling import SpatialSampler
from repro.core.threshold import ThresholdLadder

pytestmark = pytest.mark.property


def _chop(rng: np.random.Generator, n: int) -> list[tuple[int, int]]:
    """Random partition of ``range(n)`` into contiguous batches."""
    cuts = sorted(rng.choice(np.arange(1, n), size=min(n - 1, int(
        rng.integers(0, max(n // 2, 1)))), replace=False).tolist()) \
        if n > 1 else []
    bounds = [0] + cuts + [n]
    return list(zip(bounds[:-1], bounds[1:]))


def _ghost_state(g: GhostSet) -> tuple:
    """Full observable state of a ghost set, buffers included."""
    return (
        g.blocks_written, g.blocks_discarded, g.padding_blocks,
        g.gc_passes, g._total_slots,
        sorted(g._where),
        [(s.blocks, s.padding, s.valid, s.sealed) for s in g._open],
        [(s.blocks, s.padding, s.valid, s.sealed) for s in g._sealed],
        [(list(b._tokens), b._timer_start_us) for b in g._buffers],
    )


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 300),
       sla_mode=st.sampled_from(["idle", "first"]))
@settings(max_examples=60, deadline=None)
def test_ghost_record_many_matches_scalar(seed, n, sla_mode):
    rng = np.random.default_rng(seed)
    lbas = rng.integers(0, 40, size=n).tolist()
    ts, t = [], 0
    for _ in range(n):
        t += int(rng.integers(0, 60))
        ts.append(t)
    intervals: list[float | None] = [
        None if rng.random() < 0.3 else float(rng.integers(0, 64))
        for _ in range(n)]

    def make():
        return GhostSet(threshold=16.0, segment_blocks=16, chunk_blocks=4,
                        window_us=50, garbage_limit=0.5, sla_mode=sla_mode)

    ref, bat = make(), make()
    for i in range(n):
        ref.record(lbas[i], intervals[i], ts[i])
    for a, b in _chop(rng, n):
        if rng.random() < 0.25:
            # Mix scalar calls into the batched stream: both paths share
            # one canonical state, so arbitrary interleavings must agree.
            for i in range(a, b):
                bat.record(lbas[i], intervals[i], ts[i])
        else:
            bat.record_many(lbas[a:b], intervals[a:b], ts[a:b])
    assert _ghost_state(ref) == _ghost_state(bat)


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 200),
       num_sets=st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_ladder_record_batch_matches_scalar(seed, n, num_sets):
    """The ladder replicates duplicate-threshold multiplicity: a warm
    ghost set reused in m grid slots must see each sample m times."""
    rng = np.random.default_rng(seed)
    lbas = rng.integers(0, 32, size=n).tolist()
    ts = np.cumsum(rng.integers(0, 40, size=n)).tolist()
    intervals = [None if rng.random() < 0.3 else float(rng.integers(0, 32))
                 for _ in range(n)]

    def make():
        return ThresholdLadder(num_sets=num_sets, segment_blocks=16,
                               chunk_blocks=4, window_us=50,
                               garbage_limit=0.5)

    ref, bat = make(), make()
    for i in range(n):
        ref.record(lbas[i], intervals[i], ts[i])
    for a, b in _chop(rng, n):
        bat.record_batch(lbas[a:b], intervals[a:b], ts[a:b])
    for gr, gb in zip(ref.ghost_sets, bat.ghost_sets):
        assert _ghost_state(gr) == _ghost_state(gb)


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 400),
       rate=st.sampled_from([0.01, 0.1, 0.5, 1.0]))
@settings(max_examples=50, deadline=None)
def test_sampler_batch_matches_scalar(seed, n, rate):
    rng = np.random.default_rng(seed)
    lbas = rng.integers(0, 10_000, size=n)
    s = SpatialSampler(rate, salt=int(rng.integers(0, 2**31)))
    scalar = np.array([s.is_sampled(int(x)) for x in lbas])
    assert np.array_equal(s.is_sampled_batch(lbas), scalar)


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 300))
@settings(max_examples=50, deadline=None)
def test_distance_access_many_matches_scalar(seed, n):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 50, size=n).tolist()
    ref, bat = DistanceTracker(), DistanceTracker()
    want = [ref.access(k) for k in keys]
    got: list[int | None] = []
    for a, b in _chop(rng, n):
        got.extend(bat.access_many(keys[a:b]))
    assert got == want
    bat.check_invariants()


@given(seed=st.integers(0, 2**32 - 1), ops=st.integers(1, 250))
@settings(max_examples=50, deadline=None)
def test_demotion_targets_match_scalar_under_mutation(seed, ops):
    """Batched (memoized) probes must track the scalar scan across an
    arbitrary interleaving of GC-path discriminator mutations — inserts
    invalidate one LBA, cascade evictions invalidate everything."""
    rng = np.random.default_rng(seed)
    gids = [2, 3, 4]

    def make():
        return ProactiveDemotion(gids, score_threshold=2, num_filters=3,
                                 capacity=8, fp_rate=0.01)

    ref, bat = make(), make()
    for _ in range(ops):
        if rng.random() < 0.5:
            lba = int(rng.integers(0, 30))
            g = int(rng.choice(gids))
            ref.on_gc_block(lba, g, g)
            bat.on_gc_block(lba, g, g)
        else:
            lbas = rng.integers(0, 30, size=int(rng.integers(1, 12)))
            targets, scores = bat.demotion_targets(lbas)
            for i, lba in enumerate(lbas.tolist()):
                want = ref.demotion_target(lba)
                assert targets[i] == (-1 if want is None else want)
    # The pure batched probe takes no accounting side effects; totals are
    # applied separately via account_batch on the placement path.
    assert bat.demotions == 0
