"""Property-based tests of attribution-ledger conservation.

For any write workload, under any policy and either engine:

* the attribution ledger's per-group user/GC/shadow/padding totals sum
  exactly to the store's traffic counters (nothing double-counted,
  nothing missed);
* the provenance plane tags exactly the valid data slots that carry
  user data: tagged epochs live in ``[0, user_seq)``, and every
  GC-provenance victim count is conserved against ``StoreStats``;
* chunk-bound accounting is closed: chunk counts equal the sum over
  causes equal the histogram mass.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import numpy as np
import pytest

from repro.array.chunk import ChunkGeometry
from repro.common.units import KiB
from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.obs.attribution import AttributionRecorder
from repro.placement.registry import make_policy
from repro.trace.model import Trace

pytestmark = pytest.mark.property

LOGICAL = 512

CONFIG = LSSConfig(
    logical_blocks=LOGICAL,
    segment_blocks=8,
    chunk=ChunkGeometry(chunk_bytes=16 * KiB),  # 4 blocks
    over_provisioning=0.6,                      # headroom for 8 groups
    gc_free_low=4,
    gc_free_high=6,
)

workloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=LOGICAL - 1),   # lba
        st.integers(min_value=1, max_value=4),             # size
        st.integers(min_value=1, max_value=2000),          # gap us
    ),
    min_size=1, max_size=300,
)

policies = st.sampled_from(["sepgc", "dac", "warcip", "mida", "sepbit",
                            "adapt"])

engines = st.sampled_from(["scalar", "batched"])


def build_trace(ops) -> Trace:
    ts, off, sz = [], [], []
    now = 0
    for lba, size, gap in ops:
        now += gap
        ts.append(now)
        off.append(min(lba, LOGICAL - size))
        sz.append(size)
    n = len(ts)
    return Trace(np.array(ts), np.ones(n, dtype=np.uint8),
                 np.array(off), np.array(sz))


@given(ops=workloads, policy_name=policies, engine=engines)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ledger_conservation(ops, policy_name, engine):
    policy = make_policy(policy_name, CONFIG)
    attr = AttributionRecorder()
    store = LogStructuredStore(CONFIG, policy, attribution=attr)
    store.replay(build_trace(ops), engine=engine)
    store.check_invariants()

    snap = attr.snapshot()
    stats = store.stats
    totals = snap["ledger"]["totals"]

    # Ledger totals == store traffic counters, category by category.
    assert totals["user_blocks_requested"] == stats.user_blocks_requested
    assert totals["user_blocks"] == stats.user_blocks_requested
    assert totals["gc_blocks"] == stats.gc_blocks_written
    assert totals["shadow_blocks"] == stats.shadow_blocks_written
    assert totals["padding_blocks"] == stats.padding_blocks_written
    assert totals["total_blocks"] == stats.flash_blocks_written

    # Per-group rows partition the totals exactly.
    groups = list(snap["ledger"]["groups"].values())
    for key in ("user_blocks", "gc_blocks", "shadow_blocks",
                "padding_blocks", "total_blocks"):
        assert sum(g[key] for g in groups) == totals[key]

    # GC provenance conservation: one record per pass; migrated blocks
    # split exactly into first-time and re-migrations.
    ptot = snap["gc_provenance"]["totals"]
    assert ptot["victims"] == stats.gc_passes
    assert ptot["migrated_user_origin"] + ptot["migrated_gc_origin"] \
        == stats.gc_blocks_migrated
    assert ptot["valid_blocks"] >= stats.gc_blocks_migrated

    # Provenance-plane epochs stay in [0, user_seq).
    pool = store.pool
    from repro.lss.segment import ORIGIN_NONE
    tagged = pool.slot_origin_flat != ORIGIN_NONE
    if tagged.any():
        epochs = pool.slot_epoch_flat[tagged]
        assert int(epochs.min()) >= 0
        assert int(epochs.max()) < store.user_seq

    # Chunk-bound accounting is closed.
    cb = snap["chunk_bounds"]
    assert cb["chunks"] == sum(c["chunks"] for c in cb["causes"].values())
    assert cb["chunks"] == sum(cb["chunk_requests_hist"].values())
    assert cb["chunks"] == sum(cb["chunk_blocks_hist"].values())
    if engine == "batched":
        assert sum(c["requests"] for c in cb["causes"].values()) == \
            len(ops)
    else:
        assert cb["chunks"] == 0
