"""Property suite for the threshold ladder's grid machinery (§3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.threshold import ThresholdLadder, _is_monotone

pytestmark = pytest.mark.property


def make_ladder(num_sets: int = 5) -> ThresholdLadder:
    return ThresholdLadder(num_sets=num_sets, segment_blocks=64,
                           chunk_blocks=4, window_us=100,
                           garbage_limit=0.5)


@given(costs=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=12))
@settings(max_examples=300, deadline=None)
def test_is_monotone_matches_brute_force(costs):
    non_decreasing = all(b >= a for a, b in zip(costs, costs[1:]))
    non_increasing = all(b <= a for a, b in zip(costs, costs[1:]))
    assert _is_monotone(costs) == (non_decreasing or non_increasing)


@given(center=st.floats(0.001, 1e6), num_sets=st.integers(2, 9))
@settings(max_examples=200, deadline=None)
def test_exponential_grid_clamped_and_sorted(center, num_sets):
    grid = make_ladder(num_sets)._exponential_grid(center)
    assert len(grid) == num_sets
    assert all(t >= 1.0 for t in grid)
    assert grid == sorted(grid)
    # Successive unclamped entries double; clamped entries stay at 1.
    for a, b in zip(grid, grid[1:]):
        assert b == pytest.approx(2.0 * a) or a == 1.0


@given(lo=st.floats(-100, 1e5), hi=st.floats(-100, 1e5),
       num_sets=st.integers(2, 9))
@settings(max_examples=200, deadline=None)
def test_linear_grid_clamped_sorted_and_bounded(lo, hi, num_sets):
    grid = make_ladder(num_sets)._linear_grid(lo, hi)
    assert len(grid) == num_sets
    assert all(t >= 1.0 for t in grid)
    assert grid == sorted(grid)
    assert grid[0] == max(1.0, lo)


@given(seed=st.integers(0, 2**16), rounds=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_adapt_rounds_preserve_grid_invariants(seed, rounds):
    """However the stream looks, every adaptation round yields a clamped
    sorted grid, a winner drawn from the old grid, and a legal mode."""
    import numpy as np
    rng = np.random.default_rng(seed)
    ladder = make_ladder()
    now = 0
    for _ in range(rounds):
        for _ in range(200):
            now += int(rng.integers(1, 50))
            lba = int(rng.zipf(1.5)) % 512
            interval = float(rng.integers(1, 2000))
            ladder.record(lba, interval, now)
        before = [g.threshold for g in ladder.ghost_sets]
        result = ladder.adapt()
        assert result.best_threshold in before
        assert result.best_cost == min(result.costs)
        assert result.mode in ("exponential", "linear")
        after = [g.threshold for g in ladder.ghost_sets]
        assert all(t >= 1.0 for t in after)
        assert after == sorted(after)
    assert ladder.rounds == rounds
