"""Property suite for the chunk-coalescing buffer's SLA semantics.

For any interleaving of appends, time advances, polls and forced flushes:

* pending blocks never reach chunk capacity (a full chunk flushes inline);
* ``FULL`` flushes carry no padding and exactly one chunk of data;
* ``DEADLINE`` / ``FORCED`` flushes pad the chunk exactly to capacity and
  carry at least one data block (an empty chunk is never flushed);
* after any poll, no pending chunk's deadline lies in the past — the SLA
  deadline never passes without an emission;
* padding appears only on deadline/forced flushes;
* tokens are conserved: appended == flushed + pending.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.coalescing import CoalescingBuffer, FlushReason

pytestmark = pytest.mark.property

CHUNK_BLOCKS = 4
WINDOW_US = 100

# An op is ("append",) or ("advance", dt) or ("force",); time is monotone.
ops_strategy = st.lists(
    st.one_of(
        st.just(("append",)),
        st.tuples(st.just("advance"), st.integers(1, 300)),
        st.just(("force",)),
    ),
    min_size=1, max_size=60,
)


def drive(buffer: CoalescingBuffer, ops):
    """Run the op sequence; poll after every time advance (the store's tick
    does the same).  Returns (flushes, appended, final_now)."""
    flushes, appended, now = [], 0, 0
    for op in ops:
        if op[0] == "append":
            appended += 1
            flush = buffer.append(appended, now)
        elif op[0] == "advance":
            now += op[1]
            flush = buffer.poll(now)
        else:
            flush = buffer.force_flush(now)
        if flush is not None:
            flushes.append(flush)
    return flushes, appended, now


@given(ops=ops_strategy, sla_mode=st.sampled_from(["idle", "first"]))
@settings(max_examples=300, deadline=None)
def test_flush_shapes_and_conservation(ops, sla_mode):
    buffer = CoalescingBuffer(CHUNK_BLOCKS, WINDOW_US, sla_mode=sla_mode)
    flushes, appended, now = drive(buffer, ops)

    assert buffer.pending_blocks < CHUNK_BLOCKS
    for flush in flushes:
        assert flush.data_blocks >= 1
        if flush.reason is FlushReason.FULL:
            assert flush.padding_blocks == 0
            assert flush.data_blocks == CHUNK_BLOCKS
        else:
            assert flush.data_blocks + flush.padding_blocks == CHUNK_BLOCKS
    flushed = sum(f.data_blocks for f in flushes)
    assert flushed + buffer.pending_blocks == appended


@given(ops=ops_strategy, sla_mode=st.sampled_from(["idle", "first"]))
@settings(max_examples=300, deadline=None)
def test_no_deadline_survives_a_poll(ops, sla_mode):
    buffer = CoalescingBuffer(CHUNK_BLOCKS, WINDOW_US, sla_mode=sla_mode)
    _, _, now = drive(buffer, ops)
    buffer.poll(now)
    deadline = buffer.deadline_us
    if buffer.pending_blocks:
        assert deadline is None or deadline > now
    else:
        assert deadline is None


@given(pending=st.integers(1, CHUNK_BLOCKS - 1))
@settings(max_examples=50, deadline=None)
def test_poll_at_deadline_always_emits(pending):
    buffer = CoalescingBuffer(CHUNK_BLOCKS, WINDOW_US)
    for i in range(pending):
        assert buffer.append(i, 0) is None
    assert buffer.poll(WINDOW_US - 1) is None       # window still open
    flush = buffer.poll(WINDOW_US)                  # exactly at deadline
    assert flush is not None and flush.reason is FlushReason.DEADLINE
    assert flush.data_blocks == pending
    assert flush.padding_blocks == CHUNK_BLOCKS - pending


@given(ops=ops_strategy)
@settings(max_examples=200, deadline=None)
def test_windowless_buffer_never_pads_on_time(ops):
    """GC-facing buffers (window None) only flush FULL or FORCED."""
    buffer = CoalescingBuffer(CHUNK_BLOCKS, None)
    flushes, _, _ = drive(buffer, ops)
    assert all(f.reason is not FlushReason.DEADLINE for f in flushes)
    assert buffer.deadline_us is None
