"""Property-based tests of the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.array.chunk import ChunkGeometry
from repro.array.coalescing import CoalescingBuffer
from repro.array.raid5 import Raid5Accounting, Raid5Config
from repro.common.units import KiB
from repro.core.bloom import BloomFilter, CascadedDiscriminator
from repro.core.distance import DistanceTracker
from repro.trace.model import Trace
from repro.trace.parser import parse_csv
from repro.trace.writer import write_csv
import pytest

pytestmark = pytest.mark.property


# ----------------------------------------------------------------------
# distance tracker vs naive reference
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                max_size=400))
@settings(max_examples=100, deadline=None)
def test_distance_tracker_matches_naive(stream):
    tracker = DistanceTracker()
    history: list[int] = []
    for key in stream:
        if key in history:
            last = len(history) - 1 - history[::-1].index(key)
            expected = len(set(history[last + 1:]))
        else:
            expected = None
        assert tracker.access(key) == expected
        history.append(key)
    tracker.check_invariants()


# ----------------------------------------------------------------------
# bloom filter: no false negatives, ever
# ----------------------------------------------------------------------
@given(st.sets(st.integers(min_value=0, max_value=2**48), max_size=200),
       st.floats(min_value=0.001, max_value=0.2))
@settings(max_examples=60, deadline=None)
def test_bloom_never_false_negative(keys, fp_rate):
    bf = BloomFilter(capacity=max(len(keys), 1), fp_rate=fp_rate)
    for k in keys:
        bf.add(k)
    assert all(k in bf for k in keys)


@given(st.lists(st.integers(min_value=0, max_value=100), max_size=300))
@settings(max_examples=50, deadline=None)
def test_cascade_bloom_score_bounds_exact_score(keys):
    exact = CascadedDiscriminator(4, 16, use_bloom=False)
    bloom = CascadedDiscriminator(4, 16, use_bloom=True)
    for k in keys:
        exact.insert(k)
        bloom.insert(k)
    for k in set(keys):
        assert bloom.score(k) >= exact.score(k)


# ----------------------------------------------------------------------
# coalescing buffer conserves tokens
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=5000), min_size=1,
                max_size=200),
       st.integers(min_value=1, max_value=16),
       st.sampled_from(["idle", "first"]))
@settings(max_examples=80, deadline=None)
def test_coalescing_conserves_tokens(gaps, chunk_blocks, sla_mode):
    buf = CoalescingBuffer(chunk_blocks, 100, sla_mode=sla_mode)
    out, now = [], 0
    for i, gap in enumerate(gaps):
        now += gap
        flush = buf.poll(now)
        if flush:
            assert flush.total_blocks == chunk_blocks  # padded to chunk
            out.extend(flush.tokens)
        flush = buf.append(i, now)
        if flush:
            assert flush.padding_blocks == 0           # FULL flush
            out.extend(flush.tokens)
    tail = buf.force_flush(now + 1)
    if tail:
        out.extend(tail.tokens)
    assert out == list(range(len(gaps)))               # order preserved


# ----------------------------------------------------------------------
# RAID-5 parity bounds
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=20), max_size=100),
       st.integers(min_value=3, max_value=8))
@settings(max_examples=80, deadline=None)
def test_raid5_parity_bounds(io_sizes, num_devices):
    acct = Raid5Accounting(Raid5Config(num_devices))
    cols = num_devices - 1
    for n in io_sizes:
        parity = acct.add_chunks(n)
        assert 0 <= parity <= -(-n // cols) + 1
    # Parity can never exceed data for multi-chunk streams, and the
    # full-stripe floor holds.
    if acct.data_chunks:
        assert acct.parity_chunks >= acct.data_chunks // cols


# ----------------------------------------------------------------------
# trace writer/parser round trip
# ----------------------------------------------------------------------
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**9),   # ts
              st.integers(min_value=0, max_value=1),       # op
              st.integers(min_value=0, max_value=10**6),   # offset
              st.integers(min_value=1, max_value=64)),     # size
    max_size=50))
@settings(max_examples=50, deadline=None)
def test_trace_roundtrip(rows):
    rows.sort(key=lambda r: r[0])
    tr = Trace.from_rows(rows)
    import io
    buf = io.StringIO()
    write_csv(tr, buf)
    back = parse_csv(buf.getvalue().splitlines())
    assert np.array_equal(back.timestamps, tr.timestamps)
    assert np.array_equal(back.ops, tr.ops)
    assert np.array_equal(back.offsets, tr.offsets)
    assert np.array_equal(back.sizes, tr.sizes)


# ----------------------------------------------------------------------
# chunk geometry padding identity
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10_000),
       st.sampled_from([16, 32, 64, 128]))
@settings(max_examples=100, deadline=None)
def test_padding_identity(nblocks, chunk_kib):
    g = ChunkGeometry(chunk_bytes=chunk_kib * KiB)
    pad = g.padding_for(nblocks)
    assert 0 <= pad < g.chunk_blocks
    assert (nblocks + pad) % g.chunk_blocks == 0
    assert g.chunks_of_blocks(nblocks) * g.chunk_blocks == nblocks + pad
