"""The bench harness: measurement plumbing, snapshots, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.experiments.scale import Scale
from repro.perf.bench import (bench_filename, compare_bench,
                              find_previous_bench, render_bench, run_bench,
                              write_bench)

TINY = Scale("t", num_volumes=1, volume_blocks=4096,
             volume_requests=150, stats_volumes=1,
             ycsb_blocks=4096, ycsb_writes=100)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv("ADAPT_REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("cache")))


@pytest.fixture(scope="module")
def result():
    return run_bench(TINY, policies=["sepgc", "mida"],
                     profiles=("ali",), repeats=1, date="2026-01-02")


def test_run_bench_cells_and_speedups(result):
    assert result["scale"] == "t" and result["date"] == "2026-01-02"
    cells = result["cells"]
    assert len(cells) == 2 * 1 * 2  # policies x profiles x engines
    for c in cells:
        assert c["user_blocks"] > 0
        assert c["seconds"] > 0
        assert c["blocks_per_sec"] == pytest.approx(
            c["user_blocks"] / c["seconds"], rel=1e-3)
    # Both engines replay the identical trace: same work counted.
    by_pair = {}
    for c in cells:
        by_pair.setdefault((c["policy"], c["workload"]), set()).add(
            c["user_blocks"])
    assert all(len(v) == 1 for v in by_pair.values())
    assert set(result["speedups"]) == {"sepgc/ali", "mida/ali"}


def test_write_and_find_previous(result, tmp_path):
    path = write_bench(result, str(tmp_path))
    assert path.endswith(bench_filename("2026-01-02"))
    loaded = json.loads(open(path).read())
    assert loaded["cells"] == result["cells"]
    # The snapshot itself must not become its own baseline.
    assert find_previous_bench(str(tmp_path), exclude=path) is None
    older = dict(result, date="2026-01-01")
    old_path = write_bench(older, str(tmp_path))
    assert find_previous_bench(str(tmp_path), exclude=path) == old_path
    assert find_previous_bench(str(tmp_path / "missing")) is None


def _snap(scale="t", **bps):
    cells = [{"policy": p, "workload": "ali", "engine": "batched",
              "seconds": 1.0, "user_blocks": 100, "blocks_per_sec": v}
             for p, v in bps.items()]
    return {"scale": scale, "cells": cells}


def test_compare_bench_thresholds():
    base = _snap(sepgc=1000.0, mida=1000.0)
    # 20% drop passes a 25% gate, 60% drop fails it.
    cur = _snap(sepgc=800.0, mida=400.0)
    regs = compare_bench(cur, base, threshold=0.25)
    assert [r["policy"] for r in regs] == ["mida"]
    assert regs[0]["change"] == pytest.approx(-0.6)
    # Tighter gate catches both; looser gate neither.
    assert len(compare_bench(cur, base, threshold=0.1)) == 2
    assert compare_bench(cur, base, threshold=0.7) == []
    # Improvements never regress.
    assert compare_bench(_snap(sepgc=2000.0), base, threshold=0.0) == []


def test_compare_bench_ignores_mismatched_cells_and_scales():
    base = _snap(sepgc=1000.0)
    # New policy absent from the baseline: not comparable, not a failure.
    assert compare_bench(_snap(warcip=1.0), base, threshold=0.25) == []
    # Different scale = different workload, never compared.
    assert compare_bench(_snap(scale="x", sepgc=1.0), base,
                         threshold=0.25) == []
    # Zero-throughput baseline cells are skipped, not divided by.
    assert compare_bench(_snap(sepgc=1.0), _snap(sepgc=0.0),
                         threshold=0.25) == []


def test_render_bench_table_and_regressions(result):
    out = render_bench(result)
    assert "sepgc" in out and "mida" in out and "speedup" in out
    regs = [{"policy": "sepgc", "workload": "ali", "engine": "batched",
             "baseline_blocks_per_sec": 1000.0,
             "current_blocks_per_sec": 400.0, "change": -0.6}]
    out = render_bench(result, regs, baseline_path="BENCH_X.json")
    assert "BENCH_X.json" in out and "-60.0%" in out
    out = render_bench(result, [], baseline_path="BENCH_X.json")
    assert "no cells regressed" in out


def test_cli_bench_smoke(tmp_path, monkeypatch):
    from repro.cli import main
    monkeypatch.chdir(tmp_path)
    rc = main(["bench", "--scale", "smoke", "--policies", "sepgc",
               "--repeats", "1", "--engines", "batched",
               "--out", str(tmp_path), "--no-trace-cache"])
    assert rc == 0
    snaps = list(tmp_path.glob("BENCH_*.json"))
    assert len(snaps) == 1
    snap = json.loads(snaps[0].read_text())
    assert snap["scale"] == "smoke"
    assert {c["policy"] for c in snap["cells"]} == {"sepgc"}


def test_cli_bench_check_gate(tmp_path):
    """--check exits non-zero against a fabricated much-faster baseline."""
    from repro.cli import main
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "scale": "smoke",
        "cells": [{"policy": "sepgc", "workload": "ali",
                   "engine": "batched", "seconds": 1.0,
                   "user_blocks": 100, "blocks_per_sec": 1e12}]}))
    rc = main(["bench", "--scale", "smoke", "--policies", "sepgc",
               "--repeats", "1", "--engines", "batched",
               "--out", str(tmp_path), "--threshold", "0.5",
               "--baseline", str(baseline), "--check",
               "--no-trace-cache"])
    assert rc == 1
    # Without --check the same regression only reports, never fails.
    rc = main(["bench", "--scale", "smoke", "--policies", "sepgc",
               "--repeats", "1", "--engines", "batched",
               "--out", str(tmp_path), "--threshold", "0.5",
               "--baseline", str(baseline), "--no-trace-cache"])
    assert rc == 0
