"""The bench harness: measurement plumbing, snapshots, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.experiments.scale import Scale
from repro.perf.bench import (bench_filename, compare_bench,
                              find_previous_bench, render_bench, run_bench,
                              write_bench)

TINY = Scale("t", num_volumes=1, volume_blocks=4096,
             volume_requests=150, stats_volumes=1,
             ycsb_blocks=4096, ycsb_writes=100)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv("ADAPT_REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("cache")))


@pytest.fixture(scope="module")
def result():
    return run_bench(TINY, policies=["sepgc", "mida"],
                     profiles=("ali",), repeats=1, date="2026-01-02")


def test_run_bench_cells_and_speedups(result):
    assert result["scale"] == "t" and result["date"] == "2026-01-02"
    cells = result["cells"]
    assert len(cells) == 2 * 1 * 2  # policies x profiles x engines
    for c in cells:
        assert c["user_blocks"] > 0
        assert c["seconds"] > 0
        assert c["blocks_per_sec"] == pytest.approx(
            c["user_blocks"] / c["seconds"], rel=1e-3)
    # Both engines replay the identical trace: same work counted.
    by_pair = {}
    for c in cells:
        by_pair.setdefault((c["policy"], c["workload"]), set()).add(
            c["user_blocks"])
    assert all(len(v) == 1 for v in by_pair.values())
    assert set(result["speedups"]) == {"sepgc/ali", "mida/ali"}


def test_write_and_find_previous(result, tmp_path):
    path = write_bench(result, str(tmp_path))
    assert path.endswith(bench_filename("2026-01-02"))
    loaded = json.loads(open(path).read())
    assert loaded["cells"] == result["cells"]
    # The snapshot itself must not become its own baseline.
    assert find_previous_bench(str(tmp_path), exclude=path) is None
    older = dict(result, date="2026-01-01")
    old_path = write_bench(older, str(tmp_path))
    assert find_previous_bench(str(tmp_path), exclude=path) == old_path
    assert find_previous_bench(str(tmp_path / "missing")) is None


def _snap(scale="t", **bps):
    cells = [{"policy": p, "workload": "ali", "engine": "batched",
              "seconds": 1.0, "user_blocks": 100, "blocks_per_sec": v}
             for p, v in bps.items()]
    return {"scale": scale, "cells": cells}


def test_compare_bench_thresholds():
    base = _snap(sepgc=1000.0, mida=1000.0)
    # 20% drop passes a 25% gate, 60% drop fails it.
    cur = _snap(sepgc=800.0, mida=400.0)
    regs = compare_bench(cur, base, threshold=0.25)
    assert [r["policy"] for r in regs] == ["mida"]
    assert regs[0]["change"] == pytest.approx(-0.6)
    # Tighter gate catches both; looser gate neither.
    assert len(compare_bench(cur, base, threshold=0.1)) == 2
    assert compare_bench(cur, base, threshold=0.7) == []
    # Improvements never regress.
    assert compare_bench(_snap(sepgc=2000.0), base, threshold=0.0) == []


def test_compare_bench_ignores_mismatched_cells_and_scales():
    base = _snap(sepgc=1000.0)
    # New policy absent from the baseline: not comparable, not a failure.
    assert compare_bench(_snap(warcip=1.0), base, threshold=0.25) == []
    # Different scale = different workload, never compared.
    assert compare_bench(_snap(scale="x", sepgc=1.0), base,
                         threshold=0.25) == []
    # Zero-throughput baseline cells are skipped, not divided by.
    assert compare_bench(_snap(sepgc=1.0), _snap(sepgc=0.0),
                         threshold=0.25) == []


def test_render_bench_table_and_regressions(result):
    out = render_bench(result)
    assert "sepgc" in out and "mida" in out and "speedup" in out
    regs = [{"policy": "sepgc", "workload": "ali", "engine": "batched",
             "baseline_blocks_per_sec": 1000.0,
             "current_blocks_per_sec": 400.0, "change": -0.6}]
    out = render_bench(result, regs, baseline_path="BENCH_X.json")
    assert "BENCH_X.json" in out and "-60.0%" in out
    out = render_bench(result, [], baseline_path="BENCH_X.json")
    assert "no cells regressed" in out


def test_obs_axis_cells_and_overhead():
    result = run_bench(TINY, policies=["sepgc"], profiles=("ali",),
                       repeats=1, obs_modes=("off", "metrics", "trace"),
                       date="2026-01-02")
    cells = result["cells"]
    modes = {(c["engine"], c["obs"]) for c in cells}
    # trace x batched is skipped: per-event tracing needs the scalar
    # engine; every other combination runs.
    assert modes == {("scalar", "off"), ("scalar", "metrics"),
                     ("scalar", "trace"), ("batched", "off"),
                     ("batched", "metrics")}
    # Instrumentation must never change the replayed work.
    assert len({c["user_blocks"] for c in cells}) == 1
    assert set(result["obs_overhead"]) == {"sepgc/ali/scalar",
                                           "sepgc/ali/batched"}
    assert all(v > 0 for v in result["obs_overhead"].values())
    # Speedups only compare uninstrumented cells.
    assert set(result["speedups"]) == {"sepgc/ali"}
    out = render_bench(result)
    assert "metrics-mode overhead" in out
    with pytest.raises(ValueError, match="unknown obs mode"):
        run_bench(TINY, policies=["sepgc"], profiles=("ali",), repeats=1,
                  obs_modes=("metrics", "bogus"))


def test_attr_axis_cells_and_overhead():
    result = run_bench(TINY, policies=["sepgc"], profiles=("ali",),
                       repeats=1, obs_modes=("off", "metrics"),
                       attr_modes=("off", "on"), date="2026-01-02")
    cells = result["cells"]
    modes = {(c["engine"], c["obs"], c["attr"]) for c in cells}
    # attr=on only pairs with obs=off: the two overhead axes never
    # confound each other.
    assert modes == {("scalar", "off", "off"), ("scalar", "off", "on"),
                     ("scalar", "metrics", "off"),
                     ("batched", "off", "off"), ("batched", "off", "on"),
                     ("batched", "metrics", "off")}
    # Attribution must never change the replayed work.
    assert len({c["user_blocks"] for c in cells}) == 1
    assert set(result["attr_overhead"]) == {"sepgc/ali/scalar",
                                            "sepgc/ali/batched"}
    assert all(v > 0 for v in result["attr_overhead"].values())
    # Speedups and obs overhead only compare attr=off cells.
    assert set(result["speedups"]) == {"sepgc/ali"}
    assert set(result["obs_overhead"]) == {"sepgc/ali/scalar",
                                           "sepgc/ali/batched"}
    out = render_bench(result)
    assert "attribution overhead" in out
    with pytest.raises(ValueError, match="unknown attr mode"):
        run_bench(TINY, policies=["sepgc"], profiles=("ali",), repeats=1,
                  attr_modes=("on", "bogus"))


def test_compare_bench_matches_on_attr_mode():
    base = _snap(sepgc=1000.0)
    cur = _snap(sepgc=400.0)
    for c in cur["cells"]:
        c["attr"] = "on"
    # attr=on cells never compare against (implicit) attr=off cells.
    assert compare_bench(cur, base, threshold=0.25) == []
    for c in base["cells"]:
        c["attr"] = "on"
    assert len(compare_bench(cur, base, threshold=0.25)) == 1


@pytest.mark.slow
def test_attribution_overhead_under_budget():
    """Attribution (provenance tagging + chunk-cause hooks) must cost
    < 15% of batched replay throughput, measured the same way as the
    metrics-overhead gate: aggregate over policies, interleaved repeats,
    best-of per cell."""
    import time

    from repro.experiments.runner import store_config_for
    from repro.experiments.workloads import fleet_for
    from repro.lss.store import LogStructuredStore
    from repro.obs.attribution import AttributionRecorder
    from repro.placement.registry import make_policy

    scale = Scale("aovh", num_volumes=1, volume_blocks=8192,
                  volume_requests=6000, stats_volumes=1,
                  ycsb_blocks=8192, ycsb_writes=4000)
    trace = fleet_for("ali", scale)[0]

    def one(policy, instrumented):
        cfg = store_config_for(scale.volume_blocks, seed=0)
        attr = AttributionRecorder() if instrumented else None
        store = LogStructuredStore(cfg, make_policy(policy, cfg),
                                   attribution=attr)
        t0 = time.perf_counter()
        store.replay(trace, engine="batched")
        return time.perf_counter() - t0

    total_off = total_on = 0.0
    for policy in ("sepgc", "adapt", "sepbit"):
        one(policy, False)  # warm-up: caches, lazy imports
        offs, ons = [], []
        for _ in range(3):
            offs.append(one(policy, False))
            ons.append(one(policy, True))
        total_off += min(offs)
        total_on += min(ons)
    overhead = total_on / total_off - 1.0
    assert overhead < 0.15, \
        f"attribution overhead {overhead:.1%} exceeds the 15% budget"


def test_compare_bench_matches_on_obs_mode():
    base = _snap(sepgc=1000.0)
    cur = _snap(sepgc=400.0)
    for c in cur["cells"]:
        c["obs"] = "metrics"
    # obs=metrics cells never compare against (implicit) obs=off cells.
    assert compare_bench(cur, base, threshold=0.25) == []
    for c in base["cells"]:
        c["obs"] = "metrics"
    regs = compare_bench(cur, base, threshold=0.25)
    assert [r["obs"] for r in regs] == ["metrics"]


@pytest.mark.slow
def test_metrics_overhead_under_budget():
    """Aggregated (batch-capable) metrics must cost < 15% of batched
    replay throughput.  Measured as the aggregate over the policy set on
    one workload, interleaving instrumented and uninstrumented repeats
    and keeping each cell's best run, so scheduling noise largely
    cancels; per-cell ratios on a loaded machine are too noisy to gate.
    """
    import time

    from repro.experiments.runner import store_config_for
    from repro.experiments.workloads import fleet_for
    from repro.lss.store import LogStructuredStore
    from repro.obs.recorder import ObsRecorder
    from repro.placement.registry import make_policy

    scale = Scale("ovh", num_volumes=1, volume_blocks=8192,
                  volume_requests=6000, stats_volumes=1,
                  ycsb_blocks=8192, ycsb_writes=4000)
    trace = fleet_for("ali", scale)[0]

    def one(policy, instrumented):
        cfg = store_config_for(scale.volume_blocks, seed=0)
        rec = ObsRecorder() if instrumented else None
        store = LogStructuredStore(cfg, make_policy(policy, cfg),
                                   recorder=rec)
        t0 = time.perf_counter()
        store.replay(trace, engine="batched")
        return time.perf_counter() - t0

    total_off = total_on = 0.0
    for policy in ("sepgc", "adapt", "sepbit"):
        one(policy, False)  # warm-up: caches, lazy imports
        offs, ons = [], []
        for _ in range(3):
            offs.append(one(policy, False))
            ons.append(one(policy, True))
        total_off += min(offs)
        total_on += min(ons)
    overhead = total_on / total_off - 1.0
    assert overhead < 0.15, \
        f"metrics-mode overhead {overhead:.1%} exceeds the 15% budget"


def test_cli_bench_smoke(tmp_path, monkeypatch):
    from repro.cli import main
    monkeypatch.chdir(tmp_path)
    rc = main(["bench", "--scale", "smoke", "--policies", "sepgc",
               "--repeats", "1", "--engines", "batched",
               "--obs", "off,metrics",
               "--out", str(tmp_path), "--no-trace-cache",
               "--profile-out", str(tmp_path / "prof" / "bench.json")])
    assert rc == 0
    snaps = list(tmp_path.glob("BENCH_*.json"))
    assert len(snaps) == 1
    snap = json.loads(snaps[0].read_text())
    assert snap["scale"] == "smoke"
    assert {c["policy"] for c in snap["cells"]} == {"sepgc"}
    assert {c["obs"] for c in snap["cells"]} == {"off", "metrics"}
    assert snap["obs_overhead"]
    trace = json.loads((tmp_path / "prof" / "bench.json").read_text())
    assert any(e.get("name") == "expand" for e in trace["traceEvents"])
    # The CLI resets the global profiler after the run.
    from repro.obs.profile import NULL_PROFILER, current
    assert current() is NULL_PROFILER


def test_cli_bench_check_gate(tmp_path):
    """--check exits non-zero against a fabricated much-faster baseline."""
    from repro.cli import main
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "scale": "smoke",
        "cells": [{"policy": "sepgc", "workload": "ali",
                   "engine": "batched", "seconds": 1.0,
                   "user_blocks": 100, "blocks_per_sec": 1e12}]}))
    rc = main(["bench", "--scale", "smoke", "--policies", "sepgc",
               "--repeats", "1", "--engines", "batched",
               "--out", str(tmp_path), "--threshold", "0.5",
               "--baseline", str(baseline), "--check",
               "--no-trace-cache"])
    assert rc == 1
    # Without --check the same regression only reports, never fails.
    rc = main(["bench", "--scale", "smoke", "--policies", "sepgc",
               "--repeats", "1", "--engines", "batched",
               "--out", str(tmp_path), "--threshold", "0.5",
               "--baseline", str(baseline), "--no-trace-cache"])
    assert rc == 0


def test_run_fleet_bench_cells_and_scaling():
    from repro.perf.bench import run_fleet_bench
    fleet = run_fleet_bench(TINY, workers_list=(1, 2), volumes=2)
    assert fleet["scheme"] == "adapt" and fleet["profile"] == "ali"
    assert [c["workers"] for c in fleet["cells"]] == [1, 2]
    blocks = {c["user_blocks"] for c in fleet["cells"]}
    assert len(blocks) == 1  # same fleet spec -> same work at every count
    for c in fleet["cells"]:
        assert c["volumes"] == 2
        assert c["blocks_per_sec"] > 0
    assert fleet["scaling"]["1w"] == pytest.approx(1.0)


def test_render_bench_includes_fleet_section(result):
    shown = dict(result)
    shown["fleet"] = {
        "scheme": "adapt", "profile": "ali",
        "cells": [{"workers": 1, "volumes": 4, "seconds": 1.0,
                   "user_blocks": 1000, "blocks_per_sec": 1000.0},
                  {"workers": 2, "volumes": 4, "seconds": 0.6,
                   "user_blocks": 1000, "blocks_per_sec": 1666.7}],
        "scaling": {"1w": 1.0, "2w": 1.667},
    }
    text = render_bench(shown)
    assert "fleet scaling" in text
    assert "2 worker(s)" in text and "1.67x" in text
