"""Obs-on engine equivalence: scalar vs batched with a live recorder.

The batched engine's observability contract extends the state contract:
with a batch-capable :class:`ObsRecorder` attached, the chunk-aggregated
bulk hooks must leave the *entire* metrics registry — every counter,
gauge, and histogram (bucket counts and float sums) — bit-identical to
the scalar per-event hooks, for every policy on update-heavy cloud
workloads.  Event-stream cadence is explicitly NOT part of the contract
(bulk paths collapse runs of FULL flushes into ``chunk_flush_bulk``
records and sample series rows at chunk boundaries); metric totals are.
"""

from __future__ import annotations

import pytest

from repro.lss.store import LogStructuredStore
from repro.obs.recorder import ObsRecorder
from repro.placement.registry import available_policies, make_policy
from repro.validate.differential import (default_workloads,
                                         differential_config)

from tests.perf.test_engine_equivalence import assert_states_equal

#: ali (index 0) and tencent (index 1) differential workloads.
_WORKLOADS = ("ali", "tencent")


def _replay_with_recorder(policy_name: str, trace, engine: str):
    cfg = differential_config()
    recorder = ObsRecorder()
    store = LogStructuredStore(cfg, make_policy(policy_name, cfg),
                               recorder=recorder)
    store.replay(trace, engine=engine)
    return store, recorder


@pytest.mark.parametrize("workload_idx", range(len(_WORKLOADS)),
                         ids=_WORKLOADS)
@pytest.mark.parametrize("policy_name", available_policies())
def test_metric_snapshots_equal_across_engines(policy_name, workload_idx):
    trace = default_workloads(num_requests=600)[workload_idx]
    scalar_store, scalar_rec = _replay_with_recorder(
        policy_name, trace, "scalar")
    batched_store, batched_rec = _replay_with_recorder(
        policy_name, trace, "batched")
    assert_states_equal(scalar_store, batched_store)
    assert scalar_rec.registry.snapshot() == batched_rec.registry.snapshot()


@pytest.mark.parametrize("policy_name", ("sepgc", "adapt"))
def test_recorder_does_not_change_batched_results(policy_name):
    """Attaching a recorder must not perturb the batched replay itself."""
    trace = default_workloads(num_requests=600)[0]
    cfg = differential_config()
    bare = LogStructuredStore(cfg, make_policy(policy_name, cfg))
    bare.replay(trace, engine="batched")
    instrumented, _ = _replay_with_recorder(policy_name, trace, "batched")
    assert_states_equal(bare, instrumented)


def test_counters_match_store_stats_batched():
    """Registry counters mirror StoreStats after a batched replay (the
    same cross-check the recorder suite does on the scalar engine)."""
    trace = default_workloads(num_requests=600)[0]
    store, rec = _replay_with_recorder("sepgc", trace, "batched")
    stats = store.stats
    counters = rec.registry.snapshot()["counters"]
    assert counters["lss_user_blocks_total"] == stats.user_blocks_requested
    assert counters["lss_read_requests_total"] == stats.read_requests
    assert counters["lss_gc_passes_total"] == stats.gc_passes
    assert counters["lss_gc_blocks_migrated_total"] == \
        stats.gc_blocks_migrated
    assert counters["lss_padding_blocks_total"] == \
        stats.padding_blocks_written
