"""The on-disk synthetic-trace cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import tracecache
from repro.trace.model import OP_WRITE, Trace


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("ADAPT_REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("ADAPT_REPRO_NO_TRACE_CACHE", raising=False)
    tracecache.set_enabled(True)
    yield tmp_path


def make_trace(n=64, seed=0, volume="vol"):
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.integers(1, 50, size=n)).astype(np.int64)
    ops = np.full(n, OP_WRITE, dtype=np.uint8)
    offs = rng.integers(0, 512, size=n).astype(np.int64)
    sizes = rng.integers(1, 8, size=n).astype(np.int64)
    return Trace(ts, ops, offs, sizes, volume=volume)


def assert_traces_equal(a, b):
    assert a.volume == b.volume
    assert (a.timestamps == b.timestamps).all()
    assert (a.ops == b.ops).all()
    assert (a.offsets == b.offsets).all()
    assert (a.sizes == b.sizes).all()
    for col in ("timestamps", "ops", "offsets", "sizes"):
        assert getattr(a, col).dtype == getattr(b, col).dtype


def test_roundtrip_preserves_columns_and_dtypes():
    fleet = [make_trace(seed=i, volume=f"v{i}") for i in range(3)]
    key = tracecache.fleet_key("gen", {"seed": 1})
    path = tracecache.store_fleet(key, fleet)
    assert path is not None and path.endswith(".npz")
    loaded = tracecache.load_fleet(key)
    assert loaded is not None and len(loaded) == 3
    for a, b in zip(fleet, loaded):
        assert_traces_equal(a, b)


def test_key_distinguishes_params_and_seed():
    k1 = tracecache.fleet_key("gen", {"blocks": 1024, "seed": 1})
    k2 = tracecache.fleet_key("gen", {"blocks": 1024, "seed": 2})
    k3 = tracecache.fleet_key("gen", {"blocks": 2048, "seed": 1})
    k4 = tracecache.fleet_key("other", {"blocks": 1024, "seed": 1})
    assert len({k1, k2, k3, k4}) == 4
    # Key must not depend on dict insertion order.
    assert k1 == tracecache.fleet_key("gen", {"seed": 1, "blocks": 1024})


def test_cached_fleet_builds_once_then_hits():
    calls = []

    def build():
        calls.append(1)
        return [make_trace()]

    fleet1 = tracecache.cached_fleet("gen", {"seed": 7}, build)
    fleet2 = tracecache.cached_fleet("gen", {"seed": 7}, build)
    assert len(calls) == 1
    assert_traces_equal(fleet1[0], fleet2[0])
    # A hit hands out fresh arrays, not aliases of earlier results.
    assert fleet1[0].timestamps is not fleet2[0].timestamps


def test_miss_on_unknown_key_and_corrupt_file(isolated_cache):
    assert tracecache.load_fleet("0" * 64) is None
    key = tracecache.fleet_key("gen", {"seed": 3})
    path = tracecache.store_fleet(key, [make_trace()])
    with open(path, "wb") as f:
        f.write(b"not an npz")
    assert tracecache.load_fleet(key) is None  # corrupt == miss, no raise


def test_opt_outs(monkeypatch):
    key = tracecache.fleet_key("gen", {"seed": 4})
    tracecache.set_enabled(False)
    try:
        assert tracecache.store_fleet(key, [make_trace()]) is None
        assert tracecache.load_fleet(key) is None
        assert not tracecache.cache_enabled()
    finally:
        tracecache.set_enabled(True)
    tracecache.store_fleet(key, [make_trace()])
    monkeypatch.setenv("ADAPT_REPRO_NO_TRACE_CACHE", "1")
    assert not tracecache.cache_enabled()
    assert tracecache.load_fleet(key) is None


def test_clear_removes_entries():
    for seed in range(3):
        tracecache.store_fleet(tracecache.fleet_key("g", {"s": seed}),
                               [make_trace(seed=seed)])
    assert tracecache.clear() == 3
    assert tracecache.clear() == 0


def test_workload_fleets_hit_the_cache(isolated_cache):
    from repro.experiments import workloads
    from repro.experiments.scale import Scale
    tiny = Scale("t", num_volumes=1, volume_blocks=512,
                 volume_requests=50, stats_volumes=1,
                 ycsb_blocks=512, ycsb_writes=50)
    workloads._fleet_cached.cache_clear()
    fleet = workloads.fleet_for("ali", tiny)
    workloads._fleet_cached.cache_clear()  # force the disk path
    again = workloads.fleet_for("ali", tiny)
    assert len(fleet) == len(again) == 1
    assert_traces_equal(fleet[0], again[0])
    assert (isolated_cache / "traces").exists()


class TestLRUEviction:
    """The ADAPT_REPRO_TRACE_CACHE_MAX_MB size cap."""

    def _store(self, seed, n=64):
        key = tracecache.fleet_key("g", {"s": seed})
        path = tracecache.store_fleet(key, [make_trace(n=n, seed=seed)])
        assert path is not None
        return key, path

    def test_default_cap_and_env_parsing(self, monkeypatch):
        monkeypatch.delenv(tracecache.MAX_MB_ENV, raising=False)
        assert tracecache.max_cache_bytes() == \
            tracecache.DEFAULT_MAX_MB * 1024 * 1024
        monkeypatch.setenv(tracecache.MAX_MB_ENV, "1.5")
        assert tracecache.max_cache_bytes() == int(1.5 * 1024 * 1024)
        monkeypatch.setenv(tracecache.MAX_MB_ENV, "0")
        assert tracecache.max_cache_bytes() == 0
        monkeypatch.setenv(tracecache.MAX_MB_ENV, "junk")
        assert tracecache.max_cache_bytes() == \
            tracecache.DEFAULT_MAX_MB * 1024 * 1024

    def test_store_evicts_oldest_beyond_cap(self, monkeypatch, tmp_path):
        import os
        keys = []
        for seed in range(4):
            key, path = self._store(seed)
            os.utime(path, (seed, seed))  # deterministic age order
            keys.append(key)
        one = os.path.getsize(tracecache._path_for(keys[0]))
        # Cap that holds ~2 entries: the 2 oldest must go.
        monkeypatch.setenv(tracecache.MAX_MB_ENV,
                           str(2.5 * one / (1024 * 1024)))
        key, _ = self._store(99)
        assert tracecache.load_fleet(keys[0]) is None
        assert tracecache.load_fleet(key) is not None

    def test_load_refreshes_recency(self, monkeypatch):
        import os
        keys = []
        for seed in range(3):
            key, path = self._store(seed)
            os.utime(path, (seed, seed))
            keys.append(key)
        # Touch the oldest via a hit; it should now outlive the others.
        assert tracecache.load_fleet(keys[0]) is not None
        one = os.path.getsize(tracecache._path_for(keys[0]))
        tracecache.evict_lru(limit_bytes=int(1.5 * one))
        assert tracecache.load_fleet(keys[0]) is not None
        assert tracecache.load_fleet(keys[1]) is None

    def test_zero_cap_disables_eviction(self, monkeypatch):
        for seed in range(3):
            self._store(seed)
        monkeypatch.setenv(tracecache.MAX_MB_ENV, "0")
        assert tracecache.evict_lru() == 0
        for seed in range(3):
            key = tracecache.fleet_key("g", {"s": seed})
            assert tracecache.load_fleet(key) is not None
