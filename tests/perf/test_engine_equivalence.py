"""Scalar vs batched replay: bit-identical final state.

The batched engine's whole contract is that chunking is invisible: for
any policy and any trace, the final mapping table, traffic statistics,
per-group breakdowns, RAID accounting, and occupancy must equal the
scalar per-request loop's.  These tests enforce it on the GC-churny
differential store shape, where chunks are forced to split at GC
triggers and deadline fires constantly.
"""

from __future__ import annotations

import pytest

from repro.lss.store import LogStructuredStore
from repro.placement.registry import available_policies, make_policy
from repro.validate.differential import (default_workloads,
                                         differential_config)


def replay_pair(policy_name, trace, engine_kwargs=None):
    """Replay ``trace`` scalar and batched on fresh stores; return both."""
    cfg = differential_config()
    scalar = LogStructuredStore(cfg, make_policy(policy_name, cfg))
    scalar.replay(trace, engine="scalar")
    cfg2 = differential_config()
    batched = LogStructuredStore(cfg2, make_policy(policy_name, cfg2))
    if engine_kwargs:
        from repro.perf.engine import BatchedReplayEngine
        BatchedReplayEngine(batched, **engine_kwargs).replay(trace)
    else:
        batched.replay(trace, engine="batched")
    return scalar, batched


def assert_states_equal(scalar, batched):
    assert (scalar.mapping == batched.mapping).all()
    s, b = vars(scalar.stats).copy(), vars(batched.stats).copy()
    sg, bg = s.pop("groups"), b.pop("groups")
    sr, br = s.pop("raid"), b.pop("raid")
    assert s == b
    assert vars(sr) == vars(br)
    for a, c in zip(sg, bg):
        assert vars(a) == vars(c), a.name
    assert (scalar.group_occupancy() == batched.group_occupancy()).all()
    batched.check_invariants()


@pytest.mark.parametrize("policy_name", available_policies())
def test_batched_matches_scalar_every_policy(policy_name):
    trace = default_workloads(num_requests=600)[0]
    scalar, batched = replay_pair(policy_name, trace)
    assert_states_equal(scalar, batched)
    # The trace is update-heavy enough to exercise GC on this shape.
    assert batched.stats.gc_blocks_written > 0


def test_batched_matches_scalar_update_heavy():
    trace = default_workloads(num_requests=600)[-1]  # YCSB-A
    for policy_name in ("sepgc", "adapt"):
        scalar, batched = replay_pair(policy_name, trace)
        assert_states_equal(scalar, batched)


def test_batched_engine_rejects_trace_recorder():
    """Exact per-event tracing cannot be batched; the engine says so."""
    from repro.obs.recorder import ObsRecorder
    from repro.perf.engine import BatchedReplayEngine
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg),
                               recorder=ObsRecorder(trace_events=True))
    with pytest.raises(ValueError, match="batch-capable"):
        BatchedReplayEngine(store)


def _auto_engine_used(store, trace, monkeypatch) -> bool:
    """Replay with engine='auto' and report whether the batched engine ran."""
    from repro.perf.engine import BatchedReplayEngine
    used = []
    orig = BatchedReplayEngine.replay

    def spy(self, *args, **kwargs):
        used.append(True)
        return orig(self, *args, **kwargs)

    monkeypatch.setattr(BatchedReplayEngine, "replay", spy)
    store.replay(trace, engine="auto")
    return bool(used)


def test_auto_engine_selects_batched_with_metrics_recorder(monkeypatch):
    """A default (batch-capable) recorder keeps the fast engine."""
    from repro.obs.recorder import ObsRecorder
    trace = default_workloads(num_requests=300)[0]
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg),
                               recorder=ObsRecorder())
    assert _auto_engine_used(store, trace, monkeypatch)


def test_auto_engine_falls_back_with_trace_recorder(monkeypatch):
    from repro.obs.recorder import ObsRecorder
    trace = default_workloads(num_requests=300)[0]
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg),
                               recorder=ObsRecorder(trace_events=True))
    assert not _auto_engine_used(store, trace, monkeypatch)
    cfg2 = differential_config()
    ref = LogStructuredStore(cfg2, make_policy("sepgc", cfg2))
    ref.replay(trace, engine="scalar")
    assert (store.mapping == ref.mapping).all()


def test_auto_engine_falls_back_for_custom_enabled_recorder(monkeypatch):
    """A third-party recorder that merely subclasses NullRecorder gets
    the scalar engine (per-event cadence) unless it opts into the bulk
    contract via batch_capable."""
    from repro.obs.recorder import NullRecorder

    class CustomRecorder(NullRecorder):
        enabled = True

    trace = default_workloads(num_requests=300)[0]
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg),
                               recorder=CustomRecorder())
    assert not _auto_engine_used(store, trace, monkeypatch)


def test_unknown_engine_rejected():
    trace = default_workloads(num_requests=100)[0]
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg))
    with pytest.raises(ValueError, match="unknown replay engine"):
        store.replay(trace, engine="turbo")


def test_user_placement_gids_cover_actual_placements():
    """Every gid a policy actually returns must be inside its declared
    user-placement domain — the engine's capacity proofs quantify over
    that set only."""
    trace = default_workloads(num_requests=600)[0]
    for policy_name in available_policies():
        cfg = differential_config()
        store = LogStructuredStore(cfg, make_policy(policy_name, cfg))
        domain = set(store.policy.user_placement_gids())
        assert domain <= set(range(len(store.groups)))
        seen: set[int] = set()
        orig = store.policy.place_user

        def spy(lba, now_us, _orig=orig, _seen=seen):
            gid = _orig(lba, now_us)
            _seen.add(gid)
            return gid

        store.policy.place_user = spy
        store.replay(trace, engine="scalar")
        assert seen <= domain, \
            f"{policy_name} placed into {seen - domain} outside its domain"
