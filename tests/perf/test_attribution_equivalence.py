"""Attribution engine equivalence: the invariant view is byte-identical.

The attribution contract splits the snapshot in two: ``chunk_bounds``
describes the batched engine's chunk construction (meaningless under
the scalar loop), while ``ledger`` and ``gc_provenance`` describe the
simulated store — which the engine-equivalence contract already forces
to be bit-identical.  :func:`invariant_view` must therefore serialize to
*identical JSON bytes* across engines for every policy, and attaching
the recorder must never perturb the replay itself.
"""

from __future__ import annotations

import json

import pytest

from repro.lss.store import LogStructuredStore
from repro.obs.attribution import AttributionRecorder, invariant_view
from repro.placement.registry import available_policies, make_policy
from repro.validate.differential import (default_workloads,
                                         differential_config)

from tests.perf.test_engine_equivalence import assert_states_equal

#: ali (index 0) and tencent (index 1) differential workloads.
_WORKLOADS = ("ali", "tencent")


def _replay_with_attribution(policy_name: str, trace, engine: str):
    cfg = differential_config()
    attr = AttributionRecorder()
    store = LogStructuredStore(cfg, make_policy(policy_name, cfg),
                               attribution=attr)
    store.replay(trace, engine=engine)
    return store, attr


def _canonical(attr: AttributionRecorder) -> str:
    return json.dumps(invariant_view(attr.snapshot()), sort_keys=True)


@pytest.mark.parametrize("workload_idx", range(len(_WORKLOADS)),
                         ids=_WORKLOADS)
@pytest.mark.parametrize("policy_name", available_policies())
def test_invariant_view_byte_identical_across_engines(policy_name,
                                                      workload_idx):
    trace = default_workloads(num_requests=600)[workload_idx]
    scalar_store, scalar_attr = _replay_with_attribution(
        policy_name, trace, "scalar")
    batched_store, batched_attr = _replay_with_attribution(
        policy_name, trace, "batched")
    assert_states_equal(scalar_store, batched_store)
    assert _canonical(scalar_attr) == _canonical(batched_attr)


@pytest.mark.parametrize("policy_name", ("sepgc", "adapt"))
def test_attribution_does_not_change_replay(policy_name):
    """Attaching the recorder must not perturb the batched replay."""
    trace = default_workloads(num_requests=600)[0]
    cfg = differential_config()
    bare = LogStructuredStore(cfg, make_policy(policy_name, cfg))
    bare.replay(trace, engine="batched")
    instrumented, _ = _replay_with_attribution(policy_name, trace,
                                               "batched")
    assert_states_equal(bare, instrumented)


def test_chunk_bounds_exist_only_under_batched():
    trace = default_workloads(num_requests=600)[0]
    _, scalar_attr = _replay_with_attribution("sepgc", trace, "scalar")
    _, batched_attr = _replay_with_attribution("sepgc", trace, "batched")
    assert scalar_attr.snapshot()["chunk_bounds"]["chunks"] == 0
    batched = batched_attr.snapshot()["chunk_bounds"]
    assert batched["chunks"] > 0
    assert batched["chunks"] == sum(
        c["chunks"] for c in batched["causes"].values())
    assert batched["chunks"] == sum(
        batched["chunk_requests_hist"].values())


def test_provenance_epochs_survive_migration():
    """Valid blocks keep their birth epoch across GC migrations: every
    tagged live slot's epoch is a real user_seq issued before now."""
    import numpy as np
    from repro.lss.segment import ORIGIN_NONE
    trace = default_workloads(num_requests=800)[0]
    store, _ = _replay_with_attribution("adapt", trace, "batched")
    pool = store.pool
    tagged = pool.slot_origin_flat != ORIGIN_NONE
    assert tagged.any()
    epochs = pool.slot_epoch_flat[tagged]
    # Birth epochs are pre-increment user_seq values: [0, user_seq).
    assert int(epochs.min()) >= 0
    assert int(epochs.max()) < store.user_seq
    # Epochs of currently-valid slots are unique (one live copy per
    # logical write).
    valid = pool.slot_valid.reshape(-1) & tagged
    live = pool.slot_epoch_flat[valid]
    assert live.size == np.unique(live).size
