"""Coalescing buffer: SLA windows, padding, token accounting."""

import pytest

from repro.array.coalescing import CoalescingBuffer, FlushReason
from repro.common.errors import ConfigError


def test_full_flush_has_no_padding():
    buf = CoalescingBuffer(4, 100)
    flushes = [buf.append(i, now_us=i) for i in range(4)]
    assert flushes[:3] == [None, None, None]
    f = flushes[3]
    assert f.reason is FlushReason.FULL
    assert f.data_blocks == 4 and f.padding_blocks == 0
    assert f.tokens == (0, 1, 2, 3)
    assert buf.pending_blocks == 0


def test_deadline_flush_pads_remainder():
    buf = CoalescingBuffer(4, 100)
    buf.append("a", now_us=0)
    assert buf.poll(now_us=99) is None
    f = buf.poll(now_us=100)
    assert f.reason is FlushReason.DEADLINE
    assert f.data_blocks == 1 and f.padding_blocks == 3
    assert f.total_blocks == 4


def test_idle_mode_deadline_restarts_on_append():
    buf = CoalescingBuffer(4, 100, sla_mode="idle")
    buf.append("a", now_us=0)
    buf.append("b", now_us=90)
    assert buf.deadline_us == 190
    assert buf.poll(now_us=150) is None
    assert buf.poll(now_us=190) is not None


def test_first_mode_deadline_fixed():
    buf = CoalescingBuffer(4, 100, sla_mode="first")
    buf.append("a", now_us=0)
    buf.append("b", now_us=90)
    assert buf.deadline_us == 100
    f = buf.poll(now_us=100)
    assert f is not None and f.data_blocks == 2


def test_window_none_never_deadlines():
    buf = CoalescingBuffer(4, None)
    buf.append("a", now_us=0)
    assert buf.deadline_us is None
    assert buf.poll(now_us=10**9) is None


def test_force_flush():
    buf = CoalescingBuffer(4, 100)
    assert buf.force_flush(0) is None
    buf.append("a", 0)
    f = buf.force_flush(5)
    assert f.reason is FlushReason.FORCED
    assert f.padding_blocks == 3


def test_take_pending_bypasses_accounting():
    buf = CoalescingBuffer(4, 100)
    buf.append("a", 0)
    buf.append("b", 1)
    assert buf.take_pending() == ("a", "b")
    assert buf.pending_blocks == 0
    assert buf.poll(10**9) is None  # nothing left to flush


def test_reset_timer_extends_deadline():
    buf = CoalescingBuffer(4, 100)
    buf.append("a", 0)
    buf.reset_timer(50)
    assert buf.deadline_us == 150


def test_reset_timer_on_empty_is_noop():
    buf = CoalescingBuffer(4, 100)
    buf.reset_timer(50)
    assert buf.deadline_us is None


def test_free_slots_tracks_pending():
    buf = CoalescingBuffer(4, 100)
    assert buf.free_slots == 4
    buf.append("a", 0)
    assert buf.free_slots == 3


def test_validation():
    with pytest.raises(ConfigError):
        CoalescingBuffer(0, 100)
    with pytest.raises(ConfigError):
        CoalescingBuffer(4, -1)
    with pytest.raises(ConfigError):
        CoalescingBuffer(4, 100, sla_mode="weird")


def test_no_tokens_lost_across_many_appends():
    buf = CoalescingBuffer(3, 50)
    seen = []
    for i in range(10):
        f = buf.append(i, now_us=i)
        if f:
            seen.extend(f.tokens)
    tail = buf.force_flush(100)
    if tail:
        seen.extend(tail.tokens)
    assert seen == list(range(10))
