"""SSD bandwidth device model."""

import pytest

from repro.array.device import Raid5Array, SSDDevice
from repro.array.raid5 import Raid5Config
from repro.common.errors import ConfigError
from repro.common.units import MiB


def test_service_time_includes_latency_and_transfer():
    dev = SSDDevice(write_bw_bytes_per_sec=1 * MiB, io_latency_us=10)
    # 1 MiB at 1 MiB/s = 1 s = 1e6 us, plus 10 us latency.
    assert abs(dev.service_time_us(1 * MiB) - 1_000_010) < 1


def test_submit_serialises_on_busy_device():
    dev = SSDDevice(write_bw_bytes_per_sec=1 * MiB, io_latency_us=0)
    first = dev.submit(1 * MiB, now_us=0)
    second = dev.submit(1 * MiB, now_us=0)
    assert second == pytest.approx(first + 1_000_000)


def test_submit_idle_device_starts_at_now():
    dev = SSDDevice(write_bw_bytes_per_sec=1 * MiB, io_latency_us=0)
    done = dev.submit(1 * MiB, now_us=500)
    assert done == pytest.approx(500 + 1_000_000)


def test_device_validation():
    with pytest.raises(ConfigError):
        SSDDevice(write_bw_bytes_per_sec=0)
    with pytest.raises(ConfigError):
        SSDDevice(io_latency_us=-1)


def test_array_rotates_columns():
    arr = Raid5Array(Raid5Config(4), chunk_bytes=64 * 1024,
                     device_bw_bytes_per_sec=100 * MiB, device_latency_us=0)
    for _ in range(6):
        arr.submit_chunk_write(0.0)
    # 6 data chunks over 3 data columns: each device gets some work.
    busy = [d.busy_until_us for d in arr.devices]
    assert all(b > 0 for b in busy)


def test_array_parity_slows_completion():
    cfg = dict(chunk_bytes=64 * 1024, device_bw_bytes_per_sec=100 * MiB,
               device_latency_us=0)
    with_p = Raid5Array(Raid5Config(4), **cfg)
    without = Raid5Array(Raid5Config(4), **cfg)
    t_with = max(with_p.submit_chunk_write(0.0, with_parity=True)
                 for _ in range(12))
    t_without = max(without.submit_chunk_write(0.0, with_parity=False)
                    for _ in range(12))
    assert t_with >= t_without


def test_aggregate_bandwidth_counts_data_columns():
    arr = Raid5Array(Raid5Config(4), device_bw_bytes_per_sec=100 * MiB)
    assert arr.aggregate_write_bw() == 300 * MiB


def test_earliest_free():
    arr = Raid5Array(Raid5Config(4), device_bw_bytes_per_sec=100 * MiB,
                     device_latency_us=0)
    assert arr.earliest_free_us() == 0.0
    arr.submit_chunk_write(0.0)
    assert arr.earliest_free_us() == 0.0  # two devices still idle
