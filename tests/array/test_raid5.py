"""RAID-5 parity accounting."""

import pytest

from repro.array.raid5 import Raid5Accounting, Raid5Config
from repro.common.errors import ConfigError


def test_config_validation():
    with pytest.raises(ConfigError):
        Raid5Config(num_devices=2)
    assert Raid5Config(num_devices=4).data_columns == 3


def test_full_stripe_write_pays_one_parity():
    acct = Raid5Accounting(Raid5Config(4))
    assert acct.add_chunks(3) == 1  # exactly one stripe
    assert acct.parity_chunks == 1


def test_small_writes_pay_parity_per_io():
    acct = Raid5Accounting(Raid5Config(4))
    p = sum(acct.add_chunks(1) for _ in range(3))
    # Three separate 1-chunk I/Os in one stripe: 3 parity updates.
    assert p == 3


def test_large_io_spanning_stripes():
    acct = Raid5Accounting(Raid5Config(4))
    assert acct.add_chunks(7) == 3  # ceil(7/3) stripes touched from offset 0


def test_offset_io_touches_extra_stripe():
    acct = Raid5Accounting(Raid5Config(4))
    acct.add_chunks(2)              # stripe fill at 2
    assert acct.add_chunks(2) == 2  # crosses into the next stripe


def test_parity_overhead_converges_for_full_stripes():
    acct = Raid5Accounting(Raid5Config(5))
    for _ in range(100):
        acct.add_chunks(4)  # always full stripes
    assert abs(acct.parity_overhead() - 0.25) < 1e-9


def test_zero_and_negative():
    acct = Raid5Accounting()
    assert acct.add_chunks(0) == 0
    assert acct.parity_overhead() == 0.0
    with pytest.raises(ValueError):
        acct.add_chunks(-1)


def test_total_chunks():
    acct = Raid5Accounting(Raid5Config(4))
    acct.add_chunks(3)
    assert acct.total_chunks == 4  # 3 data + 1 parity
