"""Chunk geometry."""

import pytest

from repro.array.chunk import ChunkGeometry
from repro.common.errors import ConfigError
from repro.common.units import KiB


def test_default_geometry_is_papers():
    g = ChunkGeometry()
    assert g.chunk_bytes == 64 * KiB
    assert g.block_bytes == 4 * KiB
    assert g.chunk_blocks == 16


def test_chunks_of_blocks_rounds_up():
    g = ChunkGeometry()
    assert g.chunks_of_blocks(0) == 0
    assert g.chunks_of_blocks(1) == 1
    assert g.chunks_of_blocks(16) == 1
    assert g.chunks_of_blocks(17) == 2


def test_padding_for():
    g = ChunkGeometry()
    assert g.padding_for(0) == 0
    assert g.padding_for(16) == 0
    assert g.padding_for(1) == 15
    assert g.padding_for(31) == 1


def test_padding_plus_blocks_is_chunk_aligned():
    g = ChunkGeometry(chunk_bytes=32 * KiB)
    for n in range(0, 40):
        assert (n + g.padding_for(n)) % g.chunk_blocks == 0


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigError):
        ChunkGeometry(chunk_bytes=10 * KiB)  # not a block multiple
    with pytest.raises(ConfigError):
        ChunkGeometry(chunk_bytes=0)
    with pytest.raises(ConfigError):
        ChunkGeometry(chunk_bytes=2 * KiB, block_bytes=4 * KiB)


def test_negative_counts_rejected():
    g = ChunkGeometry()
    with pytest.raises(ValueError):
        g.chunks_of_blocks(-1)
    with pytest.raises(ValueError):
        g.padding_for(-1)
