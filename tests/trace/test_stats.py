"""Trace statistics (Fig 2 machinery)."""

import numpy as np

from repro.common.units import KiB, MICROS_PER_SEC
from repro.trace.model import Trace
from repro.trace.stats import (
    cdf_at,
    compute_stats,
    empirical_cdf,
    request_rate_cdf,
    write_size_distribution,
)

from tests.conftest import make_write_trace


def test_compute_stats_basic():
    tr = make_write_trace(range(11), gap_us=MICROS_PER_SEC // 10)
    s = compute_stats(tr)
    assert s.num_requests == 11
    assert s.num_writes == 11
    assert abs(s.avg_request_rate - 11.0) < 1.5  # ~10 req/s over 1 s span
    assert s.footprint_blocks == 11


def test_write_size_fractions():
    rows = [(i, 1, 0, sz) for i, sz in enumerate([1, 1, 2, 4, 16])]
    s = compute_stats(Trace.from_rows(rows))
    assert s.write_size_fraction_le(8 * KiB) == 0.6   # sizes 1,1,2 blocks
    assert abs(s.write_size_fraction_gt(32 * KiB) - 0.2) < 1e-9  # the 16


def test_empirical_cdf_properties():
    v, f = empirical_cdf(np.array([3.0, 1.0, 2.0]))
    assert list(v) == [1.0, 2.0, 3.0]
    assert f[-1] == 1.0
    assert all(np.diff(f) > 0)


def test_cdf_at_points():
    vals = np.array([1.0, 2.0, 3.0, 4.0])
    out = cdf_at(vals, np.array([0.0, 2.0, 10.0]))
    assert list(out) == [0.0, 0.5, 1.0]


def test_fleet_level_summaries():
    traces = [make_write_trace(range(5), gap_us=100),
              make_write_trace(range(50), gap_us=100)]
    stats = [compute_stats(t) for t in traces]
    rates, frac = request_rate_cdf(stats)
    assert rates.shape == (2,)
    dist = write_size_distribution(stats)
    assert dist["le_8KiB"] == 1.0
    assert dist["gt_32KiB"] == 0.0


def test_empty_inputs():
    assert write_size_distribution([]) == {
        "le_8KiB": 0.0, "le_32KiB": 0.0, "gt_32KiB": 0.0}
    v, f = empirical_cdf(np.array([]))
    assert v.size == 0 and f.size == 0
