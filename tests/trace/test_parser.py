"""Trace-format parsers."""

import pytest

from repro.common.errors import TraceFormatError
from repro.common.units import BLOCK_SIZE
from repro.trace.model import OP_READ, OP_WRITE
from repro.trace.parser import load_trace, parse_ali, parse_csv, parse_msr


def test_parse_csv_with_header():
    lines = [
        "timestamp_us,op,offset_bytes,size_bytes",
        f"0,W,0,{BLOCK_SIZE}",
        f"100,R,{BLOCK_SIZE},{2 * BLOCK_SIZE}",
    ]
    tr = parse_csv(lines)
    assert len(tr) == 2
    assert tr.ops[0] == OP_WRITE and tr.ops[1] == OP_READ
    assert tr.offsets[1] == 1 and tr.sizes[1] == 2


def test_parse_csv_skips_comments_and_blanks():
    lines = ["# comment", "", f"0,W,0,{BLOCK_SIZE}"]
    assert len(parse_csv(lines)) == 1


def test_parse_csv_subblock_requests_cover_blocks():
    # 1 byte at offset 4095 straddles nothing: one block.
    tr = parse_csv([f"0,W,{BLOCK_SIZE - 1},2"])
    # bytes [4095, 4097) touch blocks 0 and 1
    assert tr.offsets[0] == 0 and tr.sizes[0] == 2


def test_parse_csv_rejects_malformed():
    with pytest.raises(TraceFormatError):
        parse_csv(["0,W,1"])
    with pytest.raises(TraceFormatError):
        parse_csv(["0,X,0,4096"])
    with pytest.raises(TraceFormatError):
        parse_csv([f"0,W,0,{BLOCK_SIZE}", "zzz,W,0,4096"])


def test_parse_csv_sorts_out_of_order_rows():
    lines = [f"50,W,0,{BLOCK_SIZE}", f"10,W,{BLOCK_SIZE},{BLOCK_SIZE}"]
    tr = parse_csv(lines)
    assert list(tr.timestamps) == [10, 50]


def test_parse_msr_converts_ticks_and_rebases():
    # MSR: Timestamp(100ns),Host,Disk,Type,OffsetBytes,SizeBytes,Response
    lines = [
        f"128000001000,srv,0,Write,0,{BLOCK_SIZE},123",
        f"128000002000,srv,0,Read,{BLOCK_SIZE},{BLOCK_SIZE},99",
    ]
    tr = parse_msr(lines)
    assert list(tr.timestamps) == [0, 100]  # rebased, 100ns -> us
    assert tr.ops[0] == OP_WRITE


def test_parse_ali_field_order():
    # device_id,opcode,offset,length,timestamp
    lines = [f"3,W,0,{BLOCK_SIZE},77", f"3,R,{BLOCK_SIZE},{BLOCK_SIZE},177"]
    tr = parse_ali(lines)
    assert list(tr.timestamps) == [0, 100]
    assert tr.sizes.sum() == 2


def test_load_trace_csv_roundtrip(tmp_path):
    p = tmp_path / "t.csv"
    p.write_text(f"0,W,0,{BLOCK_SIZE}\n5,R,0,{BLOCK_SIZE}\n")
    tr = load_trace(p, fmt="csv")
    assert len(tr) == 2
    assert tr.volume == "t"


def test_load_trace_unknown_format(tmp_path):
    p = tmp_path / "t.bin"
    p.write_text("")
    with pytest.raises(TraceFormatError):
        load_trace(p, fmt="nope")
