"""Bounded Zipf sampler."""

import numpy as np
import pytest

from repro.trace.synthetic.zipf import ZipfSampler


def test_uniform_when_alpha_zero():
    s = ZipfSampler(100, 0.0, rng=1)
    draws = s.sample(50_000)
    counts = np.bincount(draws, minlength=100)
    # Every item should be hit roughly 500 times.
    assert counts.min() > 350 and counts.max() < 680


def test_skew_increases_head_mass():
    light = ZipfSampler(1000, 0.5, rng=2)
    heavy = ZipfSampler(1000, 1.2, rng=2)
    assert heavy.head_mass(0.1) > light.head_mass(0.1)


def test_strong_locality_at_alpha_09():
    """The paper's operating point: ~80 % of traffic on the top 20 %."""
    s = ZipfSampler(100_000, 0.9, rng=3)
    assert 0.65 < s.head_mass(0.2) < 0.95


def test_samples_within_range():
    s = ZipfSampler(64, 0.99, rng=4)
    draws = s.sample(10_000)
    assert draws.min() >= 0 and draws.max() < 64


def test_shuffle_decorrelates_rank_and_address():
    s = ZipfSampler(1000, 1.2, rng=5, shuffle=True)
    draws = s.sample(20_000)
    counts = np.bincount(draws, minlength=1000)
    hottest = int(np.argmax(counts))
    # With shuffling the hottest item is almost surely not address 0.
    unshuffled = ZipfSampler(1000, 1.2, rng=5, shuffle=False)
    d2 = unshuffled.sample(20_000)
    assert int(np.argmax(np.bincount(d2, minlength=1000))) == 0
    assert counts[hottest] > 0


def test_probability_of_rank_sums_to_one():
    s = ZipfSampler(50, 0.7, rng=6)
    total = sum(s.probability_of_rank(r) for r in range(50))
    assert abs(total - 1.0) < 1e-9


def test_probability_of_rank_is_decreasing():
    s = ZipfSampler(50, 0.7, rng=6)
    probs = [s.probability_of_rank(r) for r in range(50)]
    assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))


def test_invalid_parameters():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0)
    with pytest.raises(ValueError):
        ZipfSampler(10, -0.1)
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0).sample(-1)
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0).probability_of_rank(10)


def test_deterministic_with_seed():
    a = ZipfSampler(100, 0.9, rng=42).sample(100)
    b = ZipfSampler(100, 0.9, rng=42).sample(100)
    assert np.array_equal(a, b)
