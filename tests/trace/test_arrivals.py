"""Arrival-process models."""

import numpy as np
import pytest

from repro.common.units import MICROS_PER_SEC
from repro.trace.synthetic.arrivals import BurstyArrivalModel, uniform_arrivals


def test_bursty_mean_rate_approximately_honoured():
    model = BurstyArrivalModel(mean_rate=100.0, mean_burst_len=5,
                               intra_burst_gap_us=10)
    ts = model.generate(20_000, rng=1)
    duration_s = (ts[-1] - ts[0]) / MICROS_PER_SEC
    rate = len(ts) / duration_s
    assert 60 < rate < 160  # within ~40 % of the target


def test_bursty_timestamps_sorted_and_nonnegative():
    ts = BurstyArrivalModel(10.0).generate(5000, rng=2)
    assert np.all(np.diff(ts) >= 0)
    assert ts[0] >= 0


def test_bursty_produces_bursts():
    """Inter-arrival distribution must be bimodal: many short intra-burst
    gaps and a heavy tail of long inter-burst gaps."""
    model = BurstyArrivalModel(mean_rate=10.0, mean_burst_len=8,
                               intra_burst_gap_us=20)
    ts = model.generate(10_000, rng=3)
    gaps = np.diff(ts)
    short = np.mean(gaps < 200)
    long = np.mean(gaps > 10_000)
    assert short > 0.5        # most gaps are intra-burst
    assert long > 0.05        # but a solid fraction are inter-burst


def test_bursty_zero_and_exact_counts():
    model = BurstyArrivalModel(1.0)
    assert model.generate(0, rng=1).shape == (0,)
    assert model.generate(17, rng=1).shape == (17,)


def test_bursty_validation():
    with pytest.raises(ValueError):
        BurstyArrivalModel(0.0)
    with pytest.raises(ValueError):
        BurstyArrivalModel(1.0, mean_burst_len=0.5)
    with pytest.raises(ValueError):
        BurstyArrivalModel(1.0, intra_burst_gap_us=-1)
    with pytest.raises(ValueError):
        BurstyArrivalModel(1.0).generate(-1)


def test_uniform_arrivals_spacing():
    ts = uniform_arrivals(10, 100.0)
    assert list(np.diff(ts)) == [100] * 9


def test_uniform_arrivals_jitter_keeps_order():
    ts = uniform_arrivals(1000, 50.0, rng=4, jitter=0.5)
    assert np.all(np.diff(ts) >= 0)
    assert abs(float(np.mean(np.diff(ts))) - 50.0) < 5.0


def test_uniform_arrivals_validation():
    with pytest.raises(ValueError):
        uniform_arrivals(-1, 10.0)
    with pytest.raises(ValueError):
        uniform_arrivals(5, 0.0)
    with pytest.raises(ValueError):
        uniform_arrivals(5, 10.0, jitter=2.0)
