"""Trace transforms."""

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.trace.model import Trace
from repro.trace.transforms import (
    head,
    multiplex,
    remap_offsets,
    scale_rate,
    split_by_address,
    time_slice,
)

from tests.conftest import make_write_trace


def test_time_slice_rebases():
    tr = make_write_trace(range(10), gap_us=100)
    sl = time_slice(tr, 300, 700)
    assert len(sl) == 4
    assert sl.timestamps[0] == 0
    assert list(sl.offsets) == [3, 4, 5, 6]


def test_time_slice_empty_window():
    tr = make_write_trace(range(5))
    assert len(time_slice(tr, 10**6, 10**6 + 5)) == 0
    with pytest.raises(ValueError):
        time_slice(tr, 10, 5)


def test_scale_rate_moves_gaps():
    tr = make_write_trace(range(10), gap_us=200)
    fast = scale_rate(tr, 4.0)
    assert np.all(np.diff(fast.timestamps) == 50)
    slow = scale_rate(tr, 0.5)
    assert np.all(np.diff(slow.timestamps) == 400)
    with pytest.raises(ValueError):
        scale_rate(tr, 0)


def test_remap_offsets():
    tr = make_write_trace([1, 2, 3])
    shifted = remap_offsets(tr, 100)
    assert list(shifted.offsets) == [101, 102, 103]
    with pytest.raises(ValueError):
        remap_offsets(tr, -1)


def test_head():
    tr = make_write_trace(range(10))
    assert len(head(tr, 3)) == 3
    with pytest.raises(ValueError):
        head(tr, -1)


def test_multiplex_disjoint_ranges():
    a = make_write_trace([0, 1, 2], gap_us=100, volume="a")
    b = make_write_trace([0, 5], gap_us=150, volume="b")
    merged, bases = multiplex([a, b])
    assert bases == [0, 3]
    merged.validate()
    assert merged.max_lba() == 3 + 5
    assert len(merged) == 5
    # Interleaved by time, monotone.
    assert np.all(np.diff(merged.timestamps) >= 0)


def test_multiplex_explicit_spans_and_errors():
    a = make_write_trace([0, 9], volume="a")
    with pytest.raises(ValueError):
        multiplex([a], address_blocks=[5])   # too small for max_lba 9
    with pytest.raises(ValueError):
        multiplex([a], address_blocks=[5, 5])
    with pytest.raises(TraceFormatError):
        multiplex([])


def test_multiplex_split_roundtrip():
    a = make_write_trace([0, 1, 2, 1], gap_us=100, volume="a")
    b = make_write_trace([3, 0], gap_us=170, volume="b")
    spans = [8, 8]
    merged, bases = multiplex([a, b], address_blocks=spans)
    back = split_by_address(merged, bases, spans)
    assert list(back[0].offsets) == [0, 1, 2, 1]
    assert list(back[1].offsets) == [3, 0]
    assert len(back[0]) + len(back[1]) == len(merged)


def _assert_traces_equal(a, b):
    assert len(a) == len(b)
    assert np.array_equal(a.timestamps, b.timestamps)
    assert np.array_equal(a.ops, b.ops)
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.sizes, b.sizes)


def test_multiplex_split_roundtrip_identity_synthetic():
    """multiplex -> split_by_address recovers every original volume's
    four columns verbatim on realistic mixed read/write traces."""
    from repro.trace.synthetic.cloud import generate_fleet
    fleet = generate_fleet("ali", 3, unique_blocks=256, num_requests=400,
                          seed=7)
    spans = [t.max_lba() + t.sizes.max() + 1 for t in fleet]
    merged, bases = multiplex(fleet, address_blocks=spans)
    back = split_by_address(merged, bases, spans)
    assert len(back) == len(fleet)
    for original, recovered in zip(fleet, back):
        _assert_traces_equal(original, recovered)
    assert sum(len(t) for t in back) == len(merged)


def test_multiplex_split_roundtrip_default_spans():
    """The round trip also holds with inferred (footprint) spans."""
    a = make_write_trace([0, 4, 2, 4], gap_us=90, volume="a")
    b = make_write_trace([1, 1, 0], gap_us=110, volume="b")
    c = make_write_trace([7], gap_us=50, volume="c")
    merged, bases = multiplex([a, b, c])
    spans = [t.max_lba() + 1 for t in (a, b, c)]
    back = split_by_address(merged, bases, spans)
    for original, recovered in zip((a, b, c), back):
        _assert_traces_equal(original, recovered)


def test_multiplex_preserves_per_volume_order():
    """Within one volume, multiplex never reorders requests (stable
    time sort), so the recovered trace replays identically."""
    a = make_write_trace([5, 5, 5], gap_us=0, volume="a")  # all ties
    b = make_write_trace([2, 2], gap_us=0, volume="b")
    merged, bases = multiplex([a, b])
    back = split_by_address(merged, bases, [6, 3])
    _assert_traces_equal(a, back[0])
    _assert_traces_equal(b, back[1])


def test_split_by_address_straddling_request_dropped():
    """A request crossing a span boundary belongs to no volume."""
    tr = Trace(np.array([0, 10], dtype=np.int64),
               np.full(2, tr_op(), dtype=np.uint8),
               np.array([0, 7], dtype=np.int64),
               np.array([1, 4], dtype=np.int64), volume="x")
    parts = split_by_address(tr, [0, 8], [8, 8])
    assert len(parts[0]) == 1
    assert len(parts[1]) == 0


def tr_op():
    from repro.trace.model import OP_WRITE
    return OP_WRITE


def test_head_then_scale_commutes():
    tr = make_write_trace(range(8), gap_us=100)
    assert np.array_equal(scale_rate(head(tr, 4), 2.0).timestamps,
                          head(scale_rate(tr, 2.0), 4).timestamps)


def test_scale_rate_roundtrip_identity():
    tr = make_write_trace(range(6), gap_us=128)
    back = scale_rate(scale_rate(tr, 2.0), 0.5)
    _assert_traces_equal(tr, back)
