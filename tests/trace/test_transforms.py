"""Trace transforms."""

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.trace.model import Trace
from repro.trace.transforms import (
    head,
    multiplex,
    remap_offsets,
    scale_rate,
    split_by_address,
    time_slice,
)

from tests.conftest import make_write_trace


def test_time_slice_rebases():
    tr = make_write_trace(range(10), gap_us=100)
    sl = time_slice(tr, 300, 700)
    assert len(sl) == 4
    assert sl.timestamps[0] == 0
    assert list(sl.offsets) == [3, 4, 5, 6]


def test_time_slice_empty_window():
    tr = make_write_trace(range(5))
    assert len(time_slice(tr, 10**6, 10**6 + 5)) == 0
    with pytest.raises(ValueError):
        time_slice(tr, 10, 5)


def test_scale_rate_moves_gaps():
    tr = make_write_trace(range(10), gap_us=200)
    fast = scale_rate(tr, 4.0)
    assert np.all(np.diff(fast.timestamps) == 50)
    slow = scale_rate(tr, 0.5)
    assert np.all(np.diff(slow.timestamps) == 400)
    with pytest.raises(ValueError):
        scale_rate(tr, 0)


def test_remap_offsets():
    tr = make_write_trace([1, 2, 3])
    shifted = remap_offsets(tr, 100)
    assert list(shifted.offsets) == [101, 102, 103]
    with pytest.raises(ValueError):
        remap_offsets(tr, -1)


def test_head():
    tr = make_write_trace(range(10))
    assert len(head(tr, 3)) == 3
    with pytest.raises(ValueError):
        head(tr, -1)


def test_multiplex_disjoint_ranges():
    a = make_write_trace([0, 1, 2], gap_us=100, volume="a")
    b = make_write_trace([0, 5], gap_us=150, volume="b")
    merged, bases = multiplex([a, b])
    assert bases == [0, 3]
    merged.validate()
    assert merged.max_lba() == 3 + 5
    assert len(merged) == 5
    # Interleaved by time, monotone.
    assert np.all(np.diff(merged.timestamps) >= 0)


def test_multiplex_explicit_spans_and_errors():
    a = make_write_trace([0, 9], volume="a")
    with pytest.raises(ValueError):
        multiplex([a], address_blocks=[5])   # too small for max_lba 9
    with pytest.raises(ValueError):
        multiplex([a], address_blocks=[5, 5])
    with pytest.raises(TraceFormatError):
        multiplex([])


def test_multiplex_split_roundtrip():
    a = make_write_trace([0, 1, 2, 1], gap_us=100, volume="a")
    b = make_write_trace([3, 0], gap_us=170, volume="b")
    spans = [8, 8]
    merged, bases = multiplex([a, b], address_blocks=spans)
    back = split_by_address(merged, bases, spans)
    assert list(back[0].offsets) == [0, 1, 2, 1]
    assert list(back[1].offsets) == [3, 0]
    assert len(back[0]) + len(back[1]) == len(merged)
