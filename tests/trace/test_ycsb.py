"""YCSB-A generator."""

import numpy as np
import pytest

from repro.trace.model import OP_READ, OP_WRITE
from repro.trace.synthetic.ycsb import (
    DensityPreset,
    YcsbConfig,
    generate,
    generate_ycsb_a,
)


def test_fill_phase_covers_population():
    tr = generate_ycsb_a(1000, 0, seed=1, include_fill=True)
    assert tr.unique_write_blocks() == 1000


def test_update_phase_counts():
    tr = generate_ycsb_a(1000, 2000, seed=1, read_ratio=0.5,
                         include_fill=False)
    writes = int(np.sum(tr.ops == OP_WRITE))
    reads = int(np.sum(tr.ops == OP_READ))
    assert writes == 2000
    assert abs(reads - 2000) <= 1  # 50/50 mix


def test_zero_read_ratio_means_all_writes():
    tr = generate_ycsb_a(500, 1000, seed=2, read_ratio=0.0,
                         include_fill=False)
    assert np.all(tr.ops == OP_WRITE)


def test_density_presets_control_gaps():
    light = generate_ycsb_a(500, 2000, seed=3, density=DensityPreset.LIGHT,
                            include_fill=False, read_ratio=0.0)
    heavy = generate_ycsb_a(500, 2000, seed=3, density=DensityPreset.HEAVY,
                            include_fill=False, read_ratio=0.0)
    assert np.mean(np.diff(light.timestamps)) > \
        10 * np.mean(np.diff(heavy.timestamps))
    # LIGHT preset must sit above the 100 us SLA window on average.
    assert np.mean(np.diff(light.timestamps)) > 100


def test_explicit_density_value():
    tr = generate_ycsb_a(500, 1000, seed=4, density=42.0, include_fill=False)
    assert abs(float(np.mean(np.diff(tr.timestamps))) - 42.0) < 6.0


def test_addresses_within_population():
    tr = generate_ycsb_a(256, 5000, seed=5, include_fill=False)
    assert tr.max_lba() < 256


def test_zipf_alpha_skews_updates():
    flat = generate_ycsb_a(1000, 20_000, zipf_alpha=0.0, seed=6,
                           include_fill=False, read_ratio=0.0)
    skew = generate_ycsb_a(1000, 20_000, zipf_alpha=0.99, seed=6,
                           include_fill=False, read_ratio=0.0)
    def top_share(tr):
        counts = np.bincount(tr.offsets, minlength=1000)
        counts.sort()
        return counts[-100:].sum() / counts.sum()
    assert top_share(skew) > top_share(flat) + 0.2


def test_config_validation():
    with pytest.raises(ValueError):
        YcsbConfig(unique_blocks=0, num_writes=1)
    with pytest.raises(ValueError):
        YcsbConfig(unique_blocks=1, num_writes=-1)
    with pytest.raises(ValueError):
        YcsbConfig(unique_blocks=1, num_writes=1, read_ratio=1.0)
    with pytest.raises(ValueError):
        YcsbConfig(unique_blocks=1, num_writes=1, write_size_blocks=0)


def test_generate_is_deterministic():
    cfg = YcsbConfig(unique_blocks=100, num_writes=500, seed=7)
    a, b = generate(cfg), generate(cfg)
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.timestamps, b.timestamps)


def test_trace_is_valid():
    generate_ycsb_a(1000, 3000, seed=8).validate()
