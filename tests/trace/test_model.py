"""Trace container semantics."""

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.trace.model import OP_READ, OP_WRITE, Trace

from tests.conftest import make_write_trace


def test_from_rows_roundtrip():
    rows = [(0, OP_WRITE, 10, 2), (5, OP_READ, 0, 1), (9, OP_WRITE, 4, 4)]
    tr = Trace.from_rows(rows)
    assert len(tr) == 3
    assert list(tr.iter_requests()) == rows


def test_empty_trace():
    tr = Trace.empty()
    assert len(tr) == 0
    assert tr.duration_us == 0
    assert tr.total_write_blocks() == 0
    assert tr.max_lba() == -1
    assert tr.unique_write_blocks() == 0


def test_validate_accepts_well_formed():
    tr = make_write_trace([1, 2, 3])
    assert tr.validate() is tr


def test_validate_rejects_decreasing_timestamps():
    tr = Trace(np.array([5, 1]), np.array([1, 1], dtype=np.uint8),
               np.array([0, 0]), np.array([1, 1]))
    with pytest.raises(TraceFormatError):
        tr.validate()


def test_validate_rejects_zero_size():
    tr = Trace(np.array([0]), np.array([1], dtype=np.uint8),
               np.array([0]), np.array([0]))
    with pytest.raises(TraceFormatError):
        tr.validate()


def test_validate_rejects_bad_op():
    tr = Trace(np.array([0]), np.array([7], dtype=np.uint8),
               np.array([0]), np.array([1]))
    with pytest.raises(TraceFormatError):
        tr.validate()


def test_validate_rejects_negative_offset():
    tr = Trace(np.array([0]), np.array([1], dtype=np.uint8),
               np.array([-1]), np.array([1]))
    with pytest.raises(TraceFormatError):
        tr.validate()


def test_writes_filters_reads():
    rows = [(0, OP_WRITE, 0, 1), (1, OP_READ, 1, 1), (2, OP_WRITE, 2, 3)]
    tr = Trace.from_rows(rows)
    w = tr.writes()
    assert len(w) == 2
    assert w.total_write_blocks() == 4


def test_concat_sorts_by_timestamp():
    a = Trace.from_rows([(0, 1, 0, 1), (10, 1, 1, 1)], volume="a")
    b = Trace.from_rows([(5, 1, 2, 1)], volume="b")
    merged = Trace.concat([a, b])
    assert list(merged.timestamps) == [0, 5, 10]
    assert list(merged.offsets) == [0, 2, 1]


def test_concat_empty_list():
    assert len(Trace.concat([])) == 0


def test_unique_write_blocks_counts_extents_once():
    # Writes [0,4) and [2,6): union is [0,6) = 6 blocks.
    tr = Trace.from_rows([(0, OP_WRITE, 0, 4), (1, OP_WRITE, 2, 4)])
    assert tr.unique_write_blocks() == 6


def test_unique_write_blocks_ignores_reads():
    tr = Trace.from_rows([(0, OP_READ, 0, 8), (1, OP_WRITE, 0, 2)])
    assert tr.unique_write_blocks() == 2


def test_slicing_returns_trace_view():
    tr = make_write_trace(range(10))
    head = tr[:3]
    assert len(head) == 3
    assert list(head.offsets) == [0, 1, 2]
    with pytest.raises(TypeError):
        tr[0]


def test_max_lba_spans_extents():
    tr = Trace.from_rows([(0, OP_WRITE, 10, 5)])
    assert tr.max_lba() == 14


def test_duration_microseconds():
    tr = make_write_trace([0, 1, 2], gap_us=50)
    assert tr.duration_us == 100
