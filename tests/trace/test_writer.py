"""CSV writer round-trips with the parser."""

import io

from repro.trace.parser import parse_csv
from repro.trace.writer import write_csv

from tests.conftest import make_write_trace


def test_write_read_roundtrip(tmp_path):
    tr = make_write_trace([5, 1, 9], gap_us=33)
    path = tmp_path / "out.csv"
    write_csv(tr, path)
    back = parse_csv(path)
    assert list(back.timestamps) == list(tr.timestamps)
    assert list(back.offsets) == list(tr.offsets)
    assert list(back.sizes) == list(tr.sizes)
    assert list(back.ops) == list(tr.ops)


def test_write_to_stream_without_header():
    tr = make_write_trace([0])
    buf = io.StringIO()
    write_csv(tr, buf, header=False)
    assert buf.getvalue().strip() == "0,W,0,4096"
