"""Cloud fleet generators vs the paper's Figure 2 characteristics."""

import numpy as np
import pytest

from repro.common.units import KiB
from repro.trace.model import OP_WRITE
from repro.trace.stats import compute_stats, write_size_distribution
from repro.trace.synthetic.cloud import (
    ALI,
    TENCENT,
    CloudProfile,
    VolumeSpec,
    generate_fleet,
    generate_volume,
    profile_by_name,
)


def test_profile_lookup():
    assert profile_by_name("ali") is ALI
    assert profile_by_name("TENCENT") is TENCENT
    with pytest.raises(ValueError):
        profile_by_name("aws")


def test_profile_validation():
    with pytest.raises(ValueError):
        CloudProfile(name="x", rate_log_mean=0, rate_log_sigma=1,
                     write_size_probs=(1.0,), alpha_range=(0.5, 1.0),
                     read_ratio_beta=(1, 1), mean_burst_len=2,
                     intra_burst_gap_us=10, sequential_prob=0.5)


def test_fleet_is_deterministic_and_distinct():
    a = generate_fleet("ali", 3, unique_blocks=2048, num_requests=2000,
                       seed=9)
    b = generate_fleet("ali", 3, unique_blocks=2048, num_requests=2000,
                       seed=9)
    assert all(np.array_equal(x.offsets, y.offsets) for x, y in zip(a, b))
    assert not np.array_equal(a[0].offsets, a[1].offsets)


def test_fleet_volume_names():
    fleet = generate_fleet("msrc", 2, unique_blocks=1024, num_requests=500,
                           seed=1)
    assert fleet[0].volume == "msrc-000"
    assert fleet[1].volume == "msrc-001"


def test_traces_are_valid_and_in_range():
    fleet = generate_fleet("tencent", 3, unique_blocks=4096,
                           num_requests=3000, seed=2)
    for tr in fleet:
        tr.validate()
        assert tr.max_lba() < 4096


def test_write_size_distribution_matches_paper_band():
    """Fig 2b: 69.8-80.9 % of writes <= 8 KiB; 10.8-23.4 % > 32 KiB."""
    fleet = generate_fleet("ali", 6, unique_blocks=2048, num_requests=5000,
                           seed=3)
    stats = [compute_stats(t) for t in fleet]
    dist = write_size_distribution(stats)
    assert 0.65 <= dist["le_8KiB"] <= 0.85
    assert 0.05 <= dist["gt_32KiB"] <= 0.30


def test_request_rate_sparsity_matches_paper_band():
    """Fig 2a: most volumes under 10 req/s, very few above 100 req/s."""
    fleet = generate_fleet("ali", 40, unique_blocks=512, num_requests=800,
                           seed=4)
    rates = np.array([compute_stats(t).avg_request_rate for t in fleet])
    assert np.mean(rates < 10) > 0.55
    assert np.mean(rates > 100) < 0.25


def test_msrc_is_read_intensive():
    fleet = generate_fleet("msrc", 8, unique_blocks=1024, num_requests=2000,
                           seed=5)
    ratios = [np.mean(t.ops == OP_WRITE) for t in fleet]
    assert np.mean(ratios) < 0.5  # writes are the minority


def test_tencent_more_skewed_than_ali():
    assert min(TENCENT.alpha_range) > min(ALI.alpha_range)


def test_generate_volume_empty():
    spec = VolumeSpec(volume="v", unique_blocks=100, num_requests=0,
                      mean_rate=1.0, zipf_alpha=0.9, read_ratio=0.3,
                      profile=ALI)
    assert len(generate_volume(spec, rng=1)) == 0


def test_generate_fleet_validation():
    with pytest.raises(ValueError):
        generate_fleet("ali", 0)


def test_sequential_runs_present():
    """Sequential continuation produces adjacent extents."""
    fleet = generate_fleet("tencent", 1, unique_blocks=8192,
                           num_requests=4000, seed=6)
    tr = fleet[0]
    follows = np.mean(tr.offsets[1:] == (tr.offsets[:-1] + tr.sizes[:-1]) %
                      np.maximum(8192 - tr.sizes[1:], 1))
    assert follows > 0.15


def test_fleet_prefix_stability():
    """Tenant streams are keyed by name hash, not enumeration order: a
    larger fleet contains the smaller fleet's traces verbatim."""
    small = generate_fleet("ali", 2, unique_blocks=256, num_requests=300,
                           seed=11)
    large = generate_fleet("ali", 5, unique_blocks=256, num_requests=300,
                           seed=11)
    for a, b in zip(small, large):
        assert a.volume == b.volume
        assert np.array_equal(a.timestamps, b.timestamps)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.sizes, b.sizes)
