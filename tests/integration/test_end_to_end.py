"""Cross-module integration: every policy on every workload family, plus
the paper's headline orderings at test scale."""

import numpy as np
import pytest

from repro.experiments.runner import replay_volume
from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.placement.registry import available_policies, make_policy
from repro.trace.synthetic.cloud import generate_fleet
from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a

ALL_SCHEMES = ("sepgc", "dac", "warcip", "mida", "sepbit", "adapt")


@pytest.fixture(scope="module")
def cloud_trace():
    [tr] = generate_fleet("ali", 1, unique_blocks=8192, num_requests=10_000,
                          seed=3)
    return tr


@pytest.fixture(scope="module")
def ycsb_trace():
    return generate_ycsb_a(8192, 25_000, seed=3, read_ratio=0.0,
                           density=DensityPreset.MEDIUM)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_every_policy_survives_cloud_replay(scheme, cloud_trace):
    cfg = LSSConfig(logical_blocks=8192, segment_blocks=64)
    store = LogStructuredStore(cfg, make_policy(scheme, cfg))
    stats = store.replay(cloud_trace)
    store.check_invariants()
    assert stats.write_amplification() >= 1.0
    assert stats.user_blocks_requested == cloud_trace.total_write_blocks()


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("victim", ["greedy", "cost-benefit", "d-choice",
                                    "windowed-greedy", "random-greedy"])
def test_every_policy_under_every_victim(scheme, victim, ycsb_trace):
    r = replay_volume(scheme, ycsb_trace, victim=victim,
                      logical_blocks=8192)
    assert r.write_amplification >= 1.0


def test_registry_covers_evaluated_schemes():
    assert set(ALL_SCHEMES) <= set(available_policies())


def test_adapt_beats_baselines_on_sparse_cloud_volume(cloud_trace):
    """The headline result at unit-test scale: ADAPT's WA is at worst a
    few percent above the best baseline and beats the mean baseline."""
    was = {}
    for scheme in ALL_SCHEMES:
        r = replay_volume(scheme, cloud_trace, logical_blocks=8192)
        was[scheme] = r.write_amplification
    baselines = [v for k, v in was.items() if k != "adapt"]
    assert was["adapt"] <= min(baselines) * 1.05, was
    assert was["adapt"] < float(np.mean(baselines)), was


def test_adapt_padding_beats_sepbit(cloud_trace):
    """Padding reduction vs the closest baseline (paper: 40-72 %)."""
    adapt = replay_volume("adapt", cloud_trace, logical_blocks=8192)
    sepbit = replay_volume("sepbit", cloud_trace, logical_blocks=8192)
    assert adapt.padding_ratio < sepbit.padding_ratio


def test_light_density_ordering():
    """Fig 11 left at test scale: adapt < sepgc < (mida, warcip)."""
    tr = generate_ycsb_a(8192, 25_000, seed=4, read_ratio=0.0,
                         density=DensityPreset.LIGHT)
    was = {s: replay_volume(s, tr, logical_blocks=8192).write_amplification
           for s in ("sepgc", "mida", "warcip", "adapt")}
    assert was["adapt"] < was["sepgc"]
    assert was["sepgc"] < was["mida"] * 1.05
    assert was["sepgc"] < was["warcip"] * 1.05


def test_heavy_density_eliminates_padding():
    tr = generate_ycsb_a(8192, 25_000, seed=5, read_ratio=0.0,
                         density=DensityPreset.HEAVY)
    for scheme in ALL_SCHEMES:
        r = replay_volume(scheme, tr, logical_blocks=8192)
        # Multi-group schemes retain a little padding in their coldest
        # groups at this small test scale; the bulk must be gone.
        assert r.padding_ratio < 0.25, (scheme, r.padding_ratio)


def test_multi_volume_reproducibility():
    fleet = generate_fleet("tencent", 2, unique_blocks=4096,
                           num_requests=5000, seed=9)
    a = [replay_volume("adapt", t, logical_blocks=4096).flash_blocks
         for t in fleet]
    b = [replay_volume("adapt", t, logical_blocks=4096).flash_blocks
         for t in fleet]
    assert a == b
