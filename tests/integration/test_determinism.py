"""Seed determinism: identical seed => byte-identical results.

For every synthetic generator x every registered placement policy, two
fully independent runs (trace regenerated, fresh policy, fresh store) must
produce byte-identical serialized statistics.  This pins down both the
generators' RNG discipline and the simulator's freedom from hidden global
state (dict iteration order, cached module state, ...).
"""

from __future__ import annotations

import json

import pytest

from repro.lss.store import LogStructuredStore
from repro.placement.registry import available_policies, make_policy
from repro.validate.differential import differential_config

pytestmark = pytest.mark.slow

LOGICAL = 512
REQUESTS = 600
SEED = 21


def generate(workload: str):
    if workload == "ycsb-a":
        from repro.trace.synthetic.ycsb import generate_ycsb_a
        return generate_ycsb_a(unique_blocks=LOGICAL,
                               num_writes=REQUESTS, seed=SEED)
    from repro.trace.synthetic.cloud import generate_fleet
    return generate_fleet(workload, 1, unique_blocks=LOGICAL,
                          num_requests=REQUESTS, seed=SEED)[0]


def run_once(workload: str, policy: str) -> str:
    config = differential_config(logical_blocks=LOGICAL, seed=SEED)
    store = LogStructuredStore(config, make_policy(policy, config))
    store.replay(generate(workload))
    blob = {
        "summary": store.stats.summary(),
        "groups": [[g.name, g.user_blocks, g.gc_blocks, g.shadow_blocks,
                    g.padding_blocks, g.chunk_flushes, g.deadline_flushes,
                    g.forced_flushes] for g in store.stats.groups],
        "raid": [store.stats.raid.data_chunks,
                 store.stats.raid.parity_chunks],
        "occupancy": [int(x) for x in store.group_occupancy()],
        "mapping_crc": int(store.mapping.sum()),
    }
    return json.dumps(blob, sort_keys=True)


@pytest.mark.parametrize("workload", ["ali", "tencent", "msrc", "ycsb-a"])
def test_identical_seed_identical_bytes(workload):
    for policy in available_policies():
        first = run_once(workload, policy)
        second = run_once(workload, policy)
        assert first == second, \
            f"{policy} on {workload} is not seed-deterministic"


def test_different_seed_changes_trace():
    """Sanity: the determinism test isn't vacuous — seeds matter."""
    from repro.trace.synthetic.cloud import generate_fleet
    a = generate_fleet("ali", 1, unique_blocks=LOGICAL,
                       num_requests=REQUESTS, seed=1)[0]
    b = generate_fleet("ali", 1, unique_blocks=LOGICAL,
                       num_requests=REQUESTS, seed=2)[0]
    assert a.offsets.tolist() != b.offsets.tolist()
