"""Store end-to-end behaviour with the simplest policy (SepGC)."""

import numpy as np
import pytest

from repro.lss.store import UNMAPPED, LogStructuredStore
from repro.placement.sepgc import SepGCPolicy
from repro.trace.model import OP_READ, OP_WRITE, Trace

from tests.conftest import make_write_trace


def make_store(cfg):
    return LogStructuredStore(cfg, SepGCPolicy(cfg))


def test_write_maps_block(tiny_config):
    store = make_store(tiny_config)
    store.process_request(0, OP_WRITE, 5, 1)
    assert store.mapping[5] != UNMAPPED
    assert store.read_block(5)
    assert not store.read_block(6)
    assert store.stats.user_blocks_requested == 1


def test_overwrite_invalidates_old_location(tiny_config):
    store = make_store(tiny_config)
    store.process_request(0, OP_WRITE, 5, 1)
    first = int(store.mapping[5])
    store.process_request(10, OP_WRITE, 5, 1)
    second = int(store.mapping[5])
    assert first != second
    seg, slot = divmod(first, tiny_config.segment_blocks)
    assert not store.pool.slot_valid[seg, slot]
    store.check_invariants()


def test_multi_block_request(tiny_config):
    store = make_store(tiny_config)
    store.process_request(0, OP_WRITE, 0, 10)
    assert store.stats.user_blocks_requested == 10
    assert all(store.mapping[i] != UNMAPPED for i in range(10))


def test_request_outside_address_space_rejected(tiny_config):
    store = make_store(tiny_config)
    with pytest.raises(ValueError):
        store.process_request(0, OP_WRITE, 4095, 2)
    with pytest.raises(ValueError):
        store.process_request(0, OP_WRITE, -1, 1)


def test_reads_do_not_write(tiny_config):
    store = make_store(tiny_config)
    store.process_request(0, OP_READ, 0, 4)
    assert store.stats.user_blocks_requested == 0
    assert store.stats.read_requests == 1
    assert store.stats.flash_blocks_written == 0


def test_deadline_padding_on_sparse_stream(tiny_config):
    store = make_store(tiny_config)
    # Two writes 1 ms apart: the first chunk (4 blocks) must be padded.
    store.process_request(0, OP_WRITE, 0, 1)
    store.process_request(1000, OP_WRITE, 1, 1)
    assert store.stats.padding_blocks_written == 3
    g = store.stats.groups[SepGCPolicy.USER_GROUP]
    assert g.deadline_flushes == 1


def test_dense_stream_never_pads(tiny_config):
    store = make_store(tiny_config)
    tr = make_write_trace(range(64), gap_us=10)
    store.replay(tr, finalize=False)
    assert store.stats.padding_blocks_written == 0


def test_finalize_flushes_tail(tiny_config):
    store = make_store(tiny_config)
    store.process_request(0, OP_WRITE, 0, 1)
    store.finalize()
    assert store.stats.user_blocks_written == 1
    assert store.stats.padding_blocks_written == 3
    g = store.stats.groups[SepGCPolicy.USER_GROUP]
    assert g.forced_flushes == 1


def test_wa_of_aligned_stream_without_gc_is_one(tiny_config):
    store = make_store(tiny_config)
    tr = make_write_trace(range(1024), gap_us=5)
    store.replay(tr)
    assert store.stats.write_amplification() == pytest.approx(1.0)


def test_gc_triggers_and_reclaims(tiny_config):
    store = make_store(tiny_config)
    rng = np.random.default_rng(0)
    lbas = rng.integers(0, 2048, size=12_000)
    store.replay(make_write_trace(lbas, gap_us=5))
    assert store.stats.gc_segments_reclaimed > 0
    assert store.stats.gc_blocks_written > 0
    assert store.pool.free_segments > tiny_config.gc_free_low
    store.check_invariants()


def test_wa_at_least_one_under_gc(tiny_config):
    store = make_store(tiny_config)
    rng = np.random.default_rng(1)
    store.replay(make_write_trace(rng.integers(0, 2048, size=8_000),
                                  gap_us=5))
    assert store.stats.write_amplification() >= 1.0


def test_mapping_consistent_after_heavy_churn(tiny_config):
    store = make_store(tiny_config)
    rng = np.random.default_rng(2)
    lbas = rng.integers(0, 1024, size=10_000)
    # Mixed gaps: some sparse (padding), some dense.
    gaps = rng.choice([5, 500], size=10_000)
    ts = np.cumsum(gaps)
    tr = Trace(ts, np.ones(10_000, dtype=np.uint8), lbas,
               np.ones(10_000, dtype=np.int64))
    store.replay(tr)
    store.check_invariants()
    # Every written LBA is still readable.
    for lba in set(lbas.tolist()):
        assert store.read_block(int(lba))


def test_raid_accounting_tracks_chunk_flushes(tiny_config):
    store = make_store(tiny_config)
    store.replay(make_write_trace(range(64), gap_us=5))
    assert store.stats.raid.data_chunks == \
        sum(g.chunk_flushes for g in store.stats.groups)
    assert store.stats.raid.parity_chunks > 0


def test_group_occupancy_sums_to_mapped_blocks(tiny_config):
    store = make_store(tiny_config)
    rng = np.random.default_rng(3)
    store.replay(make_write_trace(rng.integers(0, 2048, size=6_000),
                                  gap_us=5))
    occ = store.group_occupancy()
    mapped = int(np.count_nonzero(store.mapping != UNMAPPED))
    assert occ.sum() == mapped


def test_policy_without_groups_rejected(tiny_config):
    class NoGroups(SepGCPolicy):
        def group_specs(self):
            return []
    with pytest.raises(Exception):
        LogStructuredStore(tiny_config, NoGroups(tiny_config))
