"""Crash-recovery scan: rebuilt state must equal live state."""

import numpy as np
import pytest

from repro.lss.recovery import recover_store, scan_pool, verify_recovery
from repro.lss.store import LogStructuredStore
from repro.placement.registry import make_policy

from tests.conftest import make_write_trace


def churned_store(cfg, scheme="sepgc", n=12_000, unique=2048, seed=0,
                  gaps=(5,)):
    rng = np.random.default_rng(seed)
    store = LogStructuredStore(cfg, make_policy(scheme, cfg))
    lbas = rng.integers(0, unique, size=n)
    gap = int(rng.choice(gaps))
    store.replay(make_write_trace(lbas, gap_us=gap), finalize=False)
    return store


def test_recovery_matches_live_state_after_gc(tiny_config):
    store = churned_store(tiny_config)
    assert store.stats.gc_segments_reclaimed > 0  # GC actually ran
    result = verify_recovery(store)
    assert result.live_blocks == \
        int(np.count_nonzero(store.mapping != -1))


@pytest.mark.parametrize("scheme", ["sepgc", "mida", "sepbit", "adapt"])
def test_recovery_across_policies(tiny_config, scheme):
    store = churned_store(tiny_config, scheme=scheme, n=8000)
    verify_recovery(store)


def test_recover_store_installs_rebuilt_state(tiny_config):
    store = churned_store(tiny_config)
    expected_mapping = store.mapping.copy()
    # Crash: wipe the volatile tables.
    store.mapping[:] = -1
    store.pool.slot_valid[:] = False
    store.pool.valid_count[:] = 0
    result = recover_store(store)
    assert np.array_equal(store.mapping, expected_mapping)
    store.check_invariants()
    assert result.segments_scanned > 0


def test_recovery_empty_store(tiny_config):
    store = LogStructuredStore(tiny_config, make_policy("sepgc",
                                                        tiny_config))
    result = scan_pool(store.pool, tiny_config.logical_blocks)
    assert result.live_blocks == 0
    assert result.segments_scanned == 0


def test_recovery_ignores_padding_slots(tiny_config):
    store = LogStructuredStore(tiny_config, make_policy("sepgc",
                                                        tiny_config))
    # One sparse write: chunk padded on finalize.
    store.process_request(0, 1, 7, 1)
    store.finalize()
    assert store.stats.padding_blocks_written > 0
    result = verify_recovery(store)
    assert result.live_blocks == 1


def test_recovery_newest_copy_wins(tiny_config):
    store = LogStructuredStore(tiny_config, make_policy("sepgc",
                                                        tiny_config))
    for t in range(5):
        store.process_request(t * 10, 1, 3, 1)  # rewrite same LBA
    result = scan_pool(store.pool, tiny_config.logical_blocks)
    assert result.live_blocks == 1
    assert result.mapping[3] == store.mapping[3]
