"""Edge cases: default segment sizing and policy-base errors."""

import pytest

from repro.core.config import AdaptConfig
from repro.core.policy import AdaptPolicy
from repro.lss.config import default_segment_blocks
from repro.placement.base import PlacementPolicy
from repro.placement.sepgc import SepGCPolicy


def test_default_segment_blocks_bounds():
    # Tiny volumes get the floor (2 chunks), huge ones the 256 cap.
    assert default_segment_blocks(1_000) == 32
    assert default_segment_blocks(1_000_000) == 256
    # Mid-size volumes scale ~1/128 and stay chunk-aligned.
    mid = default_segment_blocks(20_000)
    assert mid % 16 == 0
    assert 32 <= mid <= 256


def test_default_segment_blocks_chunk_alignment():
    for logical in (5_000, 17_000, 33_000, 100_000):
        assert default_segment_blocks(logical, chunk_blocks=16) % 16 == 0
        assert default_segment_blocks(logical, chunk_blocks=8) % 8 == 0


def test_unbound_policy_user_seq_raises(small_config):
    pol = SepGCPolicy(small_config)
    with pytest.raises(RuntimeError):
        _ = pol.user_seq


def test_base_policy_abstract_methods(small_config):
    base = PlacementPolicy(small_config)
    with pytest.raises(NotImplementedError):
        base.group_specs()
    with pytest.raises(NotImplementedError):
        base.place_user(0, 0)
    with pytest.raises(NotImplementedError):
        base.place_gc(0, 0, 0)
    assert base.memory_bytes() == 0


def test_adapt_custom_gc_group_count(small_config):
    pol = AdaptPolicy(small_config, adapt=AdaptConfig(num_gc_groups=2))
    specs = pol.group_specs()
    assert len(specs) == 4  # 2 user + 2 gc
    # The age ladder must stay within the declared groups.
    from repro.lss.store import LogStructuredStore
    store = LogStructuredStore(small_config, pol)
    store.process_request(0, 1, 5, 1)
    store.user_seq = 10 ** 9
    assert pol.place_gc(5, 0, 0) == AdaptPolicy.GC_BASE + 1
