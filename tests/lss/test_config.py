"""LSS configuration validation and derived quantities."""

import pytest

from repro.array.chunk import ChunkGeometry
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.lss.config import LSSConfig


def test_derived_segment_counts():
    cfg = LSSConfig(logical_blocks=25_600, segment_blocks=256,
                    over_provisioning=0.25)
    assert cfg.logical_segments == 100
    assert cfg.physical_segments == 125
    assert cfg.physical_blocks == 125 * 256
    assert cfg.segment_chunks == 16


def test_segment_must_be_chunk_multiple():
    with pytest.raises(ConfigError):
        LSSConfig(logical_blocks=1024, segment_blocks=20)


def test_basic_validation():
    with pytest.raises(ConfigError):
        LSSConfig(logical_blocks=0)
    with pytest.raises(ConfigError):
        LSSConfig(logical_blocks=1024, over_provisioning=0.0)
    with pytest.raises(ConfigError):
        LSSConfig(logical_blocks=1024, coalesce_window_us=-1)
    with pytest.raises(ConfigError):
        LSSConfig(logical_blocks=1024, gc_free_low=0)
    with pytest.raises(ConfigError):
        LSSConfig(logical_blocks=1024, gc_free_low=9, gc_free_high=8)
    with pytest.raises(ConfigError):
        LSSConfig(logical_blocks=1024, sla_mode="sometimes")


def test_validate_for_groups_headroom():
    cfg = LSSConfig(logical_blocks=4096, segment_blocks=16,
                    chunk=ChunkGeometry(chunk_bytes=16 * KiB),
                    over_provisioning=0.25)
    cfg.validate_for_groups(2)  # plenty of headroom
    with pytest.raises(ConfigError):
        cfg.validate_for_groups(60)


def test_config_is_frozen():
    cfg = LSSConfig(logical_blocks=1024)
    with pytest.raises(AttributeError):
        cfg.logical_blocks = 5
