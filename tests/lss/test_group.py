"""Group behaviour: sealing, shadow appends, accounting."""

import pytest

from repro.lss.group import APPEND_SHADOW, APPEND_USER
from repro.lss.store import LogStructuredStore
from repro.placement.sepgc import SepGCPolicy


@pytest.fixture
def store(tiny_config):
    return LogStructuredStore(tiny_config, SepGCPolicy(tiny_config))


def test_group_seals_when_segment_full(store, tiny_config):
    g = store.groups[0]
    for i in range(tiny_config.segment_blocks):
        g.append_user(i, now_us=i)
    # Segment filled by FULL chunk flushes and was sealed.
    assert g.open_seg is None
    assert len(store.pool.sealed_segments()) == 1


def test_padding_advances_fill_to_chunk_boundary(store, tiny_config):
    g = store.groups[0]
    g.append_user(0, now_us=0)
    flush = g.poll_deadline(now_us=10_000)
    assert flush is not None
    chunk = tiny_config.chunk.chunk_blocks
    assert store.pool.fill[g.open_seg] == chunk


def test_shadow_append_creates_dead_slot(store):
    g = store.groups[0]
    g.append_shadow(lba=7, now_us=0)
    seg = g.open_seg
    assert store.pool.fill[seg] == 1
    assert store.pool.valid_count[seg] == 0
    assert g.segment_shadow_bytes == 4096
    assert g.buffer.pending_tokens == ((APPEND_SHADOW, 7),)


def test_shadow_accounted_on_flush(store, tiny_config):
    g = store.groups[0]
    for i in range(tiny_config.chunk.chunk_blocks):
        g.append_shadow(i, now_us=0)
    assert g.traffic.shadow_blocks == tiny_config.chunk.chunk_blocks
    assert g.traffic.chunk_flushes == 1


def test_shadow_watermark_and_unshadowed(store):
    g = store.groups[0]
    g.append_user(1, 0)
    g.append_user(2, 0)
    assert len(g.unshadowed_pending) == 2
    g.mark_all_shadowed(now_us=5)
    assert g.unshadowed_pending == ()
    g.append_user(3, 6)
    assert g.unshadowed_pending == ((APPEND_USER, 3),)


def test_partial_shadow_watermark(store):
    g = store.groups[0]
    for lba in (1, 2, 3):
        g.append_user(lba, 0)
    g.mark_partially_shadowed(2, now_us=5)
    assert g.unshadowed_pending == ((APPEND_USER, 3),)
    before = g.buffer.deadline_us
    g.mark_partially_shadowed(1, now_us=50)
    assert g.unshadowed_pending == ()
    assert g.buffer.deadline_us == 150  # timer restarted at full coverage
    assert before != g.buffer.deadline_us


def test_watermark_resets_on_flush(store, tiny_config):
    g = store.groups[0]
    g.append_user(1, 0)
    g.mark_all_shadowed(0)
    for i in range(1, tiny_config.chunk.chunk_blocks):
        g.append_user(10 + i, 0)
    # Chunk flushed FULL; watermark must reset for the next chunk.
    assert g.buffer.pending_blocks == 0
    g.append_user(99, 1)
    assert len(g.unshadowed_pending) == 1


def test_deadline_flush_counters(store):
    g = store.groups[0]
    g.append_user(1, 0)
    g.poll_deadline(now_us=10_000)
    assert g.traffic.deadline_flushes == 1
    g.append_user(2, 20_000)
    g.force_flush(now_us=20_001)
    assert g.traffic.forced_flushes == 1
