"""Victim-selection policies."""

import pytest

from repro.lss.segment import SegmentPool
from repro.lss.victim import (
    CostBenefitVictim,
    DChoiceVictim,
    GreedyVictim,
    RandomGreedyVictim,
    WindowedGreedyVictim,
    available_victim_policies,
    make_victim_policy,
)


def build_pool(valid_counts, seal_times=None):
    """Pool with one sealed segment per entry holding `n` valid blocks."""
    pool = SegmentPool(num_segments=len(valid_counts) + 2, segment_blocks=8)
    seal_times = seal_times or list(range(len(valid_counts)))
    segs = []
    for n, when in zip(valid_counts, seal_times):
        seg = pool.allocate(0, 0)
        for i in range(8):
            pool.append_block(seg, i)
        pool.seal(seg, when)
        for slot in range(n, 8):
            pool.invalidate(seg * 8 + slot)
        segs.append(seg)
    return pool, segs


def test_greedy_picks_min_valid():
    pool, segs = build_pool([5, 2, 7])
    assert GreedyVictim().select(pool, now_seq=100) == segs[1]


def test_greedy_skips_full_segments():
    pool, segs = build_pool([8, 6])
    assert GreedyVictim().select(pool, now_seq=10) == segs[1]


def test_greedy_returns_none_when_nothing_productive():
    pool, _ = build_pool([8, 8])
    assert GreedyVictim().select(pool, now_seq=10) is None


def test_greedy_no_sealed_segments():
    pool = SegmentPool(4, 8)
    assert GreedyVictim().select(pool, now_seq=0) is None


def test_cost_benefit_prefers_older_of_equal_utilisation():
    pool, segs = build_pool([4, 4], seal_times=[0, 90])
    assert CostBenefitVictim().select(pool, now_seq=100) == segs[0]


def test_cost_benefit_trades_age_against_garbage():
    # Nearly-empty segment of moderate age beats an old but full one:
    # (1-u)·age/(1+u) = 0.875·20/1.125 ≈ 15.6 vs 0.125·100/1.875 ≈ 6.7.
    pool, segs = build_pool([1, 7], seal_times=[80, 0])
    assert CostBenefitVictim().select(pool, now_seq=100) == segs[0]


def test_dchoice_with_d_covering_all_equals_greedy():
    pool, segs = build_pool([6, 1, 4])
    assert DChoiceVictim(d=10, rng=1).select(pool, now_seq=10) == segs[1]


def test_dchoice_validates_d():
    with pytest.raises(ValueError):
        DChoiceVictim(d=0)


def test_windowed_greedy_limits_to_oldest():
    pool, segs = build_pool([5, 1], seal_times=[0, 50])
    # Window of 1: only the oldest sealed segment is eligible.
    assert WindowedGreedyVictim(window=1).select(pool, now_seq=60) == segs[0]


def test_windowed_greedy_escapes_unproductive_window():
    pool, segs = build_pool([8, 3], seal_times=[0, 50])
    assert WindowedGreedyVictim(window=1).select(pool, now_seq=60) == segs[1]


def test_random_greedy_stays_near_minimum():
    pool, segs = build_pool([1, 2, 7])
    pick = RandomGreedyVictim(slack=0.15, rng=3).select(pool, now_seq=10)
    assert pick in (segs[0], segs[1])


def test_registry():
    assert set(available_victim_policies()) >= {
        "greedy", "cost-benefit", "d-choice", "windowed-greedy",
        "random-greedy"}
    assert isinstance(make_victim_policy("greedy"), GreedyVictim)
    assert isinstance(make_victim_policy("d-choice", d=3), DChoiceVictim)
    with pytest.raises(ValueError):
        make_victim_policy("optimal")
