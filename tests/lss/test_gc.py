"""GC engine: migration correctness and victim separation."""

import numpy as np
import pytest

from repro.lss.segment import SEG_SEALED
from repro.lss.store import LogStructuredStore
from repro.placement.sepgc import SepGCPolicy

from tests.conftest import make_write_trace


def churn(store, unique, writes, seed=0, gap_us=5):
    rng = np.random.default_rng(seed)
    store.replay(make_write_trace(rng.integers(0, unique, size=writes),
                                  gap_us=gap_us), finalize=False)
    return store


def test_gc_moves_user_blocks_to_gc_group(tiny_config):
    store = churn(LogStructuredStore(tiny_config, SepGCPolicy(tiny_config)),
                  2048, 12_000)
    gc_traffic = store.stats.groups[SepGCPolicy.GC_GROUP]
    assert gc_traffic.gc_blocks > 0
    assert gc_traffic.user_blocks == 0
    assert gc_traffic.padding_blocks == 0  # bulk GC writes never pad


def test_gc_preserves_all_data(tiny_config):
    store = LogStructuredStore(tiny_config, SepGCPolicy(tiny_config))
    rng = np.random.default_rng(7)
    lbas = rng.integers(0, 2048, size=15_000)
    store.replay(make_write_trace(lbas, gap_us=5))
    store.check_invariants()
    written = set(int(x) for x in lbas)
    assert all(store.read_block(lba) for lba in written)


def test_gc_counts_match(tiny_config):
    store = churn(LogStructuredStore(tiny_config, SepGCPolicy(tiny_config)),
                  2048, 12_000)
    st = store.stats
    assert st.gc_passes == st.gc_segments_reclaimed
    # All migrated blocks were either flushed or are still pending in the
    # GC group's open chunk.
    from repro.lss.group import APPEND_GC
    pending_gc = sum(1 for g in store.groups
                     for kind, _ in g.buffer.pending_tokens
                     if kind == APPEND_GC)
    assert st.gc_blocks_migrated == st.gc_blocks_written + pending_gc


def test_gc_respects_watermarks(tiny_config):
    store = churn(LogStructuredStore(tiny_config, SepGCPolicy(tiny_config)),
                  2048, 20_000)
    assert store.pool.free_segments >= tiny_config.gc_free_low


def test_clean_segment_rejects_unsealed(tiny_config):
    store = LogStructuredStore(tiny_config, SepGCPolicy(tiny_config))
    store.process_request(0, 1, 0, 1)
    open_seg = store.groups[0].open_seg
    with pytest.raises(ValueError):
        store.gc.clean_segment(open_seg, 0)


def test_gc_only_selects_sealed(tiny_config):
    store = churn(LogStructuredStore(tiny_config, SepGCPolicy(tiny_config)),
                  2048, 12_000)
    # After heavy churn every reclaimed segment must have been sealed;
    # open segments of the groups must still be intact.
    for g in store.groups:
        if g.open_seg is not None:
            assert store.pool.state[g.open_seg] != SEG_SEALED
