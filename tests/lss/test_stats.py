"""StoreStats metric arithmetic."""

from repro.lss.stats import GroupTraffic, StoreStats


def make_stats():
    st = StoreStats()
    st.groups = [
        GroupTraffic("user", "user", user_blocks=100, padding_blocks=50,
                     shadow_blocks=10),
        GroupTraffic("gc", "gc", gc_blocks=40),
    ]
    st.user_blocks_requested = 100
    return st


def test_totals():
    st = make_stats()
    assert st.user_blocks_written == 100
    assert st.gc_blocks_written == 40
    assert st.shadow_blocks_written == 10
    assert st.padding_blocks_written == 50
    assert st.flash_blocks_written == 200


def test_write_amplification_definition():
    st = make_stats()
    assert st.write_amplification() == 2.0


def test_ratios():
    st = make_stats()
    assert st.padding_traffic_ratio() == 0.25
    assert st.gc_traffic_ratio() == 0.2


def test_empty_stats_are_zero():
    st = StoreStats()
    assert st.write_amplification() == 0.0
    assert st.padding_traffic_ratio() == 0.0
    assert st.gc_traffic_ratio() == 0.0


def test_summary_includes_request_and_gc_counters():
    st = make_stats()
    st.read_requests = 7
    st.write_requests = 11
    st.gc_passes = 3
    s = st.summary()
    assert s["read_requests"] == 7.0
    assert s["write_requests"] == 11.0
    assert s["gc_passes"] == 3.0
    # Pre-existing keys stay intact for report tables.
    assert s["write_amplification"] == 2.0
    assert s["user_blocks_requested"] == 100.0


def test_group_padding_fraction():
    g = GroupTraffic("g", "user", user_blocks=3, padding_blocks=1)
    assert g.padding_fraction() == 0.25
    assert GroupTraffic("e", "user").padding_fraction() == 0.0


def test_summary_keys():
    s = make_stats().summary()
    assert s["write_amplification"] == 2.0
    assert s["padding_blocks_written"] == 50.0
    assert "gc_traffic_ratio" in s
