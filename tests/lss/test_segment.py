"""Segment pool slot bookkeeping."""

import pytest

from repro.common.errors import CapacityError
from repro.lss.segment import (
    NO_LBA,
    SEG_FREE,
    SEG_OPEN,
    SEG_SEALED,
    SegmentPool,
)


@pytest.fixture
def pool():
    return SegmentPool(num_segments=4, segment_blocks=8)


def test_allocate_and_free_counts(pool):
    assert pool.free_segments == 4
    seg = pool.allocate(group=0, now_seq=0)
    assert pool.free_segments == 3
    assert pool.state[seg] == SEG_OPEN
    assert pool.group[seg] == 0


def test_append_block_assigns_sequential_slots(pool):
    seg = pool.allocate(0, 0)
    locs = [pool.append_block(seg, lba) for lba in (10, 20, 30)]
    assert locs == [seg * 8, seg * 8 + 1, seg * 8 + 2]
    assert pool.valid_count[seg] == 3
    assert list(pool.valid_lbas(seg)) == [10, 20, 30]


def test_padding_consumes_dead_slots(pool):
    seg = pool.allocate(0, 0)
    pool.append_block(seg, 1)
    pool.append_padding(seg, 3)
    assert pool.fill[seg] == 4
    assert pool.valid_count[seg] == 1  # padding is dead on arrival


def test_invalidate(pool):
    seg = pool.allocate(0, 0)
    loc = pool.append_block(seg, 42)
    pool.invalidate(loc)
    assert pool.valid_count[seg] == 0
    with pytest.raises(ValueError):
        pool.invalidate(loc)


def test_seal_requires_full(pool):
    seg = pool.allocate(0, 0)
    with pytest.raises(ValueError):
        pool.seal(seg, 0)
    for i in range(8):
        pool.append_block(seg, i)
    pool.seal(seg, 99)
    assert pool.state[seg] == SEG_SEALED
    assert pool.sealed_seq[seg] == 99


def test_reclaim_requires_sealed_and_empty(pool):
    seg = pool.allocate(0, 0)
    for i in range(8):
        pool.append_block(seg, i)
    with pytest.raises(ValueError):
        pool.reclaim(seg)  # not sealed
    pool.seal(seg, 1)
    with pytest.raises(ValueError):
        pool.reclaim(seg)  # still valid blocks
    for slot in range(8):
        pool.invalidate(seg * 8 + slot)
    pool.reclaim(seg)
    assert pool.state[seg] == SEG_FREE
    assert pool.free_segments == 4
    assert (pool.slot_lba[seg] == NO_LBA).all()


def test_segment_overflow_raises(pool):
    seg = pool.allocate(0, 0)
    for i in range(8):
        pool.append_block(seg, i)
    with pytest.raises(CapacityError):
        pool.append_block(seg, 99)
    with pytest.raises(CapacityError):
        pool.append_padding(seg, 1)


def test_pool_exhaustion_raises(pool):
    for _ in range(4):
        pool.allocate(0, 0)
    with pytest.raises(CapacityError):
        pool.allocate(0, 0)


def test_sealed_segments_listing(pool):
    a = pool.allocate(0, 0)
    for i in range(8):
        pool.append_block(a, i)
    pool.seal(a, 1)
    assert list(pool.sealed_segments()) == [a]


def test_utilization(pool):
    seg = pool.allocate(0, 0)
    pool.append_block(seg, 1)
    pool.append_block(seg, 2)
    assert pool.utilization(seg) == 0.25


def test_check_invariants_detects_corruption(pool):
    seg = pool.allocate(0, 0)
    pool.append_block(seg, 1)
    pool.check_invariants()
    pool.valid_count[seg] = 5  # corrupt the cache
    with pytest.raises(AssertionError):
        pool.check_invariants()


def test_invalid_dimensions():
    with pytest.raises(ValueError):
        SegmentPool(0, 8)
    with pytest.raises(ValueError):
        SegmentPool(4, 0)
