"""Crash-recovery round trip, cross-checked against the oracle.

Replays churn through the fast store, "crashes" it (recovery rebuilds the
volatile mapping/validity tables from on-media slot metadata), and asserts
the recovered state equals both the pre-crash state and the independent
oracle's final mapping — recovery correctness judged by a second
implementation, not by the code under test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lss.recovery import recover_store, verify_recovery
from repro.lss.store import UNMAPPED, LogStructuredStore
from repro.placement.registry import make_policy
from repro.validate.audit import InvariantAuditor
from repro.validate.differential import differential_config
from repro.validate.oracle import OracleStore
from tests.conftest import make_write_trace


def churn_trace(n: int = 3000, logical: int = 512, seed: int = 11):
    rng = np.random.default_rng(seed)
    return make_write_trace(rng.zipf(1.3, size=n) % logical)


@pytest.mark.parametrize("policy", ["adapt", "sepgc", "dac"])
def test_recovery_matches_oracle_mapping(policy):
    config = differential_config(logical_blocks=512)
    trace = churn_trace()

    fast = LogStructuredStore(config, make_policy(policy, config))
    fast.replay(trace)
    verify_recovery(fast)              # rebuild-without-install agrees
    pre_crash = fast.mapping.copy()

    result = recover_store(fast)       # crash: rebuild and install
    assert np.array_equal(fast.mapping, pre_crash)
    assert result.live_blocks == int(np.count_nonzero(
        pre_crash != UNMAPPED))

    oracle = OracleStore(config, make_policy(policy, config))
    oracle.replay(trace)
    oracle_map = oracle.mapping_table()
    for lba in range(config.logical_blocks):
        assert int(fast.mapping[lba]) == oracle_map.get(lba, UNMAPPED), \
            f"recovered mapping diverges from oracle at lba {lba}"


def test_recovered_store_passes_full_audit():
    config = differential_config(logical_blocks=512)
    fast = LogStructuredStore(config, make_policy("adapt", config))
    fast.replay(churn_trace(seed=13))
    recover_store(fast)
    InvariantAuditor().audit(fast)
