"""The dict-based oracle: self-consistency and fast-store equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.lss.store import UNMAPPED, LogStructuredStore
from repro.placement.registry import make_policy
from repro.validate.differential import differential_config
from repro.validate.oracle import ORACLE_VICTIM_POLICIES, OracleStore
from tests.conftest import make_write_trace


@pytest.fixture
def config():
    return differential_config(logical_blocks=512)


def churn_lbas(n: int = 3000, logical: int = 512, seed: int = 5):
    rng = np.random.default_rng(seed)
    # Skewed overwrites so GC actually cycles on the tiny store.
    return rng.zipf(1.3, size=n) % logical


def test_oracle_replays_and_self_checks(config):
    oracle = OracleStore(config, make_policy("sepgc", config))
    oracle.replay(make_write_trace(churn_lbas()))
    oracle.check_invariants()
    summary = oracle.stats.summary()
    assert summary["write_amplification"] >= 1.0
    assert oracle.stats.gc_passes > 0, "trace too small to exercise GC"


def test_oracle_matches_fast_store_mapping_and_stats(config):
    trace = make_write_trace(churn_lbas())
    fast = LogStructuredStore(config, make_policy("adapt", config))
    fast.replay(trace)
    oracle = OracleStore(config, make_policy("adapt", config))
    oracle.replay(trace)

    oracle_map = oracle.mapping_table()
    for lba in range(config.logical_blocks):
        assert int(fast.mapping[lba]) == oracle_map.get(lba, UNMAPPED)
    assert fast.stats.summary() == oracle.stats.summary()
    assert fast.stats.raid.data_chunks == oracle.stats.raid.data_chunks
    assert fast.stats.raid.parity_chunks == oracle.stats.raid.parity_chunks
    assert [int(x) for x in fast.group_occupancy()] == \
        oracle.group_occupancy()


def test_oracle_summary_has_same_keys_as_fast(config):
    trace = make_write_trace(churn_lbas(500))
    fast = LogStructuredStore(config, make_policy("dac", config))
    fast.replay(trace)
    oracle = OracleStore(config, make_policy("dac", config))
    oracle.replay(trace)
    assert set(oracle.stats.summary()) == set(fast.stats.summary())


@pytest.mark.parametrize("victim", ORACLE_VICTIM_POLICIES)
def test_oracle_supports_deterministic_victims(victim):
    config = differential_config(logical_blocks=512, victim=victim)
    oracle = OracleStore(config, make_policy("sepgc", config))
    oracle.replay(make_write_trace(churn_lbas(1500)))
    oracle.check_invariants()


def test_oracle_rejects_stochastic_victim():
    config = differential_config(logical_blocks=512, victim="d-choice")
    with pytest.raises(ValidationError, match="d-choice"):
        OracleStore(config, make_policy("sepgc", config))
