"""The differential sweep harness itself."""

from __future__ import annotations

import pytest

from repro.placement.registry import available_policies
from repro.validate.differential import (default_workloads,
                                         differential_config, render_report,
                                         run_cell, run_differential)

pytestmark = pytest.mark.differential


def test_single_cell_matches_and_audits():
    trace = default_workloads(num_requests=400)[0]
    cell = run_cell("sepgc", trace, differential_config(), audit_every=128)
    assert cell.ok
    assert cell.mapping_diffs == 0 and not cell.stat_diffs
    assert cell.audits_run > 1
    assert cell.fast_wa == pytest.approx(cell.oracle_wa)


def test_small_sweep_two_policies():
    workloads = default_workloads(num_requests=400)[:2]
    report = run_differential(policies=["adapt", "mida"],
                              workloads=workloads)
    assert len(report.cells) == 4
    assert report.ok, [(c.policy, c.workload, c.mapping_diffs,
                        c.stat_diffs) for c in report.failures]


def test_render_report_mentions_every_cell():
    workloads = default_workloads(num_requests=300)[:1]
    report = run_differential(policies=["sepbit"], workloads=workloads)
    out = render_report(report)
    assert "sepbit" in out and "ok" in out
    assert "all 1 cells match" in out


@pytest.mark.slow
def test_full_sweep_every_policy_every_workload():
    """The acceptance sweep: all registered policies x 4 workloads, plus a
    second pass under the cost-benefit victim for two of them."""
    report = run_differential()
    assert len(report.cells) == len(available_policies()) * 4
    assert report.ok, render_report(report)

    cb = run_differential(policies=["adapt", "sepbit"],
                          victim="cost-benefit", num_requests=800)
    assert cb.ok, render_report(cb)
