"""The invariant auditor: healthy stores pass, corrupted stores are named."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import InvariantViolation
from repro.lss.segment import SEG_FREE
from repro.lss.store import UNMAPPED, LogStructuredStore
from repro.obs.events import EV_AUDIT_VIOLATION
from repro.obs.recorder import ObsRecorder
from repro.placement.registry import make_policy
from repro.validate.audit import INVARIANT_CHECKS, InvariantAuditor
from repro.validate.differential import differential_config
from tests.conftest import make_write_trace


def churn_lbas(n: int = 2500, logical: int = 512, seed: int = 9):
    rng = np.random.default_rng(seed)
    return rng.zipf(1.3, size=n) % logical


def replayed_store(policy: str = "sepgc", auditor=None,
                   recorder=None) -> LogStructuredStore:
    config = differential_config(logical_blocks=512)
    store = LogStructuredStore(config, make_policy(policy, config),
                               recorder=recorder, auditor=auditor)
    store.replay(make_write_trace(churn_lbas()))
    return store


def first_mapped_lba(store) -> int:
    return int(np.flatnonzero(store.mapping != UNMAPPED)[0])


def test_healthy_store_passes_every_check():
    auditor = InvariantAuditor(every_blocks=256)
    store = replayed_store(auditor=auditor)
    assert auditor.audits_run > 1          # cadence + finalize both fired
    assert auditor.violations == 0
    for check in INVARIANT_CHECKS.values():
        check(store)                       # and once more, explicitly


@pytest.mark.parametrize("policy", ["adapt", "dac", "warcip"])
def test_healthy_store_passes_under_other_policies(policy):
    auditor = InvariantAuditor(every_blocks=512)
    replayed_store(policy=policy, auditor=auditor)
    assert auditor.violations == 0


def test_mapping_corruption_is_caught_and_named():
    store = replayed_store()
    lba = first_mapped_lba(store)
    # Point the LBA at slot 0 of a free segment: nothing valid lives there.
    free_seg = int(np.flatnonzero(store.pool.state == SEG_FREE)[-1])
    store.mapping[lba] = free_seg * store.pool.segment_blocks
    auditor = InvariantAuditor()
    with pytest.raises(InvariantViolation) as exc:
        auditor.audit(store)
    assert exc.value.invariant == "mapping-bijection"
    assert "mapping-bijection" in str(exc.value)
    assert auditor.violations == 1


def test_valid_count_skew_is_caught_and_named():
    store = replayed_store()
    seg = int(store.mapping[first_mapped_lba(store)]) \
        // store.pool.segment_blocks
    store.pool.valid_count[seg] += 1
    auditor = InvariantAuditor(checks=["segment-valid-counts"])
    with pytest.raises(InvariantViolation) as exc:
        auditor.audit(store)
    assert exc.value.invariant == "segment-valid-counts"
    assert f"segment {seg}" in exc.value.detail


def test_traffic_skew_is_caught_and_named():
    store = replayed_store()
    store.stats.user_blocks_requested += 7
    auditor = InvariantAuditor(checks=["traffic-conservation"])
    with pytest.raises(InvariantViolation) as exc:
        auditor.audit(store)
    assert exc.value.invariant == "traffic-conservation"


def test_raid_skew_is_caught_and_named():
    store = replayed_store()
    store.stats.raid.parity_chunks += store.stats.raid.data_chunks
    auditor = InvariantAuditor(checks=["raid-parity-accounting"])
    with pytest.raises(InvariantViolation) as exc:
        auditor.audit(store)
    assert exc.value.invariant == "raid-parity-accounting"


def test_violation_emits_observability_event():
    recorder = ObsRecorder()
    store = replayed_store(recorder=recorder)
    store.mapping[first_mapped_lba(store)] = UNMAPPED  # orphan a valid slot
    auditor = InvariantAuditor()
    with pytest.raises(InvariantViolation):
        auditor.audit(store)
    events = list(recorder.tracer.iter_type(EV_AUDIT_VIOLATION))
    assert len(events) == 1
    assert events[0].fields["invariant"] == "mapping-bijection"
    assert recorder.registry.get("lss_audit_violations_total").value == 1


def test_cadence_counts_audits():
    auditor = InvariantAuditor(every_blocks=500)
    store = replayed_store(auditor=auditor)
    user = store.stats.user_blocks_requested
    # One audit per full cadence window, plus the finalize audit.
    assert auditor.audits_run == user // 500 + 1


def test_zero_cadence_only_audits_on_finalize():
    auditor = InvariantAuditor(every_blocks=0)
    replayed_store(auditor=auditor)
    assert auditor.audits_run == 1


def test_unknown_check_name_rejected():
    with pytest.raises(ValueError, match="no-such-check"):
        InvariantAuditor(checks=["no-such-check"])
