"""Event tracer: ring semantics, spill, JSONL round-trip."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.events import EV_GC_PASS, EV_USER_WRITE, EventTracer


def test_emit_and_counts():
    t = EventTracer(capacity=10)
    t.emit(EV_USER_WRITE, 100, lba=1)
    t.emit(EV_USER_WRITE, 200, lba=2)
    t.emit(EV_GC_PASS, 300, victim=7)
    assert len(t) == 3
    assert t.counts == {EV_USER_WRITE: 2, EV_GC_PASS: 1}
    assert [e.seq for e in t.events] == [0, 1, 2]
    assert list(t.iter_type(EV_GC_PASS))[0].fields["victim"] == 7


def test_ring_drops_oldest_without_spill():
    t = EventTracer(capacity=3)
    for i in range(5):
        t.emit(EV_USER_WRITE, i, lba=i)
    assert len(t) == 3
    assert t.dropped == 2
    assert [e.fields["lba"] for e in t.events] == [2, 3, 4]
    assert t.total_emitted == 5


def test_spill_keeps_everything(tmp_path):
    path = str(tmp_path / "events.jsonl")
    t = EventTracer(capacity=3, spill_path=path)
    for i in range(8):
        t.emit(EV_USER_WRITE, i, lba=i)
    t.spill()
    assert t.dropped == 0
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert [ev["lba"] for ev in lines] == list(range(8))
    assert [ev["seq"] for ev in lines] == list(range(8))


def test_first_spill_truncates_stale_file(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"stale":true}\n')
    t = EventTracer(capacity=4, spill_path=str(path))
    t.emit(EV_USER_WRITE, 1, lba=9)
    t.spill()
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert lines == [{"seq": 0, "t_us": 1, "type": EV_USER_WRITE, "lba": 9}]


def test_spill_requires_path():
    t = EventTracer(capacity=2)
    t.emit(EV_USER_WRITE, 1)
    with pytest.raises(ConfigError):
        t.spill()


def test_capacity_validation():
    with pytest.raises(ConfigError):
        EventTracer(capacity=0)
    with pytest.raises(ConfigError):
        EventTracer(sample_every=0)


def test_ratio_sampling_thins_storage_keeps_counts():
    t = EventTracer(capacity=100, sample_every=3)
    for i in range(10):
        t.emit(EV_USER_WRITE, i, lba=i)
    # Counts stay exact; stored records are the 1st, 4th, 7th, 10th.
    assert t.counts == {EV_USER_WRITE: 10}
    assert [e.fields["lba"] for e in t.events] == [0, 3, 6, 9]
    assert t.sampled_out == 6


def test_ratio_sampling_is_per_type():
    t = EventTracer(capacity=100, sample_every=2)
    for i in range(3):
        t.emit(EV_USER_WRITE, i, lba=i)
        t.emit(EV_GC_PASS, i, victim=i)
    # Each type keeps its own 1st and 3rd occurrence.
    kept = [(e.type, e.time_us) for e in t.events]
    assert kept == [(EV_USER_WRITE, 0), (EV_GC_PASS, 0),
                    (EV_USER_WRITE, 2), (EV_GC_PASS, 2)]
