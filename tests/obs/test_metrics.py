"""Metric primitives and registry semantics."""

import pytest

from repro.common.errors import ConfigError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments():
    c = Counter("x_total")
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_counter_rejects_decrease():
    c = Counter("x_total")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_sets():
    g = Gauge("g")
    g.set(3.5)
    g.set(1.0)
    assert g.value == 1.0


def test_histogram_le_semantics():
    h = Histogram("h", buckets=[1, 4, 16])
    for v in (0, 1, 2, 4, 5, 100):
        h.observe(v)
    # counts per bucket: <=1 -> {0,1}, <=4 -> {2,4}, <=16 -> {5}, +Inf -> {100}
    assert list(h.counts) == [2, 2, 1, 1]
    assert list(h.cumulative()) == [2, 4, 5, 6]
    assert h.count == 6
    assert h.sum == 112


def test_histogram_needs_buckets():
    with pytest.raises(ConfigError):
        Histogram("h", buckets=[])
    # All-infinite bucket lists fold to nothing finite.
    with pytest.raises(ConfigError):
        Histogram("h", buckets=[float("inf")])


def test_histogram_folds_nonfinite_edges():
    h = Histogram("h", buckets=[1, float("inf"), 4, float("nan")])
    assert list(h.edges) == [1.0, 4.0]
    h.observe(100)
    assert list(h.counts) == [0, 0, 1]  # overflow bucket catches it


def test_observe_bulk_equals_repeated_observe():
    a = Histogram("a", buckets=[1, 4, 16])
    b = Histogram("b", buckets=[1, 4, 16])
    for value, count in ((0, 3), (4, 2), (100, 5), (16, 1)):
        for _ in range(count):
            a.observe(value)
        b.observe_bulk(value, count)
    assert list(a.counts) == list(b.counts)
    assert a.sum == b.sum
    b.observe_bulk(7, 0)  # zero-count is a no-op
    assert a.count == b.count
    with pytest.raises(ValueError):
        b.observe_bulk(7, -1)


def test_observe_many_equals_repeated_observe():
    a = Histogram("a", buckets=[1, 4, 16])
    b = Histogram("b", buckets=[1, 4, 16])
    values = [0, 1, 2, 4, 5, 16, 17, 100, 1]
    for v in values:
        a.observe(v)
    b.observe_many(values)
    assert list(a.counts) == list(b.counts)
    assert a.sum == b.sum
    b.observe_many([])  # empty batch is a no-op
    assert a.count == b.count


def test_registry_get_or_create():
    reg = MetricsRegistry()
    a = reg.counter("c_total")
    b = reg.counter("c_total")
    assert a is b
    assert len(reg) == 1


def test_registry_kind_clash_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(ConfigError):
        reg.gauge("m")


def test_registry_snapshot_is_plain_data():
    import pickle

    reg = MetricsRegistry()
    reg.counter("c_total").inc(3)
    reg.gauge("g").set(0.5)
    reg.histogram("h", buckets=[1, 2]).observe(1.5)
    snap = reg.snapshot()
    assert snap["counters"] == {"c_total": 3}
    assert snap["gauges"] == {"g": 0.5}
    assert snap["histograms"]["h"]["count"] == 1
    pickle.loads(pickle.dumps(snap))  # must survive process boundaries
