"""Recorder wired through a real replay: the acceptance-criteria tests.

One sparse Zipfian replay under ADAPT exercises every instrumented path:
padding flushes, GC passes, shadow/lazy appends, threshold adaptation and
proactive demotion.
"""

import pickle

import pytest

from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.obs.events import (
    EV_CHUNK_FLUSH,
    EV_GC_PASS,
    EV_LAZY_APPEND,
    EV_PADDING,
    EV_SHADOW_APPEND,
    EV_THRESHOLD_SWITCH,
)
from repro.obs.recorder import NULL_RECORDER, ObsRecorder, SERIES_COLUMNS
from repro.placement.registry import make_policy
from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a


def sparse_trace():
    return generate_ycsb_a(4096, 20_000, zipf_alpha=0.99,
                           density=DensityPreset.LIGHT, read_ratio=0.0,
                           seed=11)


def replay(recorder=None, scheme="adapt"):
    cfg = LSSConfig(logical_blocks=4096, segment_blocks=64)
    store = LogStructuredStore(cfg, make_policy(scheme, cfg),
                               recorder=recorder)
    stats = store.replay(sparse_trace())
    return store, stats


@pytest.fixture(scope="module")
def recorded():
    rec = ObsRecorder(sample_every_blocks=512)
    _, stats = replay(rec)
    return rec, stats


def test_required_events_present(recorded):
    rec, _ = recorded
    counts = rec.tracer.counts
    for ev in (EV_CHUNK_FLUSH, EV_GC_PASS, EV_PADDING):
        assert counts.get(ev, 0) > 0, f"missing {ev} events"


def test_adapt_mechanism_events_present(recorded):
    rec, stats = recorded
    counts = rec.tracer.counts
    if stats.shadow_blocks_written:
        assert counts.get(EV_SHADOW_APPEND, 0) > 0
        assert counts.get(EV_LAZY_APPEND, 0) > 0
    assert counts.get(EV_THRESHOLD_SWITCH, 0) > 0


def test_counters_match_store_stats(recorded):
    rec, stats = recorded
    snap = rec.snapshot()
    c = snap["counters"]
    assert c["lss_user_blocks_total"] == stats.user_blocks_requested
    assert c["lss_padding_blocks_total"] == stats.padding_blocks_written
    assert c["lss_gc_passes_total"] == stats.gc_passes
    assert c["lss_gc_blocks_migrated_total"] == stats.gc_blocks_migrated
    assert c["lss_shadow_append_blocks_total"] == \
        stats.shadow_blocks_written
    flushes = (c["lss_chunk_flushes_full_total"]
               + c["lss_chunk_flushes_deadline_total"]
               + c["lss_chunk_flushes_forced_total"])
    assert flushes == sum(g.chunk_flushes for g in stats.groups)


def test_final_series_row_is_exact(recorded):
    rec, stats = recorded
    final = dict(zip(SERIES_COLUMNS, rec.series[-1]))
    assert final["write_amplification"] == \
        pytest.approx(stats.write_amplification(), abs=1e-9)
    assert final["user_blocks"] == stats.user_blocks_requested
    assert final["flash_blocks"] == stats.flash_blocks_written
    assert final["padding_blocks"] == stats.padding_blocks_written


def test_series_is_monotone(recorded):
    rec, _ = recorded
    users = [row[1] for row in rec.series]
    assert users == sorted(users)
    assert len(rec.series) >= 2


def test_snapshot_pickles(recorded):
    rec, _ = recorded
    snap = pickle.loads(pickle.dumps(rec.snapshot()))
    assert snap["final"]["write_amplification"] > 1.0
    assert snap["events"][EV_CHUNK_FLUSH] > 0


def test_instrumentation_does_not_change_results():
    """The recorder observes; it must never perturb the simulation."""
    _, base = replay(recorder=None)
    _, observed = replay(recorder=ObsRecorder(sample_every_blocks=256))
    assert observed.write_amplification() == base.write_amplification()
    assert observed.flash_blocks_written == base.flash_blocks_written
    assert observed.gc_passes == base.gc_passes


def test_null_recorder_is_default_and_inert():
    store, _ = replay(recorder=None)
    assert store.obs is NULL_RECORDER
    assert store._obs_on is False
    assert NULL_RECORDER.snapshot() is None


def test_demotion_event_fires_when_demotions_happen(recorded):
    rec, _ = recorded
    snap = rec.snapshot()
    demotions = snap["counters"]["lss_demotions_total"]
    assert demotions == rec.tracer.counts.get("demotion", 0)
