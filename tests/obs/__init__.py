"""Observability subsystem tests."""
