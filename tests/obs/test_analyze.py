"""The ``analyze`` bottleneck explainer: loaders, ranking, CLI."""

from __future__ import annotations

import json

from repro.obs.analyze import (
    ANALYZE_SCHEMA,
    analyze,
    load_chrome_trace,
    load_timeline_tail,
    render_report,
    write_report_json,
)
from repro.obs.attribution import AttributionRecorder
from repro.obs.profile import PhaseProfiler


def _write_trace(tmp_path):
    p = PhaseProfiler()
    with p.span("chunk_build"):
        for _ in range(3):
            with p.span("gc_pass"):
                pass
    path = str(tmp_path / "trace.json")
    p.write_chrome_trace(path)
    return path


def test_load_chrome_trace_aggregates(tmp_path):
    trace = load_chrome_trace(_write_trace(tmp_path))
    assert trace["profile_events_dropped"] == 0
    assert trace["phases"]["gc_pass"]["count"] == 3
    assert trace["phases"]["chunk_build"]["count"] == 1
    assert trace["phases"]["chunk_build"]["total_us"] >= 0


def test_load_chrome_trace_legacy_dropped_key(tmp_path):
    path = str(tmp_path / "legacy.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": [],
                   "otherData": {"dropped_events": 7}}, f)
    assert load_chrome_trace(path)["profile_events_dropped"] == 7


def test_load_timeline_tail_csv_and_jsonl(tmp_path):
    csv_path = tmp_path / "t.csv"
    csv_path.write_text("user_blocks,write_amplification\n"
                        "100,1.5\n200,1.25\n")
    tail = load_timeline_tail(str(csv_path))
    assert tail == {"user_blocks": 200.0, "write_amplification": 1.25}
    jsonl_path = tmp_path / "t.jsonl"
    jsonl_path.write_text('{"user_blocks": 100}\n{"user_blocks": 300}\n')
    assert load_timeline_tail(str(jsonl_path)) == {"user_blocks": 300}
    empty = tmp_path / "e.csv"
    empty.write_text("user_blocks\n")
    assert load_timeline_tail(str(empty)) is None


def _attribution_snapshot():
    from repro.lss.store import LogStructuredStore
    from repro.placement.registry import make_policy
    from repro.validate.differential import (default_workloads,
                                             differential_config)
    cfg = differential_config()
    attr = AttributionRecorder()
    store = LogStructuredStore(cfg, make_policy("adapt", cfg),
                               attribution=attr)
    store.replay(default_workloads(num_requests=800)[0], engine="batched")
    return attr.snapshot()


def test_analyze_names_dominant_cause_and_wa_groups(tmp_path):
    snap = _attribution_snapshot()
    report = analyze(trace=load_chrome_trace(_write_trace(tmp_path)),
                     attribution=snap)
    assert report["schema"] == ANALYZE_SCHEMA
    cb = report["chunk_bounds"]
    assert cb["dominant_cause"] in {
        c["cause"] for c in cb["ranked"]}
    assert cb["ranked"] == sorted(cb["ranked"],
                                  key=lambda r: -r["chunks"])
    wa = report["wa_groups"]
    assert wa and abs(sum(r["overhead_share"] for r in wa) - 1.0) < 0.01
    assert report["gc_provenance"]["victims"] > 0
    assert 0.0 <= report["gc_provenance"]["mean_valid_ratio"] <= 1.0
    assert isinstance(report["recommendations"], list)


def test_analyze_sections_optional():
    report = analyze()
    assert set(report) == {"schema", "recommendations"}
    assert "nothing to analyze" in render_report(report)
    timeline_only = analyze(timeline={"write_amplification": 1.4})
    assert timeline_only["timeline_final"]["write_amplification"] == 1.4


def test_recommendations_fire_on_thresholds():
    attribution = {
        "schema": 1,
        "ledger": {"groups": {
            "hot": {"gid": 0, "kind": "user", "user_blocks": 100,
                    "gc_blocks": 900, "shadow_blocks": 0,
                    "padding_blocks": 0, "total_blocks": 1000},
            "cold": {"gid": 1, "kind": "user", "user_blocks": 100,
                     "gc_blocks": 10, "shadow_blocks": 0,
                     "padding_blocks": 0, "total_blocks": 110}},
            "totals": {}},
        "gc_provenance": {"groups": {}, "totals": {
            "victims": 10, "valid_blocks": 90, "free_blocks": 10,
            "age_seq_sum": 1000, "migrated_user_origin": 40,
            "migrated_gc_origin": 50}},
        "chunk_bounds": {"causes": {
            "gc_capacity": {"chunks": 80, "requests": 160, "blocks": 320},
            "trace_end": {"chunks": 1, "requests": 9, "blocks": 9}},
            "chunks": 81, "chunk_requests_hist": {},
            "chunk_blocks_hist": {}},
    }
    report = analyze(
        trace={"phases": {"gc": {"count": 1, "total_us": 5.0}},
               "profile_events_dropped": 12},
        attribution=attribution)
    recs = "\n".join(report["recommendations"])
    assert "gc_capacity" in recs            # dominant-cause hint
    assert "already been migrated" in recs  # remigration > 0.3
    assert "valid" in recs                  # valid ratio > 0.5
    assert "WA overhead blocks" in recs     # top group share >= 0.5
    assert "profiler spans were dropped" in recs
    text = render_report(report)
    assert "dominant cause: gc_capacity" in text
    assert "WARNING: 12" in text


def test_write_report_json(tmp_path):
    report = analyze(attribution=_attribution_snapshot())
    path = str(tmp_path / "out" / "report.json")
    assert write_report_json(report, path) == path
    with open(path, encoding="utf-8") as f:
        assert json.load(f) == report


def test_cli_analyze_end_to_end(tmp_path, capsys):
    from repro.cli import main
    from repro.obs.attribution import write_attribution_json
    trace_path = _write_trace(tmp_path)
    attr_path = str(tmp_path / "a.attribution.json")
    write_attribution_json(_attribution_snapshot(), attr_path)
    out_path = str(tmp_path / "report.json")
    rc = main(["analyze", "--trace", trace_path,
               "--attribution", attr_path, "--out", out_path])
    assert rc == 0
    text = capsys.readouterr().out
    assert "dominant cause:" in text
    assert "WA ledger" in text
    with open(out_path, encoding="utf-8") as f:
        report = json.load(f)
    assert report["chunk_bounds"]["dominant_cause"]


def test_cli_analyze_requires_an_artifact(tmp_path, capsys):
    from repro.cli import main
    assert main(["analyze"]) == 1
    # A missing file is a loud failure, not a silent empty report.
    assert main(["analyze", "--trace",
                 str(tmp_path / "missing.json")]) == 1
