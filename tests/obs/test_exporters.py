"""Exporter formats: JSONL, CSV time-series, Prometheus text."""

import csv
import json
import re

import pytest

from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.obs.events import EventTracer
from repro.obs.exporters import (
    prometheus_text,
    write_events_jsonl,
    write_prometheus,
    write_timeseries_csv,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import SERIES_COLUMNS, ObsRecorder
from repro.placement.registry import make_policy
from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a

#: One Prometheus text-format sample line:
#: ``name{labels} value`` with optional labels.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="
    r'"[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
    r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$")


@pytest.fixture(scope="module")
def recorder():
    cfg = LSSConfig(logical_blocks=4096, segment_blocks=64)
    rec = ObsRecorder(sample_every_blocks=512)
    store = LogStructuredStore(cfg, make_policy("adapt", cfg), recorder=rec)
    trace = generate_ycsb_a(4096, 12_000, density=DensityPreset.LIGHT,
                            read_ratio=0.0, seed=3)
    store.replay(trace)
    return rec


def test_events_jsonl_roundtrip(tmp_path, recorder):
    path = str(tmp_path / "events.jsonl")
    n = write_events_jsonl(recorder.tracer, path)
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert len(lines) == n == len(recorder.tracer)
    types = {ev["type"] for ev in lines}
    assert {"chunk_flush", "gc_pass", "padding"} <= types
    for ev in lines:
        assert {"seq", "t_us", "type"} <= set(ev)


def test_events_jsonl_spill_path_completes_file(tmp_path):
    path = str(tmp_path / "spill.jsonl")
    tracer = EventTracer(capacity=4, spill_path=path)
    for i in range(10):
        tracer.emit("user_write", i, lba=i)
    write_events_jsonl(tracer, path)
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert [ev["lba"] for ev in lines] == list(range(10))


def test_timeseries_csv(tmp_path, recorder):
    path = str(tmp_path / "series.csv")
    n = write_timeseries_csv(recorder, path)
    with open(path, encoding="utf-8", newline="") as f:
        rows = list(csv.reader(f))
    assert tuple(rows[0]) == SERIES_COLUMNS
    assert len(rows) == n + 1
    final = dict(zip(SERIES_COLUMNS, rows[-1]))
    # The CSV is the canonical artifact: its final WA must equal the
    # in-memory stats to float precision even after text round-trip.
    stats = recorder._store.stats
    assert float(final["write_amplification"]) == \
        pytest.approx(stats.write_amplification(), abs=1e-9)


def test_prometheus_text_parses(recorder):
    text = prometheus_text(recorder.registry)
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"


def test_prometheus_histogram_shape():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=[1, 2], help="x")
    h.observe(0.5)
    h.observe(1.5)
    h.observe(9.0)
    text = prometheus_text(reg)
    assert 'lat_bucket{le="1"} 1' in text
    assert 'lat_bucket{le="2"} 2' in text
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert "lat_count 3" in text
    assert "lat_sum 11" in text


def test_write_prometheus(tmp_path, recorder):
    path = str(tmp_path / "snap.prom")
    write_prometheus(recorder.registry, path)
    content = open(path, encoding="utf-8").read()
    assert "lss_user_blocks_total" in content
    assert "# TYPE lss_chunk_fill_blocks histogram" in content


def _golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("demo_writes_total",
                "blocks written\nsince start \\ overall").inc(42)
    reg.gauge("demo_write_amplification", "current WA").set(1.5)
    h = reg.histogram("demo_fill_blocks", buckets=[1, 2, float("inf")],
                      help="chunk fill levels")
    h.observe(0.5)
    h.observe(2.0)
    h.observe(99.0)
    return reg


def test_prometheus_golden_file():
    """Byte-for-byte exposition format: cumulative buckets ending in a
    single ``+Inf`` (the caller's explicit inf edge folds into it, never
    duplicating the label), ``_sum``/``_count`` after the buckets, and
    HELP text with backslash and newline escaped."""
    import pathlib
    golden = pathlib.Path(__file__).parent / "golden" / "registry.prom"
    assert prometheus_text(_golden_registry()) == golden.read_text()


def test_prometheus_help_escaping():
    text = prometheus_text(_golden_registry())
    assert ("# HELP demo_writes_total "
            "blocks written\\nsince start \\\\ overall") in text
    # Exactly one +Inf bucket despite the explicit inf edge.
    assert text.count('le="+Inf"') == 1


def test_prometheus_histogram_sum_count_positions():
    """_sum and _count directly follow the buckets, per the format."""
    lines = prometheus_text(_golden_registry()).splitlines()
    i = lines.index('demo_fill_blocks_bucket{le="+Inf"} 3')
    assert lines[i + 1] == "demo_fill_blocks_sum 101.5"
    assert lines[i + 2] == "demo_fill_blocks_count 3"


def test_writers_create_parent_dirs_atomically(tmp_path):
    """Exporters land in not-yet-existing directories via tmp+rename."""
    reg = _golden_registry()
    path = str(tmp_path / "a" / "b" / "snap.prom")
    write_prometheus(reg, path)
    assert "demo_writes_total 42" in open(path, encoding="utf-8").read()
    # Only the final artifact remains — no .tmp litter.
    assert [p.name for p in (tmp_path / "a" / "b").iterdir()] == \
        ["snap.prom"]
