"""Attribution recorder: hooks, snapshot shape, publish, merge, export."""

from __future__ import annotations

import json

import pytest

from repro.lss.store import LogStructuredStore
from repro.obs.attribution import (
    ATTRIBUTION_SCHEMA,
    CAUSE_MAX_BLOCKS,
    CAUSE_SCALAR_FALLBACK,
    CHUNK_CAUSES,
    NULL_ATTRIBUTION,
    AttributionRecorder,
    NullAttribution,
    invariant_view,
    merge_attribution_snapshots,
    width_bucket,
    write_attribution_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.placement.registry import make_policy
from repro.validate.differential import (default_workloads,
                                         differential_config)


def _replayed_recorder(policy_name="adapt", engine="batched"):
    cfg = differential_config()
    attr = AttributionRecorder()
    store = LogStructuredStore(cfg, make_policy(policy_name, cfg),
                               attribution=attr)
    trace = default_workloads(num_requests=800)[0]
    store.replay(trace, engine=engine)
    return store, attr


def test_width_bucket_power_of_two_ceiling():
    assert width_bucket(0) == 0
    assert width_bucket(-3) == 0
    assert width_bucket(1) == 1
    assert width_bucket(2) == 2
    assert width_bucket(3) == 4
    assert width_bucket(17) == 32
    assert width_bucket(64) == 64


def test_null_attribution_is_inert():
    assert not NULL_ATTRIBUTION.enabled
    NULL_ATTRIBUTION.on_chunk(CAUSE_MAX_BLOCKS, 3, 12)
    NULL_ATTRIBUTION.on_gc_victim(0, 10, 4, 16, 3, 1)
    NULL_ATTRIBUTION.publish(MetricsRegistry())
    assert NULL_ATTRIBUTION.snapshot() is None


def test_store_defaults_to_null_attribution():
    cfg = differential_config()
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg))
    assert isinstance(store.attribution, NullAttribution)
    assert not store.attribution.enabled
    assert store.pool.slot_origin is None  # provenance plane never built


def test_chunk_hooks_aggregate():
    attr = AttributionRecorder()
    attr.on_chunk(CAUSE_MAX_BLOCKS, 3, 12)
    attr.on_chunk(CAUSE_MAX_BLOCKS, 5, 20)
    attr.on_scalar_burst(2, 2)
    assert attr.chunk_causes[CAUSE_MAX_BLOCKS] == [2, 8, 32]
    assert attr.chunk_causes[CAUSE_SCALAR_FALLBACK] == [1, 2, 2]
    assert attr.chunk_requests_hist == {4: 1, 8: 1, 2: 1}
    snap = attr.snapshot()
    assert snap["chunk_bounds"]["chunks"] == 3
    assert snap["chunk_bounds"]["causes"][CAUSE_MAX_BLOCKS] == {
        "chunks": 2, "requests": 8, "blocks": 32}


def test_gc_victim_hook_aggregates_and_running_totals():
    attr = AttributionRecorder()
    attr.on_gc_victim(1, 100, 4, 16, 3, 1)
    attr.on_gc_victim(1, 200, 8, 16, 8, 0)
    attr.on_gc_victim(0, 50, 0, 16, 0, 0)
    assert attr.gc_groups[1] == [2, 12, 20, 300, 11, 1]
    assert attr.total_victims == 3
    assert attr.total_migrated_user_origin == 11
    assert attr.total_migrated_gc_origin == 1
    snap = attr.snapshot()
    # No bound store: groups fall back to gid names, totals still sum.
    assert snap["gc_provenance"]["groups"]["gid1"]["victims"] == 2
    assert snap["gc_provenance"]["totals"]["victims"] == 3
    assert snap["gc_provenance"]["totals"]["age_seq_sum"] == 350


def test_snapshot_ledger_conserves_store_totals():
    store, attr = _replayed_recorder()
    snap = attr.snapshot()
    totals = snap["ledger"]["totals"]
    stats = store.stats
    assert totals["user_blocks"] == stats.user_blocks_requested
    assert totals["user_blocks_requested"] == stats.user_blocks_requested
    assert totals["gc_blocks"] == stats.gc_blocks_written
    assert totals["shadow_blocks"] == stats.shadow_blocks_written
    assert totals["padding_blocks"] == stats.padding_blocks_written
    assert totals["total_blocks"] == stats.flash_blocks_written
    # Per-group entries sum to the totals.
    groups = snap["ledger"]["groups"].values()
    for key in ("user_blocks", "gc_blocks", "padding_blocks"):
        assert sum(g[key] for g in groups) == totals[key]
    assert snap["schema"] == ATTRIBUTION_SCHEMA
    # Every observed cause is a known one.
    assert set(snap["chunk_bounds"]["causes"]) <= set(CHUNK_CAUSES)


def test_publish_is_idempotent():
    store, attr = _replayed_recorder()
    registry = MetricsRegistry()
    attr.publish(registry)
    first = registry.snapshot()
    attr.publish(registry)
    assert registry.snapshot() == first
    counters = first["counters"]
    assert any(name.startswith("attr_chunks_") for name in counters)
    assert any(name.startswith("attr_group_user_blocks_total_")
               for name in counters)


def test_finalize_publishes_into_obs_registry():
    from repro.obs.recorder import ObsRecorder
    cfg = differential_config()
    attr = AttributionRecorder()
    rec = ObsRecorder()
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg),
                               recorder=rec, attribution=attr)
    trace = default_workloads(num_requests=800)[0]
    store.replay(trace, engine="batched")
    counters = rec.registry.snapshot()["counters"]
    assert any(name.startswith("attr_") for name in counters)


def test_invariant_view_drops_engine_section():
    store, attr = _replayed_recorder()
    snap = attr.snapshot()
    view = invariant_view(snap)
    assert "chunk_bounds" not in view
    assert set(view) == {"schema", "ledger", "gc_provenance"}


def test_merge_none_and_sums():
    assert merge_attribution_snapshots([]) is None
    assert merge_attribution_snapshots([None, None]) is None
    _, a = _replayed_recorder("sepgc")
    _, b = _replayed_recorder("adapt")
    sa, sb = a.snapshot(), b.snapshot()
    merged = merge_attribution_snapshots([sa, None, sb])
    assert merged["volumes"] == 2
    assert merged["ledger"]["totals"]["user_blocks"] == \
        sa["ledger"]["totals"]["user_blocks"] + \
        sb["ledger"]["totals"]["user_blocks"]
    assert merged["chunk_bounds"]["chunks"] == \
        sa["chunk_bounds"]["chunks"] + sb["chunk_bounds"]["chunks"]
    # Merge is order-independent byte-for-byte.
    flipped = merge_attribution_snapshots([sb, sa])
    assert json.dumps(merged, sort_keys=True) == \
        json.dumps(flipped, sort_keys=True)


def test_write_attribution_json_atomic_and_stable(tmp_path):
    _, attr = _replayed_recorder("sepgc")
    snap = attr.snapshot()
    path = str(tmp_path / "deep" / "a.json")
    assert write_attribution_json(snap, path) == path
    with open(path, encoding="utf-8") as f:
        assert json.load(f) == snap
    again = str(tmp_path / "again.json")
    write_attribution_json(snap, again)
    assert open(path).read().splitlines()[1:] == \
        open(again).read().splitlines()[1:]
    assert not [n for n in (tmp_path).iterdir() if "tmp" in n.name]


def test_unknown_gc_cause_still_counts():
    attr = AttributionRecorder()
    with pytest.raises(TypeError):
        attr.on_chunk()  # hooks take explicit positional values
