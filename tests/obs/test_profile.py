"""Phase profiler: spans, aggregates, Chrome trace, global install."""

import json

import pytest

from repro.obs.profile import (NULL_PROFILER, NullProfiler, PhaseProfiler,
                               current, set_current)


@pytest.fixture(autouse=True)
def reset_global():
    yield
    set_current(None)


def test_span_records_count_and_duration():
    p = PhaseProfiler()
    for _ in range(3):
        with p.span("gc"):
            pass
    with p.span("apply"):
        pass
    assert p.totals["gc"][0] == 3
    assert p.totals["apply"][0] == 1
    assert all(total >= 0 for _, total in p.totals.values())
    assert len(p.events) == 4
    assert p.elapsed_ns() > 0


def test_spans_nest():
    p = PhaseProfiler()
    with p.span("outer"):
        with p.span("inner"):
            pass
    # Completion order: inner closes first.
    assert [e[0] for e in p.events] == ["inner", "outer"]
    # The outer span covers the inner one.
    assert p.totals["outer"][1] >= p.totals["inner"][1]


def test_span_records_on_exception():
    p = PhaseProfiler()
    with pytest.raises(RuntimeError):
        with p.span("boom"):
            raise RuntimeError("x")
    assert p.totals["boom"][0] == 1


def test_max_events_drops_raw_but_keeps_aggregates():
    p = PhaseProfiler(max_events=2)
    for _ in range(5):
        with p.span("x"):
            pass
    assert len(p.events) == 2
    assert p.dropped_events == 3
    assert p.totals["x"][0] == 5
    assert "3 raw spans dropped" in p.top_table()
    assert "profile_events_dropped=3" in p.top_table()
    with pytest.raises(ValueError):
        PhaseProfiler(max_events=-1)


def test_chrome_trace_structure():
    p = PhaseProfiler()
    with p.span("chunk_build", chunk=7):
        pass
    trace = p.chrome_trace()
    meta, ev = trace["traceEvents"]
    assert meta["ph"] == "M" and meta["name"] == "process_name"
    assert ev["ph"] == "X" and ev["name"] == "chunk_build"
    assert ev["dur"] >= 0 and ev["ts"] >= 0  # microseconds
    assert ev["args"] == {"chunk": 7}
    assert trace["otherData"] == {"dropped_events": 0,
                                  "profile_events_dropped": 0,
                                  "max_events": 200_000}


def test_write_chrome_trace_creates_parents(tmp_path):
    p = PhaseProfiler()
    with p.span("s"):
        pass
    path = str(tmp_path / "deep" / "nested" / "trace.json")
    assert p.write_chrome_trace(path) == path
    loaded = json.load(open(path, encoding="utf-8"))
    assert any(e.get("name") == "s" for e in loaded["traceEvents"])
    # No tmp files left behind by the atomic write.
    assert [f.name for f in (tmp_path / "deep" / "nested").iterdir()] == \
        ["trace.json"]


def test_top_table_contents():
    p = PhaseProfiler()
    with p.span("alpha"):
        pass
    table = p.top_table()
    assert "alpha" in table and "% wall" in table
    assert "(no spans recorded)" in PhaseProfiler().top_table()


def test_null_profiler_is_inert():
    span = NULL_PROFILER.span("anything", key=1)
    with span:
        pass
    assert not NullProfiler.enabled
    # The same shared span object every time: zero allocation per span.
    assert NULL_PROFILER.span("other") is span


def test_global_install_and_reset():
    assert current() is NULL_PROFILER
    p = PhaseProfiler()
    assert set_current(p) is p
    assert current() is p
    assert set_current(None) is NULL_PROFILER
    assert current() is NULL_PROFILER


def test_store_captures_active_profiler():
    from repro.lss.config import LSSConfig
    from repro.lss.store import LogStructuredStore
    from repro.placement.registry import make_policy
    from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a

    p = set_current(PhaseProfiler())
    cfg = LSSConfig(logical_blocks=4096, segment_blocks=64)
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg))
    set_current(None)
    assert store.profiler is p
    trace = generate_ycsb_a(4096, 8000, density=DensityPreset.LIGHT,
                            read_ratio=0.0, seed=1)
    store.replay(trace)
    # Replay phases landed in the captured profiler, not the global null.
    assert {"expand", "finalize"} <= set(p.totals)
    assert "gc" in p.totals  # update-heavy enough to trigger cleaning
