"""Replay timelines: sampling cadence, final-row exactness, exports."""

import csv
import json
import math

import numpy as np
import pytest

from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.obs.exporters import write_timeline_csv, write_timeline_jsonl
from repro.obs.recorder import ObsRecorder
from repro.obs.timeline import BASE_COLUMNS, ReplayTimeline
from repro.placement.registry import make_policy
from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a


def _replay(policy="adapt", every=512, engine="auto",
            capture_occupancy=True):
    cfg = LSSConfig(logical_blocks=4096, segment_blocks=64)
    timeline = ReplayTimeline(every_blocks=every,
                              capture_occupancy=capture_occupancy)
    rec = ObsRecorder(timeline=timeline)
    store = LogStructuredStore(cfg, make_policy(policy, cfg), recorder=rec)
    trace = generate_ycsb_a(4096, 12_000, density=DensityPreset.LIGHT,
                            read_ratio=0.0, seed=3)
    store.replay(trace, engine=engine)
    return store, timeline


def test_rows_monotone_and_shaped():
    store, tl = _replay()
    assert len(tl) > 2
    assert tl.rows.shape == (len(tl), len(tl.columns))
    arrays = tl.to_arrays()
    blocks = arrays["user_blocks"]
    assert (np.diff(blocks) > 0).all()
    assert (np.diff(arrays["time_us"]) >= 0).all()


def test_final_row_matches_stats_exactly():
    store, tl = _replay()
    final = dict(zip(tl.columns, tl.rows[-1]))
    stats = store.stats
    assert final["user_blocks"] == stats.user_blocks_requested
    assert final["write_amplification"] == stats.write_amplification()
    assert final["padding_ratio"] == stats.padding_traffic_ratio()
    assert final["gc_ratio"] == stats.gc_traffic_ratio()
    assert final["free_segments"] == store.pool.free_segments


def test_occupancy_columns_match_store():
    store, tl = _replay()
    occ_cols = [c for c in tl.columns if c.startswith("occ_")]
    assert len(occ_cols) == len(store.groups)
    final = dict(zip(tl.columns, tl.rows[-1]))
    for g, occ in zip(store.groups, store.group_occupancy()):
        assert final[f"occ_{g.spec.name}"] == occ


def test_threshold_column():
    store, tl = _replay(policy="adapt")
    # ADAPT has a live threshold: every sample must record a finite one.
    assert np.isfinite(tl.to_arrays()["threshold"]).all()
    _, tl2 = _replay(policy="sepgc")
    # sepgc has no threshold attribute: NaN throughout.
    assert np.isnan(tl2.to_arrays()["threshold"]).all()


def test_capture_occupancy_off():
    _, tl = _replay(capture_occupancy=False)
    assert tl.columns == BASE_COLUMNS


def test_batched_final_row_equals_scalar_final_row():
    s_store, s_tl = _replay(engine="scalar")
    b_store, b_tl = _replay(engine="batched")
    # Intermediate cadence may differ (chunk-granular sampling batched);
    # the finalize row is exact under both engines.
    assert (s_tl.rows[-1] == b_tl.rows[-1]).all()


def test_every_blocks_validation():
    with pytest.raises(ValueError):
        ReplayTimeline(every_blocks=0)


def test_csv_export_roundtrip(tmp_path):
    _, tl = _replay(policy="sepgc")
    path = str(tmp_path / "sub" / "timeline.csv")
    n = write_timeline_csv(tl, path)
    with open(path, encoding="utf-8", newline="") as f:
        rows = list(csv.reader(f))
    assert tuple(rows[0]) == tl.columns
    assert len(rows) == n + 1 == len(tl) + 1
    # NaN thresholds render as empty fields, numbers round-trip.
    first = dict(zip(tl.columns, rows[1]))
    assert first["threshold"] == ""
    assert float(first["user_blocks"]) == tl.rows[0][0]


def test_jsonl_export_roundtrip(tmp_path):
    _, tl = _replay(policy="sepgc")
    path = str(tmp_path / "timeline.jsonl")
    n = write_timeline_jsonl(tl, path)
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert len(lines) == n == len(tl)
    assert lines[0]["threshold"] is None  # NaN -> null
    assert lines[-1]["user_blocks"] == int(tl.rows[-1][0])
    assert not math.isnan(lines[-1]["write_amplification"])


def test_attribution_columns_track_recorder_totals():
    from repro.obs.attribution import AttributionRecorder
    from repro.obs.timeline import ATTR_COLUMNS
    cfg = LSSConfig(logical_blocks=4096, segment_blocks=64)
    timeline = ReplayTimeline(every_blocks=512)
    rec = ObsRecorder(timeline=timeline)
    attr = AttributionRecorder()
    store = LogStructuredStore(cfg, make_policy("adapt", cfg),
                               recorder=rec, attribution=attr)
    trace = generate_ycsb_a(4096, 12_000, density=DensityPreset.LIGHT,
                            read_ratio=0.0, seed=3)
    store.replay(trace)
    assert set(ATTR_COLUMNS) <= set(timeline.columns)
    arrays = timeline.to_arrays()
    victims = arrays["attr_gc_victims"]
    assert (np.diff(victims) >= 0).all()  # cumulative
    final = dict(zip(timeline.columns, timeline.rows[-1]))
    assert final["attr_gc_victims"] == attr.total_victims
    assert final["attr_migrated_user_origin"] == \
        attr.total_migrated_user_origin
    assert final["attr_migrated_gc_origin"] == \
        attr.total_migrated_gc_origin


def test_no_attribution_columns_without_recorder():
    from repro.obs.timeline import ATTR_COLUMNS
    _, tl = _replay()
    assert not set(ATTR_COLUMNS) & set(tl.columns)


def test_recorder_snapshot_reports_timeline_rows():
    _, tl = _replay()
    # snapshot() is produced via the recorder bound in _replay; rebuild
    # one here to read it.
    cfg = LSSConfig(logical_blocks=4096, segment_blocks=64)
    timeline = ReplayTimeline(every_blocks=256)
    rec = ObsRecorder(timeline=timeline)
    store = LogStructuredStore(cfg, make_policy("sepgc", cfg), recorder=rec)
    trace = generate_ycsb_a(4096, 8000, density=DensityPreset.LIGHT,
                            read_ratio=0.0, seed=1)
    store.replay(trace)
    assert rec.snapshot()["timeline_rows"] == len(timeline)
