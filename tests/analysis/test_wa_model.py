"""Analytic WA models and simulator cross-validation."""

import math

import numpy as np
import pytest

from repro.analysis.wa_model import (
    lfs_wa_uniform,
    steady_state_utilization,
    wa_bounds_uniform,
)
from repro.common.errors import ConfigError
from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.placement.registry import make_policy

from tests.conftest import make_write_trace


def test_fixed_point_satisfies_equation():
    for rho in (0.5, 0.7, 0.8, 0.9):
        u = steady_state_utilization(rho)
        assert abs(u - math.exp((u - 1) / rho)) < 1e-9
        assert 0 < u < 1


def test_utilization_monotone_in_rho():
    us = [steady_state_utilization(r) for r in (0.5, 0.6, 0.7, 0.8, 0.9)]
    assert all(a < b for a, b in zip(us, us[1:]))


def test_lfs_wa_grows_with_utilization():
    was = [lfs_wa_uniform(r) for r in (0.5, 0.7, 0.9)]
    assert all(a < b for a, b in zip(was, was[1:]))
    assert was[0] > 1.0


def test_known_reference_value():
    # rho = 0.8 gives u* ~ 0.629, WA ~ 2.69 (standard tabulated value).
    assert steady_state_utilization(0.8) == pytest.approx(0.629, abs=0.01)
    assert lfs_wa_uniform(0.8) == pytest.approx(2.69, abs=0.05)


def test_bounds_bracket():
    lo, hi = wa_bounds_uniform(0.8)
    assert lo == 1.0 and hi > 2.0


def test_model_validation():
    for bad in (0.0, 1.0, -0.5):
        with pytest.raises(ConfigError):
            steady_state_utilization(bad)
        with pytest.raises(ConfigError):
            lfs_wa_uniform(bad)


def run_uniform(cfg, scheme="sepgc", writes=120_000, seed=11):
    store = LogStructuredStore(cfg, make_policy(scheme, cfg))
    rng = np.random.default_rng(seed)
    lbas = rng.integers(0, cfg.logical_blocks, size=writes)
    store.replay(make_write_trace(lbas, gap_us=5))
    return store.stats.write_amplification()


def test_simulator_within_analytic_bracket():
    """Dense uniform random writes: greedy GC must beat the FIFO bound and
    of course exceed 1 — the standard simulator cross-validation."""
    cfg = LSSConfig(logical_blocks=8192, segment_blocks=64,
                    over_provisioning=0.25)
    rho = cfg.logical_segments / cfg.physical_segments
    lo, hi = wa_bounds_uniform(rho)
    measured = run_uniform(cfg)
    assert lo < measured < hi * 1.05, (measured, lo, hi)
    # Greedy should realise a solid fraction of the bound, not sit at 1
    # (which would indicate GC never actually paid migration cost).
    assert measured > 1.0 + 0.3 * (hi - 1.0), (measured, hi)


def test_simulator_tracks_bound_across_op_levels():
    """More over-provisioning must lower both the model and the measured
    WA, and the measured/model ratio must stay in a stable band (the
    simulator follows the analytic shape, not just its level)."""
    measured_was, ratios = [], []
    for op in (0.15, 0.25, 0.45):
        cfg = LSSConfig(logical_blocks=8192, segment_blocks=64,
                        over_provisioning=op)
        rho = cfg.logical_segments / cfg.physical_segments
        measured = run_uniform(cfg, writes=80_000)
        measured_was.append(measured)
        ratios.append(measured / lfs_wa_uniform(rho))
    assert all(0.3 < r <= 1.1 for r in ratios), ratios
    assert measured_was[0] > measured_was[1] > measured_was[2], measured_was