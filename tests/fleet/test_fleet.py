"""Fleet orchestration: sharding identity, resume identity, reporting."""

from __future__ import annotations

import json
import os

import pytest

from repro.fleet import (
    FleetSpec,
    aggregate_fleet,
    fleet_summary,
    render_fleet,
    run_fleet,
    run_shard,
)

TINY = FleetSpec(num_volumes=6, volume_blocks=2048, volume_requests=1200,
                 chunk_requests=256)


class TestFleetSpec:
    def test_tenant_ids_stable(self):
        assert TINY.tenant_id(0) == "ali-0000"
        assert TINY.tenant_ids()[-1] == "ali-0005"
        with pytest.raises(IndexError):
            TINY.tenant_id(6)

    def test_shard_partition_is_exact(self):
        for shards in (1, 2, 3, 4, 7):
            combined = [t for s in range(shards)
                        for t in TINY.shard_tenants(s, shards)]
            assert sorted(combined) == TINY.tenant_ids()
            assert len(combined) == len(set(combined))

    def test_store_seed_order_independent(self):
        """The store seed depends only on (fleet seed, tenant name), so
        resizing the fleet never reseeds existing tenants."""
        bigger = FleetSpec(num_volumes=60, volume_blocks=2048,
                           volume_requests=1200, chunk_requests=256)
        assert TINY.store_seed("ali-0003") == bigger.store_seed("ali-0003")

    def test_fleet_key_tracks_content(self):
        same = FleetSpec(num_volumes=6, volume_blocks=2048,
                         volume_requests=1200, chunk_requests=256)
        other = FleetSpec(num_volumes=7, volume_blocks=2048,
                          volume_requests=1200, chunk_requests=256)
        assert TINY.fleet_key() == same.fleet_key()
        assert TINY.fleet_key() != other.fleet_key()

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(num_volumes=0)
        with pytest.raises(ValueError):
            FleetSpec(engine="turbo")
        with pytest.raises(ValueError):
            FleetSpec(chunk_requests=0)


def shard_volumes(spec, num_shards):
    vols = []
    for s in range(num_shards):
        r = run_shard(spec, s, num_shards)
        assert not r["interrupted"]
        vols.extend(r["completed"])
    return sorted(vols, key=lambda v: v["volume"])


@pytest.mark.slow
def test_sharded_replay_bit_identical_to_serial_64_volumes():
    """The acceptance bar: a 64-volume fleet replayed across shards is
    bit-identical — per-volume stats and all — to serial replay."""
    spec = FleetSpec(num_volumes=64, volume_blocks=2048,
                     volume_requests=500, chunk_requests=256)
    serial = run_fleet(spec, workers=1)
    assert serial.complete and len(serial.volumes) == 64
    assert shard_volumes(spec, 5) == serial.volumes


def test_sharded_replay_bit_identical_to_serial_small():
    serial = run_fleet(TINY, workers=1)
    assert serial.complete
    for shards in (2, 3):
        assert shard_volumes(TINY, shards) == serial.volumes


def test_metrics_snapshots_identical_across_sharding():
    spec = FleetSpec(num_volumes=4, volume_blocks=2048,
                     volume_requests=900, chunk_requests=256,
                     collect_metrics=True)
    serial = run_fleet(spec, workers=1)
    sharded = shard_volumes(spec, 2)
    assert serial.volumes == sharded
    assert all(v["metrics"] is not None for v in sharded)


def test_attribution_snapshots_identical_across_sharding():
    """Attribution rides the volume reports: serial and sharded runs
    carry identical snapshots, and the aggregate's merged sections are
    identical JSON (the determinism contract the summary depends on)."""
    spec = FleetSpec(num_volumes=4, volume_blocks=2048,
                     volume_requests=900, chunk_requests=256,
                     collect_metrics=True, collect_attribution=True)
    serial = run_fleet(spec, workers=1)
    sharded = shard_volumes(spec, 3)
    assert serial.volumes == sharded
    assert all(v["attribution"] is not None for v in sharded)
    agg_serial = aggregate_fleet(serial.volumes)
    agg_sharded = aggregate_fleet(sharded)
    assert json.dumps(agg_serial, sort_keys=True) == \
        json.dumps(agg_sharded, sort_keys=True)
    attribution = agg_serial["attribution"]
    assert attribution["volumes"] == 4
    ledger = attribution["ledger"]
    assert ledger["totals"]["user_blocks_requested"] == sum(
        v["stats"]["user_blocks_requested"] for v in serial.volumes)
    assert agg_serial["metrics_totals"]["volumes"] == 4
    assert agg_serial["metrics_totals"]["counters"][
        "lss_user_blocks_total"] == \
        ledger["totals"]["user_blocks_requested"]


def test_attribution_absent_without_opt_in():
    spec = FleetSpec(num_volumes=2, volume_blocks=2048,
                     volume_requests=600, chunk_requests=256)
    result = run_fleet(spec, workers=1)
    assert all(v["attribution"] is None for v in result.volumes)
    assert "attribution" not in aggregate_fleet(result.volumes)


def test_process_pool_matches_inline(tmp_path):
    pool = run_fleet(TINY, workers=2, checkpoint_every=2,
                     out_dir=str(tmp_path / "pool"))
    serial = run_fleet(TINY, workers=1)
    assert pool.complete
    assert pool.volumes == serial.volumes
    assert os.path.exists(pool.summary_path)


def test_graceful_interrupt_then_resume_byte_identical(tmp_path):
    out_a = str(tmp_path / "interrupted")
    part = run_fleet(TINY, workers=1, checkpoint_every=1, out_dir=out_a,
                     stop_after_chunks=9)
    assert not part.complete
    assert part.interrupted_shards == [0]
    assert part.summary is None
    resumed = run_fleet(TINY, workers=1, checkpoint_every=1,
                        out_dir=out_a, resume=True)
    assert resumed.complete
    out_b = str(tmp_path / "clean")
    clean = run_fleet(TINY, workers=1, checkpoint_every=1, out_dir=out_b)
    with open(resumed.summary_path, "rb") as f:
        a = f.read()
    with open(clean.summary_path, "rb") as f:
        b = f.read()
    assert a == b
    # Resume skipped already-replayed chunks.
    assert resumed.chunks_replayed < clean.chunks_replayed


def test_resume_with_wrong_worker_count_is_loud(tmp_path):
    from repro.common.errors import CheckpointError
    out = str(tmp_path / "geom")
    run_fleet(TINY, workers=1, checkpoint_every=1, out_dir=out,
              stop_after_chunks=3)
    with pytest.raises(CheckpointError, match="geometry"):
        run_fleet(TINY, workers=2, checkpoint_every=1, out_dir=out,
                  resume=True)


def test_checkpoint_requires_out_dir():
    with pytest.raises(ValueError, match="out_dir"):
        run_fleet(TINY, workers=1, checkpoint_every=2)
    with pytest.raises(ValueError, match="out_dir"):
        run_fleet(TINY, workers=1, resume=True)


def test_summary_shape_and_determinism(tmp_path):
    result = run_fleet(TINY, workers=1, out_dir=str(tmp_path))
    s = result.summary
    assert s["schema"] == 2
    assert s["fleet_key"] == TINY.fleet_key()
    assert [v["volume"] for v in s["volumes"]] == TINY.tenant_ids()
    agg = s["aggregate"]
    assert agg["volumes"] == 6
    wa = agg["percentiles"]["write_amplification"]
    assert wa["p50"] <= wa["p95"] <= wa["p99"] <= wa["max"]
    assert agg["overall"]["write_amplification"] > 1.0
    # On-disk JSON round-trips to the in-memory summary.
    with open(result.summary_path) as f:
        assert json.load(f) == s
    # The runinfo sidecar carries the wall-clock facts instead.
    with open(os.path.join(str(tmp_path), "fleet_runinfo.json")) as f:
        info = json.load(f)
    assert info["workers"] == 1
    assert info["volumes"] == 6
    assert "seconds" not in s["fleet"]


def test_aggregate_empty():
    assert aggregate_fleet([]) == {"volumes": 0}


def test_render_fleet_mentions_headline_numbers():
    result = run_fleet(FleetSpec(num_volumes=2, volume_blocks=2048,
                                 volume_requests=600, chunk_requests=256))
    text = render_fleet(fleet_summary(result.spec, 1, result.volumes))
    assert "WA" in text and "p99" in text and "GC passes" in text


def test_timeline_export(tmp_path):
    spec = FleetSpec(num_volumes=2, volume_blocks=2048,
                     volume_requests=900, chunk_requests=256,
                     timeline_every=512)
    result = run_fleet(spec, workers=1, out_dir=str(tmp_path))
    assert result.complete
    tdir = os.path.join(str(tmp_path), "timelines")
    names = sorted(os.listdir(tdir))
    assert names == ["ali-0000.csv", "ali-0001.csv"]


@pytest.mark.slow
def test_hard_kill_then_resume_byte_identical(tmp_path, monkeypatch):
    """A worker process dying mid-chunk (os._exit via the kill hook)
    breaks the pool; resuming completes to the same summary bytes."""
    from repro.fleet import KILL_ENV
    out_a = str(tmp_path / "killed")
    monkeypatch.setenv(KILL_ENV, "4")
    killed = run_fleet(TINY, workers=2, checkpoint_every=1, out_dir=out_a)
    monkeypatch.delenv(KILL_ENV)
    assert not killed.complete
    resumed = run_fleet(TINY, workers=2, checkpoint_every=1,
                        out_dir=out_a, resume=True)
    assert resumed.complete
    clean = run_fleet(TINY, workers=2, checkpoint_every=1,
                      out_dir=str(tmp_path / "clean"))
    with open(resumed.summary_path, "rb") as f:
        a = f.read()
    with open(clean.summary_path, "rb") as f:
        b = f.read()
    assert a == b
