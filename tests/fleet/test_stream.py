"""Streaming trace ingestion: chunked generation, files, memory bounds."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.trace.model import Trace
from repro.trace.stream import (
    FileChunkStream,
    MaterializedStream,
    SyntheticVolumeStream,
    write_chunk_file,
)


def stream_for(requests=1000, chunk=256, volume="ali-0000", seed=3):
    return SyntheticVolumeStream("ali", volume, 1024, requests,
                                 seed=seed, chunk_requests=chunk)


def collect(stream):
    """Materialize a stream by walking its chunk iterator."""
    parts = [tr for _, tr, _ in stream.chunks()]
    return Trace.concat(parts, volume=stream.volume) if parts else \
        Trace.empty(stream.volume)


class TestSyntheticVolumeStream:
    def test_chunk_geometry(self):
        s = stream_for(requests=1000, chunk=256)
        assert s.num_chunks == 4
        sizes = [len(tr) for _, tr, _ in s.chunks()]
        assert sizes == [256, 256, 256, 232]

    def test_deterministic_across_instances(self):
        a, b = collect(stream_for()), collect(stream_for())
        assert np.array_equal(a.timestamps, b.timestamps)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.sizes, b.sizes)

    def test_seed_and_volume_change_the_stream(self):
        base = collect(stream_for())
        other_seed = collect(stream_for(seed=4))
        other_vol = collect(stream_for(volume="ali-0001"))
        assert not np.array_equal(base.offsets, other_seed.offsets)
        assert not np.array_equal(base.offsets, other_vol.offsets)

    def test_resume_mid_stream_is_identical(self):
        """chunks(start, state) picks up exactly where a walk stopped —
        the property checkpoint/resume stands on."""
        s = stream_for(requests=1000, chunk=256)
        full = list(s.chunks())
        # Stop after chunk 1, resume from its carried state.
        state = full[1][2]
        resumed = list(s.chunks(2, state))
        assert [i for i, _, _ in resumed] == [2, 3]
        for (_, a, _), (_, b, _) in zip(full[2:], resumed):
            assert np.array_equal(a.timestamps, b.timestamps)
            assert np.array_equal(a.offsets, b.offsets)

    def test_timestamps_monotone_across_chunks(self):
        tr = collect(stream_for())
        assert np.all(np.diff(tr.timestamps) >= 0)
        tr.validate()

    def test_materialize_equals_chunk_walk(self):
        s = stream_for()
        a, b = s.materialize(), collect(s)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.timestamps, b.timestamps)

    def test_empty_stream(self):
        s = stream_for(requests=0)
        assert s.num_chunks == 0
        assert list(s.chunks()) == []
        assert len(s.materialize()) == 0

    def test_stream_is_picklable(self):
        s = stream_for()
        clone = pickle.loads(pickle.dumps(s))
        assert np.array_equal(collect(clone).offsets,
                              collect(s).offsets)


class TestMaterializedStream:
    def test_wraps_existing_trace(self):
        base = stream_for(requests=500, chunk=128).materialize()
        s = MaterializedStream(base, chunk_requests=128)
        again = collect(s)
        assert np.array_equal(base.offsets, again.offsets)
        assert s.num_chunks == 4

    def test_out_of_range_chunk(self):
        base = stream_for(requests=100, chunk=64).materialize()
        s = MaterializedStream(base, chunk_requests=64)
        with pytest.raises(IndexError):
            s.chunk(2, s.initial_state())


class TestFileChunkStream:
    def test_roundtrip(self, tmp_path):
        src = stream_for(requests=700, chunk=200)
        path = str(tmp_path / "vol.chunks.npz")
        write_chunk_file(src, path)
        loaded = FileChunkStream(path)
        assert loaded.volume == src.volume
        assert loaded.num_chunks == src.num_chunks
        a, b = collect(src), collect(loaded)
        assert np.array_equal(a.timestamps, b.timestamps)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.sizes, b.sizes)

    def test_picklable_without_open_handle(self, tmp_path):
        src = stream_for(requests=300, chunk=100)
        path = str(tmp_path / "vol.chunks.npz")
        write_chunk_file(src, path)
        s = FileChunkStream(path)
        collect(s)  # force the lazy handle open
        clone = pickle.loads(pickle.dumps(s))
        assert np.array_equal(collect(clone).offsets,
                              collect(s).offsets)


def test_stream_generation_memory_is_o_chunk():
    """Walking a stream never materializes the whole volume: 4x the
    requests at the same chunk bound must not grow the peak."""
    import tracemalloc

    def peak(requests):
        s = SyntheticVolumeStream("ali", "mem-test", 2048, requests,
                                  seed=5, chunk_requests=256)
        tracemalloc.start()
        for _ in s.chunks():
            pass
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak_bytes

    small, large = peak(2_000), peak(8_000)
    assert large < small * 2, (small, large)


def test_streaming_replay_memory_is_o_chunk():
    """Peak traced memory of a chunked replay tracks the chunk size
    plus the store's configuration-bounded state, not the volume
    length.  The store's own structures (bloom cascade, slot metadata)
    fill up to their configured caps over the first few thousand
    requests, so the comparison points both sit past saturation: 4x
    the requests must cost well under 2x the peak."""
    import tracemalloc

    from repro.experiments.runner import store_config_for
    from repro.lss.store import LogStructuredStore
    from repro.placement.registry import make_policy

    def peak(requests):
        s = SyntheticVolumeStream("ali", "mem-test", 2048, requests,
                                  seed=5, chunk_requests=256)
        cfg = store_config_for(2048, seed=1)
        store = LogStructuredStore(cfg, make_policy("adapt", cfg))
        tracemalloc.start()
        for _, tr, _ in s.chunks():
            store.replay(tr, finalize=False)
        store.finalize()
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak_bytes

    small, large = peak(8_000), peak(32_000)
    assert large < small * 2, (small, large)
