"""Shard checkpoints: atomicity, validation, recovery cross-check."""

from __future__ import annotations

import pickle

import pytest

from repro.common.errors import CheckpointError
from repro.fleet.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_path,
    load_shard_checkpoint,
    write_shard_checkpoint,
)
from repro.fleet.spec import FleetSpec

SPEC = FleetSpec(num_volumes=2, volume_blocks=2048, volume_requests=800,
                 chunk_requests=256)
KEY = SPEC.fleet_key()


def midstream_store(tenant="ali-0000", chunks=2):
    """A store halfway through its tenant's stream, plus resume cursor."""
    from repro.experiments.runner import store_config_for
    from repro.lss.store import LogStructuredStore
    from repro.placement.registry import make_policy
    stream = SPEC.volume_stream(tenant)
    cfg = store_config_for(SPEC.volume_blocks, seed=SPEC.store_seed(tenant))
    store = LogStructuredStore(cfg, make_policy(SPEC.scheme, cfg))
    state = stream.initial_state()
    for index, tr, state in stream.chunks(0, state):
        store.replay(tr, finalize=False)
        if index + 1 >= chunks:
            break
    return store, index + 1, state


def test_path_encodes_geometry(tmp_path):
    p = checkpoint_path(str(tmp_path), 3, 16)
    assert p.endswith("shard-0003-of-0016.ckpt")


def test_missing_checkpoint_is_none(tmp_path):
    p = checkpoint_path(str(tmp_path), 0, 1)
    assert load_shard_checkpoint(p, fleet_key=KEY, shard=0,
                                 num_shards=1) is None


def test_roundtrip_completed_only(tmp_path):
    p = checkpoint_path(str(tmp_path), 0, 2)
    completed = {"ali-0000": {"volume": "ali-0000", "stats": {}}}
    write_shard_checkpoint(p, fleet_key=KEY, shard=0, num_shards=2,
                           completed=completed, inflight=None)
    payload = load_shard_checkpoint(p, fleet_key=KEY, shard=0,
                                    num_shards=2)
    assert payload["completed"] == completed
    assert payload["inflight"] is None
    assert payload["version"] == CHECKPOINT_VERSION


def test_roundtrip_inflight_store_resumes_identically(tmp_path):
    """A store restored from a checkpoint finishes the volume with
    bit-identical stats to one that was never interrupted."""
    store, next_chunk, state = midstream_store()
    p = checkpoint_path(str(tmp_path), 0, 1)
    write_shard_checkpoint(
        p, fleet_key=KEY, shard=0, num_shards=1, completed={},
        inflight={"tenant": "ali-0000", "next_chunk": next_chunk,
                  "stream_state": state, "store": store,
                  "recorder": None})
    # The original store object keeps working after the write
    # (profiler detach must be restored).
    stream = SPEC.volume_stream("ali-0000")
    payload = load_shard_checkpoint(p, fleet_key=KEY, shard=0,
                                    num_shards=1)
    restored = payload["inflight"]["store"]
    for original in (store, restored):
        for _, tr, _ in stream.chunks(payload["inflight"]["next_chunk"],
                                      payload["inflight"]["stream_state"]):
            original.replay(tr, finalize=False)
        original.finalize()
    assert store.stats.summary() == restored.stats.summary()


def test_wrong_fleet_key_rejected(tmp_path):
    p = checkpoint_path(str(tmp_path), 0, 1)
    write_shard_checkpoint(p, fleet_key=KEY, shard=0, num_shards=1,
                           completed={}, inflight=None)
    with pytest.raises(CheckpointError, match="different fleet"):
        load_shard_checkpoint(p, fleet_key="0" * 64, shard=0,
                              num_shards=1)


def test_wrong_geometry_rejected(tmp_path):
    p = checkpoint_path(str(tmp_path), 0, 1)
    write_shard_checkpoint(p, fleet_key=KEY, shard=0, num_shards=1,
                           completed={}, inflight=None)
    with pytest.raises(CheckpointError, match="geometry"):
        load_shard_checkpoint(p, fleet_key=KEY, shard=0, num_shards=2)


def test_corrupt_checkpoint_rejected(tmp_path):
    p = checkpoint_path(str(tmp_path), 0, 1)
    with open(p, "wb") as f:
        f.write(b"definitely not a pickle")
    with pytest.raises(CheckpointError, match="unreadable"):
        load_shard_checkpoint(p, fleet_key=KEY, shard=0, num_shards=1)


def test_version_mismatch_rejected(tmp_path):
    p = checkpoint_path(str(tmp_path), 0, 1)
    with open(p, "wb") as f:
        pickle.dump({"version": CHECKPOINT_VERSION + 1}, f)
    with pytest.raises(CheckpointError, match="version"):
        load_shard_checkpoint(p, fleet_key=KEY, shard=0, num_shards=1)


def test_tampered_store_fails_recovery_crosscheck(tmp_path):
    """A checkpoint whose mapping disagrees with the segment pool's
    slot metadata must be rejected, not resumed."""
    store, next_chunk, state = midstream_store()
    # Corrupt the derived mapping so the recovery scan disagrees.
    valid = [i for i in range(SPEC.volume_blocks) if store.mapping[i] >= 0]
    a, b = valid[0], valid[1]
    store.mapping[a], store.mapping[b] = \
        int(store.mapping[b]), int(store.mapping[a])
    p = checkpoint_path(str(tmp_path), 0, 1)
    write_shard_checkpoint(
        p, fleet_key=KEY, shard=0, num_shards=1, completed={},
        inflight={"tenant": "ali-0000", "next_chunk": next_chunk,
                  "stream_state": state, "store": store,
                  "recorder": None})
    with pytest.raises(CheckpointError, match="recovery"):
        load_shard_checkpoint(p, fleet_key=KEY, shard=0, num_shards=1)
