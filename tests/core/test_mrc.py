"""SHARDS-based miss-ratio curves."""

import numpy as np
import pytest

from repro.core.mrc import MrcBuilder, build_mrc
from repro.trace.synthetic.ycsb import generate_ycsb_a
from repro.trace.synthetic.zipf import ZipfSampler

from tests.conftest import make_write_trace


def exact_mrc_point(stream, cache_size):
    """Reference LRU simulation: exact miss ratio for one cache size."""
    cache: dict[int, None] = {}
    misses = 0
    for key in stream:
        if key in cache:
            cache.pop(key)
        else:
            misses += 1
            if len(cache) >= cache_size:
                cache.pop(next(iter(cache)))
        cache[key] = None
    return misses / len(stream)


def test_mrc_monotone_decreasing():
    trace = generate_ycsb_a(2048, 20_000, seed=1, read_ratio=0.0,
                            include_fill=False)
    mrc = build_mrc(trace, sample_rate=0.5)
    assert np.all(np.diff(mrc.miss_ratios) <= 1e-12)
    assert 0.0 <= mrc.miss_ratios[-1] <= mrc.miss_ratios[0] <= 1.0


def test_mrc_matches_exact_lru_at_full_sampling():
    rng = np.random.default_rng(2)
    stream = ZipfSampler(500, 0.9, rng=rng).sample(30_000).tolist()
    trace = make_write_trace(stream)
    mrc = build_mrc(trace, sample_rate=1.0, num_points=128)
    for cache in (50, 200, 400):
        approx = mrc.miss_ratio_at(cache)
        exact = exact_mrc_point(stream, cache)
        assert abs(approx - exact) < 0.05, (cache, approx, exact)


def test_mrc_sampled_approximates_full():
    rng = np.random.default_rng(3)
    stream = ZipfSampler(2000, 0.9, rng=rng).sample(60_000).tolist()
    trace = make_write_trace(stream)
    full = build_mrc(trace, sample_rate=1.0)
    sampled = build_mrc(trace, sample_rate=0.2)
    for cache in (200, 800, 1600):
        assert abs(full.miss_ratio_at(cache) -
                   sampled.miss_ratio_at(cache)) < 0.08, cache


def test_working_set_estimate():
    # Uniform accesses over 300 blocks: ~zero misses need cache >= 300.
    rng = np.random.default_rng(4)
    stream = rng.integers(0, 300, size=30_000).tolist()
    mrc = build_mrc(make_write_trace(stream), sample_rate=1.0,
                    num_points=200)
    ws = mrc.working_set_blocks(target_miss_ratio=0.05)
    assert 200 <= ws <= 330


def test_empty_and_tiny_inputs():
    mrc = MrcBuilder(sample_rate=0.5).build()
    assert mrc.miss_ratio_at(100) == 1.0
    assert mrc.working_set_blocks() == 0

    b = MrcBuilder(sample_rate=1.0)
    b.access(1)
    curve = b.build()
    assert curve.sampled_accesses == 1
    assert curve.miss_ratios[0] == 1.0  # one cold miss


def test_writes_only_filter():
    trace = generate_ycsb_a(512, 4000, seed=5, read_ratio=0.5,
                            include_fill=False)
    b_all = MrcBuilder(sample_rate=1.0)
    b_all.feed_trace(trace, writes_only=False)
    b_w = MrcBuilder(sample_rate=1.0)
    b_w.feed_trace(trace, writes_only=True)
    assert b_w._total < b_all._total


def test_validation():
    with pytest.raises(ValueError):
        MrcBuilder(num_points=1)
