"""SHARDS-style spatial sampler."""

import pytest

from repro.core.sampling import SpatialSampler


def test_rate_is_approximately_honoured():
    s = SpatialSampler(0.1)
    hits = sum(1 for lba in range(100_000) if s.is_sampled(lba))
    assert 0.08 < hits / 100_000 < 0.12


def test_sampling_is_deterministic_per_lba():
    s = SpatialSampler(0.3, salt=5)
    picks = [s.is_sampled(lba) for lba in range(100)]
    assert picks == [s.is_sampled(lba) for lba in range(100)]


def test_spatial_property_all_accesses_of_a_block_agree():
    """The SHARDS property: a block is either always or never sampled."""
    s = SpatialSampler(0.05)
    sampled = {lba for lba in range(1000) if s.is_sampled(lba)}
    for _ in range(3):
        assert {lba for lba in range(1000) if s.is_sampled(lba)} == sampled


def test_salt_changes_selection():
    a = SpatialSampler(0.2, salt=1)
    b = SpatialSampler(0.2, salt=2)
    pa = {lba for lba in range(2000) if a.is_sampled(lba)}
    pb = {lba for lba in range(2000) if b.is_sampled(lba)}
    assert pa != pb


def test_rate_one_samples_everything():
    s = SpatialSampler(1.0)
    assert all(s.is_sampled(lba) for lba in range(1000))


def test_effective_rate_close_to_requested():
    s = SpatialSampler(0.001)
    assert abs(s.effective_rate - 0.001) < 1e-4


def test_validation():
    with pytest.raises(ValueError):
        SpatialSampler(0.0)
    with pytest.raises(ValueError):
        SpatialSampler(1.5)
