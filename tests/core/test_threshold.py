"""Threshold ladder: grids, adaptation, persistence."""

import pytest

from repro.core.threshold import ThresholdLadder, _is_monotone


def make_ladder(n=5):
    return ThresholdLadder(num_sets=n, segment_blocks=8, chunk_blocks=4,
                           window_us=100, garbage_limit=0.25)


def test_initial_grid_is_exponential():
    ladder = make_ladder(5)
    ts = [g.threshold for g in ladder.ghost_sets]
    ratios = [b / a for a, b in zip(ts, ts[1:])]
    assert all(abs(r - 2.0) < 1e-9 for r in ratios)
    assert ladder.mode == "exponential"


def test_record_feeds_all_sets():
    ladder = make_ladder()
    ladder.record(1, 2.0, 0)
    assert all(g.blocks_written == 1 for g in ladder.ghost_sets)
    assert ladder.sampled_blocks_written() == 1


def test_adapt_switches_to_linear_around_interior_best():
    ladder = make_ladder(5)
    # Fabricate costs: interior set 2 is best, non-monotone.
    for i, g in enumerate(ladder.ghost_sets):
        g.blocks_written = 100
        g.blocks_discarded = [50, 30, 10, 30, 50][i]
    result = ladder.adapt()
    assert result.mode == "linear"
    ts = [g.threshold for g in ladder.ghost_sets]
    diffs = [b - a for a, b in zip(ts, ts[1:])]
    assert max(diffs) - min(diffs) < 1e-6  # evenly spaced


def test_adapt_reexpands_on_edge_best():
    ladder = make_ladder(5)
    for i, g in enumerate(ladder.ghost_sets):
        g.blocks_written = 100
        g.blocks_discarded = [10, 20, 30, 40, 50][i]  # monotone: edge best
    result = ladder.adapt()
    assert result.mode == "exponential"
    assert result.best_threshold == min(result.thresholds)


def test_adapt_reuses_unchanged_ghost_sets():
    ladder = make_ladder(5)
    for g in ladder.ghost_sets:
        g.blocks_written = 10
        g.blocks_discarded = 1
    before = {round(g.threshold, 3): g for g in ladder.ghost_sets}
    ladder.adapt()
    reused = sum(1 for g in ladder.ghost_sets
                 if before.get(round(g.threshold, 3)) is g)
    assert reused >= 1  # at least the re-centred best value carries over


def test_ready_requires_majority_warm():
    ladder = make_ladder(4)
    assert not ladder.ready()
    for g in ladder.ghost_sets[:2]:
        g.gc_passes = 5
    assert ladder.ready()


def test_cost_spread():
    ladder = make_ladder(3)
    for g, cost in zip(ladder.ghost_sets, (10, 10, 10)):
        g.blocks_written = 100
        g.blocks_discarded = cost
    assert ladder.cost_spread() == pytest.approx(0.0)
    ladder.ghost_sets[0].blocks_discarded = 30
    assert ladder.cost_spread() > 0.5


def test_padding_fraction():
    ladder = make_ladder(3)
    for g in ladder.ghost_sets:
        g.blocks_written = 100
        g.padding_blocks = 25
    assert ladder.padding_fraction() == pytest.approx(0.25)


def test_memory_accounting():
    ladder = make_ladder(3)
    ladder.record(1, 1.0, 0)
    assert ladder.memory_bytes() > 0


def test_is_monotone_helper():
    assert _is_monotone([1, 2, 3])
    assert _is_monotone([3, 2, 1])
    assert _is_monotone([1, 1, 1])
    assert not _is_monotone([1, 3, 2])


def test_ladder_validation():
    with pytest.raises(ValueError):
        ThresholdLadder(1, 8, 4, 100, 0.25)
