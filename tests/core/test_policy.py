"""AdaptPolicy end-to-end unit behaviour."""

import numpy as np
import pytest

from repro.core.config import AdaptConfig
from repro.core.policy import AdaptPolicy
from repro.lss.group import GroupKind
from repro.lss.store import LogStructuredStore

from tests.conftest import make_write_trace


def make(cfg, **kwargs):
    pol = AdaptPolicy(cfg, adapt=AdaptConfig(**kwargs))
    return LogStructuredStore(cfg, pol), pol


def test_group_layout_matches_fig4(small_config):
    _, pol = make(small_config)
    specs = pol.group_specs()
    assert len(specs) == 6
    assert [s.kind for s in specs[:2]] == [GroupKind.USER] * 2
    assert all(s.kind == GroupKind.GC for s in specs[2:])


def test_quick_rewrite_is_hot(small_config):
    store, pol = make(small_config, enable_demotion=False)
    store.process_request(0, 1, 5, 1)
    assert pol.place_user(5, 10) == AdaptPolicy.HOT


def test_stale_rewrite_is_cold(small_config):
    store, pol = make(small_config, enable_demotion=False)
    store.process_request(0, 1, 5, 1)
    store.user_seq += 100 * small_config.segment_blocks
    assert pol.place_user(5, 10) == AdaptPolicy.COLD


def test_first_write_footprint_proxy(small_config):
    """With a huge threshold, first writes go hot; with a tiny one, cold."""
    store, pol = make(small_config, enable_demotion=False,
                      enable_threshold_adaptation=False)
    pol.threshold = 10 ** 9
    assert pol.place_user(42, 0) == AdaptPolicy.HOT
    pol.threshold = 0.5
    assert pol.place_user(43, 0) == AdaptPolicy.COLD


def test_gc_age_ladder_uses_lifespan(small_config):
    store, pol = make(small_config, enable_demotion=False)
    store.process_request(0, 1, 5, 1)
    pol._lifespan = 100.0
    store.user_seq = 200          # age < 4*lifespan
    assert pol.place_gc(5, 0, 0) == AdaptPolicy.GC_BASE
    store.user_seq = 900          # 4l <= age < 16l
    assert pol.place_gc(5, 0, 0) == AdaptPolicy.GC_BASE + 1
    store.user_seq = 100_000      # oldest band
    assert pol.place_gc(5, 0, 0) == AdaptPolicy.GC_BASE + 3


def test_adaptation_rounds_happen(small_config):
    store, pol = make(small_config, sample_rate=0.5,
                      adapt_every_fraction=0.02)
    rng = np.random.default_rng(0)
    tr = make_write_trace(rng.integers(0, 8192, size=30_000), gap_us=20)
    store.replay(tr)
    assert len(pol.adaptation_log) > 0
    assert pol.threshold > 0


def test_disabled_threshold_adaptation_tracks_lifespan(small_config):
    store, pol = make(small_config, enable_threshold_adaptation=False)
    assert pol.ladder is None
    rng = np.random.default_rng(1)
    store.replay(make_write_trace(rng.integers(0, 8192, size=20_000),
                                  gap_us=20))
    assert len(pol.adaptation_log) == 0
    assert pol.threshold == pytest.approx(pol._lifespan)


def test_memory_accounting_components(small_config):
    store, pol = make(small_config)
    base = small_config.logical_blocks * 8  # int64 last-write array
    assert pol.memory_bytes() >= base
    off = AdaptPolicy(small_config, adapt=AdaptConfig(
        enable_demotion=False, enable_threshold_adaptation=False))
    assert off.memory_bytes() < pol.memory_bytes()


def test_demotion_only_for_cold_bound(small_config):
    store, pol = make(small_config, enable_aggregation=False,
                      enable_threshold_adaptation=False, bloom_capacity=2)
    # Prime the RA identifier so lba 5 scores 2 in gc-0: two same-group
    # migrations landing in different cascade filters.
    gid = AdaptPolicy.GC_BASE
    d = pol.demotion.discriminators[gid]
    d.insert(5)
    d.insert(99)      # fill filter 1 (capacity 2)
    d.insert(5)       # filter 2
    assert d.score(5) == 2
    store.process_request(0, 1, 5, 1)
    # Quick rewrite: hot-bound, must NOT be demoted.
    assert pol.place_user(5, 10) == AdaptPolicy.HOT
    # Stale rewrite: cold-bound and scored -> demoted into gc-0.
    store.user_seq += 10 ** 6
    assert pol.place_user(5, 20) == gid


def test_full_replay_all_mechanisms(small_config):
    store, pol = make(small_config, sample_rate=0.3)
    rng = np.random.default_rng(2)
    gaps = rng.choice([10, 400], size=25_000)
    lbas = rng.integers(0, 8192, size=25_000)
    from repro.trace.model import Trace
    tr = Trace(np.cumsum(gaps), np.ones(25_000, dtype=np.uint8), lbas,
               np.ones(25_000, dtype=np.int64))
    store.replay(tr)
    store.check_invariants()
    assert store.stats.write_amplification() >= 1.0
