"""Ghost-set simulation."""

import pytest

from repro.core.ghost import GhostSet


def make_ghost(threshold=8.0, seg=8, chunk=4, window=100, limit=0.25):
    return GhostSet(threshold, seg, chunk, window, limit)


def test_hot_cold_split_by_interval():
    g = make_ghost(threshold=5.0)
    g.record(1, interval=2.0, now_us=0)    # hot
    g.record(2, interval=9.0, now_us=1)    # cold
    hot, cold = g._open[GhostSet.HOT], g._open[GhostSet.COLD]
    assert hot.blocks == [1]
    assert cold.blocks == [2]


def test_first_access_uses_footprint_proxy():
    g = make_ghost(threshold=3.0)
    # Footprint 0 < threshold: first writes start hot under a huge
    # threshold regime.
    g.record(1, interval=None, now_us=0)
    assert g._open[GhostSet.HOT].blocks == [1]
    # After the footprint exceeds the threshold, first writes go cold.
    for lba in (2, 3, 4, 5):
        g.record(lba, interval=None, now_us=lba)
    assert 5 in g._open[GhostSet.COLD].blocks


def test_overwrite_creates_garbage():
    g = make_ghost(threshold=100.0)
    for i in range(3):
        g.record(7, interval=1.0, now_us=i)
    assert g.live_blocks() == 1
    assert g.blocks_written == 3
    assert g.garbage_ratio() > 0


def test_padding_counted_on_idle_gap():
    g = make_ghost(threshold=100.0, window=100)
    g.record(1, interval=1.0, now_us=0)
    g.record(2, interval=1.0, now_us=10_000)  # first chunk padded by then
    assert g.padding_blocks == 3  # 4-block chunk held one block


def test_gc_discards_and_counts():
    g = make_ghost(threshold=1000.0, seg=8, chunk=4, limit=0.3)
    # Hammer a small working set so garbage accumulates and GC cycles.
    for i in range(500):
        g.record(i % 10, interval=5.0, now_us=i * 5)
    assert g.gc_passes > 0
    assert g.garbage_ratio() <= 0.8
    assert g.cost() >= 0.0
    assert g.is_warm()


def test_gc_discard_bookkeeping_consistent():
    """Ghost GC *discards* valid blocks (they would migrate to GC groups in
    the real system); live count can therefore drop below the working set
    but never exceed it, and discards are all accounted."""
    g = make_ghost(threshold=1000.0, seg=8, chunk=4, limit=0.3)
    for i in range(300):
        g.record(i % 20, interval=5.0, now_us=i * 5)
    assert 0 < g.live_blocks() <= 20
    assert g.blocks_written == 300
    assert g.blocks_discarded >= 0
    # Every segment's cached valid count is non-negative and bounded.
    for seg in g._sealed + list(g._open):
        assert 0 <= seg.valid <= len(seg.blocks)


def test_cost_before_any_write_is_infinite():
    assert make_ghost().cost() == float("inf")


def test_reset_counters():
    g = make_ghost(threshold=1000.0)
    for i in range(100):
        g.record(i % 5, interval=2.0, now_us=i)
    g.reset_counters()
    assert g.blocks_written == 0
    assert g.cost() == float("inf")
    assert not g.is_warm()
    # State survives: (most of) the working set is still resident — GC may
    # have discarded a live block, which re-enters on its next write.
    assert 0 < g.live_blocks() <= 5


def test_memory_accounting_positive():
    g = make_ghost()
    g.record(1, 1.0, 0)
    assert g.memory_bytes() >= 20


def test_validation():
    with pytest.raises(ValueError):
        GhostSet(0.0, 8, 4, 100, 0.2)
    with pytest.raises(ValueError):
        GhostSet(1.0, 2, 4, 100, 0.2)
    with pytest.raises(ValueError):
        GhostSet(1.0, 8, 4, 100, 1.5)
