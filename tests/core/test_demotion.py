"""Proactive demotion placement."""

import pytest

from repro.core.demotion import ProactiveDemotion


def test_same_group_gc_migrations_build_score():
    d = ProactiveDemotion([2, 3, 4, 5], score_threshold=2,
                          num_filters=4, capacity=2)
    assert d.demotion_target(7) is None
    d.on_gc_block(7, from_group=3, to_group=3)
    assert d.demotion_target(7) is None      # score 1 < threshold
    d.on_gc_block(99, from_group=3, to_group=3)  # fills filter 1
    d.on_gc_block(7, from_group=3, to_group=3)   # filter 2
    assert d.demotion_target(7) == 3
    assert d.demotions == 1


def test_cross_group_migrations_ignored():
    d = ProactiveDemotion([2, 3], score_threshold=1, capacity=4)
    d.on_gc_block(7, from_group=2, to_group=3)
    assert d.demotion_target(7) is None


def test_non_gc_groups_ignored():
    d = ProactiveDemotion([2, 3], score_threshold=1, capacity=4)
    d.on_gc_block(7, from_group=0, to_group=0)  # user group
    assert d.demotion_target(7) is None


def test_best_scoring_group_wins():
    d = ProactiveDemotion([2, 3], score_threshold=1, capacity=1)
    d.on_gc_block(7, 2, 2)
    d.on_gc_block(7, 3, 3)
    d.on_gc_block(7, 3, 3)  # group 3 scores 2, group 2 scores 1
    assert d.demotion_target(7) == 3


def test_lookup_counter():
    d = ProactiveDemotion([2], score_threshold=1)
    d.demotion_target(1)
    d.demotion_target(2)
    assert d.lookups == 2


def test_memory_accounting():
    d = ProactiveDemotion([2, 3], capacity=1024)
    assert d.memory_bytes() > 0


def test_validation():
    with pytest.raises(ValueError):
        ProactiveDemotion([])
    with pytest.raises(ValueError):
        ProactiveDemotion([1], score_threshold=0)
