"""Cross-group dynamic aggregation."""

import pytest

from repro.core.aggregation import CrossGroupAggregator, GroupWriteMonitor
from repro.core.config import AdaptConfig
from repro.core.policy import AdaptPolicy
from repro.lss.store import LogStructuredStore


@pytest.fixture
def adapt_store(tiny_config):
    # Aggregation on; demotion/threshold off so tests isolate §3.3.
    ac = AdaptConfig(enable_demotion=False,
                     enable_threshold_adaptation=False)
    return LogStructuredStore(tiny_config, AdaptPolicy(tiny_config, adapt=ac))


# ----------------------------------------------------------------------
# GroupWriteMonitor / Eq. 1
# ----------------------------------------------------------------------
def test_eq1_average_unfilled_chunk_size():
    mon = GroupWriteMonitor(chunk_blocks=16)
    mon.on_flush(16, 0)   # one full chunk
    mon.on_flush(6, 10)   # one padded chunk holding 6 blocks
    mon.on_flush(4, 12)   # another with 4
    # C_i = (V - S_ck * filled) / P = (26 - 16) / 2 = 5
    assert mon.avg_unfilled_chunk_blocks() == 5.0


def test_eq1_no_padding_events_means_full_chunks():
    mon = GroupWriteMonitor(chunk_blocks=16)
    mon.on_flush(16, 0)
    assert mon.avg_unfilled_chunk_blocks() == 16.0


def test_dead_space_budget_counts_shadows():
    mon = GroupWriteMonitor(chunk_blocks=16)
    mon.segments_sealed = 2
    mon.on_flush(10, 6, shadow_blocks=4)
    assert mon.avg_padding_per_segment_blocks() == 5.0  # (6 + 4) / 2


# ----------------------------------------------------------------------
# shadow append via the policy hook
# ----------------------------------------------------------------------
def test_hot_deadline_triggers_shadow_append(adapt_store, tiny_config):
    store = adapt_store
    pol = store.policy
    hot, cold = store.groups[pol.HOT], store.groups[pol.COLD]
    # Force a block into the hot group: write it twice quickly.
    store.process_request(0, 1, 5, 1)
    store.process_request(10, 1, 5, 1)
    assert hot.buffer.pending_blocks > 0
    pending_before = hot.buffer.pending_blocks
    # Advance past the SLA deadline: tick should shadow, not pad.
    store.tick(10_000)
    assert hot.buffer.pending_blocks == pending_before  # lazy append kept
    assert hot.traffic.padding_blocks == 0
    assert cold.traffic.shadow_blocks + cold.buffer.pending_blocks > 0
    assert pol.aggregator.shadow_appends >= 1


def test_shadowed_blocks_not_reshadowed(adapt_store):
    store = adapt_store
    pol = store.policy
    store.process_request(0, 1, 5, 1)
    store.process_request(10, 1, 5, 1)
    store.tick(10_000)
    first = pol.aggregator.shadow_blocks
    store.tick(20_000)  # deadline again; everything already shadowed
    assert pol.aggregator.shadow_blocks == first


def test_combined_flush_carries_both_streams(adapt_store):
    store = adapt_store
    pol = store.policy
    pol.threshold = 2.0  # force: rewrites hot, first-writes (>2 seen) cold
    hot, cold = store.groups[pol.HOT], store.groups[pol.COLD]
    store.process_request(0, 1, 100, 1)
    store.process_request(1, 1, 101, 1)   # cold (unique_seen past thr)
    store.process_request(2, 1, 5, 1)     # cold
    store.process_request(3, 1, 5, 1)     # quick rewrite -> hot pending
    assert cold.buffer.pending_blocks >= 1
    assert len(hot.unshadowed_pending) >= 1
    store.tick(50_000)
    # Hot never padded; its pending blocks were substituted into the cold
    # chunk, which flushed at its own deadline carrying both streams.
    assert hot.traffic.padding_blocks == 0
    assert hot.buffer.pending_blocks >= 1          # lazy append kept
    assert cold.traffic.shadow_blocks >= 1
    assert cold.buffer.pending_blocks == 0         # combined chunk flushed


def test_aggregation_decision_log():
    agg = CrossGroupAggregator(chunk_blocks=4)
    mon = agg.monitor_for(0)
    assert isinstance(mon, GroupWriteMonitor)
    assert agg.monitor_for(0) is mon  # cached


def test_aggregation_stops_when_budget_exhausted(adapt_store, tiny_config):
    store = adapt_store
    pol = store.policy
    cold = store.groups[pol.COLD]
    mon = pol.aggregator.monitor_for(pol.COLD)
    # Fabricate history: cold sealed segments with tiny padding budget.
    mon.segments_sealed = 10
    mon.padding_blocks = 1        # 0.1 blocks/segment budget
    cold.segment_shadow_bytes = 10 * tiny_config.chunk.block_bytes
    store.process_request(0, 1, 5, 1)
    store.process_request(10, 1, 5, 1)
    store.tick(10_000)
    hot = store.groups[pol.HOT]
    # Budget exhausted: the hot chunk was padded instead of shadowed.
    assert pol.aggregator.declined >= 1
    assert hot.traffic.padding_blocks > 0
