"""Bloom filters and the cascaded RA discriminator."""

import pytest

from repro.core.bloom import BloomFilter, CascadedDiscriminator


def test_bloom_no_false_negatives():
    bf = BloomFilter(capacity=500, fp_rate=0.01)
    keys = list(range(0, 5000, 10))
    for k in keys:
        bf.add(k)
    assert all(k in bf for k in keys)


def test_bloom_false_positive_rate_is_bounded():
    bf = BloomFilter(capacity=1000, fp_rate=0.01)
    for k in range(1000):
        bf.add(k)
    fps = sum(1 for k in range(10_000, 30_000) if k in bf)
    assert fps / 20_000 < 0.05  # generous bound over the 1 % design target


def test_bloom_sizing_follows_fp_rate():
    loose = BloomFilter(1000, 0.1)
    tight = BloomFilter(1000, 0.001)
    assert tight.num_bits > loose.num_bits
    assert tight.memory_bytes() > loose.memory_bytes()


def test_bloom_is_full():
    bf = BloomFilter(capacity=3)
    for k in range(3):
        assert not bf.is_full
        bf.add(k)
    assert bf.is_full


def test_bloom_validation():
    with pytest.raises(ValueError):
        BloomFilter(0)
    with pytest.raises(ValueError):
        BloomFilter(10, fp_rate=1.5)


def test_cascade_score_counts_filters():
    d = CascadedDiscriminator(num_filters=4, capacity=2)
    d.insert(1)          # filter A
    d.insert(2)          # filter A full
    d.insert(1)          # filter B
    assert d.score(1) == 2
    assert d.score(2) == 1
    assert d.score(99) == 0


def test_cascade_fifo_eviction():
    d = CascadedDiscriminator(num_filters=2, capacity=1)
    d.insert(1)   # filter 1
    d.insert(2)   # filter 2
    d.insert(3)   # filter 3, evicts filter 1
    assert d.evictions == 1
    assert d.score(1) == 0
    assert d.score(2) == 1
    assert d.score(3) == 1


def test_cascade_exact_and_bloom_modes_agree_on_members():
    exact = CascadedDiscriminator(4, 64, use_bloom=False)
    bloom = CascadedDiscriminator(4, 64, use_bloom=True)
    for k in range(200):
        exact.insert(k)
        bloom.insert(k)
    for k in range(0, 200, 7):
        # Bloom mode may only over-count (false positives), never under.
        assert bloom.score(k) >= exact.score(k)
        assert exact.score(k) >= 1


def test_cascade_memory_accounting_is_bloom_budget():
    exact = CascadedDiscriminator(4, 1024, use_bloom=False)
    bloom = CascadedDiscriminator(4, 1024, use_bloom=True)
    for k in range(3000):
        exact.insert(k)
        bloom.insert(k)
    assert exact.memory_bytes() == bloom.memory_bytes()


def test_cascade_maybe_member():
    d = CascadedDiscriminator(2, 8)
    d.insert(5)
    assert d.maybe_member(5)
    assert not d.maybe_member(6)


def test_cascade_validation():
    with pytest.raises(ValueError):
        CascadedDiscriminator(num_filters=0)
