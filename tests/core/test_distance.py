"""Reuse-interval tracker vs a naive reference implementation."""

import numpy as np

from repro.core.distance import DistanceTracker


def naive_distance(history: list[int], key: int) -> int | None:
    """Unique other keys since `key`'s previous access, or None."""
    if key not in history:
        return None
    last = len(history) - 1 - history[::-1].index(key)
    return len(set(history[last + 1:]))


def test_first_access_returns_none():
    t = DistanceTracker()
    assert t.access(5) is None


def test_immediate_reaccess_distance_zero():
    t = DistanceTracker()
    t.access(5)
    assert t.access(5) == 0


def test_simple_sequence():
    t = DistanceTracker()
    # a b c a : distance of second 'a' is 2 (b, c intervene)
    t.access(1); t.access(2); t.access(3)
    assert t.access(1) == 2


def test_duplicates_counted_once():
    t = DistanceTracker()
    # a b b b a : only one distinct intervening key
    t.access(1)
    t.access(2); t.access(2); t.access(2)
    assert t.access(1) == 1


def test_matches_naive_reference_on_random_stream():
    rng = np.random.default_rng(0)
    stream = rng.integers(0, 50, size=2000).tolist()
    t = DistanceTracker()
    history: list[int] = []
    for key in stream:
        expected = naive_distance(history, key)
        assert t.access(key) == expected
        history.append(key)
    t.check_invariants()


def test_evict_forgets_key():
    t = DistanceTracker()
    t.access(1)
    t.access(2)
    t.evict(1)
    assert t.access(1) is None
    t.check_invariants()


def test_evict_unknown_key_is_noop():
    t = DistanceTracker()
    t.evict(42)
    t.check_invariants()


def test_len_counts_distinct_keys():
    t = DistanceTracker()
    for k in (1, 2, 2, 3):
        t.access(k)
    assert len(t) == 3


def test_memory_accounting_uses_papers_44_bytes():
    t = DistanceTracker()
    for k in range(10):
        t.access(k)
    assert t.memory_bytes() == 440
