"""Unit semantics of the five baseline placement policies."""

import pytest

from repro.lss.group import GroupKind
from repro.lss.store import LogStructuredStore
from repro.placement.dac import DACPolicy
from repro.placement.mida import MiDAPolicy
from repro.placement.sepbit import SepBITPolicy
from repro.placement.sepgc import SepGCPolicy
from repro.placement.warcip import WarcipPolicy


def bind(policy, cfg):
    """Bind a policy to a real store so user_seq advances normally."""
    return LogStructuredStore(cfg, policy)


# ----------------------------------------------------------------------
# SepGC
# ----------------------------------------------------------------------
def test_sepgc_routes(small_config):
    pol = SepGCPolicy(small_config)
    bind(pol, small_config)
    assert pol.place_user(1, 0) == SepGCPolicy.USER_GROUP
    assert pol.place_gc(1, 0, 0) == SepGCPolicy.GC_GROUP
    kinds = [s.kind for s in pol.group_specs()]
    assert kinds == [GroupKind.USER, GroupKind.GC]


# ----------------------------------------------------------------------
# DAC
# ----------------------------------------------------------------------
def test_dac_promote_on_write(small_config):
    pol = DACPolicy(small_config, num_regions=5)
    bind(pol, small_config)
    assert pol.place_user(7, 0) == 0           # first write: coldest
    assert pol.place_user(7, 1) == 1           # promote
    assert pol.place_user(7, 2) == 2
    for _ in range(10):
        g = pol.place_user(7, 3)
    assert g == 4                              # capped at hottest


def test_dac_demote_on_gc(small_config):
    pol = DACPolicy(small_config, num_regions=5)
    bind(pol, small_config)
    pol.place_user(7, 0)
    pol.place_user(7, 1)   # region 1
    assert pol.place_gc(7, victim_group=1, now_us=2) == 0
    assert pol.place_gc(7, victim_group=0, now_us=3) == 0  # floor


def test_dac_all_groups_mixed(small_config):
    pol = DACPolicy(small_config)
    assert all(s.kind == GroupKind.MIXED for s in pol.group_specs())
    assert pol.memory_bytes() > 0


def test_dac_validation(small_config):
    with pytest.raises(ValueError):
        DACPolicy(small_config, num_regions=1)


# ----------------------------------------------------------------------
# MiDA
# ----------------------------------------------------------------------
def test_mida_migration_counting(small_config):
    pol = MiDAPolicy(small_config, num_groups=4)
    bind(pol, small_config)
    assert pol.place_user(9, 0) == 0
    assert pol.place_gc(9, 0, 1) == 1
    assert pol.place_gc(9, 1, 2) == 2
    assert pol.place_gc(9, 2, 3) == 3
    assert pol.place_gc(9, 3, 4) == 3          # capped
    assert pol.place_user(9, 5) == 0           # user write resets


def test_mida_groups_and_memory(small_config):
    pol = MiDAPolicy(small_config)
    assert len(pol.group_specs()) == 8          # paper configuration
    assert all(s.kind == GroupKind.MIXED for s in pol.group_specs())
    assert pol.memory_bytes() == small_config.logical_blocks


def test_mida_validation(small_config):
    with pytest.raises(ValueError):
        MiDAPolicy(small_config, num_groups=1)


# ----------------------------------------------------------------------
# WARCIP
# ----------------------------------------------------------------------
def test_warcip_first_write_goes_coldest_cluster(small_config):
    pol = WarcipPolicy(small_config, num_clusters=5)
    bind(pol, small_config)
    assert pol.place_user(3, 0) == 4


def test_warcip_gc_group_is_last(small_config):
    pol = WarcipPolicy(small_config, num_clusters=5)
    bind(pol, small_config)
    assert pol.place_gc(3, 0, 0) == 5
    specs = pol.group_specs()
    assert specs[5].kind == GroupKind.GC
    assert all(s.kind == GroupKind.USER for s in specs[:5])


def test_warcip_short_intervals_cluster_low(small_config):
    pol = WarcipPolicy(small_config, num_clusters=5)
    store = bind(pol, small_config)
    # Rapid rewrites of one block: intervals of ~1 block => hottest cluster.
    for i in range(20):
        store.process_request(i * 10, 1, 3, 1)
    g = pol.place_user(3, 999)
    assert g <= 1


def test_warcip_centroids_stay_sorted(small_config):
    pol = WarcipPolicy(small_config)
    store = bind(pol, small_config)
    import numpy as np
    rng = np.random.default_rng(0)
    for i in range(500):
        store.process_request(i * 10, 1, int(rng.integers(0, 512)), 1)
    assert all(a <= b for a, b in zip(pol._centroids, pol._centroids[1:]))


def test_warcip_validation(small_config):
    with pytest.raises(ValueError):
        WarcipPolicy(small_config, num_clusters=1)
    with pytest.raises(ValueError):
        WarcipPolicy(small_config, learning_rate=0)


# ----------------------------------------------------------------------
# SepBIT
# ----------------------------------------------------------------------
def test_sepbit_first_write_cold(small_config):
    pol = SepBITPolicy(small_config)
    bind(pol, small_config)
    assert pol.place_user(5, 0) == SepBITPolicy.COLD


def test_sepbit_quick_rewrite_hot(small_config):
    pol = SepBITPolicy(small_config)
    store = bind(pol, small_config)
    store.process_request(0, 1, 5, 1)
    # Rewrite immediately: distance 1 << threshold (segment size).
    assert pol.place_user(5, 10) == SepBITPolicy.HOT


def test_sepbit_long_gap_cold(small_config):
    pol = SepBITPolicy(small_config)
    store = bind(pol, small_config)
    store.process_request(0, 1, 5, 1)
    store.user_seq += 10 * small_config.segment_blocks  # simulate traffic
    assert pol.place_user(5, 10) == SepBITPolicy.COLD


def test_sepbit_gc_age_ladder(small_config):
    pol = SepBITPolicy(small_config, num_gc_groups=4)
    store = bind(pol, small_config)
    store.process_request(0, 1, 5, 1)
    thr = pol.threshold
    base = SepBITPolicy.GC_BASE
    store.user_seq = int(thr)           # young
    assert pol.place_gc(5, 0, 0) == base
    store.user_seq = int(5 * thr)       # second band
    assert pol.place_gc(5, 0, 0) == base + 1
    store.user_seq = int(20 * thr)      # third band
    assert pol.place_gc(5, 0, 0) == base + 2
    store.user_seq = int(1000 * thr)    # oldest band
    assert pol.place_gc(5, 0, 0) == base + 3


def test_sepbit_threshold_learns_from_hot_reclaims(small_config):
    pol = SepBITPolicy(small_config, ewma_alpha=1.0)
    bind(pol, small_config)
    pol.on_segment_reclaimed(group_id=SepBITPolicy.HOT, created_seq=0,
                             sealed_seq=100, now_seq=500, valid_blocks=0)
    assert pol.threshold == 500
    pol.on_segment_reclaimed(group_id=SepBITPolicy.COLD, created_seq=0,
                             sealed_seq=0, now_seq=9999, valid_blocks=0)
    assert pol.threshold == 500  # cold reclaims don't update


def test_sepbit_group_layout(small_config):
    specs = SepBITPolicy(small_config).group_specs()
    assert len(specs) == 6
    assert [s.kind for s in specs[:2]] == [GroupKind.USER] * 2
    assert all(s.kind == GroupKind.GC for s in specs[2:])


def test_sepbit_validation(small_config):
    with pytest.raises(ValueError):
        SepBITPolicy(small_config, num_gc_groups=0)
    with pytest.raises(ValueError):
        SepBITPolicy(small_config, ewma_alpha=0)
