"""Policy registry, including the lazy ADAPT hook."""

import pytest

from repro.lss.config import LSSConfig
from repro.placement.base import PlacementPolicy
from repro.placement.registry import available_policies, make_policy, register


def test_all_paper_policies_available():
    names = available_policies()
    for expected in ("sepgc", "dac", "warcip", "mida", "sepbit", "adapt",
                     "midas-lite"):
        assert expected in names


def test_make_policy_instantiates(small_config):
    for name in ("sepgc", "dac", "warcip", "mida", "sepbit", "adapt"):
        pol = make_policy(name, small_config)
        assert pol.name == name
        assert len(pol.group_specs()) >= 2


def test_unknown_policy():
    with pytest.raises(ValueError):
        make_policy("lru", LSSConfig(logical_blocks=1024))


def test_register_conflict_rejected():
    class Fake(PlacementPolicy):
        name = "sepgc"
    with pytest.raises(ValueError):
        register("sepgc", Fake)


def test_reregister_same_factory_is_idempotent():
    from repro.placement.sepgc import SepGCPolicy
    register("sepgc", SepGCPolicy)  # no error
