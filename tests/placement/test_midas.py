"""MIDAS-lite adaptive group-count extension."""

import numpy as np
import pytest

from repro.lss.store import LogStructuredStore
from repro.placement.midas import MidasLitePolicy
from repro.placement.registry import make_policy

from tests.conftest import make_write_trace


def test_registered(small_config):
    pol = make_policy("midas-lite", small_config)
    assert isinstance(pol, MidasLitePolicy)


def test_routing_follows_active_prefix(small_config):
    pol = MidasLitePolicy(small_config, min_groups=2)
    LogStructuredStore(small_config, pol)
    assert pol.place_user(1, 0) == 0
    assert pol.place_gc(1, 0, 0) == 1
    # Chain capped at active length (2): further migrations stay at 1.
    assert pol.place_gc(1, 1, 0) == 1
    pol.active_groups = 4
    assert pol.place_gc(1, 1, 0) == 2


def test_growth_on_high_tail_utilisation(small_config):
    pol = MidasLitePolicy(small_config, min_groups=2,
                          adapt_every_reclaims=4, ewma_alpha=1.0)
    LogStructuredStore(small_config, pol)
    seg = small_config.segment_blocks
    for _ in range(4):
        pol.on_segment_reclaimed(group_id=1, created_seq=0, sealed_seq=0,
                                 now_seq=100, valid_blocks=int(0.9 * seg))
    assert pol.active_groups == 3
    assert pol.adaptations == [3]


def test_shrink_on_indistinguishable_tail(small_config):
    pol = MidasLitePolicy(small_config, min_groups=2,
                          adapt_every_reclaims=4, ewma_alpha=1.0)
    LogStructuredStore(small_config, pol)
    pol.active_groups = 4
    seg = small_config.segment_blocks
    pol.on_segment_reclaimed(2, 0, 0, 100, int(0.30 * seg))
    for _ in range(3):
        pol.on_segment_reclaimed(3, 0, 0, 100, int(0.31 * seg))
    assert pol.active_groups == 3


def test_no_adaptation_without_signal(small_config):
    pol = MidasLitePolicy(small_config, adapt_every_reclaims=2,
                          ewma_alpha=1.0)
    LogStructuredStore(small_config, pol)
    seg = small_config.segment_blocks
    # Low, well-separated utilisations: the configuration is fine as-is.
    pol.on_segment_reclaimed(0, 0, 0, 100, int(0.10 * seg))
    pol.on_segment_reclaimed(1, 0, 0, 100, int(0.40 * seg))
    assert pol.active_groups == 2
    assert pol.adaptations == []


def test_validation(small_config):
    with pytest.raises(ValueError):
        MidasLitePolicy(small_config, min_groups=1)
    with pytest.raises(ValueError):
        MidasLitePolicy(small_config, min_groups=5, max_groups=4)
    with pytest.raises(ValueError):
        MidasLitePolicy(small_config, ewma_alpha=0)


def test_end_to_end_replay_adapts(small_config):
    pol = MidasLitePolicy(small_config, adapt_every_reclaims=8)
    store = LogStructuredStore(small_config, pol)
    rng = np.random.default_rng(0)
    # Uniform churn over the whole volume drives victim utilisation high
    # (~logical/physical), which must push the chain deeper.
    lbas = rng.integers(0, 16_000, size=60_000)
    store.replay(make_write_trace(lbas, gap_us=5))
    store.check_invariants()
    assert store.stats.write_amplification() >= 1.0
    assert len(pol.adaptations) > 0          # the chain actually moved
    assert 2 <= pol.active_groups <= pol.max_groups
