"""Page-mapped FTL unit tests."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.ftl.nand import FlashGeometry, PageMappedFTL


def make_ftl(logical=256, blocks=24, ppb=16, streams=1):
    return PageMappedFTL(FlashGeometry(blocks, ppb), logical,
                         num_streams=streams)


def test_geometry_validation():
    with pytest.raises(ConfigError):
        FlashGeometry(2)
    with pytest.raises(ConfigError):
        FlashGeometry(8, 0)
    assert FlashGeometry(8, 32).total_pages == 256


def test_ftl_capacity_validation():
    with pytest.raises(ConfigError):
        PageMappedFTL(FlashGeometry(4, 16), logical_pages=1000)
    with pytest.raises(ConfigError):
        make_ftl(streams=0)


def test_write_and_remap():
    ftl = make_ftl()
    ftl.write(5)
    ftl.write(5)
    assert ftl.host_pages == 2
    # Exactly one valid copy of lpn 5.
    assert int(ftl._page_valid.sum()) == 1
    ftl.check_invariants()


def test_trim_invalidates():
    ftl = make_ftl()
    for lpn in range(10):
        ftl.write(lpn)
    ftl.trim(0, 5)
    assert int(ftl._page_valid.sum()) == 5
    ftl.check_invariants()


def test_device_gc_reclaims_and_counts():
    ftl = make_ftl(logical=128, blocks=12, ppb=16)
    rng = np.random.default_rng(0)
    for lpn in rng.integers(0, 128, size=4000):
        ftl.write(int(lpn))
    assert ftl.erases > 0
    assert ftl.device_write_amplification() >= 1.0
    assert ftl.free_block_count() > 0
    ftl.check_invariants()


def test_sequential_overwrite_has_low_device_wa():
    """Whole-block-aligned sequential overwrites leave dead flash blocks:
    GC finds empty victims and device WA stays ~1."""
    ftl = make_ftl(logical=256, blocks=28, ppb=16)
    for _ in range(30):
        for lpn in range(256):
            ftl.write(lpn)
    assert ftl.device_write_amplification() < 1.05
    ftl.check_invariants()


def test_streams_separate_lifetimes():
    """Two populations with different update rates: separating them into
    streams must lower device WA vs mixing them."""
    def run(streams):
        ftl = PageMappedFTL(FlashGeometry(40, 16), logical_pages=400,
                            num_streams=2 if streams else 1)
        rng = np.random.default_rng(1)
        for lpn in range(400):
            ftl.write(lpn, 0)
        for _ in range(12_000):
            if rng.random() < 0.9:
                lpn = int(rng.integers(0, 40))      # hot tenth
                ftl.write(lpn, 0)
            else:
                lpn = int(rng.integers(40, 400))    # cold rest
                ftl.write(lpn, 1 if streams else 0)
        ftl.check_invariants()
        return ftl.device_write_amplification()

    assert run(streams=True) < run(streams=False)


def test_out_of_range_rejected():
    ftl = make_ftl()
    with pytest.raises(ValueError):
        ftl.write(-1)
    with pytest.raises(ValueError):
        ftl.write(10_000)
    with pytest.raises(ValueError):
        ftl.write(0, stream=5)


def test_trim_outside_range_is_ignored():
    ftl = make_ftl()
    ftl.write(0)
    ftl.trim(-5, 3)       # no-op
    ftl.trim(250, 100)    # clipped
    ftl.check_invariants()
