"""Store-to-FTL bridge and the §3.1 multi-stream claim."""

import pytest

from repro.ftl.bridge import StreamBridge, measure_device_wa
from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.placement.registry import make_policy
from repro.trace.synthetic.ycsb import generate_ycsb_a


@pytest.fixture(scope="module")
def small_cfg():
    return LSSConfig(logical_blocks=4096, segment_blocks=64)


@pytest.fixture(scope="module")
def trace():
    return generate_ycsb_a(4096, 15_000, seed=6, read_ratio=0.0,
                           density=30.0)


def test_bridge_receives_every_flushed_block(small_cfg, trace):
    policy = make_policy("sepgc", small_cfg)
    store = LogStructuredStore(small_cfg, policy)
    bridge = StreamBridge(store, multi_stream=True)
    stats = store.replay(trace)
    # Every block the array wrote was programmed on the device.
    assert bridge.ftl.host_pages == stats.flash_blocks_written
    bridge.ftl.check_invariants()


def test_detach_stops_feed(small_cfg, trace):
    policy = make_policy("sepgc", small_cfg)
    store = LogStructuredStore(small_cfg, policy)
    bridge = StreamBridge(store, multi_stream=True)
    bridge.detach()
    store.replay(trace)
    assert bridge.ftl.host_pages == 0


def test_multi_stream_lowers_device_wa(small_cfg, trace):
    """§3.1: mapping groups to streams one-to-one reduces in-device WA."""
    multi = measure_device_wa("sepbit", trace, small_cfg, multi_stream=True)
    single = measure_device_wa("sepbit", trace, small_cfg,
                               multi_stream=False)
    assert multi.host_wa == pytest.approx(single.host_wa)  # same host run
    assert multi.device_wa <= single.device_wa + 1e-9
    assert multi.end_to_end_wa <= single.end_to_end_wa + 1e-9
    assert multi.label == "multi-stream"


def test_device_wa_at_least_one(small_cfg, trace):
    res = measure_device_wa("adapt", trace, small_cfg, multi_stream=True)
    assert res.device_wa >= 1.0
    assert res.end_to_end_wa >= res.host_wa
