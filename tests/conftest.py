"""Shared fixtures: small store configurations and compact traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.array.chunk import ChunkGeometry
from repro.common.units import KiB
from repro.lss.config import LSSConfig
from repro.trace.model import OP_WRITE, Trace


@pytest.fixture
def tiny_config() -> LSSConfig:
    """A deliberately small store: 4-block chunks, 16-block segments,
    4096-block logical space — GC cycles within a few thousand writes."""
    return LSSConfig(
        logical_blocks=4096,
        segment_blocks=16,
        chunk=ChunkGeometry(chunk_bytes=16 * KiB),  # 4 blocks per chunk
        over_provisioning=0.25,
        coalesce_window_us=100,
    )


@pytest.fixture
def small_config() -> LSSConfig:
    """Mid-size store used by integration tests."""
    return LSSConfig(logical_blocks=16_384, segment_blocks=128)


def make_write_trace(lbas, start_us: int = 0, gap_us: int = 10,
                     volume: str = "test") -> Trace:
    """Single-block writes at fixed spacing — the workhorse of unit tests."""
    lbas = np.asarray(list(lbas), dtype=np.int64)
    n = lbas.shape[0]
    ts = start_us + np.arange(n, dtype=np.int64) * gap_us
    ops = np.full(n, OP_WRITE, dtype=np.uint8)
    sizes = np.ones(n, dtype=np.int64)
    return Trace(ts, ops, lbas, sizes, volume=volume)


@pytest.fixture
def write_trace_factory():
    return make_write_trace
