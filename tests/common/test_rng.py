"""Deterministic RNG helpers."""

import numpy as np
import pytest

from repro.common.rng import make_rng, spawn_rngs


def test_make_rng_is_deterministic():
    a = make_rng(123).random(8)
    b = make_rng(123).random(8)
    assert np.array_equal(a, b)


def test_make_rng_passes_through_generator():
    gen = np.random.default_rng(7)
    assert make_rng(gen) is gen


def test_spawn_rngs_are_independent():
    rngs = spawn_rngs(42, 3)
    draws = [r.random(16) for r in rngs]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_rngs_reproducible():
    a = [r.random(4).tolist() for r in spawn_rngs(5, 2)]
    b = [r.random(4).tolist() for r in spawn_rngs(5, 2)]
    assert a == b


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(1, -1)
