"""Unit conversions."""

import pytest

from repro.common.units import (
    BLOCK_SIZE,
    GiB,
    KiB,
    MiB,
    blocks_of_bytes,
    bytes_of_blocks,
)


def test_size_constants_are_consistent():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB
    assert BLOCK_SIZE == 4 * KiB


def test_blocks_of_bytes_rounds_up():
    assert blocks_of_bytes(0) == 0
    assert blocks_of_bytes(1) == 1
    assert blocks_of_bytes(BLOCK_SIZE) == 1
    assert blocks_of_bytes(BLOCK_SIZE + 1) == 2
    assert blocks_of_bytes(10 * BLOCK_SIZE) == 10


def test_bytes_of_blocks_inverse_on_aligned_sizes():
    for n in (0, 1, 7, 1024):
        assert blocks_of_bytes(bytes_of_blocks(n)) == n


@pytest.mark.parametrize("func", [blocks_of_bytes, bytes_of_blocks])
def test_negative_inputs_rejected(func):
    with pytest.raises(ValueError):
        func(-1)
