"""Workload construction and caching for the figure drivers."""

import numpy as np

from repro.experiments.scale import SMOKE
from repro.experiments.workloads import (
    BASELINES,
    PROFILES,
    SCHEMES,
    fleet_for,
    stats_fleet_for,
)


def test_scheme_lists_consistent():
    assert set(BASELINES) | {"adapt"} == set(SCHEMES)
    assert len(PROFILES) == 3


def test_fleet_is_cached_identity():
    a = fleet_for("ali", SMOKE)
    b = fleet_for("ali", SMOKE)
    # Same underlying Trace objects (the lru_cache hit), fresh lists.
    assert a is not b
    assert all(x is y for x, y in zip(a, b))


def test_fleet_sizes_match_scale():
    fleet = fleet_for("msrc", SMOKE)
    assert len(fleet) == SMOKE.num_volumes
    for t in fleet:
        assert len(t) == SMOKE.volume_requests
        assert t.max_lba() < SMOKE.volume_blocks


def test_stats_fleet_is_lighter_but_wider():
    stats = stats_fleet_for("ali", SMOKE)
    main = fleet_for("ali", SMOKE)
    assert len(stats) == SMOKE.stats_volumes > len(main)
    assert len(stats[0]) < len(main[0])


def test_profiles_produce_distinct_fleets():
    a = fleet_for("ali", SMOKE)[0]
    t = fleet_for("tencent", SMOKE)[0]
    assert not np.array_equal(a.offsets, t.offsets)
