"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "replay" in out


def test_parser_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--scale", "huge"])


def test_replay_command(capsys):
    assert main(["replay", "--scheme", "sepgc", "--profile", "ali",
                 "--volumes", "1", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "sepgc on ali" in out
    assert "ali-000" in out


def test_fig2_command(capsys):
    assert main(["fig2", "--scale", "smoke"]) == 0
    assert "Fig 2" in capsys.readouterr().out


def test_extension_commands_listed(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "multistream" in out and "shared-store" in out
