"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "replay" in out


def test_parser_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--scale", "huge"])


def test_replay_command(capsys):
    assert main(["replay", "--scheme", "sepgc", "--profile", "ali",
                 "--volumes", "1", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "sepgc on ali" in out
    assert "ali-000" in out


def test_fig2_command(capsys):
    assert main(["fig2", "--scale", "smoke"]) == 0
    assert "Fig 2" in capsys.readouterr().out


def test_extension_commands_listed(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "multistream" in out and "shared-store" in out
    assert "obs" in out


def test_obs_command_writes_artifacts(capsys, tmp_path):
    out_dir = tmp_path / "obs"
    assert main(["obs", "--scheme", "sepbit", "--scale", "smoke",
                 "--out", str(out_dir), "--sample-every", "512"]) == 0
    out = capsys.readouterr().out
    assert "chunk_flush" in out
    events = out_dir / "ali-000.events.jsonl"
    series = out_dir / "ali-000.timeseries.csv"
    prom = out_dir / "ali-000.prom"
    for path in (events, series, prom):
        assert path.exists() and path.stat().st_size > 0
    first = events.read_text().splitlines()[0]
    assert '"type"' in first
    assert series.read_text().splitlines()[0].startswith("time_us,")
    assert "lss_user_blocks_total" in prom.read_text()


def test_replay_metrics_out(capsys, tmp_path):
    out_dir = tmp_path / "metrics"
    assert main(["replay", "--scheme", "sepgc", "--volumes", "1",
                 "--scale", "smoke", "--metrics-out", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "metrics written" in out
    assert (out_dir / "ali-000.events.jsonl").exists()
    assert (out_dir / "ali-000.timeseries.csv").exists()
    assert (out_dir / "ali-000.prom").exists()
