"""Table rendering."""

from repro.experiments.report import render_kv, render_table


def test_render_table_alignment():
    out = render_table(["a", "longheader"], [[1, 2.5], ["xx", 3.25]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "longheader" in lines[0]
    assert "2.500" in out
    assert "3.250" in out


def test_render_table_title_and_rule():
    out = render_table(["h"], [[1]], title="T")
    assert out.splitlines()[0] == "T"
    assert out.splitlines()[1] == "="


def test_render_table_floatfmt():
    out = render_table(["x"], [[0.123456]], floatfmt=".1f")
    assert "0.1" in out and "0.12" not in out


def test_render_kv():
    out = render_kv("K", {"alpha": 1.0, "beta": "x"})
    assert "alpha" in out and "1.0000" in out and "x" in out
