"""JSON/CSV result export."""

import csv
from dataclasses import dataclass

import pytest

from repro.experiments.export import export_csv, export_json, load_json


@dataclass(frozen=True)
class Row:
    scheme: str
    wa: float
    volumes: int
    nested: tuple = ()


ROWS = [Row("adapt", 2.5, 5), Row("sepgc", 3.1, 5)]


def test_json_roundtrip(tmp_path):
    p = tmp_path / "out.json"
    export_json(ROWS, p, metadata={"scale": "smoke"})
    meta, rows = load_json(p)
    assert meta == {"scale": "smoke"}
    assert rows == [
        {"scheme": "adapt", "wa": 2.5, "volumes": 5},
        {"scheme": "sepgc", "wa": 3.1, "volumes": 5},
    ]


def test_nested_fields_dropped(tmp_path):
    p = tmp_path / "out.json"
    export_json([Row("x", 1.0, 1, nested=(1, 2))], p)
    _, rows = load_json(p)
    assert "nested" not in rows[0]


def test_csv_export(tmp_path):
    p = tmp_path / "out.csv"
    export_csv(ROWS, p)
    with open(p) as fh:
        got = list(csv.DictReader(fh))
    assert got[0]["scheme"] == "adapt"
    assert float(got[1]["wa"]) == 3.1


def test_csv_empty(tmp_path):
    p = tmp_path / "empty.csv"
    export_csv([], p)
    assert p.read_text() == ""


def test_dict_rows_and_type_errors(tmp_path):
    p = tmp_path / "d.json"
    export_json([{"a": 1}], p)
    _, rows = load_json(p)
    assert rows == [{"a": 1}]
    with pytest.raises(TypeError):
        export_json([42], p)


def test_export_real_experiment_rows(tmp_path):
    from repro.experiments.fig2 import run_fig2
    from repro.experiments.scale import SMOKE
    rows = run_fig2(SMOKE)
    p = tmp_path / "fig2.json"
    export_json(rows, p, metadata={"figure": "fig2"})
    meta, got = load_json(p)
    assert meta["figure"] == "fig2"
    assert len(got) == 3
    assert {"ali", "tencent", "msrc"} == {r["profile"] for r in got}
