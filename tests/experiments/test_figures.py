"""Figure drivers at smoke scale (full runs live in benchmarks/)."""

import pytest

from repro.experiments.scale import SMOKE


@pytest.fixture(scope="module")
def smoke():
    return SMOKE


def test_fig2_driver(smoke):
    from repro.experiments.fig2 import render_fig2, run_fig2
    rows = run_fig2(smoke)
    assert {r.profile for r in rows} == {"ali", "tencent", "msrc"}
    text = render_fig2(rows)
    assert "Fig 2" in text and "tencent" in text


def test_fig3_driver(smoke):
    from repro.experiments.fig3 import render_fig3, run_fig3
    rows = run_fig3(smoke, schemes=("sepgc",))
    assert len(rows) == 2  # sepgc: user + gc groups
    occ = sum(r.occupancy_fraction for r in rows)
    assert occ == pytest.approx(1.0)
    assert "sepgc" in render_fig3(rows)


def test_fig8_driver_and_cache(smoke):
    from repro.experiments.fig8 import run_fig8, sweep
    first = sweep(smoke)
    second = sweep(smoke)
    assert len(first) == len(second)  # cached, consistent
    rows = run_fig8(smoke)
    # 2 victims x 3 profiles x 6 schemes
    assert len(rows) == 36
    assert all(r.overall_wa >= 1.0 for r in rows)


def test_fig9_driver(smoke):
    from repro.experiments.fig9 import run_fig9
    rows = run_fig9(smoke)
    assert len(rows) == 36
    for r in rows:
        assert r.frac_below_10pct <= r.frac_below_25pct \
            <= r.frac_below_50pct


def test_fig10_driver(smoke):
    from repro.experiments.fig10 import correlation, run_fig10
    points = run_fig10(smoke)  # pooled: 2 baselines x 3 profiles x volumes
    assert len(points) == 2 * 3 * smoke.num_volumes
    assert -1.0 <= correlation(points) <= 1.0
    ali_only = run_fig10(smoke, profile="ali")
    assert len(ali_only) == 2 * smoke.num_volumes


def test_fig11_density_driver(smoke):
    from repro.experiments.fig11 import run_fig11_density
    points = run_fig11_density(smoke, schemes=("sepgc", "adapt"))
    assert len(points) == 6
    settings = {p.setting for p in points}
    assert settings == {"LIGHT", "MEDIUM", "HEAVY"}


def test_fig11_skew_driver(smoke):
    from repro.experiments.fig11 import run_fig11_skew
    points = run_fig11_skew(smoke, schemes=("sepgc",), alphas=(0.0, 0.9))
    assert len(points) == 2


def test_fig12_driver(smoke):
    from repro.experiments.fig12 import (adapt_speedup, run_fig12a,
                                         run_fig12b)
    rows_a = run_fig12a(smoke, schemes=("sepgc", "adapt"))
    assert len(rows_a) == 6  # 2 schemes x 3 client counts
    s = adapt_speedup(rows_a, 8)
    assert "sepgc" in s
    rows_b = run_fig12b(smoke)
    assert rows_b[0].scheme == "sepbit" and rows_b[1].scheme == "adapt"


def test_ablation_driver(smoke):
    from repro.experiments.ablation import (run_mechanism_ablation,
                                            run_victim_ablation)
    mech = run_mechanism_ablation(smoke)
    assert {r.variant for r in mech} >= {"full", "substrate-only"}
    vict = run_victim_ablation(smoke)
    assert len(vict) == 5
