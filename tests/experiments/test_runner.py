"""Volume runner and aggregation."""

import pytest

from repro.experiments.runner import (
    overall_padding_ratio,
    overall_write_amplification,
    replay_volume,
    run_matrix,
    store_config_for,
)
from repro.trace.synthetic.ycsb import generate_ycsb_a


@pytest.fixture(scope="module")
def small_trace():
    return generate_ycsb_a(4096, 10_000, seed=5, read_ratio=0.0,
                           density=50.0)


def test_replay_volume_fields(small_trace):
    r = replay_volume("sepgc", small_trace, logical_blocks=4096)
    assert r.scheme == "sepgc"
    assert r.victim == "greedy"
    assert r.write_amplification >= 1.0
    assert 0 <= r.padding_ratio <= 1
    assert r.user_blocks == 14096  # fill + updates
    assert r.flash_blocks >= r.user_blocks


def test_replay_volume_collect_groups(small_trace):
    r = replay_volume("sepbit", small_trace, logical_blocks=4096,
                      collect_groups=True)
    assert len(r.group_traffic) == 6
    assert sum(r.group_occupancy) > 0


def test_run_matrix_cross_product(small_trace):
    results = run_matrix(["sepgc", "sepbit"], [small_trace],
                         victims=["greedy", "cost-benefit"],
                         logical_blocks=4096, workers=1)
    assert len(results) == 4
    assert {(r.scheme, r.victim) for r in results} == {
        ("sepgc", "greedy"), ("sepbit", "greedy"),
        ("sepgc", "cost-benefit"), ("sepbit", "cost-benefit")}


def test_overall_aggregates(small_trace):
    results = run_matrix(["sepgc"], [small_trace], logical_blocks=4096,
                         workers=1)
    wa = overall_write_amplification(results)
    assert wa == pytest.approx(results[0].write_amplification)
    assert 0 <= overall_padding_ratio(results) <= 1


def test_overall_empty():
    assert overall_write_amplification([]) == 0.0
    assert overall_padding_ratio([]) == 0.0


def test_store_config_for_scales_segment():
    small = store_config_for(4096)
    big = store_config_for(262_144)
    assert small.segment_blocks <= big.segment_blocks
    assert big.segment_blocks == 256


def test_replay_deterministic(small_trace):
    a = replay_volume("adapt", small_trace, logical_blocks=4096)
    b = replay_volume("adapt", small_trace, logical_blocks=4096)
    assert a.write_amplification == b.write_amplification
    assert a.flash_blocks == b.flash_blocks


def test_replay_volume_forwards_seed(small_trace, monkeypatch):
    import repro.experiments.runner as runner_mod

    seen = []
    real = runner_mod.store_config_for

    def capture(trace_blocks, victim="greedy", seed=0):
        seen.append(seed)
        return real(trace_blocks, victim=victim, seed=seed)

    monkeypatch.setattr(runner_mod, "store_config_for", capture)
    replay_volume("sepgc", small_trace, logical_blocks=4096, seed=7)
    assert seen == [7]


def test_run_matrix_forwards_seed(small_trace, monkeypatch):
    import repro.experiments.runner as runner_mod

    seen = []
    real = runner_mod.store_config_for

    def capture(trace_blocks, victim="greedy", seed=0):
        seen.append(seed)
        return real(trace_blocks, victim=victim, seed=seed)

    monkeypatch.setattr(runner_mod, "store_config_for", capture)
    run_matrix(["sepgc"], [small_trace], logical_blocks=4096, workers=1,
               seed=13)
    assert seen == [13]


def test_replay_volume_seed_is_deterministic(small_trace):
    # d-choice samples victims from the seeded RNG, so the seed is
    # behaviourally live, and the same seed must reproduce exactly.
    a = replay_volume("sepgc", small_trace, victim="d-choice",
                      logical_blocks=4096, seed=5)
    b = replay_volume("sepgc", small_trace, victim="d-choice",
                      logical_blocks=4096, seed=5)
    assert a == b


def test_replay_volume_rejects_zero_logical_blocks(small_trace):
    with pytest.raises(ValueError, match="logical_blocks"):
        replay_volume("sepgc", small_trace, logical_blocks=0)


def test_run_matrix_parallel_matches_serial(small_trace):
    kwargs = dict(victims=["greedy", "cost-benefit"], logical_blocks=4096)
    serial = run_matrix(["sepgc", "sepbit"], [small_trace], workers=1,
                        **kwargs)
    parallel = run_matrix(["sepgc", "sepbit"], [small_trace], workers=2,
                          **kwargs)
    assert serial == parallel


def test_replay_volume_collect_metrics(small_trace):
    r = replay_volume("sepgc", small_trace, logical_blocks=4096,
                      collect_metrics=True)
    assert r.metrics is not None
    assert r.metrics["counters"]["lss_user_blocks_total"] == r.user_blocks
    assert r.metrics["final"]["write_amplification"] == \
        pytest.approx(r.write_amplification, abs=1e-9)
    plain = replay_volume("sepgc", small_trace, logical_blocks=4096)
    assert plain.metrics is None
    # Metrics collection must not perturb the replay.
    assert plain.write_amplification == r.write_amplification


def test_run_matrix_collect_metrics_survives_workers(small_trace):
    results = run_matrix(["sepgc", "sepbit"], [small_trace],
                         logical_blocks=4096, workers=2,
                         collect_metrics=True)
    assert all(r.metrics is not None for r in results)
    assert results[0].metrics["events"]["chunk_flush"] > 0
