"""Scale presets and environment selection."""

import pytest

from repro.experiments.scale import DEFAULT, PAPER, SMOKE, current_scale


def test_presets_are_ordered():
    assert SMOKE.num_volumes < DEFAULT.num_volumes < PAPER.num_volumes
    assert SMOKE.ycsb_writes < DEFAULT.ycsb_writes < PAPER.ycsb_writes


def test_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    assert current_scale() is SMOKE
    monkeypatch.setenv("REPRO_SCALE", "PAPER")
    assert current_scale() is PAPER
    monkeypatch.delenv("REPRO_SCALE")
    assert current_scale() is DEFAULT


def test_unknown_scale_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "galactic")
    with pytest.raises(ValueError):
        current_scale()
