"""Trace surgery: slicing, remapping, rate scaling, splitting, multiplexing.

Production trace studies constantly need these: cut a diurnal window out of
a week, re-base sparse volumes onto one shared address space (cloud block
stores serve many volumes per log — §2.2's deployment), thin a trace to a
target duration, or speed traffic up/down to move it across the SLA
boundary.  All transforms are pure (they return new traces).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import TraceFormatError
from repro.trace.model import Trace


def time_slice(trace: Trace, start_us: int, end_us: int) -> Trace:
    """Requests with timestamps in ``[start_us, end_us)``, rebased to 0."""
    if end_us < start_us:
        raise ValueError("end_us must be >= start_us")
    m = (trace.timestamps >= start_us) & (trace.timestamps < end_us)
    ts = trace.timestamps[m]
    if ts.size:
        ts = ts - ts[0]
    return Trace(ts, trace.ops[m], trace.offsets[m], trace.sizes[m],
                 volume=f"{trace.volume}[{start_us}:{end_us}]")


def scale_rate(trace: Trace, factor: float) -> Trace:
    """Speed traffic up (`factor` > 1) or down by scaling all gaps.

    Crossing the coalescing-window boundary this way is how the density
    sensitivity of Fig 11 can be probed on *real* traces.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    ts = (trace.timestamps / factor).astype(np.int64)
    return Trace(ts, trace.ops.copy(), trace.offsets.copy(),
                 trace.sizes.copy(), volume=f"{trace.volume}x{factor:g}")


def remap_offsets(trace: Trace, base: int) -> Trace:
    """Shift the whole address range by ``base`` blocks."""
    if base < 0:
        raise ValueError("base must be >= 0")
    return Trace(trace.timestamps.copy(), trace.ops.copy(),
                 trace.offsets + base, trace.sizes.copy(),
                 volume=trace.volume)


def head(trace: Trace, num_requests: int) -> Trace:
    """First ``num_requests`` requests."""
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    return trace[:num_requests]


def multiplex(traces: list[Trace],
              address_blocks: list[int] | None = None
              ) -> tuple[Trace, list[int]]:
    """Merge per-volume traces onto one shared address space.

    Each volume gets a disjoint block range (its footprint rounded up, or
    the explicit ``address_blocks``); streams are interleaved by
    timestamp.  Returns ``(merged_trace, base_offsets)``.

    This is the shared-log deployment of §2.2: one LSS instance serving
    many sparse volumes, where their combined density fills chunks that no
    single volume could.
    """
    if not traces:
        raise TraceFormatError("nothing to multiplex")
    if address_blocks is None:
        address_blocks = [t.max_lba() + 1 for t in traces]
    if len(address_blocks) != len(traces):
        raise ValueError("address_blocks length mismatch")
    bases, cursor = [], 0
    shifted = []
    for trace, span in zip(traces, address_blocks):
        if trace.max_lba() + 1 > span:
            raise ValueError(
                f"volume {trace.volume} exceeds its {span}-block range")
        bases.append(cursor)
        shifted.append(remap_offsets(trace, cursor))
        cursor += span
    merged = Trace.concat(shifted, volume="+".join(t.volume
                                                   for t in traces))
    return merged, bases


def split_by_address(trace: Trace, bases: list[int],
                     spans: list[int]) -> list[Trace]:
    """Inverse of :func:`multiplex`: carve per-volume traces back out."""
    if len(bases) != len(spans):
        raise ValueError("bases/spans length mismatch")
    out = []
    for base, span in zip(bases, spans):
        m = (trace.offsets >= base) & (trace.offsets + trace.sizes
                                       <= base + span)
        out.append(Trace(trace.timestamps[m], trace.ops[m],
                         trace.offsets[m] - base, trace.sizes[m],
                         volume=f"{trace.volume}@{base}"))
    return out
