"""Struct-of-arrays block I/O trace container.

A trace is a time-ordered sequence of block requests.  Offsets and sizes are
expressed in 4 KiB blocks (the LSS request unit, paper §2.1); timestamps are
integer microseconds.  The struct-of-arrays layout keeps replay loops and
statistics vectorisable with NumPy instead of allocating per-request Python
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.common.errors import TraceFormatError

#: Operation codes stored in :attr:`Trace.ops`.
OP_READ: int = 0
OP_WRITE: int = 1


@dataclass
class Trace:
    """A block-level I/O trace in struct-of-arrays form.

    Attributes:
        timestamps: int64 microseconds, non-decreasing.
        ops: uint8, each ``OP_READ`` or ``OP_WRITE``.
        offsets: int64 starting LBA (in blocks) of each request.
        sizes: int64 request length in blocks (>= 1).
        volume: optional volume/device label for provenance.
    """

    timestamps: np.ndarray
    ops: np.ndarray
    offsets: np.ndarray
    sizes: np.ndarray
    volume: str = "anonymous"
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=np.int64)
        self.ops = np.asarray(self.ops, dtype=np.uint8)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.sizes = np.asarray(self.sizes, dtype=np.int64)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, volume: str = "anonymous") -> "Trace":
        """An empty trace (useful as a fold seed for :meth:`concat`)."""
        z = np.empty(0, dtype=np.int64)
        return cls(z, z.astype(np.uint8), z.copy(), z.copy(), volume=volume)

    @classmethod
    def from_rows(
        cls,
        rows: list[tuple[int, int, int, int]],
        volume: str = "anonymous",
    ) -> "Trace":
        """Build from ``(timestamp_us, op, offset_blocks, size_blocks)`` rows."""
        if not rows:
            return cls.empty(volume)
        arr = np.asarray(rows, dtype=np.int64)
        return cls(arr[:, 0], arr[:, 1].astype(np.uint8), arr[:, 2], arr[:, 3],
                   volume=volume)

    @staticmethod
    def concat(traces: list["Trace"], volume: str | None = None) -> "Trace":
        """Concatenate and time-sort several traces into one.

        Ties are broken by the order the traces are given (stable sort), so
        merging per-volume streams is deterministic.
        """
        if not traces:
            return Trace.empty(volume or "anonymous")
        ts = np.concatenate([t.timestamps for t in traces])
        ops = np.concatenate([t.ops for t in traces])
        off = np.concatenate([t.offsets for t in traces])
        sz = np.concatenate([t.sizes for t in traces])
        order = np.argsort(ts, kind="stable")
        return Trace(ts[order], ops[order], off[order], sz[order],
                     volume=volume or "+".join(t.volume for t in traces))

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    def __getitem__(self, idx: slice) -> "Trace":
        if not isinstance(idx, slice):
            raise TypeError("Trace supports slice indexing only")
        return Trace(self.timestamps[idx], self.ops[idx], self.offsets[idx],
                     self.sizes[idx], volume=self.volume)

    def iter_requests(self) -> Iterator[tuple[int, int, int, int]]:
        """Yield ``(timestamp, op, offset, size)`` tuples (slow path; prefer
        array access in hot loops)."""
        for i in range(len(self)):
            yield (int(self.timestamps[i]), int(self.ops[i]),
                   int(self.offsets[i]), int(self.sizes[i]))

    # ------------------------------------------------------------------
    # validation and derived quantities
    # ------------------------------------------------------------------
    def validate(self) -> "Trace":
        """Check internal consistency; raise :class:`TraceFormatError`."""
        n = len(self)
        for name in ("ops", "offsets", "sizes"):
            if getattr(self, name).shape[0] != n:
                raise TraceFormatError(
                    f"column {name!r} length != timestamps length")
        if n:
            if np.any(np.diff(self.timestamps) < 0):
                raise TraceFormatError("timestamps are not non-decreasing")
            if np.any(self.sizes < 1):
                raise TraceFormatError("request sizes must be >= 1 block")
            if np.any(self.offsets < 0):
                raise TraceFormatError("negative offset")
            if np.any((self.ops != OP_READ) & (self.ops != OP_WRITE)):
                raise TraceFormatError("unknown op code")
        self._validated = True
        return self

    @property
    def duration_us(self) -> int:
        """Trace span in microseconds (0 for traces with < 2 requests)."""
        if len(self) < 2:
            return 0
        return int(self.timestamps[-1] - self.timestamps[0])

    def write_mask(self) -> np.ndarray:
        return self.ops == OP_WRITE

    def writes(self) -> "Trace":
        """A view of this trace containing only write requests."""
        m = self.write_mask()
        return Trace(self.timestamps[m], self.ops[m], self.offsets[m],
                     self.sizes[m], volume=self.volume)

    def total_write_blocks(self) -> int:
        return int(self.sizes[self.write_mask()].sum())

    def max_lba(self) -> int:
        """Highest block address touched by any request (-1 for empty)."""
        if not len(self):
            return -1
        return int((self.offsets + self.sizes).max() - 1)

    def unique_write_blocks(self) -> int:
        """Number of distinct LBAs written at least once (footprint)."""
        m = self.write_mask()
        if not m.any():
            return 0
        off, sz = self.offsets[m], self.sizes[m]
        seen = np.zeros(int((off + sz).max()), dtype=bool)
        # Mark [off, off+sz) ranges via difference array, vectorised.
        diff = np.zeros(seen.shape[0] + 1, dtype=np.int64)
        np.add.at(diff, off, 1)
        np.add.at(diff, off + sz, -1)
        return int(np.count_nonzero(np.cumsum(diff[:-1]) > 0))
