"""Writers for the native CSV trace format (round-trips with the parser)."""

from __future__ import annotations

from pathlib import Path
from typing import IO

from repro.common.units import BLOCK_SIZE
from repro.trace.model import OP_WRITE, Trace

_HEADER = "timestamp_us,op,offset_bytes,size_bytes\n"


def write_csv(trace: Trace, dest: str | Path | IO[str], header: bool = True) -> None:
    """Serialise ``trace`` to the native CSV format (byte offsets/sizes)."""
    if isinstance(dest, (str, Path)):
        with open(dest, "w") as fh:
            write_csv(trace, fh, header=header)
        return
    if header:
        dest.write(_HEADER)
    ts, ops, off, sz = trace.timestamps, trace.ops, trace.offsets, trace.sizes
    for i in range(len(trace)):
        op = "W" if ops[i] == OP_WRITE else "R"
        dest.write(
            f"{ts[i]},{op},{off[i] * BLOCK_SIZE},{sz[i] * BLOCK_SIZE}\n")
