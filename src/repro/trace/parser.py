"""Parsers for on-disk trace formats.

Three formats are supported:

* ``csv`` — the library's native format:
  ``timestamp_us,op,offset_bytes,size_bytes`` with ``op`` in {``R``, ``W``}.
* ``msr`` — MSR-Cambridge block traces [Narayanan et al., ToS'08]:
  ``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`` where the
  timestamp is Windows filetime (100 ns ticks) and offset/size are bytes.
* ``ali`` — the Alibaba cloud block-trace format [Li et al., ToS'23]:
  ``device_id,opcode,offset,length,timestamp`` with timestamp already in
  microseconds.

All parsers normalise to the :class:`~repro.trace.model.Trace`
struct-of-arrays container with block-granular offsets and sizes.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterable

import numpy as np

from repro.common.errors import TraceFormatError
from repro.common.units import BLOCK_SIZE
from repro.trace.model import OP_READ, OP_WRITE, Trace

_WRITE_TOKENS = {"w", "write", "1"}
_READ_TOKENS = {"r", "read", "0"}


def _open_text(path: str | Path) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"))
    return open(path, "r")


def _op_code(token: str) -> int:
    t = token.strip().lower()
    if t in _WRITE_TOKENS:
        return OP_WRITE
    if t in _READ_TOKENS:
        return OP_READ
    raise TraceFormatError(f"unknown op token {token!r}")


def _to_block_range(offset_bytes: int, size_bytes: int) -> tuple[int, int]:
    """Convert a byte extent into the covering block extent."""
    if size_bytes <= 0:
        raise TraceFormatError(f"non-positive request size {size_bytes}")
    first = offset_bytes // BLOCK_SIZE
    last = (offset_bytes + size_bytes - 1) // BLOCK_SIZE
    return first, last - first + 1


def _build(rows: list[tuple[int, int, int, int]], volume: str) -> Trace:
    trace = Trace.from_rows(rows, volume=volume)
    order = np.argsort(trace.timestamps, kind="stable")
    trace = Trace(trace.timestamps[order], trace.ops[order],
                  trace.offsets[order], trace.sizes[order], volume=volume)
    return trace.validate()


def parse_csv(source: str | Path | Iterable[str], volume: str = "csv") -> Trace:
    """Parse the native CSV format (header line optional)."""
    lines = _iter_lines(source)
    rows: list[tuple[int, int, int, int]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if lineno == 1 and not parts[0].lstrip("-").isdigit():
            continue  # header
        if len(parts) != 4:
            raise TraceFormatError(f"line {lineno}: expected 4 fields")
        try:
            ts = int(parts[0])
            op = _op_code(parts[1])
            off_b, sz_b = int(parts[2]), int(parts[3])
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        off, sz = _to_block_range(off_b, sz_b)
        rows.append((ts, op, off, sz))
    return _build(rows, volume)


def parse_msr(source: str | Path | Iterable[str], volume: str = "msr") -> Trace:
    """Parse an MSR-Cambridge trace; timestamps converted from 100 ns ticks.

    The first timestamp is rebased to zero so synthetic and real traces share
    a time origin.
    """
    lines = _iter_lines(source)
    rows: list[tuple[int, int, int, int]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.split(",")
        if len(parts) < 6:
            raise TraceFormatError(f"line {lineno}: expected >= 6 fields")
        try:
            ts = int(parts[0]) // 10  # 100 ns ticks -> microseconds
            op = _op_code(parts[3])
            off_b, sz_b = int(parts[4]), int(parts[5])
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        off, sz = _to_block_range(off_b, sz_b)
        rows.append((ts, op, off, sz))
    if rows:
        base = min(r[0] for r in rows)
        rows = [(ts - base, op, off, sz) for ts, op, off, sz in rows]
    return _build(rows, volume)


def parse_ali(source: str | Path | Iterable[str], volume: str = "ali") -> Trace:
    """Parse the Alibaba block-trace format (offset/length in bytes)."""
    lines = _iter_lines(source)
    rows: list[tuple[int, int, int, int]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.split(",")
        if len(parts) != 5:
            raise TraceFormatError(f"line {lineno}: expected 5 fields")
        try:
            op = _op_code(parts[1])
            off_b, sz_b = int(parts[2]), int(parts[3])
            ts = int(parts[4])
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        off, sz = _to_block_range(off_b, sz_b)
        rows.append((ts, op, off, sz))
    if rows:
        base = min(r[0] for r in rows)
        rows = [(ts - base, op, off, sz) for ts, op, off, sz in rows]
    return _build(rows, volume)


def _iter_lines(source: str | Path | Iterable[str]) -> Iterable[str]:
    if isinstance(source, (str, Path)):
        with _open_text(source) as fh:
            yield from fh
    else:
        yield from source


_PARSERS = {"csv": parse_csv, "msr": parse_msr, "ali": parse_ali}


def load_trace(path: str | Path, fmt: str = "csv", volume: str | None = None) -> Trace:
    """Load a trace file in one of the supported formats."""
    try:
        parser = _PARSERS[fmt]
    except KeyError:
        raise TraceFormatError(
            f"unknown format {fmt!r}; expected one of {sorted(_PARSERS)}"
        ) from None
    return parser(path, volume=volume or Path(path).stem)
