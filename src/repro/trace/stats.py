"""Trace characterisation statistics (drives Figure 2 of the paper).

The paper's Observation 1 characterises production workloads by two
marginals: the per-volume average request rate (Fig 2a) and the write
request-size distribution (Fig 2b).  This module computes both, plus the
empirical CDF helpers shared by several experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import BLOCK_SIZE, KiB, MICROS_PER_SEC
from repro.trace.model import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary characteristics of one trace (one volume)."""

    volume: str
    num_requests: int
    num_writes: int
    duration_us: int
    avg_request_rate: float          # requests / second
    write_size_blocks: np.ndarray    # per-write sizes, blocks
    footprint_blocks: int            # unique blocks written

    @property
    def write_ratio(self) -> float:
        if self.num_requests == 0:
            return 0.0
        return self.num_writes / self.num_requests

    def write_size_fraction_le(self, size_bytes: int) -> float:
        """Fraction of writes no larger than ``size_bytes`` (paper reports
        the <= 8 KiB and > 32 KiB shares)."""
        if self.write_size_blocks.size == 0:
            return 0.0
        limit_blocks = size_bytes // BLOCK_SIZE
        return float(np.mean(self.write_size_blocks <= limit_blocks))

    def write_size_fraction_gt(self, size_bytes: int) -> float:
        return 1.0 - self.write_size_fraction_le(size_bytes)


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for one trace."""
    writes = trace.writes()
    dur = trace.duration_us
    rate = (len(trace) / (dur / MICROS_PER_SEC)) if dur > 0 else float(len(trace))
    return TraceStats(
        volume=trace.volume,
        num_requests=len(trace),
        num_writes=len(writes),
        duration_us=dur,
        avg_request_rate=rate,
        write_size_blocks=writes.sizes.copy(),
        footprint_blocks=trace.unique_write_blocks(),
    )


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_fraction)`` for plotting a CDF."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        return v, v
    frac = np.arange(1, v.size + 1, dtype=float) / v.size
    return v, frac


def cdf_at(values: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate the empirical CDF of ``values`` at each of ``points``."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        return np.zeros(len(points))
    return np.searchsorted(v, np.asarray(points, dtype=float),
                           side="right") / v.size


def request_rate_cdf(stats: list[TraceStats]) -> tuple[np.ndarray, np.ndarray]:
    """Fig 2a: CDF over per-volume average request rates."""
    return empirical_cdf(np.array([s.avg_request_rate for s in stats]))


def write_size_distribution(stats: list[TraceStats]) -> dict[str, float]:
    """Fig 2b summary: pooled write-size shares at the paper's breakpoints."""
    sizes = np.concatenate(
        [s.write_size_blocks for s in stats if s.write_size_blocks.size]
    ) if stats else np.empty(0)
    if sizes.size == 0:
        return {"le_8KiB": 0.0, "le_32KiB": 0.0, "gt_32KiB": 0.0}
    return {
        "le_8KiB": float(np.mean(sizes * BLOCK_SIZE <= 8 * KiB)),
        "le_32KiB": float(np.mean(sizes * BLOCK_SIZE <= 32 * KiB)),
        "gt_32KiB": float(np.mean(sizes * BLOCK_SIZE > 32 * KiB)),
    }
