"""Chunked trace streams: O(chunk) ingestion for fleet-scale replay.

Whole-trace expansion is what caps the single-process runner: a volume's
four int64 columns (plus the engine's per-block expansion) must fit in
memory before the first request is replayed.  A :class:`TraceStream`
instead hands the replay loop one bounded chunk at a time — per-volume
memory is O(``chunk_requests``), not O(trace) — and every stream is
*resumable*: chunk ``i`` plus the small carried state after it is enough
to regenerate chunks ``i+1...`` bit-identically, which is what fleet
checkpoint/resume (:mod:`repro.fleet`) builds on.

Three sources implement the protocol:

* :class:`SyntheticVolumeStream` — chunked cloud-profile generation.
  Each chunk draws from an independent RNG keyed on ``(seed, volume,
  chunk index)`` (:func:`repro.common.rng.tenant_rng`), with the Zipf
  popularity layout fixed per volume and only a tiny carried state (time
  cursor, sequential-run cursor) crossing chunk boundaries.  The stream
  is therefore deterministic, order-independent across tenants, and
  seekable to any chunk.
* :class:`MaterializedStream` — slices an in-memory :class:`Trace`
  (adapter for small traces and tests; memory is obviously O(trace)).
* :class:`FileChunkStream` — reads chunks lazily from an ``.npz`` file
  written by :func:`write_chunk_file` (NumPy loads one member array per
  access, so a multi-gigabyte on-disk trace replays in O(chunk) RAM).

Note the determinism contract: a synthetic stream is its *own* trace
definition.  It does not reproduce ``generate_volume``'s whole-trace
output (that generator draws all n requests from one RNG stream, which
cannot be chunked without replaying everything); fleets that stream must
compare against the same stream, and they do — serial, sharded and
resumed replays of one stream are bit-identical.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Iterator

import numpy as np

from repro.common.errors import TraceFormatError
from repro.common.rng import tenant_rng
from repro.trace.model import OP_READ, OP_WRITE, Trace
from repro.trace.synthetic.arrivals import BurstyArrivalModel
from repro.trace.synthetic.cloud import (
    _SIZE_CHOICES,
    CloudProfile,
    VolumeSpec,
    _apply_sequential_runs,
    profile_by_name,
)
from repro.trace.synthetic.zipf import ZipfSampler

#: Default requests per chunk — a few MB of transient arrays per worker.
DEFAULT_CHUNK_REQUESTS = 8192

#: On-disk chunk-file format version (see :func:`write_chunk_file`).
CHUNK_FILE_VERSION = 1


class TraceStream:
    """Base chunked-trace protocol.

    A stream describes one volume's request sequence as ``num_chunks``
    consecutive :class:`Trace` chunks whose concatenation is the full
    trace.  Subclasses implement :meth:`chunk`; generation state that
    must flow across chunk boundaries travels through the opaque
    ``state`` value (picklable, small), seeded by :meth:`initial_state`.

    Attributes:
        volume: tenant/volume label (also the seed-derivation identity
            for synthetic streams).
        unique_blocks: size of the volume's logical address space.
        num_requests: total requests across all chunks.
        chunk_requests: maximum requests per chunk.
    """

    volume: str
    unique_blocks: int
    num_requests: int
    chunk_requests: int

    @property
    def num_chunks(self) -> int:
        return -(-self.num_requests // self.chunk_requests) \
            if self.num_requests else 0

    def initial_state(self) -> Any:
        """Carried state preceding chunk 0 (default: none)."""
        return None

    def chunk(self, index: int, state: Any) -> tuple[Trace, Any]:
        """Return ``(chunk_trace, state_after)`` for chunk ``index``.

        ``state`` must be the state returned by chunk ``index - 1`` (or
        :meth:`initial_state` for chunk 0); passing anything else breaks
        the bit-identical resume contract.
        """
        raise NotImplementedError

    def chunks(self, start: int = 0,
               state: Any = None) -> Iterator[tuple[int, Trace, Any]]:
        """Yield ``(index, chunk_trace, state_after)`` from ``start`` on.

        ``state`` is required when ``start > 0`` (it is whatever chunk
        ``start - 1`` returned — a resuming caller restores it from its
        checkpoint).
        """
        if start == 0 and state is None:
            state = self.initial_state()
        for i in range(start, self.num_chunks):
            trace, state = self.chunk(i, state)
            yield i, trace, state

    def materialize(self) -> Trace:
        """Concatenate every chunk into one in-memory :class:`Trace`
        (tests and small runs; defeats the purpose at scale)."""
        parts = [trace for _, trace, _ in self.chunks()]
        if not parts:
            return Trace.empty(self.volume)
        return Trace(
            np.concatenate([t.timestamps for t in parts]),
            np.concatenate([t.ops for t in parts]),
            np.concatenate([t.offsets for t in parts]),
            np.concatenate([t.sizes for t in parts]),
            volume=self.volume)

    def _bounds(self, index: int) -> tuple[int, int]:
        """Request range ``[lo, hi)`` of chunk ``index`` (with checks)."""
        if not 0 <= index < self.num_chunks:
            raise IndexError(
                f"chunk {index} out of range [0, {self.num_chunks})")
        lo = index * self.chunk_requests
        return lo, min(lo + self.chunk_requests, self.num_requests)


class MaterializedStream(TraceStream):
    """Adapter presenting an in-memory :class:`Trace` as a stream."""

    def __init__(self, trace: Trace,
                 chunk_requests: int = DEFAULT_CHUNK_REQUESTS) -> None:
        if chunk_requests < 1:
            raise ValueError("chunk_requests must be >= 1")
        self._trace = trace
        self.volume = trace.volume
        self.unique_blocks = trace.max_lba() + 1
        self.num_requests = len(trace)
        self.chunk_requests = chunk_requests

    def chunk(self, index: int, state: Any) -> tuple[Trace, Any]:
        lo, hi = self._bounds(index)
        return self._trace[lo:hi], None


class SyntheticVolumeStream(TraceStream):
    """Chunked cloud-profile trace generation (see module docstring).

    Args:
        profile: a :class:`CloudProfile` or its name.
        volume: tenant identity; combined with ``seed`` it fully
            determines the stream, independent of any other tenant.
        unique_blocks: volume footprint in 4 KiB blocks.
        num_requests: total requests to generate.
        seed: fleet master seed (hashed with the volume name — never
            enumerated positionally).
        chunk_requests: chunk size bound.
    """

    def __init__(self, profile: CloudProfile | str, volume: str,
                 unique_blocks: int, num_requests: int, seed: int,
                 chunk_requests: int = DEFAULT_CHUNK_REQUESTS) -> None:
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        if chunk_requests < 1:
            raise ValueError("chunk_requests must be >= 1")
        if num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        self.profile = profile
        self.volume = volume
        self.unique_blocks = unique_blocks
        self.num_requests = num_requests
        self.seed = seed
        self.chunk_requests = chunk_requests
        #: Per-volume draws: one spec (rate/skew/read-ratio), one fixed
        #: Zipf rank->block shuffle.  Both keyed on the volume name so
        #: they are identical on every shard that instantiates the
        #: stream.
        self.spec = VolumeSpec.draw(profile, volume, unique_blocks,
                                    num_requests,
                                    tenant_rng(seed, volume, "spec"))
        self._sampler = ZipfSampler(unique_blocks, self.spec.zipf_alpha,
                                    rng=tenant_rng(seed, volume, "zipf"))
        self._arrivals = BurstyArrivalModel(
            mean_rate=self.spec.mean_rate,
            mean_burst_len=profile.mean_burst_len,
            intra_burst_gap_us=profile.intra_burst_gap_us)

    def initial_state(self) -> dict:
        return {"t_cursor": 0, "prev_end": None}

    def chunk(self, index: int, state: dict) -> tuple[Trace, dict]:
        lo, hi = self._bounds(index)
        n = hi - lo
        rng = tenant_rng(self.seed, self.volume, f"chunk:{index}")
        prof = self.profile

        ts = self._arrivals.generate(n, rng=rng) + int(state["t_cursor"])
        ops = np.where(rng.random(n) < self.spec.read_ratio, OP_READ,
                       OP_WRITE).astype(np.uint8)
        sizes = rng.choice(_SIZE_CHOICES, size=n,
                           p=np.asarray(prof.write_size_probs))
        offsets = self._sampler.sample(n, rng=rng)

        seq = rng.random(n) < prof.sequential_prob
        prev_end = state["prev_end"]
        if prev_end is None:
            seq[0] = False
        offsets, prev_end = _apply_sequential_runs(
            offsets, sizes, seq, self.unique_blocks, prev_end=prev_end)
        offsets = np.minimum(offsets,
                             np.maximum(self.unique_blocks - sizes, 0))

        trace = Trace(ts, ops, offsets, sizes,
                      volume=self.volume).validate()
        return trace, {"t_cursor": int(ts[-1]) + 1, "prev_end": prev_end}


# ----------------------------------------------------------------------
# on-disk chunk files
# ----------------------------------------------------------------------
def write_chunk_file(stream: TraceStream, path: str) -> str:
    """Persist ``stream`` as an uncompressed ``.npz`` of per-chunk arrays.

    Uncompressed on purpose: :class:`numpy.lib.npyio.NpzFile` reads one
    member per access, so :class:`FileChunkStream` replays the file in
    O(chunk) memory.  The write is atomic (temp + ``os.replace``), same
    discipline as :mod:`repro.perf.tracecache`.
    """
    arrays: dict[str, np.ndarray] = {
        "version": np.int64(CHUNK_FILE_VERSION),
        "volume": np.array(stream.volume),
        "unique_blocks": np.int64(stream.unique_blocks),
        "num_requests": np.int64(stream.num_requests),
        "chunk_requests": np.int64(stream.chunk_requests),
        "num_chunks": np.int64(stream.num_chunks),
    }
    for i, trace, _ in stream.chunks():
        arrays[f"c{i}_timestamps"] = trace.timestamps
        arrays[f"c{i}_ops"] = trace.ops
        arrays[f"c{i}_offsets"] = trace.offsets
        arrays[f"c{i}_sizes"] = trace.sizes
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


class FileChunkStream(TraceStream):
    """Stream a chunk file written by :func:`write_chunk_file`.

    The backing :class:`NpzFile` is opened lazily and dropped on pickle
    (worker processes reopen it on first access), so the stream object
    itself ships cheaply across process boundaries.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._npz = None
        meta = self._file()
        if int(meta["version"]) != CHUNK_FILE_VERSION:
            raise TraceFormatError(
                f"{path}: chunk-file version {int(meta['version'])}, "
                f"expected {CHUNK_FILE_VERSION}")
        self.volume = str(meta["volume"])
        self.unique_blocks = int(meta["unique_blocks"])
        self.num_requests = int(meta["num_requests"])
        self.chunk_requests = int(meta["chunk_requests"])

    def _file(self):
        if self._npz is None:
            try:
                self._npz = np.load(self.path, allow_pickle=False)
            except (OSError, ValueError) as exc:
                raise TraceFormatError(
                    f"cannot read chunk file {self.path}: {exc}") from exc
        return self._npz

    def chunk(self, index: int, state: Any) -> tuple[Trace, Any]:
        self._bounds(index)
        z = self._file()
        try:
            trace = Trace(z[f"c{index}_timestamps"], z[f"c{index}_ops"],
                          z[f"c{index}_offsets"], z[f"c{index}_sizes"],
                          volume=self.volume)
        except KeyError as exc:
            raise TraceFormatError(
                f"{self.path}: missing chunk {index}") from exc
        return trace, None

    def close(self) -> None:
        if self._npz is not None:
            self._npz.close()
            self._npz = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_npz"] = None
        return state


__all__ = ["CHUNK_FILE_VERSION", "DEFAULT_CHUNK_REQUESTS",
           "FileChunkStream", "MaterializedStream", "SyntheticVolumeStream",
           "TraceStream", "write_chunk_file"]
