"""Block-level I/O trace model, parsers, statistics, synthetic generators
and chunked streams."""

from repro.trace.model import OP_READ, OP_WRITE, Trace
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.stream import (
    DEFAULT_CHUNK_REQUESTS,
    FileChunkStream,
    MaterializedStream,
    SyntheticVolumeStream,
    TraceStream,
    write_chunk_file,
)

__all__ = ["Trace", "OP_READ", "OP_WRITE", "TraceStats", "compute_stats",
           "TraceStream", "MaterializedStream", "SyntheticVolumeStream",
           "FileChunkStream", "write_chunk_file", "DEFAULT_CHUNK_REQUESTS"]
