"""Block-level I/O trace model, parsers, statistics and synthetic generators."""

from repro.trace.model import OP_READ, OP_WRITE, Trace
from repro.trace.stats import TraceStats, compute_stats

__all__ = ["Trace", "OP_READ", "OP_WRITE", "TraceStats", "compute_stats"]
