"""Arrival-process models for synthetic traces.

Production block traffic is bursty: long idle gaps punctuated by trains of
closely spaced requests (the paper's Observation 1 reports sub-10 req/s
*average* rates, yet padding ratios imply multi-request coalescing windows).
We model arrivals as a Poisson process of *bursts*; each burst carries a
geometrically distributed number of requests separated by short intra-burst
gaps.  The mean rate is therefore ``burst_rate * mean_burst_len``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.common.units import MICROS_PER_SEC


@dataclass(frozen=True)
class BurstyArrivalModel:
    """Parameters of the bursty arrival process.

    Attributes:
        mean_rate: long-run average request rate (requests / second).
        mean_burst_len: mean number of requests per burst (>= 1).
        intra_burst_gap_us: mean gap between requests inside a burst.
    """

    mean_rate: float
    mean_burst_len: float = 8.0
    intra_burst_gap_us: float = 20.0

    def __post_init__(self) -> None:
        if self.mean_rate <= 0:
            raise ValueError(f"mean_rate must be > 0, got {self.mean_rate}")
        if self.mean_burst_len < 1:
            raise ValueError("mean_burst_len must be >= 1")
        if self.intra_burst_gap_us < 0:
            raise ValueError("intra_burst_gap_us must be >= 0")

    def generate(self, num_requests: int,
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Return ``num_requests`` non-decreasing int64 µs timestamps."""
        if num_requests < 0:
            raise ValueError(f"negative request count {num_requests}")
        if num_requests == 0:
            return np.empty(0, dtype=np.int64)
        rng = make_rng(rng)

        # Draw burst lengths until they cover the request budget.
        p = 1.0 / self.mean_burst_len
        est_bursts = max(8, int(num_requests * p * 2))
        lengths: list[np.ndarray] = []
        covered = 0
        while covered < num_requests:
            batch = rng.geometric(p, size=est_bursts)
            lengths.append(batch)
            covered += int(batch.sum())
        lens = np.concatenate(lengths)
        cut = int(np.searchsorted(np.cumsum(lens), num_requests)) + 1
        lens = lens[:cut]

        burst_rate = self.mean_rate / self.mean_burst_len
        mean_gap_us = MICROS_PER_SEC / burst_rate
        burst_gaps = rng.exponential(mean_gap_us, size=lens.size)
        burst_starts = np.cumsum(burst_gaps)

        intra = rng.exponential(max(self.intra_burst_gap_us, 1e-9),
                                size=int(lens.sum()))
        # First request of each burst sits at the burst start: zero its gap,
        # then cumulative-sum within bursts.
        starts_idx = np.concatenate(([0], np.cumsum(lens)[:-1]))
        intra[starts_idx] = 0.0
        within = np.cumsum(intra)
        within -= np.repeat(within[starts_idx], lens)
        ts = np.repeat(burst_starts, lens) + within
        ts = np.sort(ts[:num_requests])
        return ts.astype(np.int64)


def uniform_arrivals(num_requests: int, inter_arrival_us: float,
                     rng: np.random.Generator | int | None = None,
                     jitter: float = 0.0) -> np.ndarray:
    """Evenly spaced timestamps with optional uniform jitter fraction.

    Used by the YCSB density sweep (Fig 11 left), where the experimental
    variable is exactly the inter-request gap relative to the 100 µs SLA.
    """
    if num_requests < 0:
        raise ValueError(f"negative request count {num_requests}")
    if inter_arrival_us <= 0:
        raise ValueError("inter_arrival_us must be > 0")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be in [0, 1]")
    base = np.arange(num_requests, dtype=np.float64) * inter_arrival_us
    if jitter > 0 and num_requests:
        rng = make_rng(rng)
        base += rng.uniform(0, jitter * inter_arrival_us, size=num_requests)
        base = np.sort(base)
    return base.astype(np.int64)
