"""Synthetic workload generators calibrated to the paper's trace statistics.

Real Alibaba/Tencent/MSRC traces are not redistributable, so the generators
here synthesise volumes whose marginal statistics match what the paper itself
reports in Figure 2 and §4.1 (see DESIGN.md, "Substitutions").
"""

from repro.trace.synthetic.zipf import ZipfSampler
from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a
from repro.trace.synthetic.cloud import (
    CloudProfile,
    VolumeSpec,
    generate_fleet,
    generate_volume,
    profile_by_name,
)

__all__ = [
    "ZipfSampler",
    "DensityPreset",
    "generate_ycsb_a",
    "CloudProfile",
    "VolumeSpec",
    "generate_volume",
    "generate_fleet",
    "profile_by_name",
]
