"""Production-cloud volume generators (Ali-like, Tencent-like, MSRC-like).

Each profile is calibrated against the characteristics the paper reports in
Figure 2 and §2.3:

* access density is sparse — 75–86 % of volumes average < 10 req/s and only
  1.9–2.7 % exceed 100 req/s (log-normal per-volume rate);
* small writes dominate — 69.8–80.9 % of writes are <= 8 KiB, 10.8–23.4 %
  exceed 32 KiB (mixture over power-of-two sizes);
* Tencent volumes are more skewed than Alibaba (higher Zipf alpha), and the
  MSRC enterprise volumes are read-intensive;
* within a burst, requests exhibit partial sequentiality, which is what lets
  the coalescing buffer fill chunks at all under sparse average rates.

A fleet is a list of per-volume traces; experiments replay each volume in
its own store instance, matching the paper's per-volume WA reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import make_rng, tenant_rng
from repro.trace.model import OP_READ, OP_WRITE, Trace
from repro.trace.synthetic.arrivals import BurstyArrivalModel
from repro.trace.synthetic.zipf import ZipfSampler

#: Request sizes (blocks of 4 KiB) used in the size mixture: 4 KiB .. 256 KiB.
_SIZE_CHOICES = np.array([1, 2, 4, 8, 16, 32, 64], dtype=np.int64)


@dataclass(frozen=True)
class CloudProfile:
    """Distributional parameters of one production environment."""

    name: str
    # Per-volume log-normal average request rate (req/s).
    rate_log_mean: float
    rate_log_sigma: float
    # Write-size mixture over _SIZE_CHOICES.
    write_size_probs: tuple[float, ...]
    # Per-volume Zipf alpha range (uniform).
    alpha_range: tuple[float, float]
    # Per-volume read-ratio beta distribution (a, b).
    read_ratio_beta: tuple[float, float]
    # Burst shape.
    mean_burst_len: float
    intra_burst_gap_us: float
    # Probability that a burst walks sequential addresses.
    sequential_prob: float

    def __post_init__(self) -> None:
        if len(self.write_size_probs) != len(_SIZE_CHOICES):
            raise ValueError("write_size_probs must match _SIZE_CHOICES")
        if abs(sum(self.write_size_probs) - 1.0) > 1e-9:
            raise ValueError("write_size_probs must sum to 1")
        if not 0.0 <= self.sequential_prob <= 1.0:
            raise ValueError("sequential_prob must be in [0, 1]")


#: Ali-like: ~75 % of writes <= 8 KiB, ~11 % > 32 KiB; moderate skew.
ALI = CloudProfile(
    name="ali",
    rate_log_mean=0.5, rate_log_sigma=2.2,
    write_size_probs=(0.45, 0.30, 0.09, 0.05, 0.05, 0.04, 0.02),
    alpha_range=(0.6, 1.0),
    read_ratio_beta=(2.0, 3.0),          # mean 0.4 — write-dominated
    mean_burst_len=4.0, intra_burst_gap_us=30.0,
    sequential_prob=0.25,
)

#: Tencent-like: more skewed access, larger share of big writes.
TENCENT = CloudProfile(
    name="tencent",
    rate_log_mean=0.2, rate_log_sigma=2.4,
    write_size_probs=(0.42, 0.28, 0.04, 0.03, 0.05, 0.10, 0.08),
    alpha_range=(0.9, 1.2),
    read_ratio_beta=(2.0, 4.0),          # mean 0.33
    mean_burst_len=6.0, intra_burst_gap_us=25.0,
    sequential_prob=0.35,
)

#: MSRC-like: enterprise servers, read-intensive, spikier rates.
MSRC = CloudProfile(
    name="msrc",
    rate_log_mean=0.8, rate_log_sigma=2.0,
    write_size_probs=(0.50, 0.27, 0.06, 0.04, 0.05, 0.05, 0.03),
    alpha_range=(0.7, 1.1),
    read_ratio_beta=(5.0, 2.5),          # mean 0.67 — read-intensive
    mean_burst_len=4.0, intra_burst_gap_us=30.0,
    sequential_prob=0.30,
)

_PROFILES = {p.name: p for p in (ALI, TENCENT, MSRC)}


def profile_by_name(name: str) -> CloudProfile:
    """Look up one of the built-in profiles (``ali``/``tencent``/``msrc``)."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; expected one of {sorted(_PROFILES)}"
        ) from None


@dataclass(frozen=True)
class VolumeSpec:
    """Concrete per-volume parameters drawn from a :class:`CloudProfile`."""

    volume: str
    unique_blocks: int
    num_requests: int
    mean_rate: float
    zipf_alpha: float
    read_ratio: float
    profile: CloudProfile = field(repr=False)

    @classmethod
    def draw(cls, profile: CloudProfile, volume: str, unique_blocks: int,
             num_requests: int, rng: np.random.Generator) -> "VolumeSpec":
        rate = float(np.exp(rng.normal(profile.rate_log_mean,
                                       profile.rate_log_sigma)))
        rate = min(max(rate, 0.05), 5000.0)
        alpha = float(rng.uniform(*profile.alpha_range))
        a, b = profile.read_ratio_beta
        read_ratio = float(rng.beta(a, b))
        return cls(volume=volume, unique_blocks=unique_blocks,
                   num_requests=num_requests, mean_rate=rate,
                   zipf_alpha=alpha, read_ratio=read_ratio, profile=profile)


def generate_volume(spec: VolumeSpec,
                    rng: np.random.Generator | int | None = None) -> Trace:
    """Generate one volume trace from a concrete :class:`VolumeSpec`."""
    rng = make_rng(rng)
    prof = spec.profile
    n = spec.num_requests
    if n == 0:
        return Trace.empty(spec.volume)

    arrivals = BurstyArrivalModel(
        mean_rate=spec.mean_rate,
        mean_burst_len=prof.mean_burst_len,
        intra_burst_gap_us=prof.intra_burst_gap_us,
    )
    ts = arrivals.generate(n, rng=rng)

    ops = np.where(rng.random(n) < spec.read_ratio, OP_READ,
                   OP_WRITE).astype(np.uint8)
    sizes = rng.choice(_SIZE_CHOICES, size=n,
                       p=np.asarray(prof.write_size_probs))

    sampler = ZipfSampler(spec.unique_blocks, spec.zipf_alpha, rng=rng)
    offsets = sampler.sample(n)

    # Sequential runs: with probability sequential_prob a request continues
    # from where the previous one ended (classic spatial locality model).
    seq = rng.random(n) < prof.sequential_prob
    seq[0] = False
    offsets, _ = _apply_sequential_runs(offsets, sizes, seq,
                                        spec.unique_blocks)

    # Clamp extents into the address space.
    offsets = np.minimum(offsets, np.maximum(spec.unique_blocks - sizes, 0))
    return Trace(ts, ops, offsets, sizes, volume=spec.volume).validate()


def _apply_sequential_runs(offsets: np.ndarray, sizes: np.ndarray,
                           seq: np.ndarray, unique_blocks: int,
                           prev_end: int | None = None
                           ) -> tuple[np.ndarray, int]:
    """Rewrite offsets so that positions flagged in ``seq`` continue the
    previous request's extent (wrapping at the end of the address space).

    ``prev_end`` carries the final cursor of a preceding chunk so chunked
    generation (:mod:`repro.trace.stream`) keeps runs flowing across chunk
    boundaries; the final cursor is returned for the same reason.  When it
    is ``None`` the first position starts a fresh run (the caller must
    clear ``seq[0]``).
    """
    out = offsets.copy()
    start = 0
    if prev_end is None:
        prev_end = int(out[0] + sizes[0])
        start = 1
    for i in range(start, out.shape[0]):
        if seq[i]:
            out[i] = prev_end % max(unique_blocks - int(sizes[i]), 1)
        prev_end = int(out[i] + sizes[i])
    return out, prev_end


def generate_fleet(profile: CloudProfile | str, num_volumes: int,
                   unique_blocks: int = 16_384, num_requests: int = 60_000,
                   seed: int | None = None) -> list[Trace]:
    """Generate a fleet of volume traces for one environment.

    Args:
        profile: a :class:`CloudProfile` or its name.
        num_volumes: number of volumes (the paper samples 50 per cloud).
        unique_blocks: per-volume footprint in blocks (scaled presets).
        num_requests: per-volume request count.
        seed: master seed; each volume derives an independent stream keyed
            on its *name* (not its position), so volume ``i`` is
            bit-identical no matter how many other volumes the fleet has
            — growing or sharding a fleet never perturbs existing tenants.
    """
    if isinstance(profile, str):
        profile = profile_by_name(profile)
    if num_volumes <= 0:
        raise ValueError("num_volumes must be >= 1")
    if seed is None:
        # Preserve "None means fresh entropy" while keeping the per-volume
        # independence property below.
        seed = int(np.random.SeedSequence().entropy) & (2 ** 63 - 1)
    traces = []
    for i in range(num_volumes):
        name = f"{profile.name}-{i:03d}"
        spec = VolumeSpec.draw(profile, name, unique_blocks, num_requests,
                               tenant_rng(seed, name, "spec"))
        traces.append(generate_volume(spec,
                                      rng=tenant_rng(seed, name, "data")))
    return traces
