"""Bounded Zipfian sampling over a block address space.

``numpy.random.Generator.zipf`` samples the *unbounded* Zipf law and only
supports exponents > 1; production block workloads are modelled with a
*bounded* Zipfian over N items for any alpha >= 0 (YCSB's popularity model).
We precompute the cumulative mass once and draw with inverse-transform
sampling (a single ``searchsorted`` per batch), which keeps generation
vectorised — the per-request Python loop the HPC guides warn about never
materialises.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng


class ZipfSampler:
    """Draw item indices in ``[0, n)`` with bounded-Zipf(alpha) popularity.

    ``alpha == 0`` degenerates to the uniform distribution.  Ranks are
    shuffled onto item indices so popularity is not correlated with address
    order (real volumes do not keep their hottest blocks contiguous).
    """

    def __init__(self, n: int, alpha: float,
                 rng: np.random.Generator | int | None = None,
                 shuffle: bool = True) -> None:
        if n <= 0:
            raise ValueError(f"need n >= 1 items, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.n = int(n)
        self.alpha = float(alpha)
        self._rng = make_rng(rng)
        weights = np.arange(1, self.n + 1, dtype=np.float64) ** (-self.alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if shuffle:
            self._rank_to_item = self._rng.permutation(self.n)
        else:
            self._rank_to_item = np.arange(self.n)

    def sample(self, size: int,
               rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``size`` item indices (int64).

        ``rng`` overrides the sampler's own stream for this draw while the
        rank→item shuffle stays fixed — chunked trace generation draws each
        chunk from an independent per-chunk generator against one shared
        popularity layout.
        """
        if size < 0:
            raise ValueError(f"negative sample size {size}")
        u = (self._rng if rng is None else rng).random(size)
        ranks = np.searchsorted(self._cdf, u, side="right")
        return self._rank_to_item[ranks].astype(np.int64)

    def probability_of_rank(self, rank: int) -> float:
        """P(popularity rank ``rank``) — mostly for tests and calibration."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank {rank} out of [0, {self.n})")
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lo)

    def head_mass(self, fraction: float) -> float:
        """Total probability captured by the hottest ``fraction`` of items.

        At alpha = 0.9 roughly 80 % of traffic targets the top 20 % of
        blocks, the paper's strong-locality operating point (§4.3).
        """
        k = max(1, int(round(fraction * self.n)))
        return float(self._cdf[k - 1])
