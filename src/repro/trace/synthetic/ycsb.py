"""YCSB-A-style workload generator (update-heavy, Zipfian popularity).

Reproduces the paper's qualitative sensitivity setup (§4.3): fill a block
population, then issue update-heavy traffic whose two experimental knobs are
*access density* (inter-request gap relative to the 100 µs coalescing SLA)
and *skewness* (Zipf alpha).  YCSB-A is 50 % reads / 50 % updates; only the
updates reach the log, so a ``read_ratio`` knob is exposed as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.common.rng import make_rng
from repro.trace.model import OP_READ, OP_WRITE, Trace
from repro.trace.synthetic.arrivals import uniform_arrivals
from repro.trace.synthetic.zipf import ZipfSampler


class DensityPreset(Enum):
    """Traffic-intensity presets from Fig 11 (left).

    ``LIGHT`` keeps every inter-request gap above the 100 µs SLA window so
    chunks cannot coalesce across requests; ``MEDIUM`` and ``HEAVY`` fall
    below it, ``HEAVY`` densely enough that padding disappears entirely.
    """

    LIGHT = 250.0    # µs between requests (> 100 µs SLA)
    MEDIUM = 60.0
    HEAVY = 8.0

    @property
    def inter_arrival_us(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class YcsbConfig:
    """Full knob set for :func:`generate`. ``generate_ycsb_a`` wraps the
    common case."""

    unique_blocks: int
    num_writes: int
    zipf_alpha: float = 0.99
    read_ratio: float = 0.5
    inter_arrival_us: float = DensityPreset.MEDIUM.inter_arrival_us
    write_size_blocks: int = 1
    include_fill: bool = True
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.unique_blocks <= 0:
            raise ValueError("unique_blocks must be positive")
        if self.num_writes < 0:
            raise ValueError("num_writes must be >= 0")
        if not 0.0 <= self.read_ratio < 1.0:
            raise ValueError("read_ratio must be in [0, 1)")
        if self.write_size_blocks < 1:
            raise ValueError("write_size_blocks must be >= 1")


def generate(config: YcsbConfig) -> Trace:
    """Generate a YCSB-style trace from an explicit :class:`YcsbConfig`."""
    rng = make_rng(config.seed)
    parts: list[Trace] = []
    t0 = 0

    if config.include_fill:
        # Sequential fill of the whole population: dense multi-block writes
        # (the paper fills 1M blocks before measuring WA over 10M writes).
        fill = _sequential_fill(config.unique_blocks, start_us=0)
        parts.append(fill)
        t0 = int(fill.timestamps[-1]) + 1_000 if len(fill) else 0

    n_writes = config.num_writes
    n_reads = int(n_writes * config.read_ratio / (1.0 - config.read_ratio))
    n_total = n_writes + n_reads

    sampler = ZipfSampler(config.unique_blocks, config.zipf_alpha, rng=rng)
    lbas = sampler.sample(n_total) * config.write_size_blocks
    # Clamp multi-block updates inside the address space.
    max_start = config.unique_blocks * config.write_size_blocks \
        - config.write_size_blocks
    np.clip(lbas, 0, max(max_start, 0), out=lbas)

    ops = np.full(n_total, OP_WRITE, dtype=np.uint8)
    if n_reads:
        read_idx = rng.choice(n_total, size=n_reads, replace=False)
        ops[read_idx] = OP_READ

    ts = t0 + uniform_arrivals(n_total, config.inter_arrival_us,
                               rng=rng, jitter=0.5)
    sizes = np.full(n_total, config.write_size_blocks, dtype=np.int64)
    parts.append(Trace(ts, ops, lbas, sizes, volume="ycsb-a"))
    return Trace.concat(parts, volume="ycsb-a").validate()


def generate_ycsb_a(unique_blocks: int, num_writes: int,
                    zipf_alpha: float = 0.99,
                    density: DensityPreset | float = DensityPreset.MEDIUM,
                    read_ratio: float = 0.5,
                    include_fill: bool = True,
                    seed: int | None = None) -> Trace:
    """Generate a YCSB-A trace (50 % updates by default).

    Args:
        unique_blocks: block population size (1 M in the paper; scaled
            presets are used by the benches).
        num_writes: number of update requests after the fill phase.
        zipf_alpha: popularity skew; 0 = uniform, 0.99 = YCSB default.
        density: a :class:`DensityPreset` or an explicit mean inter-arrival
            gap in microseconds.
        read_ratio: fraction of requests that are reads.
        include_fill: prepend the sequential fill phase.
        seed: RNG seed for reproducibility.
    """
    gap = density.inter_arrival_us if isinstance(density, DensityPreset) \
        else float(density)
    return generate(YcsbConfig(
        unique_blocks=unique_blocks,
        num_writes=num_writes,
        zipf_alpha=zipf_alpha,
        read_ratio=read_ratio,
        inter_arrival_us=gap,
        include_fill=include_fill,
        seed=seed,
    ))


def _sequential_fill(unique_blocks: int, start_us: int,
                     request_blocks: int = 64) -> Trace:
    """Dense sequential writes covering ``[0, unique_blocks)`` once."""
    n_req = -(-unique_blocks // request_blocks)
    offsets = np.arange(n_req, dtype=np.int64) * request_blocks
    sizes = np.full(n_req, request_blocks, dtype=np.int64)
    sizes[-1] = unique_blocks - offsets[-1]
    ts = start_us + np.arange(n_req, dtype=np.int64) * 10  # dense: 10 µs gaps
    ops = np.full(n_req, OP_WRITE, dtype=np.uint8)
    return Trace(ts, ops, offsets, sizes, volume="fill")
