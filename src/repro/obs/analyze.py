"""Bottleneck explainer: turn profiler + attribution artifacts into a
ranked report.

``adapt-repro analyze`` is the first step of any perf investigation
(docs/performance.md): it consumes whatever subset of the three obs
artifacts a run produced —

* a :class:`~repro.obs.profile.PhaseProfiler` Chrome trace
  (``--profile-out``), ranking where wall-clock went;
* an attribution JSON (:mod:`repro.obs.attribution`), naming *why*
  chunks ended (dominant termination cause) and which groups generate
  the write-amplification overhead;
* a replay timeline CSV/JSONL (:mod:`repro.obs.timeline`), for the
  final WA trajectory row;

— and emits one report (dict + text table, written atomically) whose
headline is the dominant chunk-termination cause and the top
WA-contributing groups, followed by rule-based recommendations keyed on
the same thresholds the ROADMAP discussions use.
"""

from __future__ import annotations

import csv
import json
from typing import Any

from repro.obs.atomicio import atomic_write
from repro.obs.attribution import (
    CAUSE_CANDIDATE,
    CAUSE_DEADLINE_RESERVE,
    CAUSE_GC_CAPACITY,
    CAUSE_MAX_BLOCKS,
    CAUSE_MAX_REQUESTS,
    CAUSE_SCALAR_FALLBACK,
)

#: Report schema version.
ANALYZE_SCHEMA = 1


# ----------------------------------------------------------------------
# artifact loaders
# ----------------------------------------------------------------------
def load_chrome_trace(path: str) -> dict:
    """Aggregate a Chrome ``trace_event`` JSON into per-phase totals.

    Returns ``{"phases": {name: {"count", "total_us"}},
    "profile_events_dropped": n}``.  Complete events (``ph == "X"``) are
    summed by name; a cell span (``cell:scheme:volume``) keeps its full
    name so per-cell time stays distinguishable.
    """
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    phases: dict[str, dict] = {}
    for ev in data.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        name = ev.get("name", "?")
        agg = phases.setdefault(name, {"count": 0, "total_us": 0.0})
        agg["count"] += 1
        agg["total_us"] += float(ev.get("dur", 0.0))
    other = data.get("otherData", {})
    dropped = int(other.get("profile_events_dropped",
                            other.get("dropped_events", 0)))
    return {"phases": phases, "profile_events_dropped": dropped}


def load_timeline_tail(path: str) -> dict | None:
    """Final row of a timeline CSV/JSONL as a plain dict, or ``None``."""
    last: dict | None = None
    if path.endswith(".jsonl"):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    last = json.loads(line)
        return last
    with open(path, encoding="utf-8", newline="") as f:
        for row in csv.DictReader(f):
            last = row
    if last is not None:
        last = {k: float(v) for k, v in last.items()}
    return last


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
def _rank_phases(trace: dict) -> list[dict]:
    phases = trace["phases"]
    total = sum(p["total_us"] for p in phases.values()) or 1.0
    ranked = [
        {"phase": name, "count": agg["count"],
         "total_ms": round(agg["total_us"] / 1000.0, 3),
         "share": round(agg["total_us"] / total, 4)}
        for name, agg in phases.items()]
    ranked.sort(key=lambda r: (-r["total_ms"], r["phase"]))
    return ranked


def _rank_causes(attribution: dict) -> list[dict]:
    causes = attribution.get("chunk_bounds", {}).get("causes", {})
    total = sum(c["chunks"] for c in causes.values()) or 1
    ranked = [
        {"cause": name, "chunks": cell["chunks"],
         "requests": cell["requests"], "blocks": cell["blocks"],
         "share": round(cell["chunks"] / total, 4)}
        for name, cell in causes.items()]
    ranked.sort(key=lambda r: (-r["chunks"], r["cause"]))
    return ranked


def _rank_wa_groups(attribution: dict) -> list[dict]:
    """Groups ranked by WA overhead (gc + shadow + padding blocks)."""
    groups = attribution.get("ledger", {}).get("groups", {})
    rows = []
    for name, entry in groups.items():
        overhead = (entry["gc_blocks"] + entry["shadow_blocks"]
                    + entry["padding_blocks"])
        rows.append({
            "group": name, "kind": entry.get("kind", "?"),
            "user_blocks": entry["user_blocks"],
            "gc_blocks": entry["gc_blocks"],
            "shadow_blocks": entry["shadow_blocks"],
            "padding_blocks": entry["padding_blocks"],
            "overhead_blocks": overhead,
        })
    total = sum(r["overhead_blocks"] for r in rows) or 1
    for r in rows:
        r["overhead_share"] = round(r["overhead_blocks"] / total, 4)
    rows.sort(key=lambda r: (-r["overhead_blocks"], r["group"]))
    return rows


def _gc_provenance_stats(attribution: dict) -> dict | None:
    prov = attribution.get("gc_provenance")
    if not prov or not prov["totals"].get("victims"):
        return None
    t = prov["totals"]
    migrated = t["migrated_user_origin"] + t["migrated_gc_origin"]
    scanned = t["valid_blocks"] + t["free_blocks"]
    return {
        "victims": t["victims"],
        "mean_valid_ratio": round(t["valid_blocks"] / scanned, 4)
        if scanned else 0.0,
        "mean_age_seq": round(t["age_seq_sum"] / t["victims"], 1),
        "remigration_ratio": round(t["migrated_gc_origin"] / migrated, 4)
        if migrated else 0.0,
    }


def _recommend(report: dict) -> list[str]:
    """Rule-based next steps keyed off the ranked sections."""
    recs: list[str] = []
    causes = report.get("chunk_bounds", {}).get("ranked") or []
    if causes:
        top = causes[0]
        hints = {
            CAUSE_SCALAR_FALLBACK: (
                "chunks stall before a single request is provably GC-free"
                " — the pool hovers at the low watermark; raise"
                " over-provisioning or gc_free_high to restore batched"
                " headroom"),
            CAUSE_GC_CAPACITY: (
                "the GC-safe capacity bound ends chunks — free-segment"
                " slack is the binding constraint; more over-provisioning"
                " or a less pessimistic placement domain"
                " (candidate_user_gids) widens chunks"),
            CAUSE_DEADLINE_RESERVE: (
                "worst-case deadline-fire reserves end chunks — many SLA"
                " groups carry pending blocks; shrinking the coalescing"
                " window or the number of concurrently-armed groups"
                " releases reserved capacity"),
            CAUSE_CANDIDATE: (
                "the candidate-gid capped bound ends chunks — placement"
                " spreads blocks over many groups; tighter candidate"
                " prediction widens chunks"),
            CAUSE_MAX_BLOCKS: (
                "the engine's max_chunk_blocks cap ends chunks — raise it"
                " if memory allows; the bound is semantically invisible"),
            CAUSE_MAX_REQUESTS: (
                "the engine's max_chunk_requests cap ends chunks — raise"
                " it; the bound is semantically invisible"),
        }
        hint = hints.get(top["cause"])
        if hint and top["share"] >= 0.25:
            recs.append(f"dominant chunk bound '{top['cause']}' "
                        f"({top['share']:.0%} of chunks): {hint}")
    prov = report.get("gc_provenance")
    if prov:
        if prov["remigration_ratio"] > 0.3:
            recs.append(
                f"{prov['remigration_ratio']:.0%} of migrated blocks had"
                " already been migrated — victims mix hot and cold data;"
                " grouping/victim selection is re-copying survivors")
        if prov["mean_valid_ratio"] > 0.5:
            recs.append(
                f"victims average {prov['mean_valid_ratio']:.0%} valid —"
                " GC fires on poorly-drained segments; check watermarks"
                " and group sizing")
    groups = report.get("wa_groups") or []
    if groups and groups[0]["overhead_share"] >= 0.5:
        g = groups[0]
        recs.append(
            f"group '{g['group']}' generates {g['overhead_share']:.0%} of"
            " WA overhead blocks — its placement decisions are the first"
            " target for tuning")
    dropped = (report.get("profile") or {}).get("profile_events_dropped", 0)
    if dropped:
        recs.append(
            f"{dropped} profiler spans were dropped (max_events hit) —"
            " phase shares above are biased toward the run's start; raise"
            " PhaseProfiler(max_events=...)")
    return recs


def analyze(trace: dict | None = None,
            attribution: dict | None = None,
            timeline: dict | None = None) -> dict:
    """Build the bottleneck report from already-loaded artifacts.

    All inputs are optional; sections for missing artifacts are absent.
    """
    report: dict[str, Any] = {"schema": ANALYZE_SCHEMA}
    if trace is not None:
        ranked = _rank_phases(trace)
        report["profile"] = {
            "ranked": ranked,
            "profile_events_dropped": trace.get("profile_events_dropped",
                                                0),
        }
    if attribution is not None:
        causes = _rank_causes(attribution)
        report["chunk_bounds"] = {
            "ranked": causes,
            "dominant_cause": causes[0]["cause"] if causes else None,
        }
        report["wa_groups"] = _rank_wa_groups(attribution)
        prov = _gc_provenance_stats(attribution)
        if prov is not None:
            report["gc_provenance"] = prov
    if timeline is not None:
        report["timeline_final"] = timeline
    report["recommendations"] = _recommend(report)
    return report


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _table(rows: list[dict], columns: list[tuple[str, str]]) -> list[str]:
    headers = [h for h, _ in columns]
    cells = [[str(r.get(key, "")) for _, key in columns] for r in rows]
    widths = [max(len(h), *(len(c[idx]) for c in cells)) if cells
              else len(h) for idx, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for c in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(c, widths)))
    return lines


def render_report(report: dict, top: int = 10) -> str:
    """Human-readable text rendering of an :func:`analyze` report."""
    out: list[str] = []
    prof = report.get("profile")
    if prof:
        out.append("== Phase profile (where time went) ==")
        out.extend(_table(prof["ranked"][:top],
                          [("phase", "phase"), ("count", "count"),
                           ("total_ms", "total_ms"), ("share", "share")]))
        if prof.get("profile_events_dropped"):
            out.append(f"WARNING: {prof['profile_events_dropped']} "
                       "profiler spans dropped (phase shares biased)")
        out.append("")
    cb = report.get("chunk_bounds")
    if cb:
        out.append("== Chunk-termination causes (why chunks ended) ==")
        if cb.get("dominant_cause"):
            out.append(f"dominant cause: {cb['dominant_cause']}")
        out.extend(_table(cb["ranked"][:top],
                          [("cause", "cause"), ("chunks", "chunks"),
                           ("requests", "requests"), ("blocks", "blocks"),
                           ("share", "share")]))
        out.append("")
    wa = report.get("wa_groups")
    if wa:
        out.append("== WA ledger (who wrote the overhead) ==")
        out.extend(_table(wa[:top],
                          [("group", "group"), ("kind", "kind"),
                           ("user", "user_blocks"), ("gc", "gc_blocks"),
                           ("shadow", "shadow_blocks"),
                           ("padding", "padding_blocks"),
                           ("ovh_share", "overhead_share")]))
        out.append("")
    prov = report.get("gc_provenance")
    if prov:
        out.append("== GC provenance ==")
        out.append(f"victims: {prov['victims']}  "
                   f"mean valid ratio: {prov['mean_valid_ratio']}  "
                   f"mean age (user writes): {prov['mean_age_seq']}  "
                   f"re-migration ratio: {prov['remigration_ratio']}")
        out.append("")
    recs = report.get("recommendations")
    if recs:
        out.append("== Recommendations ==")
        for r in recs:
            out.append(f"- {r}")
        out.append("")
    if len(out) <= 1:
        out.append("no artifacts provided - nothing to analyze")
    return "\n".join(out).rstrip() + "\n"


def write_report_json(report: dict, path: str) -> str:
    """Atomically write the JSON report; returns ``path``."""
    with atomic_write(path) as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


__all__ = [
    "ANALYZE_SCHEMA",
    "analyze",
    "load_chrome_trace",
    "load_timeline_tail",
    "render_report",
    "write_report_json",
]
