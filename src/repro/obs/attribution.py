"""Causal attribution: chunk-bound diagnostics + GC provenance ledger.

The phase profiler says *where* replay time goes; this module says *why*.
Two data sets are collected behind one recorder:

* **Chunk-bound diagnostics** — the batched replay engine reports, per
  chunk, which constraint terminated it (trace end, request/block caps,
  the GC-safe capacity bound, the deadline-fire reserve, candidate-gid
  narrowing, the ``"first"``-mode deadline horizon, or a scalar-burst
  fallback) plus chunk-width histograms.  These describe the *engine*,
  so they only exist under the batched engine and live in the snapshot's
  ``chunk_bounds`` section.
* **GC provenance ledger** — the store tags every appended data block
  with its origin (user write vs GC migration) and birth epoch
  (``user_seq`` at first write, preserved across migrations), and GC
  reports every victim eviction (group, segment age, valid ratio,
  origin mix of the migrated blocks).  Rolled up with the per-group
  traffic breakdown this yields a per-group WA ledger: user/GC/shadow/
  padding writes per group plus where GC'd blocks were born.  These
  describe the *simulated store state*, which is bit-identical across
  engines, so the ``ledger`` and ``gc_provenance`` sections — the
  :func:`invariant_view` — serialize byte-identically scalar-vs-batched
  and merge deterministically serial-vs-sharded.

Like :class:`~repro.obs.recorder.NullRecorder`, the default
:data:`NULL_ATTRIBUTION` makes every hook a no-op behind a cached
``enabled`` boolean, so disabled runs pay nothing.  The module imports
nothing from the simulator layers it observes (hooks receive plain
values), keeping the import graph acyclic.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.atomicio import atomic_write

#: Attribution snapshot schema version.
ATTRIBUTION_SCHEMA = 1

# -- chunk-termination causes (batched replay engine) -------------------
#: The request stream ended inside the chunk.
CAUSE_TRACE_END = "trace_end"
#: The engine's ``max_chunk_requests`` cap ended the chunk.
CAUSE_MAX_REQUESTS = "max_chunk_requests"
#: The engine's ``max_chunk_blocks`` cap ended the chunk.
CAUSE_MAX_BLOCKS = "max_chunk_blocks"
#: The adversarial GC-safe capacity bound ended the chunk: one more
#: request's blocks could not provably keep free segments above the low
#: watermark.
CAUSE_GC_CAPACITY = "gc_capacity"
#: The blocks alone would have fit, but the reserved worst-case
#: deadline-fire blocks (padding + shadow appends per fire site) did not.
CAUSE_DEADLINE_RESERVE = "deadline_reserve"
#: The chunk stopped while the per-block candidate-gid capped bound
#: (``candidate_user_gids``) was the operative constraint.
CAUSE_CANDIDATE = "candidate_narrowing"
#: ``sla_mode="first"``/zero-window replay: the chunk was bounded by the
#: earliest armed deadline or the first request's SLA horizon.
CAUSE_DEADLINE_HORIZON = "deadline_horizon"
#: Not even one request was provably GC-free; a scalar burst ran instead.
CAUSE_SCALAR_FALLBACK = "scalar_fallback"

#: Every chunk-termination cause, in reporting order.
CHUNK_CAUSES: tuple[str, ...] = (
    CAUSE_TRACE_END, CAUSE_MAX_REQUESTS, CAUSE_MAX_BLOCKS,
    CAUSE_GC_CAPACITY, CAUSE_DEADLINE_RESERVE, CAUSE_CANDIDATE,
    CAUSE_DEADLINE_HORIZON, CAUSE_SCALAR_FALLBACK,
)


def width_bucket(value: int) -> int:
    """Power-of-two ceiling bucket for chunk-width histograms (0 -> 0)."""
    if value <= 0:
        return 0
    return 1 << (value - 1).bit_length()


class NullAttribution:
    """No-op attribution sink; every hook exists and does nothing.

    Instrumented call sites guard on :attr:`enabled` (cached as
    ``store._attr_on`` / the engine's ``_attr_on``), so a disabled run
    pays one boolean check per guarded region.
    """

    enabled = False

    # -- lifecycle ------------------------------------------------------
    def bind_store(self, store: Any) -> None:
        """Called once by the store that owns this recorder."""

    def on_finalize(self, store: Any) -> None:
        """End of replay (after the store force-flushed every chunk)."""

    # -- engine hooks (batched replay only) -----------------------------
    def on_chunk(self, cause: str, requests: int, blocks: int) -> None:
        """One chunk of ``requests`` requests / ``blocks`` written blocks
        was applied; ``cause`` names the constraint that terminated it."""

    def on_scalar_burst(self, requests: int, blocks: int) -> None:
        """A scalar-burst fallback replayed ``requests`` requests."""

    # -- GC hooks (shared scalar/batched cleaning path) -----------------
    def on_gc_victim(self, group_id: int, age_seq: int, valid_blocks: int,
                     segment_blocks: int, user_origin: int,
                     gc_origin: int) -> None:
        """GC evicted one victim segment of ``group_id``: ``age_seq``
        user writes old, ``valid_blocks`` of ``segment_blocks`` still
        valid, of which ``user_origin`` were born as user writes and
        ``gc_origin`` had already been migrated at least once."""

    # -- export ---------------------------------------------------------
    def publish(self, registry: Any) -> None:
        """Mirror the aggregates into a metrics registry (no-op here)."""

    def snapshot(self) -> dict | None:
        """Picklable attribution summary (``None`` here)."""
        return None


#: Shared default sink: one immutable no-op instance for the process.
NULL_ATTRIBUTION = NullAttribution()


class AttributionRecorder(NullAttribution):
    """Live attribution sink: plain-int aggregates, no per-event storage.

    The hot-path hooks touch only dicts of Python ints; the structured
    snapshot (and the optional :meth:`publish` into a
    :class:`~repro.obs.metrics.MetricsRegistry`) is built on demand from
    those aggregates plus the bound store's per-group traffic breakdown.
    """

    enabled = True

    def __init__(self) -> None:
        self._store: Any = None
        #: cause -> [chunks, requests, blocks]
        self.chunk_causes: dict[str, list[int]] = {}
        #: power-of-two bucket -> chunk count (requests per chunk)
        self.chunk_requests_hist: dict[int, int] = {}
        #: power-of-two bucket -> chunk count (written blocks per chunk)
        self.chunk_blocks_hist: dict[int, int] = {}
        #: victim gid -> [victims, valid_blocks, free_blocks,
        #:               age_seq_sum, user_origin, gc_origin]
        self.gc_groups: dict[int, list[int]] = {}
        # Running totals for timeline columns.
        self.total_victims = 0
        self.total_migrated_user_origin = 0
        self.total_migrated_gc_origin = 0

    # -- lifecycle ------------------------------------------------------
    def bind_store(self, store: Any) -> None:
        self._store = store

    def on_finalize(self, store: Any) -> None:
        # Mirror the final aggregates into the run's metrics registry
        # when observability is live alongside attribution.
        registry = getattr(getattr(store, "obs", None), "registry", None)
        if registry is not None:
            self.publish(registry)

    # -- engine hooks ---------------------------------------------------
    def on_chunk(self, cause: str, requests: int, blocks: int) -> None:
        agg = self.chunk_causes.get(cause)
        if agg is None:
            self.chunk_causes[cause] = [1, requests, blocks]
        else:
            agg[0] += 1
            agg[1] += requests
            agg[2] += blocks
        rb = width_bucket(requests)
        self.chunk_requests_hist[rb] = \
            self.chunk_requests_hist.get(rb, 0) + 1
        bb = width_bucket(blocks)
        self.chunk_blocks_hist[bb] = self.chunk_blocks_hist.get(bb, 0) + 1

    def on_scalar_burst(self, requests: int, blocks: int) -> None:
        self.on_chunk(CAUSE_SCALAR_FALLBACK, requests, blocks)

    # -- GC hooks -------------------------------------------------------
    def on_gc_victim(self, group_id: int, age_seq: int, valid_blocks: int,
                     segment_blocks: int, user_origin: int,
                     gc_origin: int) -> None:
        agg = self.gc_groups.get(group_id)
        if agg is None:
            self.gc_groups[group_id] = [
                1, valid_blocks, segment_blocks - valid_blocks, age_seq,
                user_origin, gc_origin]
        else:
            agg[0] += 1
            agg[1] += valid_blocks
            agg[2] += segment_blocks - valid_blocks
            agg[3] += age_seq
            agg[4] += user_origin
            agg[5] += gc_origin
        self.total_victims += 1
        self.total_migrated_user_origin += user_origin
        self.total_migrated_gc_origin += gc_origin

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Structured plain-dict summary (picklable, JSON-ready).

        ``ledger`` and ``gc_provenance`` are engine-invariant — every
        field an integer derived from state both engines produce
        bit-identically — while ``chunk_bounds`` describes the batched
        engine's chunk construction and is empty under the scalar
        engine (see :func:`invariant_view`).
        """
        store = self._store
        groups: dict[str, dict] = {}
        totals = {"user_blocks": 0, "gc_blocks": 0, "shadow_blocks": 0,
                  "padding_blocks": 0, "total_blocks": 0}
        if store is not None:
            for gid, t in enumerate(store.stats.groups):
                entry = {
                    "gid": gid,
                    "kind": t.kind,
                    "user_blocks": int(t.user_blocks),
                    "gc_blocks": int(t.gc_blocks),
                    "shadow_blocks": int(t.shadow_blocks),
                    "padding_blocks": int(t.padding_blocks),
                    "total_blocks": int(t.total_blocks),
                }
                groups[t.name] = entry
                for key in totals:
                    totals[key] += entry[key]
        ledger = {
            "groups": groups,
            "totals": dict(totals, user_blocks_requested=(
                int(store.stats.user_blocks_requested)
                if store is not None else 0)),
        }
        gid_names = {e["gid"]: name for name, e in groups.items()}
        prov_groups: dict[str, dict] = {}
        ptot = [0, 0, 0, 0, 0, 0]
        for gid in sorted(self.gc_groups):
            agg = self.gc_groups[gid]
            name = gid_names.get(gid, f"gid{gid}")
            prov_groups[name] = {
                "gid": gid,
                "victims": agg[0],
                "valid_blocks": agg[1],
                "free_blocks": agg[2],
                "age_seq_sum": agg[3],
                "migrated_user_origin": agg[4],
                "migrated_gc_origin": agg[5],
            }
            for idx in range(6):
                ptot[idx] += agg[idx]
        gc_provenance = {
            "groups": prov_groups,
            "totals": {
                "victims": ptot[0], "valid_blocks": ptot[1],
                "free_blocks": ptot[2], "age_seq_sum": ptot[3],
                "migrated_user_origin": ptot[4],
                "migrated_gc_origin": ptot[5],
            },
        }
        causes = {
            cause: {"chunks": agg[0], "requests": agg[1],
                    "blocks": agg[2]}
            for cause, agg in sorted(self.chunk_causes.items())}
        chunk_bounds = {
            "causes": causes,
            "chunks": sum(a[0] for a in self.chunk_causes.values()),
            "chunk_requests_hist": {
                str(b): c for b, c
                in sorted(self.chunk_requests_hist.items())},
            "chunk_blocks_hist": {
                str(b): c for b, c
                in sorted(self.chunk_blocks_hist.items())},
        }
        return {
            "schema": ATTRIBUTION_SCHEMA,
            "ledger": ledger,
            "gc_provenance": gc_provenance,
            "chunk_bounds": chunk_bounds,
        }

    def publish(self, registry: Any) -> None:
        """Mirror the aggregates as counters in ``registry``.

        Values are *set*, not incremented, so repeated publishes (one
        per finalize) stay idempotent.
        """
        snap = self.snapshot()
        for cause, cell in snap["chunk_bounds"]["causes"].items():
            registry.counter(
                f"attr_chunks_{_metric_name(cause)}_total",
                "chunks terminated by this bound").value = cell["chunks"]
        for name, entry in snap["ledger"]["groups"].items():
            g = _metric_name(name)
            for key in ("user_blocks", "gc_blocks", "shadow_blocks",
                        "padding_blocks"):
                registry.counter(
                    f"attr_group_{key}_total_{g}",
                    f"per-group WA ledger: {key}").value = entry[key]
        for name, entry in snap["gc_provenance"]["groups"].items():
            g = _metric_name(name)
            registry.counter(
                f"attr_gc_victims_total_{g}",
                "GC victim segments evicted from this group"
            ).value = entry["victims"]
            registry.counter(
                f"attr_gc_remigrated_blocks_total_{g}",
                "migrated blocks that had already been migrated before"
            ).value = entry["migrated_gc_origin"]


def _metric_name(text: str) -> str:
    """Sanitize a group/cause name into a Prometheus-safe suffix."""
    return re.sub(r"[^a-zA-Z0-9_]", "_", text)


def invariant_view(snapshot: dict) -> dict:
    """The engine-invariant part of an attribution snapshot.

    Drops ``chunk_bounds`` (batched-engine diagnostics that cannot exist
    under the scalar loop); what remains is guaranteed byte-identical —
    ``json.dumps(invariant_view(s), sort_keys=True)`` — across replay
    engines, and merges deterministically across fleet shards.
    """
    return {key: value for key, value in snapshot.items()
            if key != "chunk_bounds"}


def merge_attribution_snapshots(snapshots: list[dict]) -> dict | None:
    """Deterministically merge attribution snapshots (fleet roll-up).

    Integer fields sum; group maps union (keyed by group name).  The
    result of merging per-volume snapshots from a sharded run is
    byte-identical to the serial run's merge — inputs are per-volume
    and the merge is order-independent given the summary's sorted
    volume order.  Returns ``None`` when no snapshot is present.
    """
    live = [s for s in snapshots if s]
    if not live:
        return None

    def merge_int_maps(dicts: list[dict]) -> dict:
        out: dict = {}
        for d in dicts:
            for key, value in d.items():
                out[key] = out.get(key, 0) + value
        return {key: out[key] for key in sorted(out)}

    def merge_group_maps(dicts: list[dict]) -> dict:
        out: dict[str, dict] = {}
        for d in dicts:
            for name, entry in d.items():
                cur = out.get(name)
                if cur is None:
                    out[name] = dict(entry)
                else:
                    for key, value in entry.items():
                        if key in ("gid", "kind"):
                            continue
                        cur[key] = cur.get(key, 0) + value
        return {name: out[name] for name in sorted(out)}

    ledger = {
        "groups": merge_group_maps([s["ledger"]["groups"] for s in live]),
        "totals": merge_int_maps([s["ledger"]["totals"] for s in live]),
    }
    prov = {
        "groups": merge_group_maps(
            [s["gc_provenance"]["groups"] for s in live]),
        "totals": merge_int_maps(
            [s["gc_provenance"]["totals"] for s in live]),
    }
    cause_maps: dict[str, list[dict]] = {}
    for s in live:
        for cause, cell in s["chunk_bounds"]["causes"].items():
            cause_maps.setdefault(cause, []).append(cell)
    causes = {cause: merge_int_maps(cells)
              for cause, cells in sorted(cause_maps.items())}
    chunk_bounds = {
        "causes": causes,
        "chunks": sum(s["chunk_bounds"]["chunks"] for s in live),
        "chunk_requests_hist": merge_int_maps(
            [s["chunk_bounds"]["chunk_requests_hist"] for s in live]),
        "chunk_blocks_hist": merge_int_maps(
            [s["chunk_bounds"]["chunk_blocks_hist"] for s in live]),
    }
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "volumes": len(live),
        "ledger": ledger,
        "gc_provenance": prov,
        "chunk_bounds": chunk_bounds,
    }


def write_attribution_json(snapshot: dict, path: str) -> str:
    """Atomically write a snapshot as canonical JSON (sorted keys, fixed
    separators — byte-stable given equal content); returns ``path``."""
    with atomic_write(path) as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


__all__ = [
    "ATTRIBUTION_SCHEMA",
    "CAUSE_CANDIDATE",
    "CAUSE_DEADLINE_HORIZON",
    "CAUSE_DEADLINE_RESERVE",
    "CAUSE_GC_CAPACITY",
    "CAUSE_MAX_BLOCKS",
    "CAUSE_MAX_REQUESTS",
    "CAUSE_SCALAR_FALLBACK",
    "CAUSE_TRACE_END",
    "CHUNK_CAUSES",
    "NULL_ATTRIBUTION",
    "AttributionRecorder",
    "NullAttribution",
    "invariant_view",
    "merge_attribution_snapshots",
    "width_bucket",
    "write_attribution_json",
]
