"""The recorder: the hook surface every instrumented code path calls.

:class:`NullRecorder` defines the full hook vocabulary as no-ops and is the
default everywhere (the module-level :data:`NULL_RECORDER` singleton), so
instrumentation adds nothing but a cached boolean check to disabled hot
paths.  :class:`ObsRecorder` implements the hooks for real: it feeds a
:class:`~repro.obs.metrics.MetricsRegistry`, emits typed events into an
:class:`~repro.obs.events.EventTracer`, and samples a WA/padding/GC
time-series every ``sample_every_blocks`` user blocks.

The recorder deliberately imports nothing from the simulator layers it
observes (``lss``/``array``/``core``); hooks receive plain values or duck-
typed objects (a ``ChunkFlush``, a ``StoreStats``), which keeps the import
graph acyclic — the simulator imports ``repro.obs``, never the reverse.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import (
    EV_AUDIT_VIOLATION,
    EV_CHUNK_FLUSH,
    EV_CHUNK_FLUSH_BULK,
    EV_DEMOTION,
    EV_GC_PASS,
    EV_LAZY_APPEND,
    EV_PADDING,
    EV_SHADOW_APPEND,
    EV_THRESHOLD_SWITCH,
    EV_USER_WRITE,
    EventTracer,
)
from repro.obs.metrics import BLOCK_BUCKETS, MetricsRegistry

#: Column order of the time-series rows collected by :class:`ObsRecorder`
#: (and of the CSV written by
#: :func:`repro.obs.exporters.write_timeseries_csv`).
SERIES_COLUMNS: tuple[str, ...] = (
    "time_us", "user_blocks", "flash_blocks", "gc_blocks", "padding_blocks",
    "shadow_blocks", "write_amplification", "padding_ratio", "gc_ratio",
    "gc_passes",
)


class NullRecorder:
    """No-op recorder; every hook exists and does nothing.

    Instrumented call sites guard on :attr:`enabled` (usually via a cached
    local boolean), so a disabled run pays one attribute read per guarded
    region, not one method call per block.
    """

    enabled = False
    #: Whether this recorder implements the bulk (chunk-aggregated) hook
    #: contract — ``on_user_write_bulk``/``on_read_bulk``/
    #: ``on_full_flush_bulk``/``on_deadline_flush`` producing totals
    #: bit-identical to the per-event hooks.  ``False`` here on purpose:
    #: a custom *enabled* recorder that merely subclasses this vocabulary
    #: keeps the scalar replay engine (and its exact per-event hook
    #: cadence) unless it opts in explicitly.
    batch_capable = False

    # -- lifecycle ------------------------------------------------------
    def bind_store(self, store: Any) -> None:
        """Called once by the store that owns this recorder."""

    def on_finalize(self, stats: Any) -> None:
        """End of replay: the store flushed every pending chunk."""

    # -- hot-path hooks -------------------------------------------------
    def on_user_write(self, lba: int, now_us: int) -> None:
        """One user block write was accepted."""

    def on_read(self, offset: int, now_us: int) -> None:
        """One read request arrived."""

    def on_chunk_flush(self, gid: int, name: str, flush: Any) -> None:
        """A coalescing buffer emitted a :class:`ChunkFlush`."""

    def on_gc_pass(self, victim_seg: int, group_id: int, valid_blocks: int,
                   now_us: int) -> None:
        """GC cleaned one victim segment."""

    def on_shadow_append(self, hot_gid: int, cold_gid: int, blocks: int,
                         now_us: int) -> None:
        """Cross-group aggregation persisted substitutes (§3.3)."""

    def on_lazy_append(self, gid: int, blocks: int, now_us: int) -> None:
        """A flush persisted blocks that already had substitutes."""

    def on_demotion(self, lba: int, target_gid: int, score: int,
                    now_us: int) -> None:
        """Proactive demotion routed a user write into a GC group (§3.4)."""

    def on_threshold_switch(self, threshold: float, mode: str, rounds: int,
                            now_us: int) -> None:
        """The threshold ladder closed an adaptation round (§3.2)."""

    def on_audit_violation(self, invariant: str, detail: str,
                           now_us: int) -> None:
        """An :class:`~repro.validate.InvariantAuditor` check failed."""

    # -- bulk (chunk-aggregated) hooks ----------------------------------
    # Called by the batched replay paths instead of N per-event calls;
    # a batch-capable recorder must make each produce exactly the metric
    # updates the equivalent per-event calls would.
    def on_user_write_bulk(self, count: int, last_lba: int,
                           now_us: int) -> None:
        """``count`` user block writes were accepted; the last one wrote
        ``last_lba`` at ``now_us``."""

    def on_read_bulk(self, count: int, now_us: int) -> None:
        """``count`` read requests were observed."""

    def on_full_flush_bulk(self, gid: int, name: str, count: int,
                           chunk_blocks: int, now_us: int) -> None:
        """``count`` FULL chunk flushes of ``chunk_blocks`` data blocks
        each (a FULL flush never pads) left one group's buffer."""

    def on_deadline_flush(self, gid: int, name: str, data_blocks: int,
                          padding_blocks: int, now_us: int) -> None:
        """One SLA-deadline flush fired through the lean counted path."""

    # -- generic escape hatches -----------------------------------------
    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge (no-op when disabled)."""

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a named counter (no-op when disabled)."""

    def inc_many(self, deltas: dict) -> None:
        """Bump several named counters at once (no-op when disabled)."""

    def snapshot(self) -> dict | None:
        """Picklable summary of everything recorded (``None`` here)."""
        return None


#: Shared default recorder: one immutable no-op instance for the whole
#: process.
NULL_RECORDER = NullRecorder()


class ObsRecorder(NullRecorder):
    """Live recorder: metrics registry + event tracer + time-series.

    By default the recorder is **batch-capable**: it implements the bulk
    hooks with metric updates bit-identical to the per-event hooks, so
    ``store.replay(engine="auto")`` keeps the batched engine (the obs-on
    engine-equivalence suite proves the snapshots match).  Requesting
    exact per-event traces (``trace_events=True``) gives up that — the
    store documents the scalar fallback — while the default mode still
    records events, just aggregated on the batched paths (a
    ``chunk_flush_bulk`` record for a run of FULL flushes, a sampled
    ``user_write`` marker per series row) and optionally ratio-sampled
    via ``event_sample_every``.

    Args:
        sample_every_blocks: append one time-series row (and one sampled
            ``user_write`` marker event) every N accepted user blocks.
        event_capacity: in-memory event buffer size.
        spill_path: optional JSONL file full buffers are appended to.
        trace_user_writes: emit a ``user_write`` event for *every* block
            (very chatty; implies ``trace_events``).
        trace_events: demand the exact per-event stream — every
            ``chunk_flush``, never an aggregate record.  Marks the
            recorder not batch-capable, so ``engine="auto"`` falls back
            to the scalar loop.
        event_sample_every: ratio-sample the stored events (per-type
            counts stay exact); forwarded to :class:`EventTracer`.
        timeline: optional :class:`~repro.obs.timeline.ReplayTimeline`
            to drive from this recorder's hooks (bound to the store and
            finalized alongside the recorder).
    """

    enabled = True

    def __init__(self, sample_every_blocks: int = 1024,
                 event_capacity: int = 65_536,
                 spill_path: str | None = None,
                 trace_user_writes: bool = False,
                 trace_events: bool = False,
                 event_sample_every: int = 1,
                 timeline: Any = None) -> None:
        if sample_every_blocks < 1:
            raise ValueError("sample_every_blocks must be >= 1")
        self.sample_every_blocks = sample_every_blocks
        self.trace_user_writes = trace_user_writes
        self.trace_events = trace_events or trace_user_writes
        self.batch_capable = not self.trace_events
        self.timeline = timeline
        self.registry = MetricsRegistry()
        self.tracer = EventTracer(event_capacity, spill_path=spill_path,
                                  sample_every=event_sample_every)
        self.series: list[tuple] = []
        self._store: Any = None

        reg = self.registry
        self._user_blocks = reg.counter(
            "lss_user_blocks_total", "user block writes accepted")
        self._reads = reg.counter(
            "lss_read_requests_total", "read requests observed")
        self._flush_full = reg.counter(
            "lss_chunk_flushes_full_total", "chunk flushes (filled)")
        self._flush_deadline = reg.counter(
            "lss_chunk_flushes_deadline_total",
            "chunk flushes (SLA deadline, zero-padded)")
        self._flush_forced = reg.counter(
            "lss_chunk_flushes_forced_total",
            "chunk flushes (forced at seal/shutdown)")
        self._data_blocks = reg.counter(
            "lss_flushed_data_blocks_total", "data blocks flushed to chunks")
        self._padding_blocks = reg.counter(
            "lss_padding_blocks_total", "zero-padding blocks written")
        self._gc_passes = reg.counter(
            "lss_gc_passes_total", "GC victim segments cleaned")
        self._gc_migrated = reg.counter(
            "lss_gc_blocks_migrated_total", "valid blocks migrated by GC")
        self._shadow_blocks = reg.counter(
            "lss_shadow_append_blocks_total",
            "substitute blocks written by cross-group aggregation")
        self._lazy_blocks = reg.counter(
            "lss_lazy_append_blocks_total",
            "previously-shadowed blocks persisted in place")
        self._demotions = reg.counter(
            "lss_demotions_total", "user writes routed by proactive demotion")
        self._threshold_switches = reg.counter(
            "lss_threshold_switches_total", "threshold adaptation rounds")
        self._audit_violations = reg.counter(
            "lss_audit_violations_total", "invariant audit failures")
        self._h_fill = reg.histogram(
            "lss_chunk_fill_blocks", BLOCK_BUCKETS,
            "data blocks per flushed chunk")
        self._h_padding = reg.histogram(
            "lss_chunk_padding_blocks", BLOCK_BUCKETS,
            "padding blocks per padded flush")
        self._h_victim = reg.histogram(
            "lss_gc_victim_valid_blocks", BLOCK_BUCKETS,
            "valid blocks per GC victim segment")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind_store(self, store: Any) -> None:
        self._store = store
        g = self.registry.gauge("lss_logical_blocks",
                                "configured logical address space")
        g.set(store.config.logical_blocks)
        if self.timeline is not None:
            self.timeline.bind(store)

    def on_finalize(self, stats: Any) -> None:
        # Always close the series with an exact final row: exporters and
        # tests rely on the last row matching StoreStats to the bit.
        now_us = getattr(self._store, "now_us", 0)
        self._sample_row(now_us, stats)
        self.gauge("lss_write_amplification", stats.write_amplification())
        self.gauge("lss_padding_traffic_ratio", stats.padding_traffic_ratio())
        self.gauge("lss_gc_traffic_ratio", stats.gc_traffic_ratio())
        if self.timeline is not None:
            self.timeline.finalize(now_us)

    # ------------------------------------------------------------------
    # hot-path hooks
    # ------------------------------------------------------------------
    def on_user_write(self, lba: int, now_us: int) -> None:
        self._user_blocks.value += 1
        if self.trace_user_writes:
            self.tracer.emit(EV_USER_WRITE, now_us, lba=lba)
        if self._user_blocks.value % self.sample_every_blocks == 0:
            stats = self._store.stats if self._store is not None else None
            if stats is not None:
                self._sample_row(now_us, stats)
                if not self.trace_user_writes:
                    # Sampled marker: one user_write event per series row.
                    self.tracer.emit(
                        EV_USER_WRITE, now_us, lba=lba,
                        user_blocks=int(self._user_blocks.value))
        if self.timeline is not None:
            self.timeline.maybe_sample(now_us)

    def on_read(self, offset: int, now_us: int) -> None:
        self._reads.value += 1

    # -- bulk (chunk-aggregated) hooks ----------------------------------
    def on_user_write_bulk(self, count: int, last_lba: int,
                           now_us: int) -> None:
        ub = self._user_blocks
        before = int(ub.value)
        ub.value += count
        after = before + count
        se = self.sample_every_blocks
        if after // se > before // se:
            # The batch crossed at least one sampling boundary: one row
            # at the batch edge (chunk-granular; the final finalize row
            # stays exact under every engine).
            stats = self._store.stats if self._store is not None else None
            if stats is not None:
                self._sample_row(now_us, stats)
                self.tracer.emit(EV_USER_WRITE, now_us, lba=last_lba,
                                 user_blocks=after)
        if self.timeline is not None:
            self.timeline.maybe_sample(now_us)

    def on_read_bulk(self, count: int, now_us: int) -> None:
        self._reads.value += count

    def on_full_flush_bulk(self, gid: int, name: str, count: int,
                           chunk_blocks: int, now_us: int) -> None:
        # Identical totals to `count` on_chunk_flush calls for FULL
        # flushes (data == chunk_blocks, no padding), collapsed into one
        # aggregate event record.
        self._flush_full.value += count
        self._data_blocks.value += count * chunk_blocks
        self._h_fill.observe_bulk(chunk_blocks, count)
        self.tracer.emit(EV_CHUNK_FLUSH_BULK, now_us, group=gid, name=name,
                         flushes=count, data_blocks=count * chunk_blocks)

    def on_deadline_flush(self, gid: int, name: str, data_blocks: int,
                          padding_blocks: int, now_us: int) -> None:
        # Mirrors on_chunk_flush for a DEADLINE flush, fed from the lean
        # counted fire path that never materializes the ChunkFlush.
        self._flush_deadline.value += 1
        self._data_blocks.value += data_blocks
        self._h_fill.observe(data_blocks)
        self.tracer.emit(EV_CHUNK_FLUSH, now_us, group=gid, name=name,
                         reason="deadline", data_blocks=data_blocks,
                         padding_blocks=padding_blocks)
        if padding_blocks:
            self._padding_blocks.value += padding_blocks
            self._h_padding.observe(padding_blocks)
            self.tracer.emit(EV_PADDING, now_us, group=gid, name=name,
                             blocks=padding_blocks, reason="deadline")

    def on_chunk_flush(self, gid: int, name: str, flush: Any) -> None:
        reason = flush.reason.value
        if reason == "full":
            self._flush_full.value += 1
        elif reason == "deadline":
            self._flush_deadline.value += 1
        else:
            self._flush_forced.value += 1
        self._data_blocks.value += flush.data_blocks
        self._h_fill.observe(flush.data_blocks)
        self.tracer.emit(EV_CHUNK_FLUSH, flush.time_us, group=gid,
                         name=name, reason=reason,
                         data_blocks=flush.data_blocks,
                         padding_blocks=flush.padding_blocks)
        if flush.padding_blocks:
            self._padding_blocks.value += flush.padding_blocks
            self._h_padding.observe(flush.padding_blocks)
            self.tracer.emit(EV_PADDING, flush.time_us, group=gid,
                             name=name, blocks=flush.padding_blocks,
                             reason=reason)

    def on_gc_pass(self, victim_seg: int, group_id: int, valid_blocks: int,
                   now_us: int) -> None:
        self._gc_passes.value += 1
        self._gc_migrated.value += valid_blocks
        self._h_victim.observe(valid_blocks)
        self.tracer.emit(EV_GC_PASS, now_us, victim=victim_seg,
                         group=group_id, valid_blocks=valid_blocks)

    def on_shadow_append(self, hot_gid: int, cold_gid: int, blocks: int,
                         now_us: int) -> None:
        self._shadow_blocks.value += blocks
        self.tracer.emit(EV_SHADOW_APPEND, now_us, hot_group=hot_gid,
                         cold_group=cold_gid, blocks=blocks)

    def on_lazy_append(self, gid: int, blocks: int, now_us: int) -> None:
        self._lazy_blocks.value += blocks
        self.tracer.emit(EV_LAZY_APPEND, now_us, group=gid, blocks=blocks)

    def on_demotion(self, lba: int, target_gid: int, score: int,
                    now_us: int) -> None:
        self._demotions.value += 1
        self.tracer.emit(EV_DEMOTION, now_us, lba=lba, group=target_gid,
                         score=score)

    def on_threshold_switch(self, threshold: float, mode: str, rounds: int,
                            now_us: int) -> None:
        self._threshold_switches.value += 1
        self.registry.gauge("lss_ghost_best_threshold",
                            "ghost-side winning threshold").set(threshold)
        self.tracer.emit(EV_THRESHOLD_SWITCH, now_us, threshold=threshold,
                         mode=mode, rounds=rounds)

    def on_audit_violation(self, invariant: str, detail: str,
                           now_us: int) -> None:
        self._audit_violations.value += 1
        self.tracer.emit(EV_AUDIT_VIOLATION, now_us, invariant=invariant,
                         detail=detail)

    # ------------------------------------------------------------------
    # generic escape hatches
    # ------------------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def count(self, name: str, amount: float = 1) -> None:
        self.registry.counter(name).inc(amount)

    def inc_many(self, deltas: dict) -> None:
        counter = self.registry.counter
        for name, amount in deltas.items():
            counter(name).inc(amount)

    # ------------------------------------------------------------------
    # time-series + snapshot
    # ------------------------------------------------------------------
    def _sample_row(self, now_us: int, stats: Any) -> None:
        self.series.append((
            int(now_us),
            int(stats.user_blocks_requested),
            int(stats.flash_blocks_written),
            int(stats.gc_blocks_written),
            int(stats.padding_blocks_written),
            int(stats.shadow_blocks_written),
            float(stats.write_amplification()),
            float(stats.padding_traffic_ratio()),
            float(stats.gc_traffic_ratio()),
            int(stats.gc_passes),
        ))

    def snapshot(self) -> dict:
        """Plain-dict summary: metrics, event counts, final series row.

        Everything is picklable, so :func:`replay_volume` can attach it to
        a :class:`VolumeResult` even across worker processes.
        """
        snap = self.registry.snapshot()
        snap["events"] = dict(self.tracer.counts)
        snap["events_dropped"] = self.tracer.dropped
        snap["events_spilled"] = self.tracer.spilled
        snap["events_sampled_out"] = self.tracer.sampled_out
        snap["series_rows"] = len(self.series)
        snap["final"] = (dict(zip(SERIES_COLUMNS, self.series[-1]))
                         if self.series else None)
        if self.timeline is not None:
            snap["timeline_rows"] = len(self.timeline)
        return snap
