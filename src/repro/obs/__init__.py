"""Observability: metrics, event tracing, profiling and exporters.

The package has five layers:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  collected in a :class:`MetricsRegistry`;
* :mod:`repro.obs.events` — a typed event tracer with an in-memory ring
  buffer, optional JSONL spill, and ratio sampling;
* :mod:`repro.obs.recorder` — the hook surface the simulator calls.  Every
  instrumented hot path holds a recorder; the default
  :data:`~repro.obs.recorder.NULL_RECORDER` makes each hook a no-op, so
  instrumentation costs nothing unless an :class:`ObsRecorder` is
  attached.  The default :class:`ObsRecorder` is *batch-capable*: the
  batched replay engine drives it through chunk-aggregated bulk hooks
  whose metric totals are bit-identical to the scalar per-event hooks;
* :mod:`repro.obs.profile` — wall-clock phase spans with Chrome
  ``trace_event`` and top-N table exports;
* :mod:`repro.obs.timeline` — periodic per-N-blocks snapshots of WA,
  padding, occupancy, and threshold position as a NumPy timeseries;
* :mod:`repro.obs.attribution` — causal attribution: chunk-bound
  termination causes, the GC provenance ledger, and deterministic
  cross-shard snapshot merging (the default
  :data:`~repro.obs.attribution.NULL_ATTRIBUTION` makes every hook a
  no-op);
* :mod:`repro.obs.analyze` — the ``adapt-repro analyze`` bottleneck
  explainer over profiler traces, attribution snapshots and timelines.

Exporters (:mod:`repro.obs.exporters`) turn a recorder into artifacts: a
JSONL event log, a CSV time-series of headline metrics, a Prometheus
text-format snapshot, and timeline CSV/JSONL — all written atomically
(:mod:`repro.obs.atomicio`).
"""

from repro.obs.analyze import (
    analyze,
    load_chrome_trace,
    load_timeline_tail,
    render_report,
    write_report_json,
)
from repro.obs.atomicio import atomic_write, ensure_parent
from repro.obs.attribution import (
    CHUNK_CAUSES,
    NULL_ATTRIBUTION,
    AttributionRecorder,
    NullAttribution,
    invariant_view,
    merge_attribution_snapshots,
    write_attribution_json,
)
from repro.obs.events import (
    EV_CHUNK_FLUSH,
    EV_CHUNK_FLUSH_BULK,
    EV_DEMOTION,
    EV_GC_PASS,
    EV_LAZY_APPEND,
    EV_PADDING,
    EV_SHADOW_APPEND,
    EV_THRESHOLD_SWITCH,
    EV_USER_WRITE,
    EVENT_TYPES,
    Event,
    EventTracer,
)
from repro.obs.exporters import (
    prometheus_text,
    write_events_jsonl,
    write_prometheus,
    write_timeline_csv,
    write_timeline_jsonl,
    write_timeseries_csv,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    current,
    set_current,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    SERIES_COLUMNS,
    NullRecorder,
    ObsRecorder,
)
from repro.obs.timeline import ATTR_COLUMNS, BASE_COLUMNS, ReplayTimeline

__all__ = [
    "AttributionRecorder",
    "NullAttribution",
    "NULL_ATTRIBUTION",
    "CHUNK_CAUSES",
    "invariant_view",
    "merge_attribution_snapshots",
    "write_attribution_json",
    "analyze",
    "load_chrome_trace",
    "load_timeline_tail",
    "render_report",
    "write_report_json",
    "ATTR_COLUMNS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Event",
    "EventTracer",
    "EVENT_TYPES",
    "EV_USER_WRITE",
    "EV_CHUNK_FLUSH",
    "EV_CHUNK_FLUSH_BULK",
    "EV_PADDING",
    "EV_SHADOW_APPEND",
    "EV_LAZY_APPEND",
    "EV_GC_PASS",
    "EV_DEMOTION",
    "EV_THRESHOLD_SWITCH",
    "NullRecorder",
    "NULL_RECORDER",
    "ObsRecorder",
    "SERIES_COLUMNS",
    "NullProfiler",
    "NULL_PROFILER",
    "PhaseProfiler",
    "current",
    "set_current",
    "BASE_COLUMNS",
    "ReplayTimeline",
    "atomic_write",
    "ensure_parent",
    "prometheus_text",
    "write_events_jsonl",
    "write_prometheus",
    "write_timeline_csv",
    "write_timeline_jsonl",
    "write_timeseries_csv",
]
