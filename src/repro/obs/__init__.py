"""Observability: metrics, event tracing and exporters for the simulator.

The package has three layers:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  collected in a :class:`MetricsRegistry`;
* :mod:`repro.obs.events` — a typed event tracer with an in-memory ring
  buffer and optional JSONL spill;
* :mod:`repro.obs.recorder` — the hook surface the simulator calls.  Every
  instrumented hot path holds a recorder; the default
  :data:`~repro.obs.recorder.NULL_RECORDER` makes each hook a no-op, so
  instrumentation costs nothing unless an :class:`ObsRecorder` is attached.

Exporters (:mod:`repro.obs.exporters`) turn a recorder into artifacts: a
JSONL event log, a CSV time-series of headline metrics, and a Prometheus
text-format snapshot.
"""

from repro.obs.events import (
    EV_CHUNK_FLUSH,
    EV_DEMOTION,
    EV_GC_PASS,
    EV_LAZY_APPEND,
    EV_PADDING,
    EV_SHADOW_APPEND,
    EV_THRESHOLD_SWITCH,
    EV_USER_WRITE,
    EVENT_TYPES,
    Event,
    EventTracer,
)
from repro.obs.exporters import (
    prometheus_text,
    write_events_jsonl,
    write_prometheus,
    write_timeseries_csv,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import (
    NULL_RECORDER,
    SERIES_COLUMNS,
    NullRecorder,
    ObsRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Event",
    "EventTracer",
    "EVENT_TYPES",
    "EV_USER_WRITE",
    "EV_CHUNK_FLUSH",
    "EV_PADDING",
    "EV_SHADOW_APPEND",
    "EV_LAZY_APPEND",
    "EV_GC_PASS",
    "EV_DEMOTION",
    "EV_THRESHOLD_SWITCH",
    "NullRecorder",
    "NULL_RECORDER",
    "ObsRecorder",
    "SERIES_COLUMNS",
    "prometheus_text",
    "write_events_jsonl",
    "write_prometheus",
    "write_timeseries_csv",
]
