"""Typed event tracing with a bounded in-memory buffer and JSONL spill.

Events are the time-resolved counterpart of the aggregate counters in
:class:`repro.lss.stats.StoreStats`: one record per interesting occurrence
(a chunk flush, a GC pass, a shadow append, ...) with the simulated
timestamp and a small dict of type-specific fields.

The tracer keeps the most recent ``capacity`` events in memory.  When a
``spill_path`` is configured, a full buffer is appended to that file as
JSON Lines and cleared, so arbitrarily long runs trace completely with
bounded memory; without a spill path the tracer behaves as a ring buffer
and counts what it dropped (``dropped``) instead of silently lying.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.common.errors import ConfigError

# Event types emitted by the instrumented simulator.
EV_USER_WRITE = "user_write"
EV_CHUNK_FLUSH = "chunk_flush"
EV_PADDING = "padding"
EV_SHADOW_APPEND = "shadow_append"
EV_LAZY_APPEND = "lazy_append"
EV_GC_PASS = "gc_pass"
EV_DEMOTION = "demotion"
EV_THRESHOLD_SWITCH = "threshold_switch"
EV_AUDIT_VIOLATION = "audit_violation"

EVENT_TYPES: tuple[str, ...] = (
    EV_USER_WRITE, EV_CHUNK_FLUSH, EV_PADDING, EV_SHADOW_APPEND,
    EV_LAZY_APPEND, EV_GC_PASS, EV_DEMOTION, EV_THRESHOLD_SWITCH,
    EV_AUDIT_VIOLATION,
)


@dataclass(frozen=True, slots=True)
class Event:
    """One traced occurrence."""

    seq: int
    time_us: int
    type: str
    fields: dict[str, Any]

    def to_json_dict(self) -> dict[str, Any]:
        """Flat dict for JSONL export (fields are inlined)."""
        out: dict[str, Any] = {"seq": self.seq, "t_us": self.time_us,
                               "type": self.type}
        out.update(self.fields)
        return out


class EventTracer:
    """Bounded event buffer with optional JSONL spill-to-disk."""

    def __init__(self, capacity: int = 65_536,
                 spill_path: str | None = None) -> None:
        if capacity < 1:
            raise ConfigError("event capacity must be >= 1")
        self.capacity = capacity
        self.spill_path = spill_path
        self._buf: deque[Event] = deque()
        self._seq = 0
        self.dropped = 0
        self.spilled = 0
        self._spill_started = False
        self.counts: dict[str, int] = {}

    def emit(self, type_: str, time_us: int, **fields: Any) -> None:
        """Record one event (fields must be JSON-serialisable)."""
        if len(self._buf) >= self.capacity:
            if self.spill_path is not None:
                self.spill()
            else:
                self._buf.popleft()
                self.dropped += 1
        self._buf.append(Event(self._seq, time_us, type_, fields))
        self._seq += 1
        self.counts[type_] = self.counts.get(type_, 0) + 1

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[Event, ...]:
        """Events currently held in memory (oldest first)."""
        return tuple(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def total_emitted(self) -> int:
        return self._seq

    def iter_type(self, type_: str) -> Iterator[Event]:
        return (e for e in self._buf if e.type == type_)

    # ------------------------------------------------------------------
    # spill
    # ------------------------------------------------------------------
    def spill(self) -> int:
        """Flush every buffered event to ``spill_path`` and clear the
        buffer; returns the number of events written.  The first spill of
        a tracer's lifetime truncates the file (a fresh run never appends
        to a previous run's log); later spills append.
        """
        if self.spill_path is None:
            raise ConfigError("tracer has no spill_path configured")
        n = len(self._buf)
        if n == 0:
            return 0
        mode = "a" if self._spill_started else "w"
        self._spill_started = True
        with open(self.spill_path, mode, encoding="utf-8") as f:
            for ev in self._buf:
                f.write(json.dumps(ev.to_json_dict(),
                                   separators=(",", ":")) + "\n")
        self._buf.clear()
        self.spilled += n
        return n
