"""Typed event tracing with a bounded in-memory buffer and JSONL spill.

Events are the time-resolved counterpart of the aggregate counters in
:class:`repro.lss.stats.StoreStats`: one record per interesting occurrence
(a chunk flush, a GC pass, a shadow append, ...) with the simulated
timestamp and a small dict of type-specific fields.

The tracer keeps the most recent ``capacity`` events in memory.  When a
``spill_path`` is configured, a full buffer is appended to that file as
JSON Lines and cleared, so arbitrarily long runs trace completely with
bounded memory; without a spill path the tracer behaves as a ring buffer
and counts what it dropped (``dropped``) instead of silently lying.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterator, NamedTuple

from repro.common.errors import ConfigError

# Event types emitted by the instrumented simulator.
EV_USER_WRITE = "user_write"
EV_CHUNK_FLUSH = "chunk_flush"
#: Aggregate record of N consecutive FULL chunk flushes of one group,
#: emitted by the batched accounting paths instead of N ``chunk_flush``
#: events (counters stay exact; the per-flush records are collapsed).
EV_CHUNK_FLUSH_BULK = "chunk_flush_bulk"
EV_PADDING = "padding"
EV_SHADOW_APPEND = "shadow_append"
EV_LAZY_APPEND = "lazy_append"
EV_GC_PASS = "gc_pass"
EV_DEMOTION = "demotion"
EV_THRESHOLD_SWITCH = "threshold_switch"
EV_AUDIT_VIOLATION = "audit_violation"

EVENT_TYPES: tuple[str, ...] = (
    EV_USER_WRITE, EV_CHUNK_FLUSH, EV_CHUNK_FLUSH_BULK, EV_PADDING,
    EV_SHADOW_APPEND, EV_LAZY_APPEND, EV_GC_PASS, EV_DEMOTION,
    EV_THRESHOLD_SWITCH, EV_AUDIT_VIOLATION,
)


class Event(NamedTuple):
    """One traced occurrence.

    A NamedTuple rather than a dataclass: events are constructed on the
    instrumented hot path, and tuple construction is several times
    cheaper than a frozen dataclass ``__init__``.
    """

    seq: int
    time_us: int
    type: str
    fields: dict[str, Any]

    def to_json_dict(self) -> dict[str, Any]:
        """Flat dict for JSONL export (fields are inlined)."""
        out: dict[str, Any] = {"seq": self.seq, "t_us": self.time_us,
                               "type": self.type}
        out.update(self.fields)
        return out


class EventTracer:
    """Bounded event buffer with optional JSONL spill-to-disk.

    Args:
        capacity: in-memory buffer size before spilling/dropping.
        spill_path: optional JSONL file full buffers are appended to.
        sample_every: ratio sampling — store only every Nth event of each
            type (the first, the (N+1)th, ...).  Per-type ``counts`` stay
            exact regardless; only the stored records thin out, which is
            what makes event tracing affordable inside the batched replay
            engine.  ``1`` (the default) stores everything.
    """

    def __init__(self, capacity: int = 65_536,
                 spill_path: str | None = None,
                 sample_every: int = 1) -> None:
        if capacity < 1:
            raise ConfigError("event capacity must be >= 1")
        if sample_every < 1:
            raise ConfigError("sample_every must be >= 1")
        self.capacity = capacity
        self.spill_path = spill_path
        self.sample_every = sample_every
        self._buf: deque[Event] = deque()
        self._seq = 0
        self.dropped = 0
        self.spilled = 0
        #: Events counted but not stored because of ratio sampling.
        self.sampled_out = 0
        self._spill_started = False
        self.counts: dict[str, int] = {}

    def emit(self, type_: str, time_us: int, **fields: Any) -> None:
        """Record one event (fields must be JSON-serialisable)."""
        n = self.counts.get(type_, 0) + 1
        self.counts[type_] = n
        if self.sample_every > 1 and (n - 1) % self.sample_every:
            self.sampled_out += 1
            return
        if len(self._buf) >= self.capacity:
            if self.spill_path is not None:
                self.spill()
            else:
                self._buf.popleft()
                self.dropped += 1
        self._buf.append(Event(self._seq, time_us, type_, fields))
        self._seq += 1

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[Event, ...]:
        """Events currently held in memory (oldest first)."""
        return tuple(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def total_emitted(self) -> int:
        """Events stored (buffered or spilled); under ratio sampling the
        thinned-out events count in ``counts``/``sampled_out``, not here."""
        return self._seq

    def iter_type(self, type_: str) -> Iterator[Event]:
        return (e for e in self._buf if e.type == type_)

    # ------------------------------------------------------------------
    # spill
    # ------------------------------------------------------------------
    def spill(self) -> int:
        """Flush every buffered event to ``spill_path`` and clear the
        buffer; returns the number of events written.  The first spill of
        a tracer's lifetime truncates the file (a fresh run never appends
        to a previous run's log); later spills append.
        """
        if self.spill_path is None:
            raise ConfigError("tracer has no spill_path configured")
        n = len(self._buf)
        if n == 0:
            return 0
        mode = "a" if self._spill_started else "w"
        if not self._spill_started:
            from repro.obs.atomicio import ensure_parent
            ensure_parent(self.spill_path)
        self._spill_started = True
        with open(self.spill_path, mode, encoding="utf-8") as f:
            for ev in self._buf:
                f.write(json.dumps(ev.to_json_dict(),
                                   separators=(",", ":")) + "\n")
        self._buf.clear()
        self.spilled += n
        return n
