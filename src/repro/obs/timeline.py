"""Replay timelines: a compact time axis for whole-run statistics.

End-of-run :class:`~repro.lss.stats.StoreStats` answers *where a run
ended up*; a :class:`ReplayTimeline` answers *how it got there*.  Bound
to a recorder, it snapshots the store every ``every_blocks`` accepted
user blocks — write amplification, zero-padding ratio, GC traffic ratio,
the placement policy's threshold position (NaN for policies without
one), free segments, and per-group occupancy — into one growing NumPy
matrix, then appends one exact final row at finalize.  The result is a
figure-ready timeseries (the paper's §4 trajectories) at a few hundred
bytes per sample.  Sampling keys off the user-block clock; under the
batched engine the recorder checks it at chunk boundaries rather than
per block, so intermediate row positions are chunk-granular there (the
engine-equivalence contract covers metric totals, not sampling cadence)
while the final row is exact under every engine.

Export helpers live in :mod:`repro.obs.exporters`
(:func:`~repro.obs.exporters.write_timeline_csv`,
:func:`~repro.obs.exporters.write_timeline_jsonl`).
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Columns every timeline starts with; per-group ``occ_<name>`` columns
#: follow when occupancy capture is on.
BASE_COLUMNS: tuple[str, ...] = (
    "user_blocks", "time_us", "write_amplification", "padding_ratio",
    "gc_ratio", "threshold", "free_segments",
)

#: Cumulative attribution columns appended when the bound store carries
#: an enabled attribution recorder.
ATTR_COLUMNS: tuple[str, ...] = (
    "attr_gc_victims", "attr_migrated_user_origin",
    "attr_migrated_gc_origin",
)


class ReplayTimeline:
    """Periodic per-N-blocks store snapshots as a float64 matrix.

    Args:
        every_blocks: sampling period on the user-block clock.
        capture_occupancy: append one ``occ_<group>`` column per group
            (blocks resident per group, the Fig 3b distribution over
            time).  Occupancy is a vectorized bincount over the segment
            pool — cheap, but not free; disable for the leanest timeline.
    """

    def __init__(self, every_blocks: int = 4096,
                 capture_occupancy: bool = True) -> None:
        if every_blocks < 1:
            raise ValueError("every_blocks must be >= 1")
        self.every_blocks = every_blocks
        self.capture_occupancy = capture_occupancy
        self._store: Any = None
        self._attr: Any = None
        self._columns: tuple[str, ...] = BASE_COLUMNS
        self._buf = np.empty((0, len(BASE_COLUMNS)), dtype=np.float64)
        self._n = 0
        self._next = every_blocks

    # ------------------------------------------------------------------
    # lifecycle (driven by the owning recorder)
    # ------------------------------------------------------------------
    def bind(self, store: Any) -> None:
        """Attach to a store; resets any previously collected rows.

        When the store carries an enabled attribution recorder, three
        ``attr_*`` columns (GC victims and migrated-block origin mix,
        cumulative) join the timeline so GC provenance can be read off
        the same time axis as WA.
        """
        self._store = store
        attr = getattr(store, "attribution", None)
        self._attr = attr if attr is not None and attr.enabled else None
        occ = tuple(f"occ_{g.spec.name}" for g in store.groups) \
            if self.capture_occupancy else ()
        attr_cols = ATTR_COLUMNS if self._attr is not None else ()
        self._columns = BASE_COLUMNS + occ + attr_cols
        self._buf = np.empty((64, len(self._columns)), dtype=np.float64)
        self._n = 0
        self._next = self.every_blocks

    def maybe_sample(self, now_us: int) -> None:
        """Sample iff the user-block clock crossed the next period."""
        store = self._store
        if store is None:
            return
        blocks = store.stats.user_blocks_requested
        if blocks < self._next:
            return
        self._sample(now_us)
        self._next = (blocks // self.every_blocks + 1) * self.every_blocks

    def finalize(self, now_us: int) -> None:
        """Append the exact end-of-run row (post force-flush)."""
        if self._store is not None:
            self._sample(now_us)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> np.ndarray:
        """View of the collected rows, shape ``(n, len(columns))``."""
        return self._buf[:self._n]

    def __len__(self) -> int:
        return self._n

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Column-name -> 1-D array copies (notebook/figure consumption)."""
        rows = self.rows
        return {name: rows[:, i].copy()
                for i, name in enumerate(self._columns)}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sample(self, now_us: int) -> None:
        store = self._store
        stats = store.stats
        row = [
            float(stats.user_blocks_requested),
            float(now_us),
            float(stats.write_amplification()),
            float(stats.padding_traffic_ratio()),
            float(stats.gc_traffic_ratio()),
            float(getattr(store.policy, "threshold", np.nan)),
            float(store.pool.free_segments),
        ]
        if self.capture_occupancy:
            row.extend(store.group_occupancy().tolist())
        if self._attr is not None:
            row.extend((float(self._attr.total_victims),
                        float(self._attr.total_migrated_user_origin),
                        float(self._attr.total_migrated_gc_origin)))
        if self._n == self._buf.shape[0]:
            grown = np.empty((max(64, self._buf.shape[0] * 2),
                              self._buf.shape[1]), dtype=np.float64)
            grown[:self._n] = self._buf[:self._n]
            self._buf = grown
        self._buf[self._n] = row
        self._n += 1


__all__ = ["ATTR_COLUMNS", "BASE_COLUMNS", "ReplayTimeline"]
