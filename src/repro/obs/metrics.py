"""Metric primitives: counters, gauges and fixed-bucket histograms.

All three are plain-attribute objects on the hot path (``c.value += n`` is
one attribute store); histograms keep their bucket counts in a NumPy int64
array and bin scalars with :func:`bisect.bisect_left` (arrays with
:func:`numpy.searchsorted`).  The registry is an ordered
name -> metric map with get-or-create accessors, a picklable
:meth:`~MetricsRegistry.snapshot`, and enough structure for the Prometheus
exporter to render every metric type faithfully.

Naming follows Prometheus conventions: snake_case, counters end in
``_total``.  Nothing enforces the suffix, but the simulator's built-in
instrumentation sticks to it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import ConfigError

#: Default histogram bucket edges for block-count distributions (chunk fill
#: levels, padding sizes, GC victim validity) — powers of two up to a
#: segment's worth of blocks.
BLOCK_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (less-or-equal)
    semantics: bucket ``i`` counts observations ``<= edges[i]``; one extra
    overflow bucket catches everything beyond the last edge (``+Inf``)."""

    __slots__ = ("name", "help", "edges", "_edge_list", "counts", "sum")
    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float],
                 help: str = "") -> None:
        # Non-finite edges (a caller-supplied +Inf, a NaN) fold into the
        # implicit overflow bucket: every histogram already ends in +Inf,
        # and an explicit infinite edge would make the Prometheus exporter
        # emit a duplicate (and mis-spelled) ``le`` label.
        edges = np.asarray(sorted(set(float(b) for b in buckets
                                      if np.isfinite(b))),
                           dtype=np.float64)
        if edges.size == 0:
            raise ConfigError(
                f"histogram {name!r} needs at least one finite bucket")
        self.name = name
        self.help = help
        self.edges = edges
        #: Plain-list mirror of ``edges`` for the scalar observe path:
        #: ``bisect`` on a list is an order of magnitude cheaper than
        #: ``np.searchsorted`` on a scalar, and observe sits on the
        #: per-flush hot path of instrumented replays.
        self._edge_list = edges.tolist()
        self.counts = np.zeros(edges.size + 1, dtype=np.int64)
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self._edge_list, value)] += 1
        self.sum += value

    def observe_bulk(self, value: float, count: int) -> None:
        """Record ``count`` identical observations of ``value``.

        Exactly equivalent to calling :meth:`observe` ``count`` times for
        the integral block-count values the simulator observes (the sum
        stays exact below 2**53), which is what lets the batched replay
        engine fold a run of identical chunk flushes into one call.
        """
        if count < 0:
            raise ValueError(
                f"histogram {self.name!r} bulk count cannot be negative")
        if count == 0:
            return
        self.counts[bisect_left(self._edge_list, value)] += count
        self.sum += value * count

    def observe_many(self, values) -> None:
        """Record a whole array of observations in one vectorized pass."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(self.edges, arr, side="left")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.sum += float(arr.sum())

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    def cumulative(self) -> np.ndarray:
        """Cumulative bucket counts, Prometheus style (last entry == total
        observation count, the ``+Inf`` bucket)."""
        return np.cumsum(self.counts)


class MetricsRegistry:
    """Ordered collection of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str,
                  buckets: Sequence[float] = BLOCK_BUCKETS,
                  help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, buckets, help)

    def __iter__(self) -> Iterable[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """Picklable plain-python view of every metric (used by the
        experiment runner to ship metrics across process boundaries)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for m in self._metrics.values():
            if isinstance(m, Counter):
                counters[m.name] = m.value
            elif isinstance(m, Gauge):
                gauges[m.name] = m.value
            else:
                histograms[m.name] = {
                    "edges": [float(e) for e in m.edges],
                    "counts": [int(c) for c in m.counts],
                    "sum": float(m.sum),
                    "count": m.count,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


def merge_metric_snapshots(snapshots: list[dict]) -> dict | None:
    """Deterministically merge :meth:`MetricsRegistry.snapshot` dicts.

    Counters sum; histograms with identical bucket edges sum their
    per-bucket counts, sums, and totals (mismatched edges are a caller
    bug and raise).  Gauges are point-in-time values with no meaningful
    cross-volume sum, so they are dropped.  Keys come out sorted, making
    the merge independent of input order given equal content.  Returns
    ``None`` when no snapshot is present.
    """
    live = [s for s in snapshots if s]
    if not live:
        return None
    counters: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in live:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, h in snap.get("histograms", {}).items():
            cur = histograms.get(name)
            if cur is None:
                histograms[name] = {
                    "edges": list(h["edges"]),
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                    "count": h["count"],
                }
            else:
                if cur["edges"] != list(h["edges"]):
                    raise ConfigError(
                        f"histogram {name!r} bucket edges differ across "
                        f"snapshots; cannot merge")
                cur["counts"] = [a + b for a, b
                                 in zip(cur["counts"], h["counts"])]
                cur["sum"] += h["sum"]
                cur["count"] += h["count"]
    return {
        "volumes": len(live),
        "counters": {k: counters[k] for k in sorted(counters)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
    }
