"""Atomic artifact writes shared by every obs exporter.

Observability artifacts (metrics snapshots, profiler traces, timelines)
are often written from CI jobs or long benches that may be interrupted;
a torn half-file that parses as truncated JSON is worse than no file.
Writers here follow the same discipline as
:mod:`repro.perf.tracecache`: write to a temporary file in the
destination directory, then ``os.replace`` it into place — readers see
either the old complete file or the new complete file, never a partial
one.  Missing parent directories are created on the way.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator


def ensure_parent(path: str) -> None:
    """Create ``path``'s parent directory if it does not exist."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)


@contextmanager
def atomic_write(path: str, newline: str | None = None) -> Iterator[IO[str]]:
    """Open a temporary text file that replaces ``path`` on clean exit.

    The temporary lives in ``path``'s directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX).  On an
    exception the temporary is removed and ``path`` is left untouched.
    """
    ensure_parent(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline=newline) as f:
            yield f
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def atomic_write_bytes(path: str) -> Iterator[IO[bytes]]:
    """Binary twin of :func:`atomic_write` (checkpoints, npz payloads)."""
    ensure_parent(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            yield f
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


__all__ = ["atomic_write", "atomic_write_bytes", "ensure_parent"]
