"""Phase profiler: wall-clock spans over the simulator's hot phases.

The replay engines, GC, finalize, and the experiment runner wrap their
phases in ``profiler.span("name")`` context managers.  The default
:data:`NULL_PROFILER` makes a span one attribute read plus a no-op
context manager, so uninstrumented runs pay effectively nothing; an
active :class:`PhaseProfiler` records ``time.perf_counter_ns`` spans
into per-name aggregates plus a bounded raw-event list.

Two export surfaces:

* :meth:`PhaseProfiler.chrome_trace` — Chrome ``trace_event`` JSON
  (complete "X" events), loadable by ``chrome://tracing``, Perfetto and
  speedscope;
* :meth:`PhaseProfiler.top_table` — a plain-text top-N table for CLI
  output and CI logs.

The active profiler is process-global (:func:`current` /
:func:`set_current`): stores capture it at construction, so CLI commands
install one around a whole run without threading it through every
constructor.  Spans may nest (a GC span inside an apply span), so
per-name totals can sum past wall-clock time; the table reports each
name's share of the profiler's own lifetime for orientation, not as a
partition.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.obs.atomicio import atomic_write


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullProfiler:
    """No-op profiler: every span is the shared inert context manager."""

    enabled = False

    def span(self, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN


#: Shared default profiler (one immutable no-op instance per process).
NULL_PROFILER = NullProfiler()


class _Span:
    __slots__ = ("_profiler", "name", "args", "_start_ns")

    def __init__(self, profiler: "PhaseProfiler", name: str,
                 args: dict[str, Any]) -> None:
        self._profiler = profiler
        self.name = name
        self.args = args
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = time.perf_counter_ns()
        self._profiler._record(self.name, self._start_ns,
                               end - self._start_ns, self.args)
        return False


class PhaseProfiler:
    """Recording profiler: per-name aggregates + bounded raw span list.

    Args:
        max_events: raw spans kept for the Chrome trace; beyond it spans
            still aggregate (count/total per name) but their individual
            records are dropped and counted in :attr:`dropped_events`.
    """

    enabled = True

    def __init__(self, max_events: int = 200_000) -> None:
        if max_events < 0:
            raise ValueError("max_events must be >= 0")
        self.max_events = max_events
        self._t0_ns = time.perf_counter_ns()
        #: Raw spans: (name, start_ns relative to profiler birth, dur_ns,
        #: args) in completion order.
        self.events: list[tuple[str, int, int, dict[str, Any]]] = []
        self.dropped_events = 0
        #: name -> [count, total_ns]
        self.totals: dict[str, list[int]] = {}

    def span(self, name: str, **args: Any) -> _Span:
        """Open a named span; use as a context manager."""
        return _Span(self, name, args)

    def _record(self, name: str, start_ns: int, dur_ns: int,
                args: dict[str, Any]) -> None:
        agg = self.totals.get(name)
        if agg is None:
            self.totals[name] = [1, dur_ns]
        else:
            agg[0] += 1
            agg[1] += dur_ns
        if len(self.events) < self.max_events:
            self.events.append((name, start_ns - self._t0_ns, dur_ns, args))
        else:
            self.dropped_events += 1

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def elapsed_ns(self) -> int:
        return time.perf_counter_ns() - self._t0_ns

    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON object (complete "X" events)."""
        trace_events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": "adapt-repro"},
        }]
        for name, start_ns, dur_ns, args in self.events:
            ev: dict = {"name": name, "ph": "X", "cat": "phase",
                        "pid": 0, "tid": 0,
                        "ts": start_ns / 1000.0, "dur": dur_ns / 1000.0}
            if args:
                ev["args"] = args
            trace_events.append(ev)
        # ``profile_events_dropped`` is the canonical key (the analyze
        # CLI and CI read it); ``dropped_events`` stays for older readers.
        return {"traceEvents": trace_events,
                "displayTimeUnit": "ms",
                "otherData": {
                    "dropped_events": self.dropped_events,
                    "profile_events_dropped": self.dropped_events,
                    "max_events": self.max_events,
                }}

    def write_chrome_trace(self, path: str) -> str:
        """Atomically write :meth:`chrome_trace` to ``path``; returns it."""
        with atomic_write(path) as f:
            json.dump(self.chrome_trace(), f, separators=(",", ":"))
            f.write("\n")
        return path

    def top_table(self, n: int = 15) -> str:
        """Top-``n`` phases by total time as a plain-text table."""
        wall_ns = max(self.elapsed_ns(), 1)
        ranked = sorted(self.totals.items(), key=lambda kv: -kv[1][1])[:n]
        header = (f"{'phase':<32} {'count':>8} {'total ms':>10} "
                  f"{'mean us':>10} {'% wall':>7}")
        lines = [header, "-" * len(header)]
        for name, (count, total_ns) in ranked:
            lines.append(
                f"{name[:32]:<32} {count:>8} {total_ns / 1e6:>10.2f} "
                f"{total_ns / count / 1e3:>10.1f} "
                f"{100.0 * total_ns / wall_ns:>6.1f}%")
        if not ranked:
            lines.append("(no spans recorded)")
        if self.dropped_events:
            lines.append(f"(profile_events_dropped="
                         f"{self.dropped_events}: "
                         f"{self.dropped_events} raw spans dropped "
                         f"beyond max_events={self.max_events}; "
                         f"aggregates above remain complete)")
        return "\n".join(lines)


_current: NullProfiler | PhaseProfiler = NULL_PROFILER


def current() -> NullProfiler | PhaseProfiler:
    """The process-global active profiler (the null one by default)."""
    return _current


def set_current(profiler: NullProfiler | PhaseProfiler | None):
    """Install (or, with ``None``, reset) the global profiler; returns it."""
    global _current
    _current = NULL_PROFILER if profiler is None else profiler
    return _current


__all__ = ["NULL_PROFILER", "NullProfiler", "PhaseProfiler", "current",
           "set_current"]
