"""Exporters: turn a recorder into on-disk artifacts.

Three formats, one per consumer:

* **JSONL event log** — one JSON object per traced event, for replaying a
  run's timeline in a notebook or diffing two runs' behaviour.
* **CSV time-series** — the sampled WA/padding/GC trajectory (columns in
  :data:`repro.obs.recorder.SERIES_COLUMNS`); the final row is exact, not
  sampled, and matches :class:`StoreStats` to the bit.
* **Prometheus text format** — a scrape-shaped snapshot of the metrics
  registry, so counters and histograms drop straight into existing
  dashboards.
"""

from __future__ import annotations

import csv
import json
import os
from typing import TYPE_CHECKING

from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.recorder import SERIES_COLUMNS

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import EventTracer
    from repro.obs.recorder import ObsRecorder


def write_events_jsonl(tracer: "EventTracer", path: str) -> int:
    """Write the tracer's events to ``path`` as JSON Lines.

    If the tracer spills to this same path, the buffered remainder is
    appended (completing the file); otherwise the in-memory events are
    written fresh.  Returns the number of events the file gained.
    """
    if tracer.spill_path == path:
        written = tracer.spill()
        if not os.path.exists(path):  # zero-event run still yields a file
            open(path, "w", encoding="utf-8").close()
        return written
    events = tracer.events
    with open(path, "w", encoding="utf-8") as f:
        for ev in events:
            f.write(json.dumps(ev.to_json_dict(),
                               separators=(",", ":")) + "\n")
    return len(events)


def write_timeseries_csv(recorder: "ObsRecorder", path: str) -> int:
    """Write the sampled time-series as CSV; returns the row count."""
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(SERIES_COLUMNS)
        writer.writerows(recorder.series)
    return len(recorder.series)


def _fmt(value: float) -> str:
    """Prometheus sample value: integers render bare, floats via repr."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for m in registry:
        if m.help:
            lines.append(f"# HELP {m.name} {m.help}")
        lines.append(f"# TYPE {m.name} {m.kind}")
        if isinstance(m, (Counter, Gauge)):
            lines.append(f"{m.name} {_fmt(m.value)}")
            continue
        cumulative = m.cumulative()
        for edge, count in zip(m.edges, cumulative):
            lines.append(f'{m.name}_bucket{{le="{_fmt(edge)}"}} {int(count)}')
        lines.append(f'{m.name}_bucket{{le="+Inf"}} {int(cumulative[-1])}')
        lines.append(f"{m.name}_sum {_fmt(m.sum)}")
        lines.append(f"{m.name}_count {int(cumulative[-1])}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(prometheus_text(registry))
