"""Exporters: turn a recorder into on-disk artifacts.

One format per consumer:

* **JSONL event log** — one JSON object per traced event, for replaying a
  run's timeline in a notebook or diffing two runs' behaviour.
* **CSV time-series** — the sampled WA/padding/GC trajectory (columns in
  :data:`repro.obs.recorder.SERIES_COLUMNS`); the final row is exact, not
  sampled, and matches :class:`StoreStats` to the bit.
* **Prometheus text format** — a scrape-shaped snapshot of the metrics
  registry, so counters and histograms drop straight into existing
  dashboards.  Histograms follow the exposition format exactly: cumulative
  ``_bucket`` samples ending in ``le="+Inf"``, then ``_sum`` and
  ``_count``; HELP text is escaped per the spec.
* **Timeline CSV/JSONL** — a :class:`~repro.obs.timeline.ReplayTimeline`
  as a spreadsheet-ready table or one JSON object per sample.

Every writer goes through :mod:`repro.obs.atomicio`: parent directories
are created and files land via tmp + rename, so an interrupted export
never leaves a torn artifact (the JSONL spill appends in place by
design, but its parent is created the same way).
"""

from __future__ import annotations

import csv
import json
import math
from typing import TYPE_CHECKING

from repro.obs.atomicio import atomic_write
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.recorder import SERIES_COLUMNS

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import EventTracer
    from repro.obs.recorder import ObsRecorder
    from repro.obs.timeline import ReplayTimeline


def write_events_jsonl(tracer: "EventTracer", path: str) -> int:
    """Write the tracer's events to ``path`` as JSON Lines.

    If the tracer spills to this same path, the buffered remainder is
    appended (completing the file); otherwise the in-memory events are
    written fresh.  Returns the number of events the file gained.
    """
    import os
    if tracer.spill_path == path:
        written = tracer.spill()
        if not os.path.exists(path):  # zero-event run still yields a file
            from repro.obs.atomicio import ensure_parent
            ensure_parent(path)
            open(path, "w", encoding="utf-8").close()
        return written
    events = tracer.events
    with atomic_write(path) as f:
        for ev in events:
            f.write(json.dumps(ev.to_json_dict(),
                               separators=(",", ":")) + "\n")
    return len(events)


def write_timeseries_csv(recorder: "ObsRecorder", path: str) -> int:
    """Write the sampled time-series as CSV; returns the row count."""
    with atomic_write(path, newline="") as f:
        writer = csv.writer(f)
        writer.writerow(SERIES_COLUMNS)
        writer.writerows(recorder.series)
    return len(recorder.series)


def _timeline_cell(value: float) -> float | int | None:
    """CSV/JSON-friendly cell: integral floats as ints, NaN as None."""
    if math.isnan(value):
        return None
    return int(value) if value.is_integer() else value


def write_timeline_csv(timeline: "ReplayTimeline", path: str) -> int:
    """Write a replay timeline as CSV; returns the row count.

    NaN cells (a policy without a threshold) render as empty fields.
    """
    with atomic_write(path, newline="") as f:
        writer = csv.writer(f)
        writer.writerow(timeline.columns)
        for row in timeline.rows:
            writer.writerow(["" if (c := _timeline_cell(v)) is None else c
                             for v in row.tolist()])
    return len(timeline)


def write_timeline_jsonl(timeline: "ReplayTimeline", path: str) -> int:
    """Write a replay timeline as JSON Lines (one object per sample);
    returns the row count.  NaN cells export as ``null``."""
    columns = timeline.columns
    with atomic_write(path) as f:
        for row in timeline.rows:
            obj = {k: _timeline_cell(v)
                   for k, v in zip(columns, row.tolist())}
            f.write(json.dumps(obj, separators=(",", ":")) + "\n")
    return len(timeline)


def _fmt(value: float) -> str:
    """Prometheus sample value: integers render bare, floats via repr."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _escape_help(text: str) -> str:
    """HELP escaping per the exposition format: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for m in registry:
        if m.help:
            lines.append(f"# HELP {m.name} {_escape_help(m.help)}")
        lines.append(f"# TYPE {m.name} {m.kind}")
        if isinstance(m, (Counter, Gauge)):
            lines.append(f"{m.name} {_fmt(m.value)}")
            continue
        cumulative = m.cumulative()
        for edge, count in zip(m.edges, cumulative):
            lines.append(f'{m.name}_bucket{{le="{_fmt(edge)}"}} {int(count)}')
        lines.append(f'{m.name}_bucket{{le="+Inf"}} {int(cumulative[-1])}')
        lines.append(f"{m.name}_sum {_fmt(m.sum)}")
        lines.append(f"{m.name}_count {int(cumulative[-1])}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    with atomic_write(path) as f:
        f.write(prometheus_text(registry))
