"""Fig 12 — prototype throughput under client scaling (a) and metadata
memory overhead vs SepBIT (b).

Paper reference points: all schemes tie at one client (SepGC marginally
ahead); ADAPT delivers 1.11-1.47x at 4 clients and 1.10-1.58x at 8 clients;
ADAPT's memory sits ~4.6 % above SepBIT's at the paper's 0.001 sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AdaptConfig
from repro.experiments.report import render_table
from repro.experiments.runner import store_config_for
from repro.experiments.scale import Scale, current_scale
from repro.experiments.workloads import SCHEMES
from repro.prototype.engine import PrototypeConfig, run_client_sweep
from repro.prototype.memory import MemoryReport, measure_memory
from repro.trace.synthetic.ycsb import generate_ycsb_a

CLIENT_COUNTS = (1, 4, 8)


@dataclass(frozen=True)
class Fig12aRow:
    scheme: str
    clients: int
    throughput_kops: float
    bandwidth_bound: bool
    write_amplification: float


def run_fig12a(scale: Scale | None = None,
               schemes: tuple[str, ...] = SCHEMES) -> list[Fig12aRow]:
    scale = scale or current_scale()
    cfg = PrototypeConfig(unique_blocks=scale.ycsb_blocks,
                          num_writes=scale.ycsb_writes)
    sweep = run_client_sweep(list(schemes), list(CLIENT_COUNTS), cfg)
    rows = []
    for scheme in schemes:
        for res in sweep[scheme]:
            rows.append(Fig12aRow(
                scheme=scheme, clients=res.clients,
                throughput_kops=res.throughput_ops / 1e3,
                bandwidth_bound=res.bandwidth_bound,
                write_amplification=res.write_amplification))
    return rows


def run_fig12b(scale: Scale | None = None,
               sample_rate: float = 0.01) -> list[MemoryReport]:
    scale = scale or current_scale()
    cfg = store_config_for(scale.ycsb_blocks)
    trace = generate_ycsb_a(scale.ycsb_blocks, scale.ycsb_writes,
                            density=8.0, read_ratio=0.0, seed=13)
    sepbit = measure_memory("sepbit", trace, cfg)
    adapt = measure_memory("adapt", trace, cfg,
                           adapt=AdaptConfig(sample_rate=sample_rate))
    return [sepbit, adapt]


def adapt_speedup(rows: list[Fig12aRow], clients: int) -> dict[str, float]:
    """ADAPT's throughput ratio vs each baseline at ``clients``."""
    mine = {r.scheme: r.throughput_kops for r in rows
            if r.clients == clients}
    adapt = mine["adapt"]
    return {s: adapt / t for s, t in mine.items() if s != "adapt"}


def render_fig12(rows_a: list[Fig12aRow],
                 rows_b: list[MemoryReport]) -> str:
    a = render_table(
        ["scheme", "clients", "throughput_kops", "bw_bound", "WA"],
        [[r.scheme, r.clients, r.throughput_kops, r.bandwidth_bound,
          r.write_amplification] for r in rows_a],
        title="Fig 12a — prototype throughput "
              "(paper: equal at 1 client, ADAPT 1.1-1.58x at 4-8 clients)",
    )
    base = rows_b[0]
    b = render_table(
        ["scheme", "policy_MiB", "mapping_MiB", "total_MiB", "overhead"],
        [[r.scheme, r.policy_bytes / 2**20, r.mapping_bytes / 2**20,
          r.total_bytes / 2**20, r.overhead_vs(base)] for r in rows_b],
        title="Fig 12b — metadata memory (paper: ADAPT ~+4.6% vs SepBIT "
              "at 0.001 sampling)",
    )
    return a + "\n\n" + b
