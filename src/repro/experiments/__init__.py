"""Experiment drivers: one module per figure of the paper's evaluation.

Every driver returns plain data (lists of dataclasses / dicts) plus a
rendered ASCII table, so benchmarks, examples and the CLI share one code
path.  Scales are selected with the ``REPRO_SCALE`` environment variable
(``smoke`` / ``default`` / ``paper``).
"""

from repro.experiments.scale import Scale, current_scale
from repro.experiments.runner import VolumeResult, replay_volume, run_matrix

__all__ = ["Scale", "current_scale", "VolumeResult", "replay_volume",
           "run_matrix"]
