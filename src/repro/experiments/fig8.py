"""Fig 8 — GC efficiency: overall WA (bars) and per-volume WA
distribution (boxplots) for six schemes x three workloads x two victim
policies.

Paper reference points: ADAPT lowest everywhere; on Ali/Greedy it cuts WA
by 30.8/32.5/33.1/30.8/21.8 % vs SepGC/MiDA/DAC/WARCIP/SepBIT; Tencent WA
lower than Ali across the board; Cost-Benefit <= Greedy for most schemes.

This driver is the sweep the padding (Fig 9) and correlation (Fig 10)
figures reuse — run it once per scale via :func:`sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.experiments.report import render_table
from repro.experiments.runner import (
    VolumeResult,
    overall_write_amplification,
    run_matrix,
)
from repro.experiments.scale import Scale, current_scale
from repro.experiments.workloads import PROFILES, SCHEMES, fleet_for

VICTIMS = ("greedy", "cost-benefit")


@lru_cache(maxsize=4)
def _sweep_cached(scale_key: tuple) -> tuple[VolumeResult, ...]:
    scale = Scale(*scale_key)
    out: list[VolumeResult] = []
    for profile in PROFILES:
        fleet = fleet_for(profile, scale)
        results = run_matrix(list(SCHEMES), fleet, victims=list(VICTIMS),
                             logical_blocks=scale.volume_blocks)
        for r in results:
            out.append(r)
    return tuple(out)


def sweep(scale: Scale | None = None) -> list[VolumeResult]:
    """The full fig-8/9/10 sweep (cached per scale)."""
    scale = scale or current_scale()
    return list(_sweep_cached(tuple(scale.__dict__.values())))


def profile_of(result: VolumeResult) -> str:
    return result.volume.split("-")[0]


@dataclass(frozen=True)
class Fig8Row:
    profile: str
    victim: str
    scheme: str
    overall_wa: float
    wa_p25: float
    wa_median: float
    wa_p75: float


def run_fig8(scale: Scale | None = None) -> list[Fig8Row]:
    results = sweep(scale)
    rows = []
    for victim in VICTIMS:
        for profile in PROFILES:
            for scheme in SCHEMES:
                cell = [r for r in results
                        if r.victim == victim and r.scheme == scheme
                        and profile_of(r) == profile]
                was = np.array([r.write_amplification for r in cell])
                rows.append(Fig8Row(
                    profile=profile, victim=victim, scheme=scheme,
                    overall_wa=overall_write_amplification(cell),
                    wa_p25=float(np.percentile(was, 25)),
                    wa_median=float(np.median(was)),
                    wa_p75=float(np.percentile(was, 75)),
                ))
    return rows


def adapt_reduction(rows: list[Fig8Row], profile: str,
                    victim: str = "greedy") -> dict[str, float]:
    """ADAPT's relative WA reduction vs every baseline (the paper's
    headline percentages)."""
    mine = {r.scheme: r.overall_wa for r in rows
            if r.profile == profile and r.victim == victim}
    adapt = mine["adapt"]
    return {s: 1.0 - adapt / wa for s, wa in mine.items() if s != "adapt"}


def render_fig8(rows: list[Fig8Row]) -> str:
    return render_table(
        ["profile", "victim", "scheme", "overall_WA", "p25", "median",
         "p75"],
        [[r.profile, r.victim, r.scheme, r.overall_wa, r.wa_p25,
          r.wa_median, r.wa_p75] for r in rows],
        title="Fig 8 — overall and per-volume WA "
              "(paper: ADAPT lowest in every cell; reductions 12.5-46.3%)",
    )
