"""Workload construction shared by the figure drivers (fleets are cached
per scale so figs 3, 8, 9 and 10 replay identical traces).

Fleets are memoised twice: in-process (``lru_cache``, so one run's
drivers share Trace objects) and on disk via
:mod:`repro.perf.tracecache` (so repeated runs — the bench harness, CI —
skip generation entirely; opt out with ``--no-trace-cache`` or
``ADAPT_REPRO_NO_TRACE_CACHE=1``)."""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.scale import Scale
from repro.perf.tracecache import cached_fleet
from repro.trace.model import Trace
from repro.trace.synthetic.cloud import generate_fleet

#: The three production environments of §4.1.
PROFILES = ("ali", "tencent", "msrc")

#: The six data-placement schemes of the evaluation.
SCHEMES = ("sepgc", "dac", "warcip", "mida", "sepbit", "adapt")

#: The five baselines of the motivation study (Fig 3).
BASELINES = ("sepgc", "dac", "warcip", "mida", "sepbit")

#: Master seed for all experiment fleets.
FLEET_SEED = 20250908  # ICPP'25 presentation date


@lru_cache(maxsize=None)
def _fleet_cached(profile: str, num_volumes: int, blocks: int,
                  requests: int) -> tuple[Trace, ...]:
    params = {"profile": profile, "num_volumes": num_volumes,
              "unique_blocks": blocks, "num_requests": requests,
              "seed": FLEET_SEED}
    return tuple(cached_fleet(
        "cloud.generate_fleet", params,
        lambda: generate_fleet(profile, num_volumes, unique_blocks=blocks,
                               num_requests=requests, seed=FLEET_SEED)))


def fleet_for(profile: str, scale: Scale) -> list[Trace]:
    """The (cached) volume fleet of ``profile`` at ``scale``."""
    return list(_fleet_cached(profile, scale.num_volumes,
                              scale.volume_blocks, scale.volume_requests))


def stats_fleet_for(profile: str, scale: Scale) -> list[Trace]:
    """A wider but lighter fleet for the Fig 2 characterisation."""
    return list(_fleet_cached(profile, scale.stats_volumes,
                              scale.volume_blocks // 4,
                              max(scale.volume_requests // 10, 2_000)))
