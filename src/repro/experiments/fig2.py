"""Fig 2 — workload characterisation: per-volume request-rate CDF (a) and
write request-size distribution (b).

Paper reference points: 75–86.1 % of volumes below 10 req/s, 1.9–2.7 %
above 100 req/s; 69.8–80.9 % of writes <= 8 KiB, 10.8–23.4 % > 32 KiB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import render_table
from repro.experiments.scale import Scale, current_scale
from repro.experiments.workloads import PROFILES, stats_fleet_for
from repro.trace.stats import compute_stats, write_size_distribution


@dataclass(frozen=True)
class Fig2Row:
    profile: str
    frac_below_10_rps: float
    frac_above_100_rps: float
    frac_le_8kib: float
    frac_gt_32kib: float


def run_fig2(scale: Scale | None = None) -> list[Fig2Row]:
    scale = scale or current_scale()
    rows = []
    for profile in PROFILES:
        fleet = stats_fleet_for(profile, scale)
        stats = [compute_stats(t) for t in fleet]
        rates = np.array([s.avg_request_rate for s in stats])
        sizes = write_size_distribution(stats)
        rows.append(Fig2Row(
            profile=profile,
            frac_below_10_rps=float(np.mean(rates < 10)),
            frac_above_100_rps=float(np.mean(rates > 100)),
            frac_le_8kib=sizes["le_8KiB"],
            frac_gt_32kib=sizes["gt_32KiB"],
        ))
    return rows


def render_fig2(rows: list[Fig2Row]) -> str:
    return render_table(
        ["profile", "vol<10req/s", "vol>100req/s", "writes<=8KiB",
         "writes>32KiB"],
        [[r.profile, r.frac_below_10_rps, r.frac_above_100_rps,
          r.frac_le_8kib, r.frac_gt_32kib] for r in rows],
        title="Fig 2 — access density and write-size distribution "
              "(paper: <10req/s 0.75-0.86, >100req/s 0.019-0.027, "
              "<=8KiB 0.70-0.81, >32KiB 0.11-0.23)",
    )
