"""Experiment scale presets.

Replaying weeks of production traces in pure Python is the reproduction's
bottleneck (see DESIGN.md); every experiment therefore accepts a scale:

* ``smoke`` — seconds; CI and unit tests.
* ``default`` — minutes on one core; the benchmark suite's setting.
* ``paper`` — closest to the paper's volume counts; hours.

Select with ``REPRO_SCALE=paper pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Workload sizes for one preset."""

    name: str
    # Cloud-fleet experiments (figs 3, 8, 9, 10).
    num_volumes: int
    volume_blocks: int
    volume_requests: int
    # Fig 2 characterisation fleets (cheap to generate; more volumes).
    stats_volumes: int
    # YCSB experiments (figs 11, 12).
    ycsb_blocks: int
    ycsb_writes: int


SMOKE = Scale("smoke", num_volumes=2, volume_blocks=8_192,
              volume_requests=6_000, stats_volumes=12,
              ycsb_blocks=8_192, ycsb_writes=25_000)

DEFAULT = Scale("default", num_volumes=5, volume_blocks=16_384,
                volume_requests=30_000, stats_volumes=50,
                ycsb_blocks=16_384, ycsb_writes=60_000)

PAPER = Scale("paper", num_volumes=50, volume_blocks=65_536,
              volume_requests=200_000, stats_volumes=50,
              ycsb_blocks=1_000_000, ycsb_writes=10_000_000)

_PRESETS = {s.name: s for s in (SMOKE, DEFAULT, PAPER)}


def current_scale(default: str = "default") -> Scale:
    """Resolve the active preset from ``REPRO_SCALE``."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_SCALE={name!r}; expected one of "
            f"{sorted(_PRESETS)}") from None
