"""Fig 3 — motivation study: per-group write-traffic breakdown (a) and
group-size distribution (b) for the five baseline schemes on the Ali-like
fleet.

Paper reference points (Observations 2-4): padding concentrates in user-
and mixed-written groups (SepGC's user group is ~55 % padding) and is
near-zero in GC groups; GC-rewritten groups hold 84-92 % of resident data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.runner import run_matrix
from repro.experiments.scale import Scale, current_scale
from repro.experiments.workloads import BASELINES, fleet_for


@dataclass(frozen=True)
class GroupRow:
    scheme: str
    group: str
    kind: str
    user_blocks: int
    gc_blocks: int
    padding_blocks: int
    padding_fraction: float      # of this group's writes (Fig 3a)
    occupancy_fraction: float    # of scheme-wide resident data (Fig 3b)


def run_fig3(scale: Scale | None = None,
             schemes: tuple[str, ...] = BASELINES) -> list[GroupRow]:
    scale = scale or current_scale()
    fleet = fleet_for("ali", scale)
    results = run_matrix(list(schemes), fleet, victims=["greedy"],
                         logical_blocks=scale.volume_blocks,
                         collect_groups=True)
    rows: list[GroupRow] = []
    for scheme in schemes:
        mine = [r for r in results if r.scheme == scheme]
        ngroups = len(mine[0].group_traffic)
        occ_total = sum(sum(r.group_occupancy) for r in mine)
        for g in range(ngroups):
            user = sum(r.group_traffic[g]["user"] for r in mine)
            gc = sum(r.group_traffic[g]["gc"] for r in mine)
            shadow = sum(r.group_traffic[g]["shadow"] for r in mine)
            pad = sum(r.group_traffic[g]["padding"] for r in mine)
            occ = sum(r.group_occupancy[g] for r in mine)
            total = user + gc + shadow + pad
            rows.append(GroupRow(
                scheme=scheme,
                group=mine[0].group_traffic[g]["name"],
                kind=mine[0].group_traffic[g]["kind"],
                user_blocks=user,
                gc_blocks=gc,
                padding_blocks=pad,
                padding_fraction=pad / total if total else 0.0,
                occupancy_fraction=occ / occ_total if occ_total else 0.0,
            ))
    return rows


def gc_group_occupancy_share(rows: list[GroupRow], scheme: str) -> float:
    """Observation 4's headline: resident-data share of GC-capable groups
    (for schemes that separate user from GC writes)."""
    mine = [r for r in rows if r.scheme == scheme]
    gc_share = sum(r.occupancy_fraction for r in mine if r.kind == "gc")
    return gc_share


def render_fig3(rows: list[GroupRow]) -> str:
    return render_table(
        ["scheme", "group", "kind", "user", "gc", "padding", "pad_frac",
         "occupancy"],
        [[r.scheme, r.group, r.kind, r.user_blocks, r.gc_blocks,
          r.padding_blocks, r.padding_fraction, r.occupancy_fraction]
         for r in rows],
        title="Fig 3 — per-group traffic and occupancy, Ali-like fleet "
              "(paper: user groups pad heavily, GC groups ~0; GC groups "
              "hold 84-92% of data)",
    )
