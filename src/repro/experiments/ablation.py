"""Ablations beyond the paper's figures.

Two studies, both called out in DESIGN.md:

* *Mechanism ablation* — toggle each of ADAPT's three mechanisms (§3.2,
  §3.3, §3.4) independently to attribute the WA/padding reductions.
* *Victim-policy sweep* — run ADAPT under all five implemented victim
  selection policies (Greedy, Cost-Benefit, d-choice, Windowed Greedy,
  Random Greedy), extending §4.2's two-policy comparison to the
  related-work variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AdaptConfig
from repro.experiments.report import render_table
from repro.experiments.runner import (
    overall_padding_ratio,
    overall_write_amplification,
    replay_volume,
)
from repro.experiments.scale import Scale, current_scale
from repro.experiments.workloads import fleet_for

MECHANISM_VARIANTS: dict[str, AdaptConfig] = {
    "full": AdaptConfig(),
    "no-threshold-adaptation": AdaptConfig(
        enable_threshold_adaptation=False),
    "no-aggregation": AdaptConfig(enable_aggregation=False),
    "no-demotion": AdaptConfig(enable_demotion=False),
    "substrate-only": AdaptConfig(enable_threshold_adaptation=False,
                                  enable_aggregation=False,
                                  enable_demotion=False),
}

VICTIM_POLICIES = ("greedy", "cost-benefit", "d-choice", "windowed-greedy",
                   "random-greedy")


@dataclass(frozen=True)
class AblationRow:
    study: str
    variant: str
    overall_wa: float
    padding_ratio: float


def run_mechanism_ablation(scale: Scale | None = None,
                           profile: str = "ali") -> list[AblationRow]:
    scale = scale or current_scale()
    fleet = fleet_for(profile, scale)
    rows = []
    for name, ac in MECHANISM_VARIANTS.items():
        results = [replay_volume("adapt", t, victim="greedy",
                                 logical_blocks=scale.volume_blocks,
                                 adapt=ac)
                   for t in fleet]
        rows.append(AblationRow(
            study="mechanism", variant=name,
            overall_wa=overall_write_amplification(results),
            padding_ratio=overall_padding_ratio(results)))
    return rows


def run_victim_ablation(scale: Scale | None = None,
                        profile: str = "ali",
                        scheme: str = "adapt") -> list[AblationRow]:
    scale = scale or current_scale()
    fleet = fleet_for(profile, scale)
    rows = []
    for victim in VICTIM_POLICIES:
        results = [replay_volume(scheme, t, victim=victim,
                                 logical_blocks=scale.volume_blocks)
                   for t in fleet]
        rows.append(AblationRow(
            study=f"victim({scheme})", variant=victim,
            overall_wa=overall_write_amplification(results),
            padding_ratio=overall_padding_ratio(results)))
    return rows


def render_ablation(rows: list[AblationRow]) -> str:
    return render_table(
        ["study", "variant", "overall_WA", "padding_ratio"],
        [[r.study, r.variant, r.overall_wa, r.padding_ratio]
         for r in rows],
        title="Ablations — ADAPT mechanism toggles and victim policies",
    )
