"""Machine-readable export of experiment results.

The benchmarks save the human-readable tables; this module serialises the
underlying rows (any flat dataclass) as JSON or CSV so downstream analysis
and plotting can consume them without re-running the sweeps.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Sequence


def _rowdict(row: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        d = dataclasses.asdict(row)
    elif isinstance(row, dict):
        d = dict(row)
    else:
        raise TypeError(f"cannot export row of type {type(row).__name__}")
    # Drop bulky nested fields (per-group breakdowns etc.) from flat
    # exports; JSON keeps only JSON-able scalars and short sequences.
    return {k: v for k, v in d.items()
            if isinstance(v, (int, float, str, bool)) or v is None}


def export_json(rows: Sequence[Any], path: str | Path,
                metadata: dict[str, Any] | None = None) -> None:
    """Write rows (and optional run metadata) as a JSON document."""
    doc = {
        "metadata": metadata or {},
        "rows": [_rowdict(r) for r in rows],
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def export_csv(rows: Sequence[Any], path: str | Path) -> None:
    """Write rows as CSV (union of keys, stable order)."""
    dicts = [_rowdict(r) for r in rows]
    if not dicts:
        Path(path).write_text("")
        return
    fields: list[str] = []
    for d in dicts:
        for k in d:
            if k not in fields:
                fields.append(k)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(dicts)


def load_json(path: str | Path) -> tuple[dict[str, Any], list[dict]]:
    """Read back an :func:`export_json` document."""
    doc = json.loads(Path(path).read_text())
    return doc.get("metadata", {}), doc.get("rows", [])
