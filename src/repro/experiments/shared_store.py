"""Shared-log deployment study (extension).

Cloud block stores serve many volumes from one log (§2.2); the paper's
per-volume evaluation isolates placement effects, but consolidation itself
changes the picture: multiplexing sparse volumes raises the combined access
density, so chunks fill that no single volume could fill.  This experiment
replays an Ali-like fleet twice — one store per volume vs one shared store
over the multiplexed trace — and compares aggregate WA and padding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.runner import (
    overall_padding_ratio,
    overall_write_amplification,
    replay_volume,
)
from repro.experiments.scale import Scale, current_scale
from repro.experiments.workloads import fleet_for
from repro.trace.transforms import multiplex, scale_rate


@dataclass(frozen=True)
class SharedStoreRow:
    scheme: str
    deployment: str           # "per-volume" or "shared"
    write_amplification: float
    padding_ratio: float


def run_shared_store(scale: Scale | None = None,
                     schemes: tuple[str, ...] = ("sepgc", "sepbit", "adapt"),
                     profile: str = "ali") -> list[SharedStoreRow]:
    scale = scale or current_scale()
    fleet = fleet_for(profile, scale)
    # Tenants of a shared log are concurrently active; per-volume synthetic
    # durations differ by orders of magnitude, so normalise every volume to
    # the fleet's median span before interleaving (otherwise the "shared"
    # store mostly serves one tenant at a time and consolidation is moot).
    spans = sorted(t.duration_us for t in fleet)
    target = max(spans[len(spans) // 2], 1)
    normalised = [
        scale_rate(t, max(t.duration_us, 1) / target) if t.duration_us
        else t
        for t in fleet
    ]
    merged, _ = multiplex(normalised,
                          address_blocks=[scale.volume_blocks] * len(fleet))
    rows = []
    for scheme in schemes:
        # Same normalised traces on both sides, so the only variable is
        # the deployment.
        per_vol = [replay_volume(scheme, t,
                                 logical_blocks=scale.volume_blocks)
                   for t in normalised]
        rows.append(SharedStoreRow(
            scheme=scheme, deployment="per-volume",
            write_amplification=overall_write_amplification(per_vol),
            padding_ratio=overall_padding_ratio(per_vol)))
        shared = replay_volume(
            scheme, merged,
            logical_blocks=scale.volume_blocks * len(fleet))
        rows.append(SharedStoreRow(
            scheme=scheme, deployment="shared",
            write_amplification=shared.write_amplification,
            padding_ratio=shared.padding_ratio))
    return rows


def render_shared_store(rows: list[SharedStoreRow]) -> str:
    return render_table(
        ["scheme", "deployment", "WA", "padding_ratio"],
        [[r.scheme, r.deployment, r.write_amplification, r.padding_ratio]
         for r in rows],
        title="Shared-log consolidation — per-volume stores vs one "
              "multiplexed store (expect: consolidation cuts padding)",
    )
