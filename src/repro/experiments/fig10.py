"""Fig 10 — per-volume correlation between ADAPT's padding-traffic
reduction and its WA reduction, vs MiDA and SepBIT (Ali fleet, Greedy).

Paper reference points: strong positive correlation; among volumes where
ADAPT removes > 40 % of the padding traffic it cuts WA by at least 21 %,
up to 72.1 % vs MiDA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig8 import profile_of, sweep
from repro.experiments.report import render_table
from repro.experiments.scale import Scale


@dataclass(frozen=True)
class Fig10Point:
    volume: str
    baseline: str
    padding_reduction: float   # 1 - pad_adapt / pad_baseline
    wa_reduction: float        # 1 - wa_adapt / wa_baseline


def run_fig10(scale: Scale | None = None,
              baselines: tuple[str, ...] = ("mida", "sepbit"),
              profile: str | None = None) -> list[Fig10Point]:
    """``profile=None`` pools all three environments.  The paper's scatter
    uses 50 Ali volumes whose padding spans near-0 to >40 %; at reduced
    scales a single profile's few volumes are too homogeneous for a stable
    correlation, so pooling supplies the equivalent diversity."""
    results = [r for r in sweep(scale)
               if r.victim == "greedy"
               and (profile is None or profile_of(r) == profile)]
    by_scheme_volume = {(r.scheme, r.volume): r for r in results}
    adapt = {v: r for (s, v), r in by_scheme_volume.items() if s == "adapt"}
    points = []
    for baseline in baselines:
        for volume, a in adapt.items():
            b = by_scheme_volume.get((baseline, volume))
            if b is None or b.flash_blocks == 0:
                continue
            pad_a = a.padding_blocks / max(a.user_blocks, 1)
            pad_b = b.padding_blocks / max(b.user_blocks, 1)
            pad_red = 1.0 - pad_a / pad_b if pad_b > 0 else 0.0
            wa_red = 1.0 - a.write_amplification / b.write_amplification
            points.append(Fig10Point(volume=volume, baseline=baseline,
                                     padding_reduction=pad_red,
                                     wa_reduction=wa_red))
    return points


def correlation(points: list[Fig10Point]) -> float:
    """Pearson correlation between padding reduction and WA reduction."""
    if len(points) < 2:
        return 0.0
    x = np.array([p.padding_reduction for p in points])
    y = np.array([p.wa_reduction for p in points])
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def render_fig10(points: list[Fig10Point]) -> str:
    table = render_table(
        ["volume", "baseline", "padding_reduction", "wa_reduction"],
        [[p.volume, p.baseline, p.padding_reduction, p.wa_reduction]
         for p in points],
        title="Fig 10 — padding reduction vs WA reduction per volume "
              "(paper: strongly correlated)",
    )
    return table + f"\n\nPearson r = {correlation(points):.3f}"
