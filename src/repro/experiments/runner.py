"""Volume replay runner shared by all figure drivers.

``replay_volume`` runs one (scheme, victim-policy, trace) cell and returns
a compact :class:`VolumeResult`; ``run_matrix`` sweeps the full cross
product, optionally across worker processes (per-volume runs are perfectly
parallel — shared-nothing, merged at the end — though the benchmark
default stays serial because the reference machine has one core).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.lss.config import LSSConfig, default_segment_blocks
from repro.lss.store import LogStructuredStore
from repro.obs import profile as obs_profile
from repro.obs.recorder import ObsRecorder
from repro.placement.registry import make_policy
from repro.trace.model import Trace


@dataclass(frozen=True)
class VolumeResult:
    """Headline metrics of one volume replay."""

    volume: str
    scheme: str
    victim: str
    write_amplification: float
    padding_ratio: float
    gc_ratio: float
    user_blocks: int
    flash_blocks: int
    padding_blocks: int
    gc_blocks: int
    shadow_blocks: int
    group_traffic: tuple[dict, ...] = field(default=(), repr=False)
    group_occupancy: tuple[int, ...] = field(default=(), repr=False)
    policy_memory_bytes: int = 0
    #: Observability snapshot (:meth:`repro.obs.ObsRecorder.snapshot`) when
    #: the replay ran with metrics collection; ``None`` otherwise.
    metrics: dict | None = field(default=None, repr=False)
    #: Causal-attribution snapshot
    #: (:meth:`repro.obs.attribution.AttributionRecorder.snapshot`) when
    #: the replay ran with attribution; ``None`` otherwise.
    attribution: dict | None = field(default=None, repr=False)


def store_config_for(trace_blocks: int, victim: str = "greedy",
                     seed: int = 0) -> LSSConfig:
    """The standard experiment store configuration for a volume of
    ``trace_blocks`` logical blocks."""
    return LSSConfig(
        logical_blocks=trace_blocks,
        segment_blocks=default_segment_blocks(trace_blocks),
        victim_policy=victim,
        seed=seed,
    )


def replay_volume(scheme: str, trace: Trace, victim: str = "greedy",
                  logical_blocks: int | None = None,
                  collect_groups: bool = False,
                  seed: int = 0,
                  recorder: ObsRecorder | None = None,
                  collect_metrics: bool = False,
                  engine: str = "auto",
                  attribution=None,
                  collect_attribution: bool = False,
                  **policy_kwargs) -> VolumeResult:
    """Replay one volume under one scheme and victim policy.

    ``seed`` reaches the store config (victim-policy RNG, sampler salts).
    Metrics are opt-in: pass ``collect_metrics=True`` for a default
    :class:`~repro.obs.ObsRecorder`, or supply a configured ``recorder``
    (e.g. with a JSONL spill path); either way the result carries the
    recorder's snapshot in :attr:`VolumeResult.metrics`.

    ``engine`` selects the replay engine (``"auto"``/``"batched"``/
    ``"scalar"``, see :meth:`LogStructuredStore.replay`); both engines
    produce identical results, so this only matters for benchmarking.

    Attribution is opt-in the same way as metrics: pass
    ``collect_attribution=True`` for a default
    :class:`~repro.obs.attribution.AttributionRecorder`, or supply a
    configured ``attribution`` sink; the result carries its snapshot in
    :attr:`VolumeResult.attribution`.
    """
    if logical_blocks is None:
        blocks = trace.max_lba() + 1
    else:
        blocks = logical_blocks
    if blocks <= 0:
        raise ValueError(
            f"logical_blocks must be a positive block count, got {blocks}")
    cfg = store_config_for(blocks, victim=victim, seed=seed)
    policy = make_policy(scheme, cfg, **policy_kwargs)
    if recorder is None and collect_metrics:
        recorder = ObsRecorder()
    if attribution is None and collect_attribution:
        from repro.obs.attribution import AttributionRecorder
        attribution = AttributionRecorder()
    with obs_profile.current().span(
            f"cell:{scheme}:{trace.volume}", victim=victim):
        store = LogStructuredStore(cfg, policy, recorder=recorder,
                                   attribution=attribution)
        stats = store.replay(trace, engine=engine)
    groups: tuple[dict, ...] = ()
    occupancy: tuple[int, ...] = ()
    if collect_groups:
        groups = tuple(
            {"name": g.name, "kind": g.kind, "user": g.user_blocks,
             "gc": g.gc_blocks, "shadow": g.shadow_blocks,
             "padding": g.padding_blocks}
            for g in stats.groups)
        occupancy = tuple(int(x) for x in store.group_occupancy())
    return VolumeResult(
        volume=trace.volume,
        scheme=scheme,
        victim=victim,
        write_amplification=stats.write_amplification(),
        padding_ratio=stats.padding_traffic_ratio(),
        gc_ratio=stats.gc_traffic_ratio(),
        user_blocks=stats.user_blocks_requested,
        flash_blocks=stats.flash_blocks_written,
        padding_blocks=stats.padding_blocks_written,
        gc_blocks=stats.gc_blocks_written,
        shadow_blocks=stats.shadow_blocks_written,
        group_traffic=groups,
        group_occupancy=occupancy,
        policy_memory_bytes=policy.memory_bytes(),
        metrics=recorder.snapshot() if recorder is not None else None,
        attribution=(attribution.snapshot()
                     if attribution is not None else None),
    )


def _cell(args) -> VolumeResult:
    scheme, trace, victim, logical_blocks, collect, seed, metrics, \
        engine = args
    return replay_volume(scheme, trace, victim,
                         logical_blocks=logical_blocks,
                         collect_groups=collect, seed=seed,
                         collect_metrics=metrics, engine=engine)


def run_matrix(schemes: list[str], traces: list[Trace],
               victims: list[str] = ("greedy",),
               logical_blocks: int | None = None,
               collect_groups: bool = False,
               workers: int | None = None,
               seed: int = 0,
               collect_metrics: bool = False,
               engine: str = "auto") -> list[VolumeResult]:
    """Sweep schemes x victims x traces; return the flat result list.

    ``workers=None`` auto-selects: serial on one core, processes
    otherwise — and always serial while a phase profiler is active
    (worker processes cannot report spans back to the parent's
    profiler; a silent parallel run would profile nothing).
    Every cell runs with the same ``seed`` (cells are distinguished by
    their scheme/victim/trace, not by RNG state), and metrics snapshots —
    which pickle cleanly across worker processes — are attached to each
    result when ``collect_metrics`` is set.
    """
    jobs = [(s, t, v, logical_blocks, collect_groups, seed,
             collect_metrics, engine)
            for v in victims for s in schemes for t in traces]
    if workers is None:
        workers = 1 if obs_profile.current().enabled \
            else min(os.cpu_count() or 1, 8)
    if workers <= 1 or len(jobs) == 1:
        return [_cell(j) for j in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_cell, jobs, chunksize=1))


def overall_write_amplification(results: list[VolumeResult]) -> float:
    """Traffic-weighted WA across volumes (the paper's bar height)."""
    user = sum(r.user_blocks for r in results)
    flash = sum(r.flash_blocks for r in results)
    return flash / user if user else 0.0


def overall_padding_ratio(results: list[VolumeResult]) -> float:
    flash = sum(r.flash_blocks for r in results)
    pad = sum(r.padding_blocks for r in results)
    return pad / flash if flash else 0.0
