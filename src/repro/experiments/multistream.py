"""Multi-stream ablation (§3.1's side claim): in-device WA with groups
mapped one-to-one onto SSD streams vs a single shared stream.

Not a figure in the paper — the paper asserts the capability in passing —
but DESIGN.md lists it as a design choice worth quantifying, so the bench
suite measures it end to end through the FTL substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.runner import store_config_for
from repro.experiments.scale import Scale, current_scale
from repro.ftl.bridge import measure_device_wa
from repro.trace.synthetic.ycsb import generate_ycsb_a


@dataclass(frozen=True)
class MultiStreamRow:
    scheme: str
    mode: str
    host_wa: float
    device_wa: float
    end_to_end_wa: float


def run_multistream(scale: Scale | None = None,
                    schemes: tuple[str, ...] = ("sepgc", "sepbit", "adapt")
                    ) -> list[MultiStreamRow]:
    scale = scale or current_scale()
    # The FTL replays every flushed block in Python: use a quarter-size
    # volume to keep the bench bounded.
    blocks = max(scale.ycsb_blocks // 4, 2048)
    writes = max(scale.ycsb_writes // 4, 10_000)
    cfg = store_config_for(blocks)
    trace = generate_ycsb_a(blocks, writes, density=30.0, read_ratio=0.0,
                            seed=21)
    rows = []
    for scheme in schemes:
        for multi in (False, True):
            r = measure_device_wa(scheme, trace, cfg, multi_stream=multi)
            rows.append(MultiStreamRow(
                scheme=scheme, mode=r.label, host_wa=r.host_wa,
                device_wa=r.device_wa, end_to_end_wa=r.end_to_end_wa))
    return rows


def render_multistream(rows: list[MultiStreamRow]) -> str:
    return render_table(
        ["scheme", "mode", "host_WA", "device_WA", "end_to_end_WA"],
        [[r.scheme, r.mode, r.host_wa, r.device_wa, r.end_to_end_wa]
         for r in rows],
        title="Multi-stream ablation — in-device WA, groups->streams "
              "(§3.1 claim: one-to-one mapping reduces device WA)",
    )
