"""Fig 11 — sensitivity of WA to access density (left) and workload
skewness (right), YCSB-A with the Greedy victim policy.

Paper reference points: under light traffic ADAPT cuts GC writes by
21.2-53.5 % and SepGC is second-best (multi-group schemes lose to it);
as density rises padding disappears and every scheme's WA falls; WA also
falls as Zipf alpha rises, all schemes converging at alpha = 0 (uniform).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.runner import replay_volume
from repro.experiments.scale import Scale, current_scale
from repro.experiments.workloads import SCHEMES
from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a

ALPHAS = (0.0, 0.3, 0.6, 0.9, 0.99)


@dataclass(frozen=True)
class Fig11Point:
    axis: str          # "density" or "skew"
    setting: str       # e.g. "LIGHT" or "0.90"
    scheme: str
    write_amplification: float
    padding_ratio: float
    gc_ratio: float


def run_fig11_density(scale: Scale | None = None,
                      schemes: tuple[str, ...] = SCHEMES
                      ) -> list[Fig11Point]:
    scale = scale or current_scale()
    points = []
    for preset in (DensityPreset.LIGHT, DensityPreset.MEDIUM,
                   DensityPreset.HEAVY):
        trace = generate_ycsb_a(scale.ycsb_blocks, scale.ycsb_writes,
                                density=preset, read_ratio=0.0, seed=11)
        for scheme in schemes:
            r = replay_volume(scheme, trace,
                              logical_blocks=scale.ycsb_blocks)
            points.append(Fig11Point("density", preset.name, scheme,
                                     r.write_amplification,
                                     r.padding_ratio, r.gc_ratio))
    return points


def run_fig11_skew(scale: Scale | None = None,
                   schemes: tuple[str, ...] = SCHEMES,
                   alphas: tuple[float, ...] = ALPHAS) -> list[Fig11Point]:
    scale = scale or current_scale()
    points = []
    for alpha in alphas:
        trace = generate_ycsb_a(scale.ycsb_blocks, scale.ycsb_writes,
                                zipf_alpha=alpha,
                                density=DensityPreset.HEAVY,
                                read_ratio=0.0, seed=12)
        for scheme in schemes:
            r = replay_volume(scheme, trace,
                              logical_blocks=scale.ycsb_blocks)
            points.append(Fig11Point("skew", f"{alpha:.2f}", scheme,
                                     r.write_amplification,
                                     r.padding_ratio, r.gc_ratio))
    return points


def render_fig11(points: list[Fig11Point]) -> str:
    return render_table(
        ["axis", "setting", "scheme", "WA", "padding_ratio", "gc_ratio"],
        [[p.axis, p.setting, p.scheme, p.write_amplification,
          p.padding_ratio, p.gc_ratio] for p in points],
        title="Fig 11 — WA vs access density (left) and Zipf skew (right) "
              "(paper: ADAPT best at light traffic; WA falls with density "
              "and skew)",
    )
