"""Fig 9 — CDF of per-volume padding-traffic ratio, six schemes x three
workloads x two victim policies (reuses the Fig 8 sweep).

Paper reference points: ADAPT dominates the CDFs; on Ali >=88 % of ADAPT's
volumes sit below 25 % padding traffic vs ~70 % for SepBIT; on Tencent all
ADAPT/SepBIT volumes stay under ~7 % padding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig8 import VICTIMS, profile_of, sweep
from repro.experiments.report import render_table
from repro.experiments.scale import Scale
from repro.experiments.workloads import PROFILES, SCHEMES
from repro.trace.stats import cdf_at


@dataclass(frozen=True)
class Fig9Row:
    profile: str
    victim: str
    scheme: str
    mean_padding_ratio: float
    frac_below_10pct: float
    frac_below_25pct: float
    frac_below_50pct: float


def run_fig9(scale: Scale | None = None) -> list[Fig9Row]:
    results = sweep(scale)
    rows = []
    for victim in VICTIMS:
        for profile in PROFILES:
            for scheme in SCHEMES:
                pads = np.array([
                    r.padding_ratio for r in results
                    if r.victim == victim and r.scheme == scheme
                    and profile_of(r) == profile])
                at = cdf_at(pads, np.array([0.10, 0.25, 0.50]))
                rows.append(Fig9Row(
                    profile=profile, victim=victim, scheme=scheme,
                    mean_padding_ratio=float(pads.mean()),
                    frac_below_10pct=float(at[0]),
                    frac_below_25pct=float(at[1]),
                    frac_below_50pct=float(at[2]),
                ))
    return rows


def render_fig9(rows: list[Fig9Row]) -> str:
    return render_table(
        ["profile", "victim", "scheme", "mean_pad", "P(<10%)", "P(<25%)",
         "P(<50%)"],
        [[r.profile, r.victim, r.scheme, r.mean_padding_ratio,
          r.frac_below_10pct, r.frac_below_25pct, r.frac_below_50pct]
         for r in rows],
        title="Fig 9 — per-volume padding-traffic ratio CDF "
              "(paper: ADAPT's CDF dominates every baseline's)",
    )
