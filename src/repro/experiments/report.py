"""ASCII table rendering shared by benches, examples and the CLI."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None, floatfmt: str = ".3f") -> str:
    """Render a fixed-width table.

    Floats are formatted with ``floatfmt``; everything else via ``str``.
    """
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_kv(title: str, pairs: dict[str, Any]) -> str:
    """Render a two-column key/value block."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title, "=" * len(title)]
    for k, v in pairs.items():
        if isinstance(v, float):
            v = format(v, ".4f")
        lines.append(f"{k.ljust(width)}  {v}")
    return "\n".join(lines)
