"""Bandwidth model of SSD devices and a RAID-5 array of them.

Used by the prototype experiments (§4.4 / Fig 12): throughput there is
bandwidth-bound, so each device is modelled as a pipe with a sustained write
bandwidth and a fixed per-I/O latency.  The array serialises chunk writes
onto the device whose column they map to; simulated time advances to
whichever column frees up first.  This is intentionally simple — the paper's
prototype finding is that schemes reducing GC + padding traffic leave more
device bandwidth to user writes, and that is exactly what a shared-bandwidth
model expresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import MiB, MICROS_PER_SEC
from repro.array.raid5 import Raid5Config


@dataclass
class SSDDevice:
    """One SSD column: sustained write bandwidth + fixed per-I/O latency."""

    write_bw_bytes_per_sec: float = 1000 * MiB
    io_latency_us: float = 20.0
    busy_until_us: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.write_bw_bytes_per_sec <= 0:
            raise ConfigError("device bandwidth must be positive")
        if self.io_latency_us < 0:
            raise ConfigError("device latency must be >= 0")

    def service_time_us(self, nbytes: int) -> float:
        """Time to write ``nbytes`` once the device is free."""
        return self.io_latency_us + \
            nbytes / self.write_bw_bytes_per_sec * MICROS_PER_SEC

    def submit(self, nbytes: int, now_us: float) -> float:
        """Queue a write at ``now_us``; return its completion time."""
        start = max(now_us, self.busy_until_us)
        self.busy_until_us = start + self.service_time_us(nbytes)
        return self.busy_until_us


@dataclass
class Raid5Array:
    """A RAID-5 set of :class:`SSDDevice` columns with rotating parity.

    ``submit_chunk_write`` places a data chunk on its round-robin column and
    the stripe's parity chunk on the rotating parity column, returning the
    completion time of the slower of the two.
    """

    config: Raid5Config = field(default_factory=Raid5Config)
    chunk_bytes: int = 64 * 1024
    device_bw_bytes_per_sec: float = 1000 * MiB
    device_latency_us: float = 20.0

    def __post_init__(self) -> None:
        self.devices = [
            SSDDevice(self.device_bw_bytes_per_sec, self.device_latency_us)
            for _ in range(self.config.num_devices)
        ]
        self._chunk_index = 0

    def submit_chunk_write(self, now_us: float,
                           with_parity: bool = True) -> float:
        """Write one chunk (+ its parity) starting at ``now_us``."""
        n = self.config.num_devices
        cols = self.config.data_columns
        stripe, col = divmod(self._chunk_index, cols)
        parity_dev = stripe % n
        data_dev = col if col < parity_dev else col + 1
        self._chunk_index += 1
        done = self.devices[data_dev].submit(self.chunk_bytes, now_us)
        if with_parity:
            pdone = self.devices[parity_dev].submit(self.chunk_bytes, now_us)
            done = max(done, pdone)
        return done

    def earliest_free_us(self) -> float:
        return min(d.busy_until_us for d in self.devices)

    def aggregate_write_bw(self) -> float:
        """Upper-bound user-visible write bandwidth (data columns only)."""
        return self.device_bw_bytes_per_sec * self.config.data_columns
