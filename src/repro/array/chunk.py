"""Chunk geometry of the SSD array.

The array's minimum write unit is a *chunk* (64 KiB by default, the Linux
mdraid default the paper adopts); the LSS appends 4 KiB blocks, so a chunk
holds ``chunk_blocks`` block slots.  Sub-chunk flushes are completed with
zero-padding (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import BLOCK_SIZE, KiB


@dataclass(frozen=True)
class ChunkGeometry:
    """Geometry relating LSS blocks to array chunks."""

    chunk_bytes: int = 64 * KiB
    block_bytes: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigError("chunk and block sizes must be positive")
        if self.chunk_bytes % self.block_bytes:
            raise ConfigError(
                f"chunk size {self.chunk_bytes} is not a multiple of the "
                f"block size {self.block_bytes}")
        if self.chunk_bytes < self.block_bytes:
            raise ConfigError("chunk must be at least one block")

    @property
    def chunk_blocks(self) -> int:
        """Block slots per chunk (16 for the 64 KiB / 4 KiB default)."""
        return self.chunk_bytes // self.block_bytes

    def chunks_of_blocks(self, nblocks: int) -> int:
        """Chunks needed to hold ``nblocks`` blocks (round up)."""
        if nblocks < 0:
            raise ValueError(f"negative block count {nblocks}")
        return -(-nblocks // self.chunk_blocks)

    def padding_for(self, nblocks: int) -> int:
        """Zero-padding blocks required to round ``nblocks`` up to whole
        chunks (0 when already aligned)."""
        if nblocks < 0:
            raise ValueError(f"negative block count {nblocks}")
        rem = nblocks % self.chunk_blocks
        return 0 if rem == 0 else self.chunk_blocks - rem
