"""Chunk-coalescing buffer with the zero-padding SLA.

Every group in the LSS funnels its appended blocks through one open chunk.
A chunk is flushed to the array either when it fills (``FULL``) or when the
SLA coalescing window expires (``DEADLINE``, 100 µs in the paper's
Pangu-derived setting) — in which case the remainder of the chunk is
zero-padded.  GC-facing groups write in bulk and use ``window_us=None``:
they never pad on a deadline, matching the paper's Observation 2.

Two window semantics are supported:

* ``"idle"`` (default) — the deadline restarts on every append, i.e. a chunk
  is padded once the stream to its group pauses for a full window.  This is
  the semantics consistent with the paper's Fig 11, where traffic denser
  than the 100 µs window "eliminates zero-padding across all schemes", and
  with §3.3's resettable "aggregation timer".
* ``"first"`` — the deadline is fixed at first-append + window (a strict
  per-block buffering-latency SLA).  Exposed for ablations.

The buffer stores opaque *tokens* (the LSS puts segment-slot handles in
them) so this module stays independent of the log layer above it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.common.errors import ConfigError
from repro.obs.recorder import NULL_RECORDER, NullRecorder


class FlushReason(Enum):
    FULL = "full"           # chunk filled; no padding
    DEADLINE = "deadline"   # SLA expired; zero-padded
    FORCED = "forced"       # external flush (seal/shutdown); zero-padded


@dataclass(frozen=True)
class ChunkFlush:
    """One chunk write issued to the array."""

    reason: FlushReason
    tokens: tuple[Any, ...]
    data_blocks: int
    padding_blocks: int
    time_us: int

    @property
    def total_blocks(self) -> int:
        return self.data_blocks + self.padding_blocks


class CoalescingBuffer:
    """Open-chunk accumulator for one group.

    Args:
        chunk_blocks: chunk capacity in blocks.
        window_us: SLA coalescing window; ``None`` disables deadline
            flushes (bulk/GC writers).
        sla_mode: ``"idle"`` (deadline restarts on each append) or
            ``"first"`` (deadline fixed at first append).
        obs: observability recorder notified of every emitted flush
            (defaults to the shared no-op recorder).
        owner_gid / owner_name: identity stamped onto the emitted
            ``chunk_flush``/``padding`` events.
    """

    def __init__(self, chunk_blocks: int, window_us: int | None,
                 sla_mode: str = "idle",
                 obs: NullRecorder | None = None,
                 owner_gid: int = -1, owner_name: str = "") -> None:
        if chunk_blocks < 1:
            raise ConfigError("chunk_blocks must be >= 1")
        if window_us is not None and window_us < 0:
            raise ConfigError("window_us must be >= 0 or None")
        if sla_mode not in ("idle", "first"):
            raise ConfigError(f"unknown sla_mode {sla_mode!r}")
        self.chunk_blocks = chunk_blocks
        self.window_us = window_us
        self.sla_mode = sla_mode
        self.obs = NULL_RECORDER if obs is None else obs
        self.owner_gid = owner_gid
        self.owner_name = owner_name
        self._tokens: list[Any] = []
        self._timer_start_us: int | None = None
        # Lazy deadline-heap support (see bind_deadline_heap): the shared
        # min-heap of (deadline_us, owner_gid) entries and the smallest
        # entry this buffer currently has live in it.
        self._heap: list[tuple[int, int]] | None = None
        self._heap_entry_us: int | None = None

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def pending_blocks(self) -> int:
        return len(self._tokens)

    @property
    def free_slots(self) -> int:
        return self.chunk_blocks - len(self._tokens)

    @property
    def pending_tokens(self) -> tuple[Any, ...]:
        return tuple(self._tokens)

    @property
    def deadline_us(self) -> int | None:
        """Absolute time of the next SLA deadline, or ``None``."""
        if self.window_us is None or self._timer_start_us is None:
            return None
        return self._timer_start_us + self.window_us

    def reset_timer(self, now_us: int) -> None:
        """Restart the SLA window (used by shadow append, §3.3: the chunk
        keeps its blocks but gets a fresh aggregation timer)."""
        if self._tokens:
            self._timer_start_us = now_us
            self._arm_heap()

    # ------------------------------------------------------------------
    # lazy deadline heap
    # ------------------------------------------------------------------
    def bind_deadline_heap(self, heap: list[tuple[int, int]]) -> None:
        """Attach the store's shared deadline min-heap.

        Once bound, the buffer guarantees the heap invariant the store's
        O(log G) ``tick`` relies on: whenever this buffer has an armed SLA
        timer, the heap holds at least one ``(d, owner_gid)`` entry with
        ``d <= deadline_us``.  Entries are never removed here; the store
        pops and revalidates them lazily (see ``sync_heap_entry``).
        """
        self._heap = heap
        self._heap_entry_us = None

    @property
    def heap_entry_us(self) -> int | None:
        """Deadline value of the single heap entry this buffer tracks as
        live, or ``None``.  Entries popped at any other value are leftovers
        from a flushed episode and must be dropped, not re-pushed."""
        return self._heap_entry_us

    def sync_heap_entry(self, entry_us: int | None) -> None:
        """Store-side bookkeeping: the store popped this buffer's stale
        heap entry and re-pushed ``entry_us`` (or nothing, when ``None``)."""
        self._heap_entry_us = entry_us

    def _arm_heap(self) -> None:
        """Push a heap entry for the current deadline unless one already
        covers it (an existing entry at or below the deadline suffices)."""
        if self._heap is None or self.window_us is None \
                or self._timer_start_us is None:
            return
        nd = self._timer_start_us + self.window_us
        if self._heap_entry_us is None or nd < self._heap_entry_us:
            heapq.heappush(self._heap, (nd, self.owner_gid))
            self._heap_entry_us = nd

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def append(self, token: Any, now_us: int) -> ChunkFlush | None:
        """Add one block; return a ``FULL`` flush if the chunk filled."""
        if not self._tokens or self.sla_mode == "idle":
            self._timer_start_us = now_us
            self._arm_heap()
        self._tokens.append(token)
        if len(self._tokens) >= self.chunk_blocks:
            return self._emit(FlushReason.FULL, now_us, pad=False)
        return None

    def append_run(self, kind: int, lbas: list[int],
                   ts_us: list[int]) -> list[ChunkFlush]:
        """Append a run of ``(kind, lba)`` tokens at per-block times.

        Exactly equivalent to calling :meth:`append` once per token —
        returns the ``FULL`` flushes emitted, in order — but does the token
        extension and timer updates per chunk instead of per block.  Used
        by the batched replay engine (``repro.perf``); the caller
        guarantees the timestamps are non-decreasing.
        """
        flushes: list[ChunkFlush] = []
        tokens = self._tokens
        cb = self.chunk_blocks
        pos, n = 0, len(lbas)
        while pos < n:
            end = min(pos + cb - len(tokens), n)
            if self.sla_mode == "idle":
                # idle mode restarts the timer on every append, so only
                # the last append of this chunk-portion matters.
                self._timer_start_us = ts_us[end - 1]
            elif not tokens:
                # "first" mode arms the timer at the chunk's first append.
                self._timer_start_us = ts_us[pos]
            tokens.extend((kind, lba) for lba in lbas[pos:end])
            if len(tokens) >= cb:
                flushes.append(self._emit(FlushReason.FULL, ts_us[end - 1],
                                          pad=False))
            pos = end
        if tokens:
            # Episodes born and flushed inside the run never needed heap
            # entries (no tick can interleave); arm only the survivor.
            self._arm_heap()
        return flushes

    def append_run_counted(self, kind: int, lbas: list[int],
                           ts_us: list[int]) -> tuple[int, int]:
        """Append a run like :meth:`append_run` but without materializing
        the ``FULL`` :class:`ChunkFlush` objects.

        Returns ``(full_flushes, new_tokens_flushed)``; the caller owns
        the accounting a flush object would otherwise carry (any pending
        pre-run tokens are part of the first flush, so when
        ``full_flushes > 0`` every pre-run token was flushed too).  Used
        by the batched replay paths when nothing consumes the flush
        objects; end state (tokens, timer, heap entry) is bit-identical
        to :meth:`append_run`.
        """
        tokens = self._tokens
        cb = self.chunk_blocks
        p = len(tokens)
        n = len(lbas)
        nf = (p + n) // cb
        if nf == 0:
            if self.sla_mode == "idle":
                self._timer_start_us = ts_us[n - 1]
            elif not tokens:
                self._timer_start_us = ts_us[0]
            tokens.extend((kind, lba) for lba in lbas)
            self._arm_heap()
            return 0, 0
        leftover = p + n - nf * cb
        if leftover:
            self._tokens = [(kind, lba) for lba in lbas[n - leftover:]]
            # The last flush cleared the timer and the tracked heap
            # entry; the surviving chunk re-arms exactly as the final
            # portion of append_run would.
            self._timer_start_us = ts_us[n - 1] \
                if self.sla_mode == "idle" else ts_us[n - leftover]
            self._heap_entry_us = None
            self._arm_heap()
        else:
            self._tokens = []
            self._timer_start_us = None
            self._heap_entry_us = None
        return nf, nf * cb - p

    def poll(self, now_us: int) -> ChunkFlush | None:
        """Flush with padding if the SLA deadline has passed."""
        dl = self.deadline_us
        if dl is not None and now_us >= dl and self._tokens:
            return self._emit(FlushReason.DEADLINE, now_us, pad=True)
        return None

    def force_flush(self, now_us: int) -> ChunkFlush | None:
        """Flush whatever is pending (padded); ``None`` if empty."""
        if not self._tokens:
            return None
        return self._emit(FlushReason.FORCED, now_us, pad=True)

    def take_pending(self) -> tuple[Any, ...]:
        """Remove and return all pending tokens *without* emitting a flush.

        Used when another group's chunk absorbs these blocks (shadow
        append); no array I/O happens for this buffer.
        """
        tokens = tuple(self._tokens)
        self._tokens.clear()
        self._timer_start_us = None
        self._heap_entry_us = None
        return tokens

    def _emit(self, reason: FlushReason, now_us: int, pad: bool) -> ChunkFlush:
        tokens = tuple(self._tokens)
        padding = self.chunk_blocks - len(tokens) if pad else 0
        self._tokens.clear()
        self._timer_start_us = None
        self._heap_entry_us = None
        flush = ChunkFlush(reason=reason, tokens=tokens,
                           data_blocks=len(tokens), padding_blocks=padding,
                           time_us=now_us)
        if self.obs.enabled:
            self.obs.on_chunk_flush(self.owner_gid, self.owner_name, flush)
        return flush
