"""Chunk-coalescing buffer with the zero-padding SLA.

Every group in the LSS funnels its appended blocks through one open chunk.
A chunk is flushed to the array either when it fills (``FULL``) or when the
SLA coalescing window expires (``DEADLINE``, 100 µs in the paper's
Pangu-derived setting) — in which case the remainder of the chunk is
zero-padded.  GC-facing groups write in bulk and use ``window_us=None``:
they never pad on a deadline, matching the paper's Observation 2.

Two window semantics are supported:

* ``"idle"`` (default) — the deadline restarts on every append, i.e. a chunk
  is padded once the stream to its group pauses for a full window.  This is
  the semantics consistent with the paper's Fig 11, where traffic denser
  than the 100 µs window "eliminates zero-padding across all schemes", and
  with §3.3's resettable "aggregation timer".
* ``"first"`` — the deadline is fixed at first-append + window (a strict
  per-block buffering-latency SLA).  Exposed for ablations.

The buffer stores opaque *tokens* (the LSS puts segment-slot handles in
them) so this module stays independent of the log layer above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.common.errors import ConfigError
from repro.obs.recorder import NULL_RECORDER, NullRecorder


class FlushReason(Enum):
    FULL = "full"           # chunk filled; no padding
    DEADLINE = "deadline"   # SLA expired; zero-padded
    FORCED = "forced"       # external flush (seal/shutdown); zero-padded


@dataclass(frozen=True)
class ChunkFlush:
    """One chunk write issued to the array."""

    reason: FlushReason
    tokens: tuple[Any, ...]
    data_blocks: int
    padding_blocks: int
    time_us: int

    @property
    def total_blocks(self) -> int:
        return self.data_blocks + self.padding_blocks


class CoalescingBuffer:
    """Open-chunk accumulator for one group.

    Args:
        chunk_blocks: chunk capacity in blocks.
        window_us: SLA coalescing window; ``None`` disables deadline
            flushes (bulk/GC writers).
        sla_mode: ``"idle"`` (deadline restarts on each append) or
            ``"first"`` (deadline fixed at first append).
        obs: observability recorder notified of every emitted flush
            (defaults to the shared no-op recorder).
        owner_gid / owner_name: identity stamped onto the emitted
            ``chunk_flush``/``padding`` events.
    """

    def __init__(self, chunk_blocks: int, window_us: int | None,
                 sla_mode: str = "idle",
                 obs: NullRecorder | None = None,
                 owner_gid: int = -1, owner_name: str = "") -> None:
        if chunk_blocks < 1:
            raise ConfigError("chunk_blocks must be >= 1")
        if window_us is not None and window_us < 0:
            raise ConfigError("window_us must be >= 0 or None")
        if sla_mode not in ("idle", "first"):
            raise ConfigError(f"unknown sla_mode {sla_mode!r}")
        self.chunk_blocks = chunk_blocks
        self.window_us = window_us
        self.sla_mode = sla_mode
        self.obs = NULL_RECORDER if obs is None else obs
        self.owner_gid = owner_gid
        self.owner_name = owner_name
        self._tokens: list[Any] = []
        self._timer_start_us: int | None = None

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def pending_blocks(self) -> int:
        return len(self._tokens)

    @property
    def free_slots(self) -> int:
        return self.chunk_blocks - len(self._tokens)

    @property
    def pending_tokens(self) -> tuple[Any, ...]:
        return tuple(self._tokens)

    @property
    def deadline_us(self) -> int | None:
        """Absolute time of the next SLA deadline, or ``None``."""
        if self.window_us is None or self._timer_start_us is None:
            return None
        return self._timer_start_us + self.window_us

    def reset_timer(self, now_us: int) -> None:
        """Restart the SLA window (used by shadow append, §3.3: the chunk
        keeps its blocks but gets a fresh aggregation timer)."""
        if self._tokens:
            self._timer_start_us = now_us

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def append(self, token: Any, now_us: int) -> ChunkFlush | None:
        """Add one block; return a ``FULL`` flush if the chunk filled."""
        if not self._tokens or self.sla_mode == "idle":
            self._timer_start_us = now_us
        self._tokens.append(token)
        if len(self._tokens) >= self.chunk_blocks:
            return self._emit(FlushReason.FULL, now_us, pad=False)
        return None

    def poll(self, now_us: int) -> ChunkFlush | None:
        """Flush with padding if the SLA deadline has passed."""
        dl = self.deadline_us
        if dl is not None and now_us >= dl and self._tokens:
            return self._emit(FlushReason.DEADLINE, now_us, pad=True)
        return None

    def force_flush(self, now_us: int) -> ChunkFlush | None:
        """Flush whatever is pending (padded); ``None`` if empty."""
        if not self._tokens:
            return None
        return self._emit(FlushReason.FORCED, now_us, pad=True)

    def take_pending(self) -> tuple[Any, ...]:
        """Remove and return all pending tokens *without* emitting a flush.

        Used when another group's chunk absorbs these blocks (shadow
        append); no array I/O happens for this buffer.
        """
        tokens = tuple(self._tokens)
        self._tokens.clear()
        self._timer_start_us = None
        return tokens

    def _emit(self, reason: FlushReason, now_us: int, pad: bool) -> ChunkFlush:
        tokens = tuple(self._tokens)
        padding = self.chunk_blocks - len(tokens) if pad else 0
        self._tokens.clear()
        self._timer_start_us = None
        flush = ChunkFlush(reason=reason, tokens=tokens,
                           data_blocks=len(tokens), padding_blocks=padding,
                           time_us=now_us)
        if self.obs.enabled:
            self.obs.on_chunk_flush(self.owner_gid, self.owner_name, flush)
        return flush
