"""RAID-5 stripe and parity accounting.

The simulator does not move real bytes; what matters for the paper's metrics
is *how many chunks* reach each device class.  Chunks are laid out
round-robin across the data columns of a stripe; each write I/O pays one
parity-chunk write per stripe it touches (full stripes pay exactly one,
partial stripes pay the parity-update penalty the log-structured layout
amortises by writing whole stripes whenever possible — paper Fig 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class Raid5Config:
    """RAID-5 shape: ``num_devices`` total, one parity column per stripe."""

    num_devices: int = 4

    def __post_init__(self) -> None:
        if self.num_devices < 3:
            raise ConfigError("RAID-5 requires at least 3 devices")

    @property
    def data_columns(self) -> int:
        return self.num_devices - 1


@dataclass
class Raid5Accounting:
    """Streaming accounting of chunk writes onto a RAID-5 array.

    Each ``add_chunks(n)`` call models one write I/O of ``n`` sequentially
    appended data chunks and returns the number of parity-chunk writes it
    incurs: one per stripe the I/O touches.  The stripe fill position
    persists across calls so the append log walks the stripes in order.
    """

    config: Raid5Config = field(default_factory=Raid5Config)
    data_chunks: int = 0
    parity_chunks: int = 0
    _stripe_fill: int = 0

    def add_chunks(self, n: int) -> int:
        """Record an ``n``-chunk write I/O; return parity chunks written."""
        if n < 0:
            raise ValueError(f"negative chunk count {n}")
        if n == 0:
            return 0
        cols = self.config.data_columns
        # Stripes touched by [fill, fill + n) within the current stripe walk.
        first = self._stripe_fill // cols
        last = (self._stripe_fill + n - 1) // cols
        parity = last - first + 1
        self._stripe_fill = (self._stripe_fill + n) % cols
        self.data_chunks += n
        self.parity_chunks += parity
        return parity

    def add_chunk_ios(self, n: int) -> int:
        """Record ``n`` separate single-chunk write I/Os at once.

        Bit-equivalent to ``n`` calls of ``add_chunks(1)`` — each one-chunk
        I/O touches exactly one stripe, so parity grows by ``n`` and the
        stripe walk advances ``n`` positions.  Used by the batched replay
        paths to account a run's chunk flushes in bulk.
        """
        if n < 0:
            raise ValueError(f"negative chunk count {n}")
        if n == 0:
            return 0
        self.data_chunks += n
        self.parity_chunks += n
        self._stripe_fill = (self._stripe_fill + n) % self.config.data_columns
        return n

    @property
    def total_chunks(self) -> int:
        return self.data_chunks + self.parity_chunks

    def parity_overhead(self) -> float:
        """Parity chunks per data chunk (→ 1/(D−1) for full-stripe I/Os)."""
        if self.data_chunks == 0:
            return 0.0
        return self.parity_chunks / self.data_chunks
