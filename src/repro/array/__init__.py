"""SSD-array substrate: chunk geometry, RAID-5 parity accounting, the
chunk-coalescing buffer with the zero-padding SLA, and a bandwidth device
model used by the prototype."""

from repro.array.chunk import ChunkGeometry
from repro.array.raid5 import Raid5Accounting, Raid5Config
from repro.array.coalescing import ChunkFlush, CoalescingBuffer, FlushReason
from repro.array.device import Raid5Array, SSDDevice

__all__ = [
    "ChunkGeometry",
    "Raid5Config",
    "Raid5Accounting",
    "CoalescingBuffer",
    "ChunkFlush",
    "FlushReason",
    "SSDDevice",
    "Raid5Array",
]
