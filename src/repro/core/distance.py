"""Reuse-interval tracking over the sampled stream (the paper's "distance
tree", §3.2).

The access interval of a block is the number of *other intervening unique*
blocks referenced since its previous access.  The classic structure is an
order-statistic tree over last-access positions; because new positions are
always appended at the maximum, a sorted array of live positions gives the
same counts with one ``bisect`` per re-access and an O(n) delete — and the
sampled working set is small by construction, so the memmove cost is far
below a pointer-chasing tree in CPython (see the HPC guides on preferring
flat arrays).
"""

from __future__ import annotations

from bisect import bisect_right


class DistanceTracker:
    """Tracks per-key reuse intervals in unique-key units.

    ``access(key)`` returns the number of distinct *other* keys seen since
    ``key``'s previous access, or ``None`` on first access.
    """

    def __init__(self) -> None:
        self._clock = 0
        self._last_pos: dict[int, int] = {}
        self._live_positions: list[int] = []  # sorted ascending

    def __len__(self) -> int:
        """Number of distinct keys ever accessed and still tracked."""
        return len(self._last_pos)

    def access(self, key: int) -> int | None:
        """Record an access; return the reuse interval or ``None``."""
        pos = self._clock
        self._clock += 1
        prev = self._last_pos.get(key)
        if prev is None:
            distance = None
        else:
            # Unique keys touched strictly after prev: live positions > prev,
            # excluding this key's own marker at prev itself.
            idx = bisect_right(self._live_positions, prev)
            distance = len(self._live_positions) - idx
            # Remove the stale marker (it is at idx - 1 by construction).
            del self._live_positions[idx - 1]
        self._last_pos[key] = pos
        self._live_positions.append(pos)  # pos is the global maximum
        return distance

    def access_many(self, keys: list[int]) -> list[int | None]:
        """Array-in/array-out :meth:`access`: one interval per key, in
        order, identical to sequential scalar calls.

        The structure is inherently sequential (each access mutates the
        position list the next one reads), so this is a tight loop with
        the lookups hoisted rather than a NumPy kernel — the vector win
        on the ADAPT path comes from filtering the stream down to the
        sampled survivors *before* this call.
        """
        out: list[int | None] = []
        append_out = out.append
        last_pos = self._last_pos
        live = self._live_positions
        append_live = live.append
        clock = self._clock
        get = last_pos.get
        for key in keys:
            prev = get(key)
            if prev is None:
                append_out(None)
            else:
                idx = bisect_right(live, prev)
                append_out(len(live) - idx)
                del live[idx - 1]
            last_pos[key] = clock
            append_live(clock)
            clock += 1
        self._clock = clock
        return out

    def evict(self, key: int) -> None:
        """Forget a key (bounds memory for long runs)."""
        prev = self._last_pos.pop(key, None)
        if prev is not None:
            idx = bisect_right(self._live_positions, prev) - 1
            del self._live_positions[idx]

    def memory_bytes(self) -> int:
        """Approximate footprint: the paper budgets ~44 bytes per sampled
        block (key, last position, tree linkage)."""
        return 44 * len(self._last_pos)

    def check_invariants(self) -> None:
        """Test hook: positions list mirrors the last-position map."""
        expect = sorted(self._last_pos.values())
        if expect != self._live_positions:
            raise AssertionError("live positions diverged from key map")
