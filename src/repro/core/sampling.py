"""SHARDS-style spatial sampling (§3.2, after Waldspurger et al. FAST'15).

Request blocks are sampled by address hash — ``hash(lba) mod P < r·P`` —
so that *all* accesses of a sampled block are observed, which is what makes
reuse-interval statistics of the sampled stream unbiased estimates of the
full stream's (after scaling by ``1/r``).
"""

from __future__ import annotations

import numpy as np

from repro.core.bloom import _mix64, _mix64_batch

#: Hash-space modulus for the sampling test.
_P = 1 << 24


class SpatialSampler:
    """Deterministic hash-based spatial sampler.

    Args:
        rate: target sampling rate in (0, 1].
        salt: perturbs the hash so independent samplers disagree.
    """

    def __init__(self, rate: float, salt: int = 0) -> None:
        if not 0 < rate <= 1:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = rate
        self.salt = salt
        self._threshold = max(1, int(rate * _P))

    def is_sampled(self, lba: int) -> bool:
        return _mix64(lba ^ self.salt) % _P < self._threshold

    def is_sampled_batch(self, lbas: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_sampled` (bool array, same semantics)."""
        h = _mix64_batch(lbas.astype(np.uint64) ^ np.uint64(self.salt))
        return (h % np.uint64(_P)) < np.uint64(self._threshold)

    @property
    def effective_rate(self) -> float:
        """The exact rate implied by the integer threshold."""
        return self._threshold / _P
