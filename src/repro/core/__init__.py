"""ADAPT: the paper's contribution.

Three mechanisms compose the policy (:class:`~repro.core.policy.AdaptPolicy`):

* density-aware threshold adaptation (§3.2) — :mod:`repro.core.sampling`,
  :mod:`repro.core.distance`, :mod:`repro.core.ghost`,
  :mod:`repro.core.threshold`;
* cross-group dynamic aggregation (§3.3) — :mod:`repro.core.aggregation`;
* proactive demotion placement (§3.4) — :mod:`repro.core.bloom`,
  :mod:`repro.core.demotion`.
"""

from repro.core.config import AdaptConfig
from repro.core.policy import AdaptPolicy

__all__ = ["AdaptConfig", "AdaptPolicy"]
