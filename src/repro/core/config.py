"""Configuration knobs of the ADAPT policy.

Every mechanism can be disabled independently, which the ablation benches
use to attribute WA/padding reductions to individual design choices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class AdaptConfig:
    """Knobs for :class:`~repro.core.policy.AdaptPolicy`.

    Attributes:
        sample_rate: spatial sampling rate of the threshold-adaptation
            pipeline (the paper runs 0.001 on multi-TB volumes; the scaled
            experiment volumes here default to 0.1 to keep the ghost sets
            statistically meaningful).
        num_ghost_sets: candidate thresholds simulated concurrently.
        ghost_garbage_limit: ghost-set GC trigger (garbage ratio); ``None``
            derives it from the store's over-provisioning.
        adapt_every_fraction: re-evaluate thresholds each time the sampled
            write volume exceeds this fraction of the (scaled) capacity
            (the paper uses 10 %).
        num_gc_groups: GC-rewritten group count (paper: four).
        demotion_score: minimum re-access score required to demote a user
            write directly into a GC group.
        bloom_filters: cascade depth of each RA discriminator.
        bloom_capacity: inserts per bloom filter before rotation.
        bloom_fp_rate: target false-positive rate per filter.
        enable_threshold_adaptation: §3.2 on/off (off = SepBIT-style
            segment-lifespan threshold only).
        enable_aggregation: §3.3 on/off.
        enable_demotion: §3.4 on/off.
    """

    sample_rate: float = 0.1
    num_ghost_sets: int = 5
    ghost_garbage_limit: float | None = None
    adapt_every_fraction: float = 0.10
    num_gc_groups: int = 4
    demotion_score: int = 2
    bloom_filters: int = 4
    bloom_capacity: int = 4096
    bloom_fp_rate: float = 0.01
    enable_threshold_adaptation: bool = True
    enable_aggregation: bool = True
    enable_demotion: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.sample_rate <= 1:
            raise ConfigError("sample_rate must be in (0, 1]")
        if self.num_ghost_sets < 2:
            raise ConfigError("need at least 2 ghost sets to compare")
        if self.ghost_garbage_limit is not None and \
                not 0 < self.ghost_garbage_limit < 1:
            raise ConfigError("ghost_garbage_limit must be in (0, 1)")
        if not 0 < self.adapt_every_fraction <= 1:
            raise ConfigError("adapt_every_fraction must be in (0, 1]")
        if self.num_gc_groups < 1:
            raise ConfigError("need at least one GC group")
        if self.demotion_score < 1:
            raise ConfigError("demotion_score must be >= 1")
        if self.bloom_filters < 1:
            raise ConfigError("bloom_filters must be >= 1")
        if self.bloom_capacity < 1:
            raise ConfigError("bloom_capacity must be >= 1")
        if not 0 < self.bloom_fp_rate < 1:
            raise ConfigError("bloom_fp_rate must be in (0, 1)")
