"""Cross-group dynamic aggregation (§3.3).

When the hot user group's open chunk hits its SLA deadline unfilled, ADAPT
can avert the zero-padding flush: the pending hot blocks are *shadow
appended* — substitute copies written into the colder user group's open
chunk, constructing a filled (or at least fuller) chunk that persists both
groups' data in one array write.  The hot chunk keeps its original blocks
(the eventual in-place persistence is the *lazy append*) and restarts its
aggregation timer.

Two conditions gate the mechanism, following the paper:

1. *Sparsity prediction* — the group's recent average accumulated size of
   unfilled chunks (Eq. 1) must show that in-group aggregation cannot fill
   chunks, i.e. the workload phase is sparse.
2. *Stop condition* — once the shadow bytes absorbed by the cold group's
   current open segment exceed that group's historical average padding per
   segment, aggregation pauses: beyond that point substitutes stop
   displacing padding and start consuming real cold capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lss.group import Group
from repro.obs.recorder import NULL_RECORDER, NullRecorder


@dataclass
class GroupWriteMonitor:
    """Per-group statistics behind Eq. 1 and the stop condition."""

    chunk_blocks: int
    data_blocks: int = 0           # V_i: data blocks written (flushed)
    padding_events: int = 0        # P_i: number of padded chunk flushes
    padding_blocks: int = 0
    shadow_blocks: int = 0         # substitutes absorbed by this group
    full_flushes: int = 0
    segments_sealed: int = 0

    def on_flush(self, data_blocks: int, padding_blocks: int,
                 shadow_blocks: int = 0) -> None:
        self.data_blocks += data_blocks
        self.padding_blocks += padding_blocks
        self.shadow_blocks += shadow_blocks
        if padding_blocks > 0:
            self.padding_events += 1
        else:
            self.full_flushes += 1

    def avg_unfilled_chunk_blocks(self) -> float:
        """Eq. 1: average accumulated size of unfilled chunks,
        ``C_i = (V_i - S_ck * (filled chunks)) / P_i``."""
        if self.padding_events == 0:
            return float(self.chunk_blocks)
        filled_data = self.chunk_blocks * self.full_flushes
        return max(0.0, (self.data_blocks - filled_data)
                   / self.padding_events)

    def avg_padding_per_segment_blocks(self) -> float:
        """Historical *dead-space* budget per sealed segment of this group.

        Substitutes displace padding one-for-one, so the budget counts both:
        otherwise successful aggregation would shrink its own allowance and
        oscillate (padding falls -> budget falls -> aggregation declines ->
        padding rises again).
        """
        segs = max(self.segments_sealed, 1)
        return (self.padding_blocks + self.shadow_blocks) / segs


@dataclass
class AggregationDecision:
    """Outcome of one deadline event (exported for tests/telemetry)."""

    aggregated: bool
    reason: str
    blocks: int = 0


@dataclass
class CrossGroupAggregator:
    """Implements the shadow-append path between one hot and one cold
    user group."""

    chunk_blocks: int
    monitors: dict[int, GroupWriteMonitor] = field(default_factory=dict)
    shadow_appends: int = 0
    shadow_blocks: int = 0
    declined: int = 0
    obs: NullRecorder = NULL_RECORDER

    def monitor_for(self, gid: int) -> GroupWriteMonitor:
        mon = self.monitors.get(gid)
        if mon is None:
            mon = GroupWriteMonitor(chunk_blocks=self.chunk_blocks)
            self.monitors[gid] = mon
        return mon

    # ------------------------------------------------------------------
    # bookkeeping hooks (wired from the policy)
    # ------------------------------------------------------------------
    def on_flush(self, gid: int, data_blocks: int, padding_blocks: int,
                 shadow_blocks: int = 0) -> None:
        self.monitor_for(gid).on_flush(data_blocks, padding_blocks,
                                       shadow_blocks)

    def on_segment_sealed(self, gid: int) -> None:
        self.monitor_for(gid).segments_sealed += 1

    # ------------------------------------------------------------------
    # the deadline decision
    # ------------------------------------------------------------------
    def try_aggregate(self, hot: Group, cold: Group,
                      now_us: int) -> AggregationDecision:
        """Attempt to avert ``hot``'s padding flush via shadow append into
        ``cold``.  Returns the decision; on success the hot buffer's timer
        was reset and the cold chunk was flushed."""
        pending = hot.unshadowed_pending
        if not pending:
            # Everything pending is already substituted; just extend the
            # timer — durability is already satisfied elsewhere.
            hot.mark_all_shadowed(now_us)
            return AggregationDecision(True, "already-shadowed")

        hot_mon = self.monitor_for(hot.gid)
        # Condition 1: only aggregate in sparse phases, where history says
        # in-group coalescing leaves chunks unfilled.
        if hot_mon.padding_events == 0 and hot_mon.full_flushes > 0:
            self.declined += 1
            return AggregationDecision(False, "dense-phase")

        cold_mon = self.monitor_for(cold.gid)
        # Condition 2 (stop): substitutes already placed in the cold
        # group's open segment must not exceed its padding budget.
        budget_blocks = cold_mon.avg_padding_per_segment_blocks()
        shadow_blocks = cold.segment_shadow_bytes // \
            cold.store.config.chunk.block_bytes
        if cold_mon.segments_sealed > 0 and shadow_blocks >= budget_blocks:
            self.declined += 1
            return AggregationDecision(False, "budget-exhausted")

        # Never shadow more blocks than one chunk can hold.
        batch = pending[: self.chunk_blocks]
        for _kind, lba in batch:
            cold.append_shadow(lba, now_us)
        # The substitutes ride the cold group's chunk: it flushes when it
        # fills (no padding at all — the "filled chunk" of Fig 6) or at the
        # cold group's own SLA deadline (one padded flush covering both
        # groups' sparse streams instead of two).
        hot.mark_all_shadowed(now_us)
        self.shadow_appends += 1
        self.shadow_blocks += len(batch)
        if self.obs.enabled:
            self.obs.on_shadow_append(hot.gid, cold.gid, len(batch), now_us)
        return AggregationDecision(True, "shadow-append", blocks=len(batch))

    def absorb_before_padding(self, cold: Group, hot: Group,
                              now_us: int) -> int:
        """The symmetric direction: ``cold`` is about to pad — fill its
        would-be padding slots with substitutes of ``hot``'s unshadowed
        pending blocks ("utilize redundant blocks in unfilled chunks of
        cold groups", §3.3).  Returns blocks absorbed; the caller still
        lets the (now fuller) padded flush proceed."""
        free = cold.buffer.free_slots
        if free <= 0:
            return 0
        batch = hot.unshadowed_pending[:free]
        if not batch:
            return 0
        for _kind, lba in batch:
            cold.append_shadow(lba, now_us)
        hot.mark_partially_shadowed(len(batch), now_us)
        self.shadow_appends += 1
        self.shadow_blocks += len(batch)
        if self.obs.enabled:
            self.obs.on_shadow_append(hot.gid, cold.gid, len(batch), now_us)
        return len(batch)
