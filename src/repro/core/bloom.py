"""Bloom filters and the cascaded RA discriminator (§3.4).

The re-access identifier must answer "how often has this LBA been migrated
back into GC group K?" on the write critical path with nanosecond-ish cost
and bounded memory.  The paper's design is a FIFO cascade of bloom filters
per group: each filter absorbs a bounded number of inserts; the score of an
LBA is the number of filters that (probably) contain it; the oldest filter
is evicted when the cascade is full, which ages out stale history.
"""

from __future__ import annotations

import math

import numpy as np

#: 64-bit mixing constants (splitmix64) for the double-hashing scheme.
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def _mix64(x: int) -> int:
    x = (x ^ (x >> 30)) * _MIX1 & _MASK
    x = (x ^ (x >> 27)) * _MIX2 & _MASK
    return x ^ (x >> 31)


def _mix64_batch(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_mix64` over a uint64 array (wrapping multiply)."""
    x = x.astype(np.uint64, copy=False)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


class BloomFilter:
    """Classic bloom filter over int keys with double hashing.

    Sized from ``(capacity, fp_rate)``:
    ``m = -n·ln(p)/ln(2)²`` bits and ``k = m/n·ln(2)`` hash functions.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0 < fp_rate < 1:
            raise ValueError("fp_rate must be in (0, 1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        m = max(8, int(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        self.num_bits = m
        self.num_hashes = max(1, round(m / capacity * math.log(2)))
        self._bits = np.zeros((m + 7) // 8, dtype=np.uint8)
        self.count = 0

    def _positions(self, key: int) -> list[int]:
        h1 = _mix64(key)
        h2 = _mix64(key ^ _MIX1) | 1
        return [((h1 + i * h2) & _MASK) % self.num_bits
                for i in range(self.num_hashes)]

    def add(self, key: int) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def __contains__(self, key: int) -> bool:
        for pos in self._positions(key):
            if not self._bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def contains_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized ``key in filter`` over an integer key array.

        One ``_mix64_batch`` pass per hash function instead of one Python
        probe loop per key; bit-identical to ``__contains__``.
        """
        k = keys.astype(np.uint64, copy=False)
        h1 = _mix64_batch(k)
        h2 = _mix64_batch(k ^ np.uint64(_MIX1)) | np.uint64(1)
        nb = np.uint64(self.num_bits)
        out = np.ones(int(k.shape[0]), dtype=bool)
        with np.errstate(over="ignore"):
            for i in range(self.num_hashes):
                pos = (h1 + np.uint64(i) * h2) % nb
                byte = self._bits[(pos >> np.uint64(3)).astype(np.int64)]
                bit = byte >> (pos & np.uint64(7)).astype(np.uint8)
                out &= (bit & 1).astype(bool)
        return out

    @property
    def is_full(self) -> bool:
        return self.count >= self.capacity

    def memory_bytes(self) -> int:
        return int(self._bits.nbytes)


class CascadedDiscriminator:
    """FIFO cascade of bloom filters: insert into the newest, score by
    counting filters that contain the key (§3.4).

    Two operating modes:

    * **exact** (default) — each cascade slot is backed by an exact member
      set and scores count true membership.  In CPython a set probe is both
      faster *and* more accurate than simulating the bit array, so this is
      the hot-path default; :meth:`memory_bytes` still reports the bloom
      budget the paper's design would occupy, because that is the quantity
      Fig 12b accounts.
    * ``use_bloom=True`` — real :class:`BloomFilter` probes, including
      false positives.  Tests cross-check the two modes.
    """

    def __init__(self, num_filters: int = 4, capacity: int = 4096,
                 fp_rate: float = 0.01, use_bloom: bool = False) -> None:
        if num_filters < 1:
            raise ValueError("num_filters must be >= 1")
        self.num_filters = num_filters
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.use_bloom = use_bloom
        self._filters: list[BloomFilter | None] = [self._new_filter()]
        self._members: list[set[int]] = [set()]
        self._counts: list[int] = [0]
        self.evictions = 0
        self._bytes_per_filter = \
            BloomFilter(capacity, fp_rate).memory_bytes()

    def _new_filter(self) -> BloomFilter | None:
        return BloomFilter(self.capacity, self.fp_rate) \
            if self.use_bloom else None

    def insert(self, key: int) -> None:
        if self._counts[-1] >= self.capacity:
            self._filters.append(self._new_filter())
            self._members.append(set())
            self._counts.append(0)
            if len(self._filters) > self.num_filters:
                self._filters.pop(0)
                self._members.pop(0)
                self._counts.pop(0)
                self.evictions += 1
        if self.use_bloom:
            self._filters[-1].add(key)
        self._members[-1].add(key)
        self._counts[-1] += 1

    def maybe_member(self, key: int) -> bool:
        """Exact membership over the live cascade (pre-filter fast path)."""
        return any(key in m for m in self._members)

    def score(self, key: int) -> int:
        """Number of cascade filters containing ``key`` (0..num_filters)."""
        if self.use_bloom:
            if not self.maybe_member(key):
                return 0
            return sum(1 for f in self._filters if key in f)
        score = 0
        for m in self._members:
            if key in m:
                score += 1
        return score

    def score_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`score` over an integer key array.

        Exact mode probes the member sets (CPython set lookups beat bit
        fiddling at cascade sizes); bloom mode applies the same
        ``maybe_member`` pre-filter as :meth:`score`, then one
        :meth:`BloomFilter.contains_batch` pass per live filter.
        Bit-identical to a scalar :meth:`score` loop in both modes.
        """
        n = int(keys.shape[0])
        klist = keys.tolist()
        if self.use_bloom:
            out = np.zeros(n, dtype=np.int64)
            members = self._members
            idx = [i for i, k in enumerate(klist)
                   if any(k in m for m in members)]
            if idx:
                sub = keys[np.asarray(idx, dtype=np.int64)]
                acc = np.zeros(len(idx), dtype=np.int64)
                for f in self._filters:
                    acc += f.contains_batch(sub)
                out[idx] = acc
            return out
        members = [m for m in self._members if m]
        scores = [0] * n
        for m in members:
            for i, k in enumerate(klist):
                if k in m:
                    scores[i] += 1
        return np.asarray(scores, dtype=np.int64)

    def memory_bytes(self) -> int:
        """The bloom-bit budget of the cascade (what a production
        implementation carries), independent of operating mode."""
        return self._bytes_per_filter * len(self._filters)
