"""Miss-ratio-curve construction with SHARDS-style spatial sampling.

The threshold-adaptation pipeline (§3.2) already contains the two SHARDS
ingredients — hash-based spatial sampling and reuse-distance tracking.
This module composes them into the classic application the paper cites
(Waldspurger et al., FAST '15): approximate miss-ratio curves over block
streams at a fraction of full-trace cost.  Experiments use it to pick
working-set-aware volume sizes; it is also a user-facing API in its own
right.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance import DistanceTracker
from repro.core.sampling import SpatialSampler
from repro.trace.model import Trace


@dataclass(frozen=True)
class MissRatioCurve:
    """An approximate MRC: miss ratio as a function of cache size.

    ``cache_sizes`` are in blocks (scaled back to full-stream units);
    ``miss_ratios`` includes compulsory misses.
    """

    cache_sizes: np.ndarray
    miss_ratios: np.ndarray
    sample_rate: float
    sampled_accesses: int
    total_accesses: int

    def miss_ratio_at(self, cache_blocks: int) -> float:
        """Miss ratio of an LRU cache of ``cache_blocks`` (step lookup)."""
        if self.cache_sizes.size == 0:
            return 1.0
        idx = int(np.searchsorted(self.cache_sizes, cache_blocks,
                                  side="right")) - 1
        if idx < 0:
            return 1.0
        return float(self.miss_ratios[idx])

    def working_set_blocks(self, target_miss_ratio: float = 0.05) -> int:
        """Smallest cache achieving the target miss ratio (or the largest
        observed size if unattainable)."""
        hit = np.flatnonzero(self.miss_ratios <= target_miss_ratio)
        if hit.size == 0:
            return int(self.cache_sizes[-1]) if self.cache_sizes.size else 0
        return int(self.cache_sizes[hit[0]])


class MrcBuilder:
    """Streaming MRC construction over block accesses."""

    def __init__(self, sample_rate: float = 0.1, salt: int = 0,
                 num_points: int = 64) -> None:
        if num_points < 2:
            raise ValueError("need at least 2 curve points")
        self.sampler = SpatialSampler(sample_rate, salt=salt)
        self.tracker = DistanceTracker()
        self.num_points = num_points
        self._distances: list[int] = []
        self._cold_misses = 0
        self._sampled = 0
        self._total = 0

    def access(self, lba: int) -> None:
        """Feed one block access."""
        self._total += 1
        if not self.sampler.is_sampled(lba):
            return
        self._sampled += 1
        d = self.tracker.access(lba)
        if d is None:
            self._cold_misses += 1
        else:
            self._distances.append(d)

    def access_batch(self, lbas: np.ndarray) -> None:
        """Feed many block accesses with one vectorized hash pass.

        The SHARDS filter runs as a single :meth:`is_sampled_batch` call;
        only the sampled survivors (typically ``rate`` of the stream) hit
        the sequential distance tracker.  End state is bit-identical to
        scalar :meth:`access` calls in the same order.
        """
        n = int(lbas.shape[0])
        if n == 0:
            return
        self._total += n
        hits = lbas[self.sampler.is_sampled_batch(lbas)]
        self._sampled += int(hits.size)
        if hits.size == 0:
            return
        distances = self._distances
        for d in self.tracker.access_many(hits.tolist()):
            if d is None:
                self._cold_misses += 1
            else:
                distances.append(d)

    def feed_trace(self, trace: Trace, writes_only: bool = False) -> None:
        """Feed a whole trace (block-granular: each request contributes
        one access per block it touches)."""
        src = trace.writes() if writes_only else trace
        offs = src.offsets.astype(np.int64, copy=False)
        szs = src.sizes.astype(np.int64, copy=False)
        total = int(szs.sum())
        if total == 0:
            return
        # Expand (offset, size) runs into the per-block access stream.
        starts = np.repeat(offs, szs)
        firsts = np.repeat(np.cumsum(szs) - szs, szs)
        self.access_batch(starts + np.arange(total, dtype=np.int64) - firsts)

    def build(self) -> MissRatioCurve:
        """Finalize into a :class:`MissRatioCurve`."""
        r = self.sampler.effective_rate
        if self._sampled == 0:
            return MissRatioCurve(np.empty(0), np.empty(0), r, 0,
                                  self._total)
        dist = np.sort(np.array(self._distances, dtype=np.int64))
        max_d = int(dist[-1]) if dist.size else 1
        # Cache sizes in sampled units, scaled back by 1/r for reporting.
        sizes_sampled = np.unique(np.linspace(
            1, max(max_d + 1, 2), self.num_points).astype(np.int64))
        # An access with reuse distance d hits in an LRU cache of size > d.
        hits = np.searchsorted(dist, sizes_sampled, side="left")
        misses = (self._sampled - hits)  # reuses beyond size + cold misses
        ratios = misses / self._sampled
        return MissRatioCurve(
            cache_sizes=(sizes_sampled / r).astype(np.int64),
            miss_ratios=ratios,
            sample_rate=r,
            sampled_accesses=self._sampled,
            total_accesses=self._total,
        )


def build_mrc(trace: Trace, sample_rate: float = 0.1,
              writes_only: bool = True, num_points: int = 64,
              salt: int = 0) -> MissRatioCurve:
    """One-shot MRC for a trace."""
    builder = MrcBuilder(sample_rate=sample_rate, salt=salt,
                         num_points=num_points)
    builder.feed_trace(trace, writes_only=writes_only)
    return builder.build()
