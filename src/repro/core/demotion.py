"""Proactive demotion placement (§3.4).

Under Zipfian workloads most blocks are long-lived: they are written once,
then repeatedly migrated through progressively colder GC groups — each hop
a rewrite.  The re-access (RA) identifier detects blocks that GC keeps
migrating *back into the same* GC group (same-group migration means the
block's lifespan matches that group's segment lifetimes) and, on the next
user write, places such blocks directly into that group, skipping the whole
cascade of intermediate migrations.

One cascaded bloom-filter discriminator per GC group; the score of an LBA
for a group is the number of cascade filters containing it.  The user-write
lookup picks the best-scoring group and demotes when the score clears the
configured threshold.
"""

from __future__ import annotations

import numpy as np

from repro.core.bloom import CascadedDiscriminator
from repro.obs.recorder import NULL_RECORDER, NullRecorder


class ProactiveDemotion:
    """RA identifiers for a set of GC groups.

    Args:
        gc_group_ids: store group ids of the GC-rewritten groups, coldest
            last (order only matters for tie-breaking).
        score_threshold: minimum score required to demote.
        num_filters / capacity / fp_rate: cascade shape per group.
    """

    def __init__(self, gc_group_ids: list[int], score_threshold: int = 2,
                 num_filters: int = 4, capacity: int = 4096,
                 fp_rate: float = 0.01) -> None:
        if not gc_group_ids:
            raise ValueError("need at least one GC group")
        if score_threshold < 1:
            raise ValueError("score_threshold must be >= 1")
        self.gc_group_ids = list(gc_group_ids)
        self.score_threshold = score_threshold
        self.discriminators = {
            gid: CascadedDiscriminator(num_filters, capacity, fp_rate)
            for gid in gc_group_ids
        }
        self.demotions = 0
        self.lookups = 0
        self.obs: NullRecorder = NULL_RECORDER
        #: Memoized ``lba -> (target, score)`` probe results.  Scores only
        #: change when a discriminator mutates — inserts and evictions
        #: happen exclusively on the GC path — so the cache is exact: an
        #: insert invalidates that LBA, an eviction (a whole filter slot
        #: aging out) clears everything.
        self._target_cache: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # construction during GC
    # ------------------------------------------------------------------
    def on_gc_block(self, lba: int, from_group: int, to_group: int) -> None:
        """GC migrated ``lba``; record same-group GC-to-GC migrations."""
        if from_group == to_group and from_group in self.discriminators:
            disc = self.discriminators[from_group]
            before = disc.evictions
            disc.insert(lba)
            if disc.evictions != before:
                self._target_cache.clear()
            else:
                self._target_cache.pop(lba, None)

    # ------------------------------------------------------------------
    # lookup on the user-write path
    # ------------------------------------------------------------------
    def demotion_target(self, lba: int, now_us: int = 0) -> int | None:
        """Group to demote ``lba`` into, or ``None`` to use the normal
        hotness-based placement."""
        self.lookups += 1
        best_gid, best_score = None, 0
        for gid in self.gc_group_ids:
            score = self.discriminators[gid].score(lba)
            if score > best_score:
                best_gid, best_score = gid, score
        if best_gid is not None and best_score >= self.score_threshold:
            self.demotions += 1
            if self.obs.enabled:
                self.obs.on_demotion(lba, best_gid, best_score, now_us)
            return best_gid
        return None

    # ------------------------------------------------------------------
    # batched lookup
    # ------------------------------------------------------------------
    def demotion_targets(self, lbas: np.ndarray) -> tuple[np.ndarray,
                                                          np.ndarray]:
        """Pure bulk probe: per LBA, the demotion target gid (or ``-1``
        for normal hotness placement) and the winning score.

        No side effects — no lookup/demotion counters, no obs events —
        so the batched engine can use it to *predict* candidate groups
        before a chunk is committed; the placement path applies the
        scalar contract's accounting via :meth:`account_batch`.
        Tie-breaking matches the scalar strict-``>`` scan (earliest gid
        in ``gc_group_ids`` wins ties).

        Results are memoized per LBA (exact, not approximate: the cache
        is invalidated on every discriminator mutation), so repeated
        probes between GC runs — the engine's candidate prediction plus
        the placement pass — cost one dict hit each.
        """
        n = int(lbas.shape[0])
        targets = np.empty(n, dtype=np.int64)
        scores = np.empty(n, dtype=np.int64)
        cache = self._target_cache
        missing: list[int] = []
        for i, k in enumerate(lbas.tolist()):
            hit = cache.get(k)
            if hit is None:
                missing.append(i)
            else:
                targets[i], scores[i] = hit
        if missing:
            idx = np.asarray(missing, dtype=np.int64)
            sub = lbas[idx]
            t, s = self._compute_targets(sub)
            targets[idx] = t
            scores[idx] = s
            for k, tv, sv in zip(sub.tolist(), t.tolist(), s.tolist()):
                cache[k] = (tv, sv)
        return targets, scores

    def _compute_targets(self, lbas: np.ndarray) -> tuple[np.ndarray,
                                                          np.ndarray]:
        n = int(lbas.shape[0])
        best_score = np.zeros(n, dtype=np.int64)
        best_gid = np.full(n, -1, dtype=np.int64)
        for gid in self.gc_group_ids:
            s = self.discriminators[gid].score_batch(lbas)
            better = s > best_score
            if better.any():
                best_gid[better] = gid
                best_score[better] = s[better]
        fired = best_score >= self.score_threshold
        return np.where(fired, best_gid, -1), best_score

    def account_batch(self, lbas: np.ndarray, targets: np.ndarray,
                      scores: np.ndarray, ts_us: np.ndarray) -> None:
        """Apply the counter/obs updates a scalar :meth:`demotion_target`
        loop over these blocks would have produced."""
        self.lookups += int(lbas.shape[0])
        fired = np.flatnonzero(targets >= 0)
        self.demotions += int(fired.size)
        if self.obs.enabled and fired.size:
            on_demotion = self.obs.on_demotion
            for i in fired.tolist():
                on_demotion(int(lbas[i]), int(targets[i]),
                            int(scores[i]), int(ts_us[i]))

    def memory_bytes(self) -> int:
        return sum(d.memory_bytes() for d in self.discriminators.values())
