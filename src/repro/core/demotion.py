"""Proactive demotion placement (§3.4).

Under Zipfian workloads most blocks are long-lived: they are written once,
then repeatedly migrated through progressively colder GC groups — each hop
a rewrite.  The re-access (RA) identifier detects blocks that GC keeps
migrating *back into the same* GC group (same-group migration means the
block's lifespan matches that group's segment lifetimes) and, on the next
user write, places such blocks directly into that group, skipping the whole
cascade of intermediate migrations.

One cascaded bloom-filter discriminator per GC group; the score of an LBA
for a group is the number of cascade filters containing it.  The user-write
lookup picks the best-scoring group and demotes when the score clears the
configured threshold.
"""

from __future__ import annotations

from repro.core.bloom import CascadedDiscriminator
from repro.obs.recorder import NULL_RECORDER, NullRecorder


class ProactiveDemotion:
    """RA identifiers for a set of GC groups.

    Args:
        gc_group_ids: store group ids of the GC-rewritten groups, coldest
            last (order only matters for tie-breaking).
        score_threshold: minimum score required to demote.
        num_filters / capacity / fp_rate: cascade shape per group.
    """

    def __init__(self, gc_group_ids: list[int], score_threshold: int = 2,
                 num_filters: int = 4, capacity: int = 4096,
                 fp_rate: float = 0.01) -> None:
        if not gc_group_ids:
            raise ValueError("need at least one GC group")
        if score_threshold < 1:
            raise ValueError("score_threshold must be >= 1")
        self.gc_group_ids = list(gc_group_ids)
        self.score_threshold = score_threshold
        self.discriminators = {
            gid: CascadedDiscriminator(num_filters, capacity, fp_rate)
            for gid in gc_group_ids
        }
        self.demotions = 0
        self.lookups = 0
        self.obs: NullRecorder = NULL_RECORDER

    # ------------------------------------------------------------------
    # construction during GC
    # ------------------------------------------------------------------
    def on_gc_block(self, lba: int, from_group: int, to_group: int) -> None:
        """GC migrated ``lba``; record same-group GC-to-GC migrations."""
        if from_group == to_group and from_group in self.discriminators:
            self.discriminators[from_group].insert(lba)

    # ------------------------------------------------------------------
    # lookup on the user-write path
    # ------------------------------------------------------------------
    def demotion_target(self, lba: int, now_us: int = 0) -> int | None:
        """Group to demote ``lba`` into, or ``None`` to use the normal
        hotness-based placement."""
        self.lookups += 1
        best_gid, best_score = None, 0
        for gid in self.gc_group_ids:
            score = self.discriminators[gid].score(lba)
            if score > best_score:
                best_gid, best_score = gid, score
        if best_gid is not None and best_score >= self.score_threshold:
            self.demotions += 1
            if self.obs.enabled:
                self.obs.on_demotion(lba, best_gid, best_score, now_us)
            return best_gid
        return None

    def memory_bytes(self) -> int:
        return sum(d.memory_bytes() for d in self.discriminators.values())
