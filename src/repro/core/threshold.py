"""Threshold ladder: drives the ghost sets and picks the winner (§3.2).

The ladder maintains N ghost sets with candidate thresholds.  Candidates
start on an exponentially growing grid (unit = scaled segment size); once a
winner is found the grid becomes linear between the winner's neighbours;
if a round's costs are monotone across the grid (the optimum sits at an
edge), the ladder re-expands exponentially to chase workload drift —
exactly the paper's exponential-then-linear sliding-window scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ghost import GhostSet
from repro.obs.recorder import NULL_RECORDER, NullRecorder


@dataclass(frozen=True)
class AdaptationResult:
    """Outcome of one adaptation round."""

    best_threshold: float
    best_cost: float
    costs: tuple[float, ...]
    thresholds: tuple[float, ...]
    mode: str  # grid mode used for the *next* round


class ThresholdLadder:
    """Manages the ghost-set grid and threshold search."""

    def __init__(self, num_sets: int, segment_blocks: int, chunk_blocks: int,
                 window_us: int, garbage_limit: float,
                 sla_mode: str = "idle") -> None:
        if num_sets < 2:
            raise ValueError("need at least 2 ghost sets")
        self.num_sets = num_sets
        self.segment_blocks = segment_blocks
        self.chunk_blocks = chunk_blocks
        self.window_us = window_us
        self.garbage_limit = garbage_limit
        self.sla_mode = sla_mode
        self.mode = "exponential"
        self.rounds = 0
        #: Observability recorder (attached by the owning policy) and the
        #: most recent stream timestamp, stamped onto switch events.
        self.obs: NullRecorder = NULL_RECORDER
        self._last_seen_us = 0
        self._build(self._exponential_grid(center=float(segment_blocks)))

    # ------------------------------------------------------------------
    # grids
    # ------------------------------------------------------------------
    def _exponential_grid(self, center: float) -> list[float]:
        """Thresholds center·2^(i - N/2), clamped to >= 1."""
        half = self.num_sets // 2
        return [max(1.0, center * (2.0 ** (i - half)))
                for i in range(self.num_sets)]

    def _linear_grid(self, lo: float, hi: float) -> list[float]:
        lo = max(1.0, lo)
        hi = max(lo + 1.0, hi)
        step = (hi - lo) / (self.num_sets - 1)
        return [lo + i * step for i in range(self.num_sets)]

    def _build(self, thresholds: list[float]) -> None:
        """(Re)build the grid, reusing warm ghost sets whose threshold is
        unchanged — a fresh set needs several GC cycles before its cost is
        meaningful, so carrying state across rounds de-noises the search."""
        existing = {round(g.threshold, 3): g for g in
                    getattr(self, "ghost_sets", [])}
        sets = []
        for t in thresholds:
            ghost = existing.get(round(t, 3))
            if ghost is None:
                ghost = GhostSet(t, self.segment_blocks, self.chunk_blocks,
                                 self.window_us, self.garbage_limit,
                                 sla_mode=self.sla_mode)
            else:
                ghost.reset_counters()
            sets.append(ghost)
        self.ghost_sets = sets

    # ------------------------------------------------------------------
    # stream + adaptation
    # ------------------------------------------------------------------
    def record(self, lba: int, interval: float | None, now_us: int) -> None:
        self._last_seen_us = now_us
        for ghost in self.ghost_sets:
            ghost.record(lba, interval, now_us)

    def record_batch(self, lbas: list[int],
                     intervals: list[float | None],
                     ts_us: list[int]) -> None:
        """Feed a run of sampled writes; identical to per-record calls.

        A grid with duplicate thresholds (e.g. several slots clamped to
        1.0) reuses one warm :class:`GhostSet` object in multiple slots,
        so the scalar loop feeds it each sample ``m`` consecutive times.
        Multiplicity is replicated here — the object's input stream must
        match the scalar cadence exactly.
        """
        if not lbas:
            return
        self._last_seen_us = ts_us[-1]
        mult: dict[int, int] = {}
        for ghost in self.ghost_sets:
            mult[id(ghost)] = mult.get(id(ghost), 0) + 1
        done: set[int] = set()
        for ghost in self.ghost_sets:
            key = id(ghost)
            if key in done:
                continue
            done.add(key)
            m = mult[key]
            if m == 1:
                ghost.record_many(lbas, intervals, ts_us)
            else:
                ghost.record_many(
                    [x for x in lbas for _ in range(m)],
                    [x for x in intervals for _ in range(m)],
                    [x for x in ts_us for _ in range(m)])

    def sampled_blocks_written(self) -> int:
        return self.ghost_sets[0].blocks_written

    def ready(self) -> bool:
        """Most ghost sets have cycled GC enough to trust their costs."""
        warm = sum(1 for g in self.ghost_sets if g.is_warm())
        return warm * 2 >= len(self.ghost_sets)

    def padding_fraction(self) -> float:
        """Padding share of the ghost sets' written volume this round —
        the signal for whether the workload phase is padding-bound at all."""
        written = sum(g.blocks_written for g in self.ghost_sets)
        if written == 0:
            return 0.0
        return sum(g.padding_blocks for g in self.ghost_sets) / written

    def cost_spread(self) -> float:
        """Relative spread of the current costs (0 = flat / uninformative)."""
        costs = [g.cost() for g in self.ghost_sets if g.blocks_written]
        if not costs or max(costs) <= 0:
            return 0.0
        return (max(costs) - min(costs)) / max(costs)

    def adapt(self) -> AdaptationResult:
        """Close the measurement round: pick the cheapest threshold and
        re-grid around it."""
        costs = [g.cost() for g in self.ghost_sets]
        thresholds = [g.threshold for g in self.ghost_sets]
        best_idx = min(range(len(costs)), key=costs.__getitem__)
        best_t, best_c = thresholds[best_idx], costs[best_idx]
        self.rounds += 1

        monotone = _is_monotone(costs)
        if monotone or best_idx in (0, len(costs) - 1):
            # Optimum at (or beyond) an edge: re-expand exponentially.
            self.mode = "exponential"
            grid = self._exponential_grid(center=best_t)
        else:
            self.mode = "linear"
            grid = self._linear_grid(thresholds[best_idx - 1],
                                     thresholds[best_idx + 1])
        self._build(grid)
        if self.obs.enabled:
            self.obs.on_threshold_switch(best_t, self.mode, self.rounds,
                                         self._last_seen_us)
        return AdaptationResult(best_threshold=best_t, best_cost=best_c,
                                costs=tuple(costs),
                                thresholds=tuple(thresholds), mode=self.mode)

    def memory_bytes(self) -> int:
        return sum(g.memory_bytes() for g in self.ghost_sets)


def _is_monotone(costs: list[float]) -> bool:
    """True when costs never decrease or never increase along the grid."""
    diffs = [b - a for a, b in zip(costs, costs[1:])]
    return all(d >= 0 for d in diffs) or all(d <= 0 for d in diffs)
