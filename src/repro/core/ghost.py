"""Ghost-set simulation of user-written groups (§3.2).

A ghost set replays the *sampled* write stream through a miniature
two-group (hot/cold) log that tracks only LBAs.  Its segments are scaled by
the sampling rate and its chunk-aggregation window is proportionally
stretched.  GC in a ghost set *discards* valid blocks instead of rewriting
them (in the real system those blocks migrate out of the user-written
groups), and its WA-cost signal is

    cost = (discarded valid blocks + padding blocks) / blocks written,

which captures exactly the two components the threshold is meant to
minimise: GC migration out of user groups and zero-padding.  Each ghost set
runs one candidate threshold; the ladder compares their costs.

Mirroring the replay engines' reference-vs-batched split, the scalar
:meth:`GhostSet.record` path drives real :class:`CoalescingBuffer` objects
— the same chunk machinery the store itself uses — while the batched
:meth:`GhostSet.record_many` path operates on those buffers' state with
the per-record machinery inlined.  Both paths share one canonical state,
so arbitrary interleavings stay bit-identical (the ghost equivalence
suite fuzzes exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.array.coalescing import CoalescingBuffer


@dataclass
class _GhostSegment:
    """One miniature segment: just the LBA list and a fill/pad count."""

    blocks: list[int]
    padding: int = 0
    valid: int = 0
    sealed: bool = False

    @property
    def fill(self) -> int:
        return len(self.blocks) + self.padding


class GhostSet:
    """One candidate hot/cold threshold simulated on the sampled stream.

    Args:
        threshold: hot/cold reuse-interval boundary (sampled-unique-block
            units).
        segment_blocks: scaled segment capacity in blocks.
        chunk_blocks: scaled chunk capacity in blocks.
        window_us: scaled coalescing window.
        garbage_limit: GC triggers when the dead fraction of occupied slots
            exceeds this.
        sla_mode: coalescing window semantics (matches the real store).
    """

    HOT, COLD = 0, 1

    def __init__(self, threshold: float, segment_blocks: int,
                 chunk_blocks: int, window_us: int, garbage_limit: float,
                 sla_mode: str = "idle") -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if segment_blocks < chunk_blocks:
            raise ValueError("segment must hold at least one chunk")
        if not 0 < garbage_limit < 1:
            raise ValueError("garbage_limit must be in (0, 1)")
        self.threshold = threshold
        self.segment_blocks = segment_blocks
        self.chunk_blocks = chunk_blocks
        self.garbage_limit = garbage_limit

        self._buffers = [
            CoalescingBuffer(chunk_blocks, window_us, sla_mode=sla_mode)
            for _ in range(2)
        ]
        self._open: list[_GhostSegment] = [self._new_segment(),
                                           self._new_segment()]
        self._sealed: list[_GhostSegment] = []
        self._where: dict[int, _GhostSegment] = {}

        # cost counters
        self.blocks_written = 0
        self.blocks_discarded = 0
        self.padding_blocks = 0
        self.gc_passes = 0
        #: Occupied slots across all live segments (incremental; avoids an
        #: O(#segments) scan per record — see the HPC guides on hot loops).
        self._total_slots = 0

    # ------------------------------------------------------------------
    # stream interface
    # ------------------------------------------------------------------
    def record(self, lba: int, interval: float | None, now_us: int) -> None:
        """Feed one sampled block write with its reuse interval.

        ``interval=None`` (first access) uses the current live footprint as
        a proxy: an unseen block's reuse distance is at least the working
        set, so very large thresholds — which the ladder picks when group
        splitting costs more padding than GC saves — route first writes hot
        too, collapsing to single-user-group behaviour.
        """
        self._poll(now_us)
        if interval is None:
            interval = float(len(self._where))
        group = self.HOT if interval < self.threshold else self.COLD
        # A previous copy of this LBA (if any) becomes garbage implicitly:
        # validity is derived from the _where map pointing elsewhere.
        self._append(group, lba, now_us)
        self._maybe_gc()

    def record_many(self, lbas: list[int], intervals: list[float | None],
                    ts_us: list[int]) -> None:
        """Feed many sampled writes at per-block times.

        Bit-identical to sequential :meth:`record` calls — the poll /
        classify / append / seal / GC cadence is preserved per record —
        but with the buffer machinery inlined onto its own state (the
        pending-token lists and SLA timers) and every per-call attribute
        lookup hoisted out of the loop.  The ghost buffers have no bound
        deadline heap and no flush consumers, so a ``FULL`` flush reduces
        to clearing the tokens and timer, and a ``DEADLINE`` flush to
        that plus the padding accounting.
        """
        where = self._where
        get = where.get
        open_ = self._open
        sealed = self._sealed
        bufs = self._buffers
        tok = [bufs[0]._tokens, bufs[1]._tokens]
        timer = [bufs[0]._timer_start_us, bufs[1]._timer_start_us]
        window = bufs[0].window_us
        idle = bufs[0].sla_mode == "idle"
        threshold = self.threshold
        cb = self.chunk_blocks
        segb = self.segment_blocks
        limit = self.garbage_limit
        written = 0
        padded = 0
        total = self._total_slots
        for i in range(len(lbas)):
            now = ts_us[i]
            if window is not None:
                for g in (0, 1):
                    t0 = timer[g]
                    tg = tok[g]
                    if t0 is not None and now >= t0 + window and tg:
                        pad = cb - len(tg)
                        tg.clear()
                        timer[g] = None
                        seg = open_[g]
                        seg.padding += pad
                        padded += pad
                        total += pad
                        if seg.fill >= segb:
                            seg.sealed = True
                            sealed.append(seg)
                            open_[g] = _GhostSegment(blocks=[])
            iv = intervals[i]
            if iv is None:
                iv = float(len(where))
            g = 0 if iv < threshold else 1
            lba = lbas[i]
            old = get(lba)
            if old is not None:
                old.valid -= 1
            seg = open_[g]
            seg.blocks.append(lba)
            seg.valid += 1
            where[lba] = seg
            written += 1
            total += 1
            tg = tok[g]
            if idle or not tg:
                timer[g] = now
            tg.append(lba)
            if len(tg) >= cb:
                tg.clear()
                timer[g] = None
            if seg.fill >= segb:
                seg.sealed = True
                sealed.append(seg)
                open_[g] = _GhostSegment(blocks=[])
            if sealed and total and 1.0 - len(where) / total > limit:
                self._total_slots = total
                self._maybe_gc()
                total = self._total_slots
        self.blocks_written += written
        self.padding_blocks += padded
        self._total_slots = total
        bufs[0]._timer_start_us = timer[0]
        bufs[1]._timer_start_us = timer[1]

    def _append(self, group: int, lba: int, now_us: int) -> None:
        seg = self._open[group]
        old = self._where.get(lba)
        if old is not None:
            old.valid -= 1
        seg.blocks.append(lba)
        seg.valid += 1
        self._where[lba] = seg
        self.blocks_written += 1
        self._total_slots += 1
        flush = self._buffers[group].append(lba, now_us)
        if flush is not None:
            self._account_flush(group, flush)
        self._maybe_seal(group)

    def _poll(self, now_us: int) -> None:
        for group in (self.HOT, self.COLD):
            flush = self._buffers[group].poll(now_us)
            if flush is not None:
                self._account_flush(group, flush)
                self._maybe_seal(group)

    def _account_flush(self, group: int, flush) -> None:
        if flush.padding_blocks:
            self._open[group].padding += flush.padding_blocks
            self.padding_blocks += flush.padding_blocks
            self._total_slots += flush.padding_blocks

    def _maybe_seal(self, group: int) -> None:
        seg = self._open[group]
        if seg.fill >= self.segment_blocks:
            seg.sealed = True
            self._sealed.append(seg)
            self._open[group] = self._new_segment()

    @staticmethod
    def _new_segment() -> _GhostSegment:
        return _GhostSegment(blocks=[])

    # ------------------------------------------------------------------
    # ghost GC
    # ------------------------------------------------------------------
    def _valid_count(self, seg: _GhostSegment) -> int:
        return seg.valid

    def garbage_ratio(self) -> float:
        if self._total_slots == 0:
            return 0.0
        return 1.0 - len(self._where) / self._total_slots

    def _maybe_gc(self) -> None:
        while self._sealed and self.garbage_ratio() > self.garbage_limit:
            victim_idx = min(
                range(len(self._sealed)),
                key=lambda i: self._valid_count(self._sealed[i]))
            victim = self._sealed.pop(victim_idx)
            self.gc_passes += 1
            self._total_slots -= victim.fill
            for lba in victim.blocks:
                if victim.valid == 0:
                    break
                if self._where.get(lba) is victim:
                    # A real system would migrate this block to a
                    # GC-rewritten group; the ghost set only models
                    # user-written groups, so the block is discarded and
                    # counted as migration cost.
                    del self._where[lba]
                    victim.valid -= 1
                    self.blocks_discarded += 1

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def cost(self) -> float:
        """WA-overhead estimate for this threshold (lower is better)."""
        if self.blocks_written == 0:
            return float("inf")
        return (self.blocks_discarded + self.padding_blocks) \
            / self.blocks_written

    def is_warm(self) -> bool:
        """Cost becomes meaningful once GC has cycled a few times."""
        return self.gc_passes >= 3

    def reset_counters(self) -> None:
        """Start a fresh measurement window (after a threshold update)."""
        self.blocks_written = 0
        self.blocks_discarded = 0
        self.padding_blocks = 0
        self.gc_passes = 0

    def live_blocks(self) -> int:
        return len(self._where)

    #: CPython container overhead per live segment: the ``_GhostSegment``
    #: instance (~56 bytes) plus its block-list header (~64 bytes amortised
    #: with growth slack).  Charged on top of per-entry cost so the obs
    #: memory gauge does not under-report the ghost-set footprint.
    SEGMENT_OVERHEAD_BYTES = 120

    def memory_bytes(self) -> int:
        """~20 bytes per simulated block (paper §4.4: LBA + index entry)
        plus per-segment container overhead (sealed + the two open)."""
        segments = len(self._sealed) + len(self._open)
        return 20 * max(self._total_slots, len(self._where)) \
            + self.SEGMENT_OVERHEAD_BYTES * segments
