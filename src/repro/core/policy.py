"""The ADAPT placement policy (§3): density-aware threshold adaptation +
cross-group dynamic aggregation + proactive demotion placement.

Group layout follows Fig 4: two user-written groups (hot/cold) and four
GC-rewritten groups, with lifespan-based user separation and age-based GC
separation (the SepBIT-style substrate ADAPT builds on), augmented by the
three mechanisms.

Unit bookkeeping for the adaptive threshold: ghost sets measure reuse
intervals in *sampled unique blocks*; the real placement compares *write
distance* (user blocks written since the LBA's last write).  A ghost
threshold converts as ``T_real = T_ghost / r · rho`` where ``r`` is the
sampling rate (unique-block scale-up, SHARDS) and ``rho`` is an EWMA of the
observed write-distance / unique-distance ratio of sampled re-accesses.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import CrossGroupAggregator
from repro.core.config import AdaptConfig
from repro.core.demotion import ProactiveDemotion
from repro.core.distance import DistanceTracker
from repro.core.sampling import SpatialSampler
from repro.core.threshold import AdaptationResult, ThresholdLadder
from repro.lss.config import LSSConfig
from repro.perf.batch import duplicate_chains
from repro.lss.group import APPEND_SHADOW, Group, GroupKind, GroupSpec
from repro.placement.base import PlacementPolicy
from repro.placement.registry import register


class AdaptPolicy(PlacementPolicy):
    """Access-density-aware data placement (the paper's contribution)."""

    name = "adapt"

    HOT = 0
    COLD = 1
    GC_BASE = 2

    def __init__(self, config: LSSConfig,
                 adapt: AdaptConfig | None = None) -> None:
        super().__init__(config)
        self.adapt_config = adapt or AdaptConfig()
        ac = self.adapt_config

        self._last_user_write = np.full(config.logical_blocks, -1,
                                        dtype=np.int64)
        self._unique_seen = 0
        #: Real hot/cold threshold in write-distance units; cold-start value
        #: is one segment of writes, refined by segment lifespans until the
        #: first ghost adaptation lands (§3.2 "cold start").
        self.threshold = float(config.segment_blocks)
        #: Observed user-segment lifespan EWMA: the GC age ladder's base
        #: unit.  Kept separate from the (padding-aware) user threshold so
        #: that a deliberately large user threshold does not collapse the
        #: age classes into one group.
        self._lifespan = float(config.segment_blocks)
        self._ghost_adapted = False
        self.adaptation_log: list[AdaptationResult] = []

        # --- density-aware threshold adaptation plumbing -------------
        self.sampler = SpatialSampler(ac.sample_rate, salt=config.seed)
        self.distance = DistanceTracker()
        self._rho = 1.0  # write-distance / unique-distance EWMA
        r = self.sampler.effective_rate
        chunk_blocks = config.chunk.chunk_blocks
        ghost_seg = max(chunk_blocks,
                        _round_up(int(round(config.segment_blocks * r)),
                                  chunk_blocks))
        garbage_limit = ac.ghost_garbage_limit
        if garbage_limit is None:
            op = config.over_provisioning
            garbage_limit = op / (1.0 + op)
        self.ladder = ThresholdLadder(
            num_sets=ac.num_ghost_sets,
            segment_blocks=ghost_seg,
            chunk_blocks=chunk_blocks,
            window_us=max(1, int(round(config.coalesce_window_us / r))),
            garbage_limit=garbage_limit,
            sla_mode=config.sla_mode,
        ) if ac.enable_threshold_adaptation else None
        self._sampled_since_adapt = 0
        self._adapt_budget = max(
            1, int(ac.adapt_every_fraction * config.logical_blocks * r))

        # --- cross-group aggregation ----------------------------------
        self.aggregator = CrossGroupAggregator(chunk_blocks=chunk_blocks) \
            if ac.enable_aggregation else None

        # --- proactive demotion ----------------------------------------
        gc_ids = [self.GC_BASE + i for i in range(ac.num_gc_groups)]
        self.demotion = ProactiveDemotion(
            gc_ids, score_threshold=ac.demotion_score,
            num_filters=ac.bloom_filters, capacity=ac.bloom_capacity,
            fp_rate=ac.bloom_fp_rate) if ac.enable_demotion else None

    def attach_obs(self, obs) -> None:
        super().attach_obs(obs)
        if self.ladder is not None:
            self.ladder.obs = obs
        if self.aggregator is not None:
            self.aggregator.obs = obs
        if self.demotion is not None:
            self.demotion.obs = obs

    # ------------------------------------------------------------------
    # groups
    # ------------------------------------------------------------------
    def group_specs(self) -> list[GroupSpec]:
        specs = [GroupSpec("user-hot", GroupKind.USER),
                 GroupSpec("user-cold", GroupKind.USER)]
        specs += [GroupSpec(f"gc-{i}", GroupKind.GC)
                  for i in range(self.adapt_config.num_gc_groups)]
        return specs

    def user_placement_gids(self) -> range | tuple[int, ...]:
        # Proactive demotion routes cold user blocks straight into GC
        # groups, so with it enabled every group is user-placeable.
        if self.demotion is not None:
            return range(2 + self.adapt_config.num_gc_groups)
        return (self.HOT, self.COLD)

    # ------------------------------------------------------------------
    # user-write path
    # ------------------------------------------------------------------
    def place_user(self, lba: int, now_us: int) -> int:
        now = self.user_seq
        last = int(self._last_user_write[lba])

        if self.ladder is not None and self.sampler.is_sampled(lba):
            self._observe_sample(lba, last, now, now_us)

        self._last_user_write[lba] = now

        if last < 0:
            # First write: proxy the unseen reuse distance with the current
            # unique footprint (in write-distance units via rho), mirroring
            # the ghost sets' first-access handling.
            self._unique_seen += 1
            v = self._unique_seen * self._rho
        else:
            v = float(now - last)

        if v < self.threshold:
            return self.HOT
        # Cold-bound block: proactive demotion may route it straight into
        # the GC group whose segment lifetimes it historically matches
        # (§3.4 targets long-lived cold blocks; hot-classified blocks are
        # never demoted).
        if self.demotion is not None:
            target = self.demotion.demotion_target(lba, now_us)
            if target is not None:
                return target
        return self.COLD

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        """Hybrid batch placement: vectorized spans split at sampled blocks.

        Only sampled blocks feed the adaptive pipeline (rho, ghost ladder,
        threshold) — i.e. only they can change state that later blocks in
        the batch observe.  So the batch is cut at every sampled LBA: the
        sampled block goes through the exact scalar :meth:`place_user`,
        the spans in between through :meth:`_place_user_span` (which holds
        ``threshold``/``rho`` constant, provably unchanged there).  With a
        10 % sample rate the spans carry ~90 % of the blocks.
        """
        n = int(lbas.shape[0])
        out = np.empty(n, dtype=np.int64)
        prev, last_mask = duplicate_chains(lbas)
        if self.ladder is not None:
            cuts = np.flatnonzero(self.sampler.is_sampled_batch(lbas))
        else:
            cuts = np.empty(0, dtype=np.int64)
        store = self.store
        saved = store.user_seq
        try:
            pos, ci, ncuts = 0, 0, int(cuts.shape[0])
            while pos < n:
                if ci < ncuts and int(cuts[ci]) == pos:
                    # Sampled block: exact scalar path.  Duplicates must
                    # see their in-batch predecessor's write time, which
                    # the spans defer to the last occurrence — poke it in.
                    lba = int(lbas[pos])
                    if prev[pos] >= 0:
                        self._last_user_write[lba] = \
                            start_seq + int(prev[pos])
                    store.user_seq = start_seq + pos
                    out[pos] = self.place_user(lba, int(ts_us[pos]))
                    pos += 1
                    ci += 1
                    continue
                end = int(cuts[ci]) if ci < ncuts else n
                self._place_user_span(
                    lbas[pos:end], ts_us[pos:end], prev[pos:end],
                    last_mask[pos:end], start_seq, start_seq + pos,
                    out[pos:end])
                pos = end
        finally:
            store.user_seq = saved
        return out

    def _place_user_span(self, lbas: np.ndarray, ts_us: np.ndarray,
                         prev: np.ndarray, last_mask: np.ndarray,
                         batch_seq0: int, now0: int,
                         out: np.ndarray) -> None:
        """Vectorized :meth:`place_user` for a sample-free span.

        ``prev`` holds full-batch indices (offset by ``batch_seq0``);
        ``now0`` is the logical clock of the span's first block.
        """
        m = int(lbas.shape[0])
        now = now0 + np.arange(m, dtype=np.int64)
        last = self._last_user_write[lbas]
        dup = prev >= 0
        last[dup] = batch_seq0 + prev[dup]
        first = last < 0
        v = np.empty(m, dtype=np.float64)
        seen = ~first
        v[seen] = (now[seen] - last[seen]).astype(np.float64)
        nfirst = int(first.sum())
        if nfirst:
            # k-th first-write sees _unique_seen + k, scaled by rho.
            v[first] = (self._unique_seen
                        + np.cumsum(first)[first]) * self._rho
            self._unique_seen += nfirst
        hot = v < self.threshold
        out[hot] = self.HOT
        if self.demotion is None:
            out[~hot] = self.COLD
        else:
            for i in np.flatnonzero(~hot).tolist():
                target = self.demotion.demotion_target(int(lbas[i]),
                                                       int(ts_us[i]))
                out[i] = self.COLD if target is None else target
        self._last_user_write[lbas[last_mask]] = now[last_mask]

    def _observe_sample(self, lba: int, last_seq: int, now_seq: int,
                        now_us: int) -> None:
        """Feed the sampled pipeline: reuse distance, rho, ghost ladder."""
        d_unique = self.distance.access(lba)
        if d_unique is not None and d_unique >= 1 and last_seq >= 0:
            d_write_scaled = (now_seq - last_seq) * \
                self.sampler.effective_rate
            ratio = max(d_write_scaled / d_unique, 1e-3)
            self._rho += 0.05 * (ratio - self._rho)
        self.ladder.record(lba, d_unique, now_us)
        self._sampled_since_adapt += 1
        if self._sampled_since_adapt >= self._adapt_budget \
                and self.ladder.ready():
            self._apply_adaptation()

    def _apply_adaptation(self) -> None:
        spread = self.ladder.cost_spread()
        pad_frac = self.ladder.padding_fraction()
        result = self.ladder.adapt()
        r = self.sampler.effective_rate
        if pad_frac < 0.02 or spread < 0.15:
            # No padding pressure (dense phase) or flat costs: the ghost
            # signal is GC-only noise — the lifespan threshold is the
            # known-good operating point there.
            target = self._lifespan
        else:
            target = max(1.0, result.best_threshold / r * self._rho)
        # Damped update: ghost costs are sampled estimates.
        self.threshold += 0.5 * (target - self.threshold)
        self._ghost_adapted = True
        self._sampled_since_adapt = 0
        self.adaptation_log.append(result)
        if self.obs.enabled:
            self.obs.gauge("adapt_threshold_blocks", self.threshold)

    # ------------------------------------------------------------------
    # GC path (age ladder over the GC groups, SepBIT-style substrate)
    # ------------------------------------------------------------------
    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        last = int(self._last_user_write[lba])
        age = self.user_seq - last if last >= 0 else self.user_seq
        bound = self._lifespan * 4
        for cls in range(self.adapt_config.num_gc_groups - 1):
            if age < bound:
                return self.GC_BASE + cls
            bound *= 4
        return self.GC_BASE + self.adapt_config.num_gc_groups - 1

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        # _lifespan only moves in on_segment_reclaimed, after the whole
        # victim is migrated: the age ladder is constant here, and the
        # class is how many geometric boundaries the age clears.
        last = self._last_user_write[lbas]
        age = np.where(last >= 0, self.user_seq - last, self.user_seq)
        cls = np.zeros(int(lbas.shape[0]), dtype=np.int64)
        bound = self._lifespan * 4
        for _ in range(self.adapt_config.num_gc_groups - 1):
            cls += age >= bound
            bound *= 4
        return self.GC_BASE + cls

    def on_gc_block(self, lba: int, from_group: int, to_group: int) -> None:
        if self.demotion is not None:
            self.demotion.on_gc_block(lba, from_group, to_group)

    # ------------------------------------------------------------------
    # aggregation hooks
    # ------------------------------------------------------------------
    def before_padding_flush(self, group: Group, now_us: int) -> bool:
        if self.aggregator is None:
            return False
        if group.gid == self.HOT:
            cold = self.store.groups[self.COLD]
            decision = self.aggregator.try_aggregate(group, cold, now_us)
            return decision.aggregated
        if group.gid == self.COLD:
            # Symmetric direction: the cold chunk is about to pad — fill
            # its padding slots with substitutes of hot pending blocks.
            hot = self.store.groups[self.HOT]
            self.aggregator.absorb_before_padding(group, hot, now_us)
            return False  # the (fuller) padded flush still proceeds
        return False

    def on_chunk_flush(self, group: Group, flush) -> None:
        if self.aggregator is not None and group.gid in (self.HOT,
                                                         self.COLD):
            shadows = sum(1 for kind, _ in flush.tokens
                          if kind == APPEND_SHADOW)
            self.aggregator.on_flush(group.gid, flush.data_blocks,
                                     flush.padding_blocks, shadows)

    def on_segment_sealed(self, group_id: int, seg: int) -> None:
        if self.aggregator is not None and group_id in (self.HOT,
                                                        self.COLD):
            self.aggregator.on_segment_sealed(group_id)

    # ------------------------------------------------------------------
    # threshold cold start from hot-segment lifespans
    # ------------------------------------------------------------------
    def on_segment_reclaimed(self, group_id: int, created_seq: int,
                             sealed_seq: int, now_seq: int,
                             valid_blocks: int) -> None:
        if group_id not in (self.HOT, self.COLD):
            return
        lifespan = max(now_seq - created_seq, 1)
        if group_id == self.HOT:
            self._lifespan += 0.5 * (lifespan - self._lifespan)
            if not self._ghost_adapted:
                # Cold-start: until the first ghost adaptation lands, track
                # the SepBIT-style segment-lifespan threshold.
                self.threshold = self._lifespan

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        total = int(self._last_user_write.nbytes)
        total += self.distance.memory_bytes()
        if self.ladder is not None:
            total += self.ladder.memory_bytes()
        if self.demotion is not None:
            total += self.demotion.memory_bytes()
        return total


def _round_up(value: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` that is >= max(value, 1)."""
    value = max(value, 1)
    return -(-value // multiple) * multiple


register(AdaptPolicy.name, AdaptPolicy)
