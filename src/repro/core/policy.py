"""The ADAPT placement policy (§3): density-aware threshold adaptation +
cross-group dynamic aggregation + proactive demotion placement.

Group layout follows Fig 4: two user-written groups (hot/cold) and four
GC-rewritten groups, with lifespan-based user separation and age-based GC
separation (the SepBIT-style substrate ADAPT builds on), augmented by the
three mechanisms.

Unit bookkeeping for the adaptive threshold: ghost sets measure reuse
intervals in *sampled unique blocks*; the real placement compares *write
distance* (user blocks written since the LBA's last write).  A ghost
threshold converts as ``T_real = T_ghost / r · rho`` where ``r`` is the
sampling rate (unique-block scale-up, SHARDS) and ``rho`` is an EWMA of the
observed write-distance / unique-distance ratio of sampled re-accesses.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import CrossGroupAggregator
from repro.core.config import AdaptConfig
from repro.core.demotion import ProactiveDemotion
from repro.core.distance import DistanceTracker
from repro.core.sampling import SpatialSampler
from repro.core.threshold import AdaptationResult, ThresholdLadder
from repro.lss.config import LSSConfig
from repro.perf.batch import duplicate_chains
from repro.lss.group import APPEND_SHADOW, Group, GroupKind, GroupSpec
from repro.placement.base import PlacementPolicy
from repro.placement.registry import register


class AdaptPolicy(PlacementPolicy):
    """Access-density-aware data placement (the paper's contribution)."""

    name = "adapt"

    HOT = 0
    COLD = 1
    GC_BASE = 2

    def __init__(self, config: LSSConfig,
                 adapt: AdaptConfig | None = None) -> None:
        super().__init__(config)
        self.adapt_config = adapt or AdaptConfig()
        ac = self.adapt_config

        self._last_user_write = np.full(config.logical_blocks, -1,
                                        dtype=np.int64)
        self._unique_seen = 0
        #: Real hot/cold threshold in write-distance units; cold-start value
        #: is one segment of writes, refined by segment lifespans until the
        #: first ghost adaptation lands (§3.2 "cold start").
        self.threshold = float(config.segment_blocks)
        #: Observed user-segment lifespan EWMA: the GC age ladder's base
        #: unit.  Kept separate from the (padding-aware) user threshold so
        #: that a deliberately large user threshold does not collapse the
        #: age classes into one group.
        self._lifespan = float(config.segment_blocks)
        self._ghost_adapted = False
        self.adaptation_log: list[AdaptationResult] = []

        # --- density-aware threshold adaptation plumbing -------------
        self.sampler = SpatialSampler(ac.sample_rate, salt=config.seed)
        self.distance = DistanceTracker()
        self._rho = 1.0  # write-distance / unique-distance EWMA
        r = self.sampler.effective_rate
        chunk_blocks = config.chunk.chunk_blocks
        ghost_seg = max(chunk_blocks,
                        _round_up(int(round(config.segment_blocks * r)),
                                  chunk_blocks))
        garbage_limit = ac.ghost_garbage_limit
        if garbage_limit is None:
            op = config.over_provisioning
            garbage_limit = op / (1.0 + op)
        self.ladder = ThresholdLadder(
            num_sets=ac.num_ghost_sets,
            segment_blocks=ghost_seg,
            chunk_blocks=chunk_blocks,
            window_us=max(1, int(round(config.coalesce_window_us / r))),
            garbage_limit=garbage_limit,
            sla_mode=config.sla_mode,
        ) if ac.enable_threshold_adaptation else None
        self._sampled_since_adapt = 0
        self._adapt_budget = max(
            1, int(ac.adapt_every_fraction * config.logical_blocks * r))
        #: Below this batch size the vectorized placement loses more to
        #: NumPy dispatch than it recovers; such batches take the scalar
        #: reference loop (identical outputs either way).
        self._scalar_batch_max = 32

        # --- cross-group aggregation ----------------------------------
        self.aggregator = CrossGroupAggregator(chunk_blocks=chunk_blocks) \
            if ac.enable_aggregation else None

        # --- proactive demotion ----------------------------------------
        gc_ids = [self.GC_BASE + i for i in range(ac.num_gc_groups)]
        self.demotion = ProactiveDemotion(
            gc_ids, score_threshold=ac.demotion_score,
            num_filters=ac.bloom_filters, capacity=ac.bloom_capacity,
            fp_rate=ac.bloom_fp_rate) if ac.enable_demotion else None

    def attach_obs(self, obs) -> None:
        super().attach_obs(obs)
        if self.ladder is not None:
            self.ladder.obs = obs
        if self.aggregator is not None:
            self.aggregator.obs = obs
        if self.demotion is not None:
            self.demotion.obs = obs

    # ------------------------------------------------------------------
    # groups
    # ------------------------------------------------------------------
    def group_specs(self) -> list[GroupSpec]:
        specs = [GroupSpec("user-hot", GroupKind.USER),
                 GroupSpec("user-cold", GroupKind.USER)]
        specs += [GroupSpec(f"gc-{i}", GroupKind.GC)
                  for i in range(self.adapt_config.num_gc_groups)]
        return specs

    def user_placement_gids(self) -> range | tuple[int, ...]:
        # Proactive demotion routes cold user blocks straight into GC
        # groups, so with it enabled every group is user-placeable.
        if self.demotion is not None:
            return range(2 + self.adapt_config.num_gc_groups)
        return (self.HOT, self.COLD)

    # ------------------------------------------------------------------
    # user-write path
    # ------------------------------------------------------------------
    def place_user(self, lba: int, now_us: int) -> int:
        now = self.user_seq
        last = int(self._last_user_write[lba])

        if self.ladder is not None and self.sampler.is_sampled(lba):
            self._observe_sample(lba, last, now, now_us)

        self._last_user_write[lba] = now

        if last < 0:
            # First write: proxy the unseen reuse distance with the current
            # unique footprint (in write-distance units via rho), mirroring
            # the ghost sets' first-access handling.
            self._unique_seen += 1
            v = self._unique_seen * self._rho
        else:
            v = float(now - last)

        if v < self.threshold:
            return self.HOT
        # Cold-bound block: proactive demotion may route it straight into
        # the GC group whose segment lifetimes it historically matches
        # (§3.4 targets long-lived cold blocks; hot-classified blocks are
        # never demoted).
        if self.demotion is not None:
            target = self.demotion.demotion_target(lba, now_us)
            if target is not None:
                return target
        return self.COLD

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        """Fully vectorized batch placement.

        Only sampled blocks mutate the adaptive state (rho, ghost ladder,
        threshold), so the batch's (rho, threshold) trajectory is
        piecewise-constant with pieces starting at state-changing samples.
        :meth:`_advance_sampled_pipeline` walks just the sampled blocks
        (~10 % of the stream) through the exact scalar pipeline and
        returns that trajectory; hotness classification, first-write
        ranking, and demotion probing then run as single array ops over
        the whole batch.  End state and outputs are bit-identical to a
        scalar :meth:`place_user` loop.
        """
        n = int(lbas.shape[0])
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out
        if n < self._scalar_batch_max:
            # Tiny batches (the batched engine's chunks shrink to a
            # handful of blocks near the GC watermark) lose more to NumPy
            # dispatch than vectorization recovers; the scalar loop IS
            # the contract, so fall through to it directly.
            return PlacementPolicy.place_user_batch(self, lbas, ts_us,
                                                    start_seq)
        prev, last_mask = duplicate_chains(lbas)
        now = start_seq + np.arange(n, dtype=np.int64)
        last = self._last_user_write[lbas]
        dup = prev >= 0
        last[dup] = start_seq + prev[dup]

        if self.ladder is not None:
            rho_arr, thr_arr = self._advance_sampled_pipeline(
                lbas, ts_us, last, start_seq, n)
        else:
            rho_arr, thr_arr = self._rho, self.threshold

        first = last < 0
        v = np.empty(n, dtype=np.float64)
        seen = ~first
        v[seen] = (now[seen] - last[seen]).astype(np.float64)
        nfirst = int(first.sum())
        if nfirst:
            # k-th first-write sees _unique_seen + k, scaled by the rho
            # in effect at its position.
            ranks = self._unique_seen + np.cumsum(first)[first]
            rho_f = rho_arr if isinstance(rho_arr, float) else rho_arr[first]
            v[first] = ranks * rho_f
            self._unique_seen += nfirst
        hot = v < thr_arr
        out[hot] = self.HOT
        cold = np.flatnonzero(~hot)
        if self.demotion is None or cold.size == 0:
            out[~hot] = self.COLD
        else:
            cold_lbas = lbas[cold]
            targets, scores = self.demotion.demotion_targets(cold_lbas)
            out[cold] = np.where(targets >= 0, targets, self.COLD)
            self.demotion.account_batch(cold_lbas, targets, scores,
                                        ts_us[cold])
        self._last_user_write[lbas[last_mask]] = now[last_mask]
        return out

    def _advance_sampled_pipeline(
            self, lbas: np.ndarray, ts_us: np.ndarray, last: np.ndarray,
            start_seq: int, n: int):
        """Run the batch's sampled blocks through the exact scalar
        adaptation pipeline (:meth:`_observe_sample` semantics), deferring
        ghost-ladder feeding into bulk :meth:`ThresholdLadder.record_batch`
        calls at the adaptation checkpoints.

        Returns the per-block ``(rho, threshold)`` trajectory: plain
        floats when no sample changed them, else full piecewise-constant
        arrays built from the change points.
        """
        spos = np.flatnonzero(self.sampler.is_sampled_batch(lbas))
        if spos.size == 0:
            return self._rho, self.threshold
        ladder = self.ladder
        r = self.sampler.effective_rate
        slist = spos.tolist()
        dists = self.distance.access_many(lbas[spos].tolist())
        lba_s = lbas[spos].tolist()
        last_s = last[spos].tolist()
        ts_s = ts_us[spos].tolist()
        rho = self._rho
        budget = self._adapt_budget
        count = self._sampled_since_adapt
        pend_lba: list[int] = []
        pend_iv: list[float | None] = []
        pend_ts: list[int] = []
        bounds = [0]
        rhos = [rho]
        thrs = [self.threshold]
        for k in range(len(slist)):
            d = dists[k]
            lastv = last_s[k]
            changed = False
            if d is not None and d >= 1 and lastv >= 0:
                ratio = (start_seq + slist[k] - lastv) * r / d
                if ratio < 1e-3:
                    ratio = 1e-3
                rho += 0.05 * (ratio - rho)
                changed = True
            pend_lba.append(lba_s[k])
            pend_iv.append(d)
            pend_ts.append(ts_s[k])
            count += 1
            if count >= budget:
                # Scalar checks ladder.ready() after every over-budget
                # sample, so the pending records must land first.
                ladder.record_batch(pend_lba, pend_iv, pend_ts)
                pend_lba, pend_iv, pend_ts = [], [], []
                if ladder.ready():
                    self._rho = rho
                    self._sampled_since_adapt = count
                    self._apply_adaptation()
                    count = self._sampled_since_adapt
                    changed = True
            if changed:
                bounds.append(slist[k])
                rhos.append(rho)
                thrs.append(self.threshold)
        if pend_lba:
            ladder.record_batch(pend_lba, pend_iv, pend_ts)
        self._rho = rho
        self._sampled_since_adapt = count
        if len(bounds) == 1:
            return rhos[0], thrs[0]
        reps = np.diff(np.asarray(bounds + [n], dtype=np.int64))
        return (np.repeat(np.asarray(rhos, dtype=np.float64), reps),
                np.repeat(np.asarray(thrs, dtype=np.float64), reps))

    def candidate_user_gids(self, lbas: np.ndarray, ts_us: np.ndarray,
                            start_seq: int):
        """Exact candidate prediction for the batched engine.

        Every user block lands either HOT or in its (frozen) demotion
        alternative: demotion fires deterministically from the cascade
        scores, which only change during GC — and the engine guarantees
        no GC runs inside a chunk.  Hot/cold classification may evolve
        within the chunk, but both outcomes are covered by the pair.
        """
        n = int(lbas.shape[0])
        primary = np.full(n, self.HOT, dtype=np.int64)
        if self.demotion is None:
            return primary, np.full(n, self.COLD, dtype=np.int64)
        t, _ = self.demotion.demotion_targets(lbas)
        alt = np.where(t >= 0, t, self.COLD)
        return primary, alt

    def _observe_sample(self, lba: int, last_seq: int, now_seq: int,
                        now_us: int) -> None:
        """Feed the sampled pipeline: reuse distance, rho, ghost ladder."""
        d_unique = self.distance.access(lba)
        if d_unique is not None and d_unique >= 1 and last_seq >= 0:
            d_write_scaled = (now_seq - last_seq) * \
                self.sampler.effective_rate
            ratio = max(d_write_scaled / d_unique, 1e-3)
            self._rho += 0.05 * (ratio - self._rho)
        self.ladder.record(lba, d_unique, now_us)
        self._sampled_since_adapt += 1
        if self._sampled_since_adapt >= self._adapt_budget \
                and self.ladder.ready():
            self._apply_adaptation()

    def _apply_adaptation(self) -> None:
        spread = self.ladder.cost_spread()
        pad_frac = self.ladder.padding_fraction()
        result = self.ladder.adapt()
        r = self.sampler.effective_rate
        if pad_frac < 0.02 or spread < 0.15:
            # No padding pressure (dense phase) or flat costs: the ghost
            # signal is GC-only noise — the lifespan threshold is the
            # known-good operating point there.
            target = self._lifespan
        else:
            target = max(1.0, result.best_threshold / r * self._rho)
        # Damped update: ghost costs are sampled estimates.
        self.threshold += 0.5 * (target - self.threshold)
        self._ghost_adapted = True
        self._sampled_since_adapt = 0
        self.adaptation_log.append(result)
        if self.obs.enabled:
            self.obs.gauge("adapt_threshold_blocks", self.threshold)

    # ------------------------------------------------------------------
    # GC path (age ladder over the GC groups, SepBIT-style substrate)
    # ------------------------------------------------------------------
    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        last = int(self._last_user_write[lba])
        age = self.user_seq - last if last >= 0 else self.user_seq
        bound = self._lifespan * 4
        for cls in range(self.adapt_config.num_gc_groups - 1):
            if age < bound:
                return self.GC_BASE + cls
            bound *= 4
        return self.GC_BASE + self.adapt_config.num_gc_groups - 1

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        # _lifespan only moves in on_segment_reclaimed, after the whole
        # victim is migrated: the age ladder is constant here, and the
        # class is how many geometric boundaries the age clears.
        last = self._last_user_write[lbas]
        age = np.where(last >= 0, self.user_seq - last, self.user_seq)
        cls = np.zeros(int(lbas.shape[0]), dtype=np.int64)
        bound = self._lifespan * 4
        for _ in range(self.adapt_config.num_gc_groups - 1):
            cls += age >= bound
            bound *= 4
        return self.GC_BASE + cls

    def on_gc_block(self, lba: int, from_group: int, to_group: int) -> None:
        if self.demotion is not None:
            self.demotion.on_gc_block(lba, from_group, to_group)

    # ------------------------------------------------------------------
    # aggregation hooks
    # ------------------------------------------------------------------
    def before_padding_flush(self, group: Group, now_us: int) -> bool:
        if self.aggregator is None:
            return False
        if group.gid == self.HOT:
            cold = self.store.groups[self.COLD]
            decision = self.aggregator.try_aggregate(group, cold, now_us)
            return decision.aggregated
        if group.gid == self.COLD:
            # Symmetric direction: the cold chunk is about to pad — fill
            # its padding slots with substitutes of hot pending blocks.
            hot = self.store.groups[self.HOT]
            self.aggregator.absorb_before_padding(group, hot, now_us)
            return False  # the (fuller) padded flush still proceeds
        return False

    def on_chunk_flush(self, group: Group, flush) -> None:
        if self.aggregator is not None and group.gid in (self.HOT,
                                                         self.COLD):
            shadows = sum(1 for kind, _ in flush.tokens
                          if kind == APPEND_SHADOW)
            self.aggregator.on_flush(group.gid, flush.data_blocks,
                                     flush.padding_blocks, shadows)

    def on_full_flush_run(self, group_id: int, flushes: int,
                          first_tokens) -> None:
        """Closed form of :meth:`on_chunk_flush` over a run of FULL
        flushes: each flush carries ``chunk_blocks`` data, no padding, so
        the monitor sees ``flushes`` full flushes and the shadow tokens —
        which only the pre-run backlog of the first flush can contain —
        in one update."""
        if self.aggregator is None or group_id not in (self.HOT,
                                                       self.COLD):
            return
        mon = self.aggregator.monitor_for(group_id)
        mon.data_blocks += flushes * mon.chunk_blocks
        mon.full_flushes += flushes
        if first_tokens:
            mon.shadow_blocks += sum(1 for kind, _ in first_tokens
                                     if kind == APPEND_SHADOW)

    def on_segment_sealed(self, group_id: int, seg: int) -> None:
        if self.aggregator is not None and group_id in (self.HOT,
                                                        self.COLD):
            self.aggregator.on_segment_sealed(group_id)

    # ------------------------------------------------------------------
    # threshold cold start from hot-segment lifespans
    # ------------------------------------------------------------------
    def on_segment_reclaimed(self, group_id: int, created_seq: int,
                             sealed_seq: int, now_seq: int,
                             valid_blocks: int) -> None:
        if group_id not in (self.HOT, self.COLD):
            return
        lifespan = max(now_seq - created_seq, 1)
        if group_id == self.HOT:
            self._lifespan += 0.5 * (lifespan - self._lifespan)
            if not self._ghost_adapted:
                # Cold-start: until the first ghost adaptation lands, track
                # the SepBIT-style segment-lifespan threshold.
                self.threshold = self._lifespan

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        total = int(self._last_user_write.nbytes)
        total += self.distance.memory_bytes()
        if self.ladder is not None:
            total += self.ladder.memory_bytes()
        if self.demotion is not None:
            total += self.demotion.memory_bytes()
        return total


def _round_up(value: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` that is >= max(value, 1)."""
    value = max(value, 1)
    return -(-value // multiple) * multiple


register(AdaptPolicy.name, AdaptPolicy)
