"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class TraceFormatError(ReproError):
    """Raised when a trace file cannot be parsed."""


class CapacityError(ReproError):
    """Raised when the simulated store runs out of physical space.

    This indicates a configuration problem (over-provisioning too small for
    the garbage-collection watermarks), never a normal runtime condition.
    """
