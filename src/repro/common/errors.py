"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class TraceFormatError(ReproError):
    """Raised when a trace file cannot be parsed."""


class CapacityError(ReproError):
    """Raised when the simulated store runs out of physical space.

    This indicates a configuration problem (over-provisioning too small for
    the garbage-collection watermarks), never a normal runtime condition.
    """


class CheckpointError(ReproError):
    """Raised when a fleet checkpoint cannot be trusted: version or fleet
    mismatch, torn/corrupt pickle, or a restored store whose derived
    tables fail the recovery-scan cross-check."""


class ValidationError(ReproError):
    """Raised when the validation harness (``repro.validate``) cannot run a
    requested comparison — e.g. the oracle does not support a stochastic
    victim policy deterministically."""


class InvariantViolation(ReproError):
    """A cross-structure consistency invariant of the store was violated.

    Raised by :class:`repro.validate.InvariantAuditor`; carries the name of
    the violated invariant so tests and operators can tell *which* law broke.
    """

    def __init__(self, invariant: str, detail: str) -> None:
        super().__init__(f"invariant {invariant!r} violated: {detail}")
        self.invariant = invariant
        self.detail = detail
