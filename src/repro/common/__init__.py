"""Shared primitives: units, errors, deterministic RNG helpers."""

from repro.common.errors import ConfigError, ReproError, TraceFormatError
from repro.common.rng import make_rng, spawn_rngs, stable_seed, tenant_rng
from repro.common.units import (
    BLOCK_SIZE,
    GiB,
    KiB,
    MiB,
    MICROS_PER_SEC,
    blocks_of_bytes,
    bytes_of_blocks,
)

__all__ = [
    "BLOCK_SIZE",
    "KiB",
    "MiB",
    "GiB",
    "MICROS_PER_SEC",
    "blocks_of_bytes",
    "bytes_of_blocks",
    "make_rng",
    "spawn_rngs",
    "stable_seed",
    "tenant_rng",
    "ReproError",
    "ConfigError",
    "TraceFormatError",
]
