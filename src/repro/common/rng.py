"""Deterministic random-number-generator helpers.

Every stochastic component takes an explicit seed so that experiments are
bit-reproducible; independent components derive child generators with
:func:`spawn_rngs` instead of sharing one stream.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, which lets helper
    functions accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
