"""Deterministic random-number-generator helpers.

Every stochastic component takes an explicit seed so that experiments are
bit-reproducible; independent components derive child generators with
:func:`spawn_rngs` instead of sharing one stream.

Multi-tenant fleets need one more property: a tenant's stream must not
depend on *which other tenants exist* or on enumeration order, so that
growing a fleet from 50 to 5000 volumes leaves the first 50 traces
bit-identical and a sharded replay can regenerate any tenant in
isolation.  :func:`stable_seed` / :func:`tenant_rng` provide that by
hashing the tenant identity (and an optional stream label) into the seed
instead of spawning children positionally.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, which lets helper
    functions accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def stable_seed(*parts: object) -> int:
    """Collision-resistant 128-bit seed from a tuple of identity parts.

    Parts are joined by their ``repr`` (ints, strings, floats and tuples
    thereof are stable across processes and platforms) and hashed with
    SHA-256 — unlike :func:`hash`, never salted per process.  Use it to
    key independent RNG streams off *names* instead of positions.
    """
    payload = "\x1f".join(repr(p) for p in parts).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:16], "big")


def tenant_rng(master_seed: int, tenant_id: str,
               stream: str = "") -> np.random.Generator:
    """An independent generator for one tenant's named stream.

    The returned stream depends only on ``(master_seed, tenant_id,
    stream)`` — not on how many tenants a fleet has or in which order they
    are generated — so per-tenant traces survive fleet resizing and can be
    regenerated on any shard of a distributed replay.
    """
    entropy = stable_seed(master_seed, tenant_id, stream)
    return np.random.default_rng(np.random.SeedSequence(entropy))
