"""Size and time units used throughout the simulator.

The paper's configuration (§4.1): 4 KiB logical blocks, 64 KiB array chunks,
microsecond timestamps, and a 100 µs chunk-coalescing SLA window.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: Minimum unit of a user request in the LSS (paper §4.1).
BLOCK_SIZE: int = 4 * KiB

#: All simulated timestamps are integers in microseconds.
MICROS_PER_SEC: int = 1_000_000


def blocks_of_bytes(nbytes: int) -> int:
    """Number of 4 KiB blocks covering ``nbytes`` (round up).

    >>> blocks_of_bytes(1)
    1
    >>> blocks_of_bytes(8192)
    2
    """
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return -(-nbytes // BLOCK_SIZE)


def bytes_of_blocks(nblocks: int) -> int:
    """Byte size of ``nblocks`` 4 KiB blocks."""
    if nblocks < 0:
        raise ValueError(f"negative block count: {nblocks}")
    return nblocks * BLOCK_SIZE
