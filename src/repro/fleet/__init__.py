"""repro.fleet — sharded multi-process fleet replay.

Replays hundreds of tenant volumes across a process pool with streaming
trace ingestion (per-volume memory O(chunk)), periodic per-shard
checkpoints built on the crash-recovery scan, and deterministic
fleet-level aggregation.  See ``docs/fleet.md`` for the architecture and
the determinism contract.
"""

from repro.fleet.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_path,
    load_shard_checkpoint,
    write_shard_checkpoint,
)
from repro.fleet.orchestrator import (
    CHECKPOINT_DIRNAME,
    FleetRunResult,
    RUNINFO_NAME,
    SUMMARY_NAME,
    TIMELINE_DIRNAME,
    run_fleet,
)
from repro.fleet.report import (
    PERCENTILES,
    SUMMARY_SCHEMA,
    aggregate_fleet,
    fleet_summary,
    render_fleet,
    volume_report,
    write_fleet_summary,
)
from repro.fleet.spec import DEFAULT_FLEET_SEED, FleetSpec
from repro.fleet.worker import KILL_ENV, run_shard

__all__ = [
    "CHECKPOINT_DIRNAME",
    "CHECKPOINT_VERSION",
    "DEFAULT_FLEET_SEED",
    "FleetRunResult",
    "FleetSpec",
    "KILL_ENV",
    "PERCENTILES",
    "RUNINFO_NAME",
    "SUMMARY_NAME",
    "SUMMARY_SCHEMA",
    "TIMELINE_DIRNAME",
    "aggregate_fleet",
    "checkpoint_path",
    "fleet_summary",
    "load_shard_checkpoint",
    "render_fleet",
    "run_fleet",
    "run_shard",
    "volume_report",
    "write_fleet_summary",
]
