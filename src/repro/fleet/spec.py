"""Fleet specification: what a fleet run *is*, independent of how it runs.

A :class:`FleetSpec` fully determines every tenant volume's trace stream
and store configuration.  Everything downstream — shard workers,
checkpoints, the summary report — derives from it, and the orchestration
knobs (worker count, checkpoint cadence, output directory) deliberately
live *outside* it: running the same spec serially, across 8 processes,
or interrupted-and-resumed must produce bit-identical per-volume results.

Determinism contract (see ``docs/fleet.md``):

* tenant identity is the volume *name*; every per-tenant RNG stream is
  keyed by hashing ``(fleet seed, name, purpose)``
  (:func:`repro.common.rng.tenant_rng`), never by enumeration order, so
  a 5000-volume fleet contains the 64-volume fleet's traces verbatim;
* the per-tenant store seed (victim-policy RNG, sampler salts) is hashed
  the same way;
* shard assignment is round-robin on the tenant index — any shard can
  be recomputed from ``(spec, shard, num_shards)`` alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.common.rng import stable_seed
from repro.trace.stream import DEFAULT_CHUNK_REQUESTS, SyntheticVolumeStream

#: Default master seed for fleet runs (the experiment fleets' seed).
DEFAULT_FLEET_SEED = 20250908


@dataclass(frozen=True)
class FleetSpec:
    """Complete description of one fleet replay.

    Attributes:
        profile: cloud profile name (``ali``/``tencent``/``msrc``).
        scheme: placement policy replayed on every volume.
        victim: GC victim-selection policy.
        num_volumes: tenant count.
        volume_blocks: per-volume logical address space (4 KiB blocks).
        volume_requests: per-volume request count.
        seed: fleet master seed (hashed per tenant, never enumerated).
        chunk_requests: streaming-ingestion chunk bound (per-volume
            replay memory is O(this), not O(volume_requests)).
        engine: replay engine (``auto``/``batched``/``scalar``).
        collect_metrics: attach a :class:`~repro.obs.ObsRecorder` per
            volume and carry its snapshot into the fleet summary.
        timeline_every: when set, record a per-volume
            :class:`~repro.obs.timeline.ReplayTimeline` sampled every N
            user blocks (exported next to the summary).
        collect_attribution: attach an
            :class:`~repro.obs.attribution.AttributionRecorder` per
            volume; snapshots ride the volume reports and merge
            deterministically into the summary aggregate.
    """

    profile: str = "ali"
    scheme: str = "adapt"
    victim: str = "greedy"
    num_volumes: int = 8
    volume_blocks: int = 8_192
    volume_requests: int = 6_000
    seed: int = DEFAULT_FLEET_SEED
    chunk_requests: int = DEFAULT_CHUNK_REQUESTS
    engine: str = "auto"
    collect_metrics: bool = False
    timeline_every: int | None = None
    collect_attribution: bool = False

    def __post_init__(self) -> None:
        if self.num_volumes < 1:
            raise ValueError("num_volumes must be >= 1")
        if self.volume_blocks < 1:
            raise ValueError("volume_blocks must be >= 1")
        if self.volume_requests < 0:
            raise ValueError("volume_requests must be >= 0")
        if self.chunk_requests < 1:
            raise ValueError("chunk_requests must be >= 1")
        if self.engine not in ("auto", "batched", "scalar"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.timeline_every is not None and self.timeline_every < 1:
            raise ValueError("timeline_every must be >= 1")

    # ------------------------------------------------------------------
    # tenant derivation
    # ------------------------------------------------------------------
    def tenant_id(self, index: int) -> str:
        """Stable tenant name for volume ``index``."""
        if not 0 <= index < self.num_volumes:
            raise IndexError(f"volume {index} out of range "
                             f"[0, {self.num_volumes})")
        return f"{self.profile}-{index:04d}"

    def tenant_ids(self) -> list[str]:
        return [self.tenant_id(i) for i in range(self.num_volumes)]

    def shard_tenants(self, shard: int, num_shards: int) -> list[str]:
        """Round-robin tenant assignment of ``shard`` (deterministic)."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not 0 <= shard < num_shards:
            raise ValueError(f"shard {shard} out of [0, {num_shards})")
        return [self.tenant_id(i)
                for i in range(shard, self.num_volumes, num_shards)]

    def volume_stream(self, tenant_id: str) -> SyntheticVolumeStream:
        """The tenant's trace stream (identical on every shard)."""
        return SyntheticVolumeStream(
            self.profile, tenant_id, self.volume_blocks,
            self.volume_requests, seed=self.seed,
            chunk_requests=self.chunk_requests)

    def store_seed(self, tenant_id: str) -> int:
        """Per-tenant store seed (victim RNG, sampler salts) — hashed
        from the tenant name so it survives fleet resizing too."""
        return stable_seed(self.seed, tenant_id, "store") % (2 ** 31)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def fleet_key(self) -> str:
        """Content hash binding checkpoints and summaries to this spec."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()


__all__ = ["DEFAULT_FLEET_SEED", "FleetSpec"]
