"""Fleet-level reporting: per-volume reports and cross-tenant aggregates.

Per-volume results travel as plain dicts (picklable across worker
processes, checkpointable, JSON-serialisable verbatim), and the fleet
summary is *deterministic by construction*: volumes are sorted by tenant
name, aggregates are pure arithmetic over them, and nothing wall-clock
ever enters the payload — an interrupted-and-resumed run therefore
writes a byte-identical ``fleet_summary.json`` to an uninterrupted one.
Timing and machine facts go to a separate run-info file instead.
"""

from __future__ import annotations

import json

import numpy as np

from repro.obs.atomicio import atomic_write

#: Fleet summary schema version.  v2: volume reports carry an
#: ``attribution`` snapshot, and the aggregate gains ``metrics_totals``
#: (counters + histograms, not just counters) and a merged
#: ``attribution`` section when the spec collected them.
SUMMARY_SCHEMA = 2

#: Percentiles reported for every headline ratio.
PERCENTILES = (50, 95, 99)

#: Headline per-volume ratios aggregated into fleet percentiles.
_RATIO_KEYS = ("write_amplification", "padding_traffic_ratio",
               "gc_traffic_ratio")

#: Per-volume counters summed into fleet totals.
_TOTAL_KEYS = ("user_blocks_requested", "flash_blocks_written",
               "gc_blocks_written", "shadow_blocks_written",
               "padding_blocks_written", "read_requests",
               "write_requests", "gc_passes", "gc_segments_reclaimed")


def volume_report(spec, tenant_id: str, store, recorder=None) -> dict:
    """Snapshot one finished volume replay as a plain dict."""
    stats = store.stats
    return {
        "volume": tenant_id,
        "scheme": spec.scheme,
        "victim": spec.victim,
        "stats": stats.summary(),
        "groups": [
            {"name": g.name, "kind": g.kind, "user": g.user_blocks,
             "gc": g.gc_blocks, "shadow": g.shadow_blocks,
             "padding": g.padding_blocks}
            for g in stats.groups],
        "policy_memory_bytes": store.policy.memory_bytes(),
        "metrics": recorder.snapshot() if recorder is not None else None,
        # NullAttribution snapshots to None, so the key is always present
        # and only populated when the spec collected attribution.
        "attribution": store.attribution.snapshot(),
    }


def aggregate_fleet(volumes: list[dict]) -> dict:
    """Cross-tenant aggregates over per-volume report dicts.

    Percentiles describe the *distribution* across tenants (a fleet's
    SLA view: the p99 tenant's WA, not the mean); totals and the
    traffic-weighted overall ratios describe the shared store's bill.
    """
    if not volumes:
        return {"volumes": 0}
    percentiles: dict[str, dict[str, float]] = {}
    for key in _RATIO_KEYS:
        values = np.array([v["stats"][key] for v in volumes],
                          dtype=np.float64)
        percentiles[key] = {
            f"p{p}": float(np.percentile(values, p)) for p in PERCENTILES}
        percentiles[key]["mean"] = float(values.mean())
        percentiles[key]["max"] = float(values.max())
    totals = {key: float(sum(v["stats"][key] for v in volumes))
              for key in _TOTAL_KEYS}
    user = totals["user_blocks_requested"]
    flash = totals["flash_blocks_written"]
    overall = {
        "write_amplification": flash / user if user else 0.0,
        "padding_traffic_ratio":
            totals["padding_blocks_written"] / flash if flash else 0.0,
        "gc_traffic_ratio":
            totals["gc_blocks_written"] / flash if flash else 0.0,
    }
    out = {
        "volumes": len(volumes),
        "percentiles": percentiles,
        "totals": totals,
        "overall": overall,
    }
    counters = _sum_metric_counters(volumes)
    if counters is not None:
        out["metrics_counter_totals"] = counters
        from repro.obs.metrics import merge_metric_snapshots
        out["metrics_totals"] = merge_metric_snapshots(
            [v["metrics"] for v in volumes if v.get("metrics")])
    from repro.obs.attribution import merge_attribution_snapshots
    attribution = merge_attribution_snapshots(
        [v.get("attribution") for v in volumes])
    if attribution is not None:
        out["attribution"] = attribution
    return out


def _sum_metric_counters(volumes: list[dict]) -> dict | None:
    """Summed metric counters across volumes that carried snapshots."""
    totals: dict[str, float] = {}
    seen = False
    for v in volumes:
        snap = v.get("metrics")
        if not snap:
            continue
        seen = True
        for name, value in snap.get("counters", {}).items():
            totals[name] = totals.get(name, 0.0) + value
    return totals if seen else None


def fleet_summary(spec, num_shards: int, volumes: list[dict]) -> dict:
    """The canonical (deterministic) fleet summary payload."""
    ordered = sorted(volumes, key=lambda v: v["volume"])
    return {
        "schema": SUMMARY_SCHEMA,
        "fleet": spec.to_dict(),
        "fleet_key": spec.fleet_key(),
        "num_shards": num_shards,
        "aggregate": aggregate_fleet(ordered),
        "volumes": ordered,
    }


def write_fleet_summary(summary: dict, path: str) -> str:
    """Atomically write the summary as canonical JSON (sorted keys, fixed
    separators — byte-stable given equal content)."""
    with atomic_write(path) as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def render_fleet(summary: dict) -> str:
    """Human-readable fleet report for the CLI."""
    from repro.experiments.report import render_table
    agg = summary["aggregate"]
    spec = summary["fleet"]
    rows = []
    for key, label in (("write_amplification", "WA"),
                       ("padding_traffic_ratio", "padding"),
                       ("gc_traffic_ratio", "gc")):
        cell = agg["percentiles"][key]
        rows.append([label, f"{agg['overall'][key]:.3f}",
                     f"{cell['mean']:.3f}", f"{cell['p50']:.3f}",
                     f"{cell['p95']:.3f}", f"{cell['p99']:.3f}",
                     f"{cell['max']:.3f}"])
    table = render_table(
        ["metric", "overall", "mean", "p50", "p95", "p99", "max"], rows,
        title=(f"{spec['scheme']} fleet: {agg['volumes']} x "
               f"{spec['profile']} volumes "
               f"({spec['volume_requests']} req/vol, "
               f"{summary['num_shards']} shard(s))"))
    totals = agg["totals"]
    table += (f"\ntotals: {totals['user_blocks_requested']:,.0f} user "
              f"blocks, {totals['flash_blocks_written']:,.0f} flash "
              f"blocks, {totals['gc_passes']:,.0f} GC passes")
    return table


__all__ = ["PERCENTILES", "SUMMARY_SCHEMA", "aggregate_fleet",
           "fleet_summary", "render_fleet", "volume_report",
           "write_fleet_summary"]
