"""Shard worker: replay one shard's volumes chunk-by-chunk.

``run_shard`` is the unit the orchestrator distributes across a process
pool (and calls inline for serial runs): it walks its round-robin share
of the fleet's tenants, streams each tenant's trace through a fresh
store one bounded chunk at a time (memory O(chunk), never O(trace)),
and — when checkpointing is enabled — snapshots its progress every
``checkpoint_every`` chunks and after every finished volume, so a kill
at any instant loses at most one checkpoint interval of work.

Interruption testing hooks: ``stop_after_chunks`` returns gracefully
after N chunk replays (unit tests), and the
``ADAPT_REPRO_FLEET_KILL_AFTER_CHUNKS`` environment variable hard-kills
the worker process with ``os._exit`` right after the next checkpoint —
the CI fleet-smoke job uses it to prove a real mid-flight kill resumes
to a byte-identical summary.
"""

from __future__ import annotations

import os

from repro.fleet.checkpoint import (
    checkpoint_path,
    load_shard_checkpoint,
    write_shard_checkpoint,
)
from repro.fleet.report import volume_report
from repro.fleet.spec import FleetSpec

#: Hard-kill env hook (see module docstring); parsed once per shard run.
KILL_ENV = "ADAPT_REPRO_FLEET_KILL_AFTER_CHUNKS"


def _fresh_store(spec: FleetSpec, tenant_id: str):
    """A new store + optional recorder for one tenant volume."""
    from repro.experiments.runner import store_config_for
    from repro.lss.store import LogStructuredStore
    from repro.placement.registry import make_policy
    cfg = store_config_for(spec.volume_blocks, victim=spec.victim,
                           seed=spec.store_seed(tenant_id))
    recorder = None
    if spec.collect_metrics or spec.timeline_every:
        from repro.obs.recorder import ObsRecorder
        timeline = None
        if spec.timeline_every:
            from repro.obs.timeline import ReplayTimeline
            timeline = ReplayTimeline(every_blocks=spec.timeline_every)
        recorder = ObsRecorder(timeline=timeline)
    attribution = None
    if spec.collect_attribution:
        from repro.obs.attribution import AttributionRecorder
        attribution = AttributionRecorder()
    policy = make_policy(spec.scheme, cfg)
    store = LogStructuredStore(cfg, policy, recorder=recorder,
                               attribution=attribution)
    return store, recorder


def _export_timeline(recorder, tenant_id: str,
                     timeline_dir: str | None) -> None:
    if recorder is None or timeline_dir is None \
            or recorder.timeline is None or not len(recorder.timeline):
        return
    from repro.obs.exporters import write_timeline_csv
    write_timeline_csv(recorder.timeline,
                       os.path.join(timeline_dir, f"{tenant_id}.csv"))


def run_shard(spec: FleetSpec, shard: int, num_shards: int,
              checkpoint_dir: str | None = None,
              checkpoint_every: int = 0,
              resume: bool = False,
              stop_after_chunks: int | None = None,
              timeline_dir: str | None = None) -> dict:
    """Replay shard ``shard`` of ``num_shards``; returns the shard result.

    Returns ``{"shard", "completed": [volume report dicts in tenant
    order], "interrupted": bool, "chunks_replayed": int}``.  With
    ``resume=True`` the shard picks up from its checkpoint (fresh start
    when none exists); finished tenants are never replayed again.
    """
    kill_after = int(os.environ.get(KILL_ENV, "0") or "0")
    ckpt = None
    if checkpoint_dir is not None:
        ckpt = checkpoint_path(checkpoint_dir, shard, num_shards)
    fleet_key = spec.fleet_key()
    completed: dict[str, dict] = {}
    inflight: dict | None = None
    if resume and ckpt is not None:
        payload = load_shard_checkpoint(ckpt, fleet_key=fleet_key,
                                        shard=shard,
                                        num_shards=num_shards)
        if payload is not None:
            completed = payload["completed"]
            inflight = payload["inflight"]

    tenants = spec.shard_tenants(shard, num_shards)
    chunks_replayed = 0
    checkpointing = ckpt is not None and checkpoint_every > 0
    since_ckpt = 0

    def _write(current: dict | None) -> None:
        if ckpt is not None:
            write_shard_checkpoint(ckpt, fleet_key=fleet_key, shard=shard,
                                   num_shards=num_shards,
                                   completed=completed, inflight=current)

    def _result(interrupted: bool) -> dict:
        return {"shard": shard,
                "completed": [completed[t] for t in tenants
                              if t in completed],
                "interrupted": interrupted,
                "chunks_replayed": chunks_replayed}

    for tenant in tenants:
        if tenant in completed:
            continue
        stream = spec.volume_stream(tenant)
        if inflight is not None and inflight["tenant"] == tenant:
            store = inflight["store"]
            recorder = inflight["recorder"]
            start_chunk = inflight["next_chunk"]
            state = inflight["stream_state"]
        else:
            store, recorder = _fresh_store(spec, tenant)
            start_chunk, state = 0, stream.initial_state()
        inflight = None

        for index, chunk, state in stream.chunks(start_chunk, state):
            store.replay(chunk, finalize=False, engine=spec.engine)
            chunks_replayed += 1
            since_ckpt += 1
            current = {"tenant": tenant, "next_chunk": index + 1,
                       "stream_state": state, "store": store,
                       "recorder": recorder}
            if checkpointing and since_ckpt >= checkpoint_every:
                _write(current)
                since_ckpt = 0
            if kill_after and chunks_replayed >= kill_after:
                _write(current)
                os._exit(42)
            if stop_after_chunks is not None \
                    and chunks_replayed >= stop_after_chunks:
                _write(current)
                return _result(True)

        store.finalize()
        completed[tenant] = volume_report(spec, tenant, store, recorder)
        _export_timeline(recorder, tenant, timeline_dir)
        if checkpointing:
            _write(None)
            since_ckpt = 0

    if ckpt is not None:
        _write(None)
    return _result(False)


__all__ = ["KILL_ENV", "run_shard"]
