"""Per-shard fleet checkpoints: interruption-proof, integrity-checked.

A shard checkpoint captures everything a worker needs to resume exactly
where it stopped: the completed volumes' report dicts, plus — when a
volume is mid-replay — the live store object, its recorder, the stream
cursor (next chunk index) and the stream's carried generation state.
Checkpoints are single pickled payloads written atomically
(:func:`repro.obs.atomicio.atomic_write_bytes`), so a kill during the
write leaves the previous complete checkpoint in place, never a torn one.

Restored state is *not* trusted blindly: the store's derived tables
(LBA mapping, slot validity, valid counts) are rebuilt from the segment
pool's on-media metadata by the crash-recovery scan
(:func:`repro.lss.recovery.verify_recovery`) and cross-checked against
the unpickled tables — a checkpoint that fails the scan raises
:class:`~repro.common.errors.CheckpointError` instead of silently
resuming from corrupt state.  The fleet key (a content hash of the
:class:`~repro.fleet.spec.FleetSpec`) and the shard geometry are
validated the same way, so a checkpoint can never be replayed under a
different fleet definition.
"""

from __future__ import annotations

import os
import pickle

from repro.common.errors import CheckpointError
from repro.obs import profile as obs_profile
from repro.obs.atomicio import atomic_write_bytes

#: Bump on incompatible checkpoint layout changes.
CHECKPOINT_VERSION = 1


def checkpoint_path(checkpoint_dir: str, shard: int,
                    num_shards: int) -> str:
    return os.path.join(checkpoint_dir,
                        f"shard-{shard:04d}-of-{num_shards:04d}.ckpt")


def write_shard_checkpoint(path: str, *, fleet_key: str, shard: int,
                           num_shards: int, completed: dict,
                           inflight: dict | None) -> str:
    """Atomically persist one shard's progress.

    ``completed`` maps tenant id -> finished volume report dict;
    ``inflight`` is ``None`` or ``{"tenant", "next_chunk",
    "stream_state", "store", "recorder"}`` with the live store/recorder
    objects.  The store's profiler handle is detached around pickling
    (profilers are process-local and not part of replay state) and
    restored before returning, so the caller keeps replaying the same
    store object.
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "fleet_key": fleet_key,
        "shard": shard,
        "num_shards": num_shards,
        "completed": completed,
        "inflight": inflight,
    }
    store = inflight["store"] if inflight else None
    profiler = None
    if store is not None:
        profiler, store.profiler = store.profiler, None
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        if store is not None:
            store.profiler = profiler
    with atomic_write_bytes(path) as f:
        f.write(blob)
    return path


def load_shard_checkpoint(path: str, *, fleet_key: str, shard: int,
                          num_shards: int) -> dict | None:
    """Load and validate a shard checkpoint; ``None`` when absent.

    Raises :class:`CheckpointError` on any mismatch or corruption —
    resuming from a wrong or damaged checkpoint must be loud, never a
    silently different fleet.
    """
    try:
        with open(path, "rb") as f:
            payload = pickle.load(f)
    except FileNotFoundError:
        return None
    except Exception as exc:  # torn file, wrong pickle, bad import
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") \
            from exc
    if not isinstance(payload, dict) \
            or payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version "
            f"{payload.get('version') if isinstance(payload, dict) else '?'}"
            f", expected {CHECKPOINT_VERSION}")
    if payload.get("fleet_key") != fleet_key:
        raise CheckpointError(
            f"{path}: checkpoint belongs to a different fleet "
            f"(key {payload.get('fleet_key')!r})")
    if (payload.get("shard"), payload.get("num_shards")) \
            != (shard, num_shards):
        raise CheckpointError(
            f"{path}: shard geometry {payload.get('shard')}/"
            f"{payload.get('num_shards')} does not match requested "
            f"{shard}/{num_shards} (resume with the same worker count)")
    inflight = payload.get("inflight")
    if inflight is not None:
        store = inflight["store"]
        store.profiler = obs_profile.current()
        from repro.lss.recovery import verify_recovery
        try:
            verify_recovery(store)
        except AssertionError as exc:
            raise CheckpointError(
                f"{path}: restored store failed the recovery-scan "
                f"cross-check: {exc}") from exc
    return payload


__all__ = ["CHECKPOINT_VERSION", "checkpoint_path",
           "load_shard_checkpoint", "write_shard_checkpoint"]
