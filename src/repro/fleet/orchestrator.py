"""Fleet orchestrator: shard the tenants, run the workers, merge the run.

``run_fleet`` is the one entry point: it derives ``num_shards`` from the
worker count, runs every shard — inline for ``workers<=1`` (zero
process overhead, the differential-testing baseline) or on a
``ProcessPoolExecutor`` otherwise — and merges shard results into the
deterministic fleet summary.  A worker process dying mid-run (real
crash, or the CI kill hook) surfaces as ``BrokenProcessPool``; the
orchestrator reports the run as interrupted instead of raising, and the
next invocation with ``resume=True`` picks up from the per-shard
checkpoints.

The summary JSON carries no wall-clock data (see
:mod:`repro.fleet.report`); elapsed time and worker geometry land in a
separate ``fleet_runinfo.json`` so the summary stays byte-identical
across serial, sharded and interrupted-then-resumed runs.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.fleet.report import fleet_summary, write_fleet_summary
from repro.fleet.spec import FleetSpec
from repro.fleet.worker import run_shard

#: File names written under ``out_dir``.
SUMMARY_NAME = "fleet_summary.json"
RUNINFO_NAME = "fleet_runinfo.json"
CHECKPOINT_DIRNAME = "checkpoints"
TIMELINE_DIRNAME = "timelines"


@dataclass
class FleetRunResult:
    """Outcome of one ``run_fleet`` invocation."""

    spec: FleetSpec
    num_shards: int
    complete: bool
    volumes: list[dict] = field(default_factory=list)
    summary: dict | None = None
    summary_path: str | None = None
    interrupted_shards: list[int] = field(default_factory=list)
    chunks_replayed: int = 0
    seconds: float = 0.0


def _shard_kwargs(spec: FleetSpec, num_shards: int, out_dir: str | None,
                  checkpoint_every: int, resume: bool,
                  stop_after_chunks: int | None) -> list[dict]:
    checkpoint_dir = None
    timeline_dir = None
    if out_dir is not None:
        checkpoint_dir = os.path.join(out_dir, CHECKPOINT_DIRNAME)
        if spec.timeline_every:
            timeline_dir = os.path.join(out_dir, TIMELINE_DIRNAME)
    return [dict(spec=spec, shard=shard, num_shards=num_shards,
                 checkpoint_dir=checkpoint_dir,
                 checkpoint_every=checkpoint_every, resume=resume,
                 stop_after_chunks=stop_after_chunks,
                 timeline_dir=timeline_dir)
            for shard in range(num_shards)]


def _run_shard_kwargs(kwargs: dict) -> dict:
    # Module-level pickle target for ProcessPoolExecutor submission.
    return run_shard(**kwargs)


def run_fleet(spec: FleetSpec, workers: int = 1,
              checkpoint_every: int = 0, out_dir: str | None = None,
              resume: bool = False,
              stop_after_chunks: int | None = None) -> FleetRunResult:
    """Replay the whole fleet; write summary artifacts when complete.

    Args:
        spec: the fleet definition (determines every tenant's trace and
            store; see :class:`~repro.fleet.spec.FleetSpec`).
        workers: process count; also the shard count, so a resumed run
            must reuse the worker count of the interrupted run.
        checkpoint_every: checkpoint a shard after this many replayed
            chunks (0 disables; volume completions always checkpoint
            when an ``out_dir`` is set and this is > 0).
        out_dir: artifact directory (summary, run info, checkpoints,
            optional timelines).  Required for checkpoint/resume.
        resume: load per-shard checkpoints from ``out_dir`` and continue.
        stop_after_chunks: per-shard graceful stop after N chunks (test
            hook; the run reports ``complete=False``).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be >= 0")
    if (checkpoint_every > 0 or resume) and out_dir is None:
        raise ValueError("checkpointing and resume require out_dir")
    num_shards = workers
    if resume:
        _check_resume_geometry(out_dir, num_shards)
    shard_kwargs = _shard_kwargs(spec, num_shards, out_dir,
                                 checkpoint_every, resume,
                                 stop_after_chunks)
    started = time.perf_counter()
    results: list[dict] = []
    broken = False
    if workers <= 1:
        for kwargs in shard_kwargs:
            results.append(run_shard(**kwargs))
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_shard_kwargs, kwargs)
                       for kwargs in shard_kwargs]
            for future in futures:
                try:
                    results.append(future.result())
                except BrokenProcessPool:
                    broken = True
                    break
    seconds = time.perf_counter() - started

    interrupted = sorted(r["shard"] for r in results if r["interrupted"])
    complete = (not broken and not interrupted
                and len(results) == num_shards)
    volumes = sorted((v for r in results for v in r["completed"]),
                     key=lambda v: v["volume"])
    out = FleetRunResult(
        spec=spec, num_shards=num_shards, complete=complete,
        volumes=volumes, interrupted_shards=interrupted,
        chunks_replayed=sum(r["chunks_replayed"] for r in results),
        seconds=seconds)
    if complete:
        out.summary = fleet_summary(spec, num_shards, volumes)
        if out_dir is not None:
            out.summary_path = write_fleet_summary(
                out.summary, os.path.join(out_dir, SUMMARY_NAME))
            _write_runinfo(out, out_dir)
    return out


def _check_resume_geometry(out_dir: str, num_shards: int) -> None:
    """Fail loudly when resuming with a different worker count.

    Checkpoint file names encode their shard geometry, so a mismatched
    resume would otherwise just miss every checkpoint and silently
    replay from scratch.
    """
    from repro.common.errors import CheckpointError
    ckpt_dir = os.path.join(out_dir, CHECKPOINT_DIRNAME)
    try:
        names = [n for n in os.listdir(ckpt_dir) if n.endswith(".ckpt")]
    except OSError:
        return
    suffix = f"-of-{num_shards:04d}.ckpt"
    stale = sorted(n for n in names if not n.endswith(suffix))
    if stale:
        raise CheckpointError(
            f"{ckpt_dir} holds checkpoints for a different shard "
            f"geometry ({stale[0]}, ...): resume with the worker count "
            f"of the interrupted run, not {num_shards}")


def _write_runinfo(result: FleetRunResult, out_dir: str) -> None:
    """Timing/geometry sidecar — everything banned from the summary."""
    from repro.obs.atomicio import atomic_write
    info = {
        "seconds": result.seconds,
        "workers": result.num_shards,
        "chunks_replayed": result.chunks_replayed,
        "volumes": len(result.volumes),
        "blocks_per_sec": (
            sum(v["stats"]["user_blocks_requested"]
                for v in result.volumes) / result.seconds
            if result.seconds > 0 else 0.0),
    }
    with atomic_write(os.path.join(out_dir, RUNINFO_NAME)) as f:
        json.dump(info, f, indent=2, sort_keys=True)
        f.write("\n")


__all__ = ["CHECKPOINT_DIRNAME", "FleetRunResult", "RUNINFO_NAME",
           "SUMMARY_NAME", "TIMELINE_DIRNAME", "run_fleet"]
