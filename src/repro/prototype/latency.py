"""Closed-loop latency simulation for the prototype (§4.4 extension).

Fig 12a reports throughput; operators also care about tail latency, and
the same bandwidth story applies: every amplified byte (GC, padding,
parity) queues in front of user writes.  This module runs a small
discrete-event simulation over the :class:`~repro.array.device.Raid5Array`
model:

* ``clients × iodepth`` user-op slots run closed-loop;
* consecutive user ops aggregate into chunks (full chunk or SLA timeout);
* each user chunk also enqueues the scheme's amplification surplus
  (``WA − 1`` in chunk-equivalents, plus parity per the RAID accounting)
  as background device work;
* an op's latency is the interval from its submission to the completion
  of the chunk write that persisted it.

The simulation consumes the scheme's measured WA/parity from the same
traffic profile as the throughput model, so both views stay consistent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.array.device import Raid5Array
from repro.common.errors import ConfigError
from repro.prototype.engine import (
    LOOKUP_COST_US,
    PrototypeConfig,
    _traffic_profile,
)


@dataclass(frozen=True)
class LatencyResult:
    """Latency distribution of one (scheme, clients) simulation."""

    scheme: str
    clients: int
    ops_completed: int
    mean_us: float
    p50_us: float
    p99_us: float
    max_us: float


def simulate_latency(scheme: str, clients: int,
                     cfg: PrototypeConfig | None = None,
                     num_ops: int = 20_000,
                     _profile_cache: dict | None = None) -> LatencyResult:
    """Run the closed-loop latency simulation."""
    if clients < 1:
        raise ConfigError("clients must be >= 1")
    if num_ops < 100:
        raise ConfigError("need at least 100 ops for stable percentiles")
    cfg = cfg or PrototypeConfig()

    if _profile_cache is not None and scheme in _profile_cache:
        wa, parity, _ = _profile_cache[scheme]
    else:
        wa, parity, _ = _traffic_profile(scheme, cfg)
        if _profile_cache is not None:
            _profile_cache[scheme] = (wa, parity, None)

    chunk_blocks = 16
    lookup = LOOKUP_COST_US.get(scheme, 1.0)
    issue_gap = cfg.device_latency_us / cfg.iodepth + lookup
    sla_us = 100.0

    array = Raid5Array(cfg.raid, chunk_bytes=chunk_blocks * 4096,
                       device_bw_bytes_per_sec=cfg.device_bw_bytes_per_sec,
                       device_latency_us=cfg.device_latency_us)
    # Background device work per user chunk: amplification surplus in
    # chunk-equivalents (parity is handled inside submit_chunk_write).
    surplus_per_chunk = max(wa - 1.0, 0.0)

    # Event queue of (time, slot); each slot is a client×iodepth lane that
    # re-issues an op `issue_gap` after its previous op persisted.
    slots = clients * cfg.iodepth
    events = [(i * (issue_gap / max(slots, 1)), i) for i in range(slots)]
    heapq.heapify(events)

    latencies: list[float] = []
    pending: list[float] = []      # submit times in the open chunk
    chunk_deadline = np.inf
    surplus_owed = 0.0

    def flush_chunk(now: float) -> float:
        nonlocal pending, chunk_deadline, surplus_owed
        done = array.submit_chunk_write(now)
        surplus_owed += surplus_per_chunk
        while surplus_owed >= 1.0:
            array.submit_chunk_write(now)  # background amplification
            surplus_owed -= 1.0
        for t in pending:
            latencies.append(done - t)
        pending = []
        chunk_deadline = np.inf
        return done

    completed = 0
    while completed < num_ops and events:
        now, slot = heapq.heappop(events)
        if now >= chunk_deadline and pending:
            flush_chunk(chunk_deadline)
        pending.append(now)
        if len(pending) == 1:
            chunk_deadline = now + sla_us
        if len(pending) >= chunk_blocks:
            done = flush_chunk(now)
        else:
            # The op persists no later than the SLA flush; model the lane
            # as blocked until the earliest possible persistence.
            done = min(chunk_deadline,
                       now + array.devices[0].service_time_us(4096))
        completed += 1
        heapq.heappush(events, (done + issue_gap, slot))
    if pending:
        flush_chunk(chunk_deadline if chunk_deadline != np.inf
                    else events[0][0] if events else 0.0)

    lat = np.array(latencies)
    return LatencyResult(
        scheme=scheme, clients=clients, ops_completed=int(lat.size),
        mean_us=float(lat.mean()) if lat.size else 0.0,
        p50_us=float(np.percentile(lat, 50)) if lat.size else 0.0,
        p99_us=float(np.percentile(lat, 99)) if lat.size else 0.0,
        max_us=float(lat.max()) if lat.size else 0.0,
    )
