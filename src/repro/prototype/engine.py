"""Throughput prototype on the RAID-5 bandwidth model (Fig 12a).

The paper's prototype is bandwidth-bound: with one client the SSD array is
under-utilised and all placement schemes perform alike (SepGC slightly ahead
thanks to its cheap lookup path); as clients scale, device bandwidth becomes
the bottleneck, and every byte of GC, padding or parity traffic is a byte of
user bandwidth lost — so the scheme with the lowest WA wins proportionally.

The engine therefore measures, in two stages:

1. *Traffic profile* — replay a dense YCSB-A workload through the real
   simulator to obtain the scheme's WA and parity overhead (nothing is
   assumed; the same store code as the trace-driven experiments runs here).
2. *Closed-loop throughput* — each client keeps ``iodepth`` 4 KiB updates
   outstanding against a per-op service time (device latency + the scheme's
   lookup cost); the array caps aggregate flash bandwidth.  User throughput
   is the minimum of what the clients can offer and what the array can
   absorb after amplification:

       offered(n)  = n · iodepth / (latency + lookup)
       capacity    = D · BW / (BLOCK · WA · (1 + parity))
       throughput  = min(offered, capacity)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.array.raid5 import Raid5Config
from repro.common.errors import ConfigError
from repro.common.units import BLOCK_SIZE, MiB, MICROS_PER_SEC
from repro.lss.config import LSSConfig, default_segment_blocks
from repro.lss.store import LogStructuredStore
from repro.placement.registry import make_policy
from repro.trace.synthetic.ycsb import generate_ycsb_a

#: Measured-on-hardware-style per-op lookup costs (µs).  SepGC's trivial
#: routing is cheapest (the paper notes its 1-client edge, §4.4); ADAPT
#: pays sampling + RA-identifier probes on top of the SepBIT-style path.
LOOKUP_COST_US = {
    "sepgc": 0.5,
    "dac": 1.0,
    "mida": 1.0,
    "warcip": 1.5,
    "sepbit": 1.0,
    "adapt": 1.6,
}


@dataclass(frozen=True)
class PrototypeConfig:
    """Prototype environment: 4 SSDs in RAID-5 (paper's testbed shape).

    The workload sits just above the 100 µs coalescing window — the sparse
    production regime the paper's motivation characterises and where the
    placement schemes' WA gap (and hence their bandwidth headroom) is
    widest.  Device bandwidth is PCIe-4-NVMe-class, chosen so the array
    saturates between one and four clients, matching Fig 12a's crossover.
    """

    raid: Raid5Config = field(default_factory=Raid5Config)
    device_bw_bytes_per_sec: float = 3072 * MiB
    device_latency_us: float = 110.0
    iodepth: int = 8
    unique_blocks: int = 32_768
    num_writes: int = 120_000
    inter_arrival_us: float = 120.0  # sparse: just above the SLA window
    zipf_alpha: float = 0.99
    seed: int = 7

    def __post_init__(self) -> None:
        if self.iodepth < 1:
            raise ConfigError("iodepth must be >= 1")
        if self.device_bw_bytes_per_sec <= 0:
            raise ConfigError("device bandwidth must be positive")
        if self.device_latency_us <= 0:
            raise ConfigError("device latency must be positive")


@dataclass(frozen=True)
class PrototypeResult:
    """Throughput outcome for one (scheme, client-count) point."""

    scheme: str
    clients: int
    throughput_ops: float       # user 4 KiB updates per second
    offered_ops: float
    capacity_ops: float
    write_amplification: float
    parity_overhead: float
    bandwidth_bound: bool

    @property
    def throughput_mib(self) -> float:
        return self.throughput_ops * BLOCK_SIZE / MiB


def _traffic_profile(scheme: str, cfg: PrototypeConfig,
                     store_config: LSSConfig | None = None,
                     recorder=None):
    """Stage 1: run the real simulator to get WA and parity overhead."""
    store_config = store_config or LSSConfig(
        logical_blocks=cfg.unique_blocks,
        segment_blocks=default_segment_blocks(cfg.unique_blocks),
        raid=cfg.raid, seed=cfg.seed)
    store = LogStructuredStore(store_config,
                               make_policy(scheme, store_config),
                               recorder=recorder)
    trace = generate_ycsb_a(cfg.unique_blocks, cfg.num_writes,
                            zipf_alpha=cfg.zipf_alpha,
                            density=cfg.inter_arrival_us,
                            read_ratio=0.0, seed=cfg.seed)
    stats = store.replay(trace)
    return stats.write_amplification(), stats.raid.parity_overhead(), store


def run_prototype(scheme: str, clients: int, cfg: PrototypeConfig | None = None,
                  _profile_cache: dict | None = None,
                  recorder=None) -> PrototypeResult:
    """Run the prototype for one scheme and client count.

    ``recorder`` (an :class:`repro.obs.ObsRecorder`) instruments the
    stage-1 traffic-profile replay; it is only consulted on a profile-cache
    miss, matching the once-per-scheme replay semantics.
    """
    if clients < 1:
        raise ConfigError("clients must be >= 1")
    cfg = cfg or PrototypeConfig()
    key = scheme
    if _profile_cache is not None and key in _profile_cache:
        wa, parity, _ = _profile_cache[key]
    else:
        wa, parity, store = _traffic_profile(scheme, cfg, recorder=recorder)
        if _profile_cache is not None:
            _profile_cache[key] = (wa, parity, None)

    lookup = LOOKUP_COST_US.get(scheme, 1.0)
    per_op_us = cfg.device_latency_us + lookup
    offered = clients * cfg.iodepth / per_op_us * MICROS_PER_SEC

    total_bw = cfg.raid.num_devices * cfg.device_bw_bytes_per_sec
    bytes_per_op = BLOCK_SIZE * wa * (1.0 + parity)
    capacity = total_bw / bytes_per_op

    throughput = min(offered, capacity)
    return PrototypeResult(
        scheme=scheme, clients=clients, throughput_ops=throughput,
        offered_ops=offered, capacity_ops=capacity,
        write_amplification=wa, parity_overhead=parity,
        bandwidth_bound=capacity < offered,
    )


def run_client_sweep(schemes: list[str], client_counts: list[int],
                     cfg: PrototypeConfig | None = None
                     ) -> dict[str, list[PrototypeResult]]:
    """Fig 12a: throughput for each scheme at each client count.

    The (expensive) traffic profile is computed once per scheme and reused
    across client counts.
    """
    cfg = cfg or PrototypeConfig()
    cache: dict = {}
    out: dict[str, list[PrototypeResult]] = {}
    for scheme in schemes:
        out[scheme] = [run_prototype(scheme, n, cfg, _profile_cache=cache)
                       for n in client_counts]
    return out
