"""Metadata memory accounting (Fig 12b).

The paper compares ADAPT's resident metadata against SepBIT's, since both
run two user groups + four GC groups with a lifespan-based policy: the
delta is ADAPT's sampling module (~44 B per sampled block) plus the ghost
sets (~20 B per simulated block) plus the RA bloom cascades, and comes to a
few percent at the paper's 0.001 sampling rate.  ``measure_memory`` replays
a workload and reads each policy's own accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.placement.registry import make_policy
from repro.trace.model import Trace


@dataclass(frozen=True)
class MemoryReport:
    """Measured metadata footprints after a replay."""

    scheme: str
    policy_bytes: int           # per-LBA tables, samplers, ghost sets, RA
    mapping_bytes: int          # LBA -> location table (shared by all)
    write_amplification: float

    @property
    def total_bytes(self) -> int:
        return self.policy_bytes + self.mapping_bytes

    def overhead_vs(self, baseline: "MemoryReport") -> float:
        """Relative extra memory vs a baseline scheme (the paper reports
        ADAPT at +4.56 % over SepBIT)."""
        if baseline.total_bytes == 0:
            return 0.0
        return self.total_bytes / baseline.total_bytes - 1.0


def measure_memory(scheme: str, trace: Trace, config: LSSConfig,
                   **policy_kwargs) -> MemoryReport:
    """Replay ``trace`` under ``scheme`` and report its memory footprint."""
    policy = make_policy(scheme, config, **policy_kwargs)
    store = LogStructuredStore(config, policy)
    stats = store.replay(trace)
    return MemoryReport(
        scheme=scheme,
        policy_bytes=policy.memory_bytes(),
        mapping_bytes=int(store.mapping.nbytes),
        write_amplification=stats.write_amplification(),
    )
