"""Simulated-time prototype (§4.4): throughput under client scaling and
metadata memory accounting, on a RAID-5 bandwidth model."""

from repro.prototype.engine import (
    PrototypeConfig,
    PrototypeResult,
    run_prototype,
    run_client_sweep,
)
from repro.prototype.memory import MemoryReport, measure_memory

__all__ = [
    "PrototypeConfig",
    "PrototypeResult",
    "run_prototype",
    "run_client_sweep",
    "MemoryReport",
    "measure_memory",
]
