"""Reproduction of ADAPT (ICPP '25).

ADAPT is an access-density-aware data-placement strategy for log-structured
storage (LSS) deployed on SSD arrays.  This package implements the full
system described in the paper: the LSS simulator, the SSD-array substrate
with chunk coalescing and zero-padding, the five baseline placement schemes
(SepGC, DAC, WARCIP, MiDA, SepBIT), the ADAPT policy itself, synthetic
production-workload generators, a simulated-time prototype for throughput
and memory experiments, and the experiment harness that regenerates every
figure in the paper's evaluation.

Quickstart::

    from repro import LogStructuredStore, LSSConfig, make_policy
    from repro.trace.synthetic import ycsb

    cfg = LSSConfig(logical_blocks=64_000)
    store = LogStructuredStore(cfg, make_policy("adapt", cfg))
    trace = ycsb.generate_ycsb_a(unique_blocks=64_000, num_writes=300_000,
                                 seed=7)
    store.replay(trace)
    print(store.stats.write_amplification())
"""

from repro.common.units import BLOCK_SIZE, GiB, KiB, MiB
from repro.lss.config import LSSConfig
from repro.lss.store import LogStructuredStore
from repro.placement.registry import available_policies, make_policy

__version__ = "1.0.0"

__all__ = [
    "BLOCK_SIZE",
    "KiB",
    "MiB",
    "GiB",
    "LSSConfig",
    "LogStructuredStore",
    "available_policies",
    "make_policy",
    "__version__",
]
