"""The batched replay engine.

Replays a trace through a :class:`~repro.lss.store.LogStructuredStore` in
vectorized chunks while staying **bit-identical** to the scalar
per-request loop.  The scalar path interleaves three kinds of events per
block — placement, GC, SLA deadline flushes — so naive batching would let
policy state observed by later blocks drift.  The engine relies on two
proofs about the simulator:

* **Placement is flush-invariant.**  No policy's ``place_user`` reads any
  state mutated by chunk flushes, padding flushes, aggregation, or
  segment seals; placement depends only on policy-local per-LBA metadata
  and ``user_seq``.  A whole chunk can therefore be placed up front
  (:meth:`PlacementPolicy.place_user_batch`) even when SLA deadline
  flushes will fire *inside* it — the flushes change where blocks land
  and the traffic accounting, not which group any block goes to.
* **Placement is NOT GC-invariant** (GC hooks move per-LBA metadata), so
  chunks must be provably GC-free.  Chunks are grown by *increments*
  (:meth:`_build_chunk`): before placing an increment the engine proves,
  for **any** placement of its blocks, that the chunk still cannot trip
  ``GarbageCollector.needed()``; after placing it the bound is
  re-tightened from the actual group ids.  Placed increments are never
  rolled back, so policy metadata advances exactly once per block and no
  rewind is ever needed.  When not even one request passes the check the
  engine runs a short scalar burst, where GC fires natively.

Deadline flushes inside a chunk are reproduced exactly: given the placed
group ids, the per-group pending/timer evolution between fires is pure
arithmetic (``idle`` SLA mode restarts a group's timer at each append and
a chunk-capacity flush clears it), so the engine predicts the next fire
from live buffer state (:meth:`_group_fire`), applies blocks up to the
first request at or past that deadline, runs the store's real ``tick()``
there (firing order, padding, and ADAPT's cross-group aggregation all go
through the legacy machinery), then re-reads buffer state and repeats.
Under ``sla_mode="first"`` or a zero window the engine instead uses
conservative deadline-free chunks bounded by the earliest armed deadline
and ``first_ts + window``.

The chunk-construction and fire-prediction arithmetic deliberately runs
on plain Python ints and lists: the group counts involved are tiny (a
handful of groups, a few dozen requests per SLA window), where NumPy's
per-call dispatch costs more than the work itself.  NumPy is reserved
for the genuinely wide operations — placement, appends, invalidation.

While the engine drives the store it sets ``store.batched_mode``, which
gates the vectorized GC-migration path in
:meth:`~repro.lss.gc.GarbageCollector.clean_segment` and the bulk flush
accounting in :meth:`~repro.lss.group.Group.append_user_run`; the scalar
engine never sets it and keeps the pure per-block reference path.

Preconditions: no flush listeners (the FTL bridge), and observability
either disabled or **batch-capable** (the default
:class:`~repro.obs.ObsRecorder`): the engine and the store's bulk append
paths then feed the recorder chunk-aggregated hooks whose metric totals
are bit-identical to the scalar per-event hooks — the obs-on
engine-equivalence suite compares ``MetricsRegistry.snapshot()`` across
engines to prove it.  Recorders demanding the exact per-event stream
(``trace_events=True``) are rejected; ``store.replay(engine="auto")``
checks all of this and falls back to the scalar loop.  The invariant
auditor is supported at chunk cadence.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

from repro.obs.attribution import (
    CAUSE_CANDIDATE,
    CAUSE_DEADLINE_HORIZON,
    CAUSE_DEADLINE_RESERVE,
    CAUSE_GC_CAPACITY,
    CAUSE_MAX_BLOCKS,
    CAUSE_MAX_REQUESTS,
    CAUSE_TRACE_END,
)
from repro.perf.expand import expand_trace
from repro.placement.base import PlacementPolicy
from repro.trace.model import OP_WRITE, Trace

_NO_FIRE = None

#: Scalar-burst length between re-probes of the batched path.  A burst
#: ends early once GC restores the high watermark; the cap bounds how
#: long the engine stays scalar when the pool hovers between watermarks
#: without GC being triggerable.
_BURST_REQUESTS = 32

#: Maximum SLA windows one multi-group chunk increment may span.  Wider
#: spans amortize the per-increment probe/placement overhead (and push
#: batches past the policies' vectorization break-even) at the price of
#: ``windows x SLA groups x fire_unit`` extra reserved fire blocks in the
#: feasibility bounds; past a point the reserve eats the provable
#: capacity and the binary search shrinks spans right back.
_SPAN_WINDOWS = 8


class BatchedReplayEngine:
    """Chunked, vectorized replay bound to one store.

    Args:
        store: the target store (fresh or mid-stream; the engine only
            assumes the store's own invariants hold).
        max_chunk_blocks: upper bound on written blocks per chunk, limiting
            transient allocations on huge GC-quiet traces.
        max_chunk_requests: optional upper bound on requests per chunk.
            Chunk feasibility is prefix-closed (a shorter chunk consumes
            strictly less capacity), so ANY cap yields identical final
            state — the property suite sweeps this to prove batch
            boundaries are semantically invisible.
    """

    def __init__(self, store, max_chunk_blocks: int = 65536,
                 max_chunk_requests: int | None = None) -> None:
        if store.flush_listeners:
            raise ValueError(
                "batched replay requires no flush listeners; "
                "use replay(engine='scalar')")
        if store._obs_on and not store.obs.batch_capable:
            raise ValueError(
                "batched replay requires a batch-capable recorder; "
                "per-event observability (trace_events=True) needs "
                "replay(engine='scalar')")
        if max_chunk_blocks < 1:
            raise ValueError("max_chunk_blocks must be >= 1")
        if max_chunk_requests is not None and max_chunk_requests < 1:
            raise ValueError("max_chunk_requests must be >= 1")
        self.store = store
        self.max_chunk_blocks = max_chunk_blocks
        self.max_chunk_requests = max_chunk_requests
        cb = store.config.chunk.chunk_blocks
        #: Worst-case appended blocks per fire site of one group.  A
        #: deadline fire with ``p`` pending blocks pads ``cb - p`` slots;
        #: cross-group aggregation can additionally shadow at most the
        #: ``p`` pending blocks into another group before the pad, so the
        #: two together consume at most ``cb`` appends — and exactly
        #: ``cb - p <= cb - 1`` without an aggregator.
        self._fire_unit = cb \
            if getattr(store.policy, "aggregator", None) is not None \
            else cb - 1
        #: Per-gid flag: does the group hold an SLA coalescing window?
        self._is_sla = [False] * len(store.groups)
        for g in store._sla_groups:
            self._is_sla[g.gid] = True
        #: Groups user placement can route to (the policy's declared
        #: contract): the adversarial capacity bounds quantify over these
        #: only — a group outside the set can never be drained by a chunk.
        self._user_gids = sorted(store.policy.user_placement_gids())
        #: Whether the policy predicts per-block candidate groups
        #: (``candidate_user_gids``): lets the chunk bound cap how many
        #: blocks each group could possibly absorb, instead of assuming
        #: any block can land anywhere in the placement domain.
        self._has_candidates = (
            type(store.policy).candidate_user_gids
            is not PlacementPolicy.candidate_user_gids)
        #: Chunk-bound attribution sink (NULL_ATTRIBUTION by default).
        #: The chunk builders classify, per chunk, which constraint
        #: terminated it and stash it in ``_chunk_cause``; the replay
        #: loop reports it with the chunk's width.  All of it is behind
        #: the cached ``_attr_on`` boolean.
        self._attr = store.attribution
        self._attr_on = store._attr_on
        self._chunk_cause = CAUSE_TRACE_END

    # ------------------------------------------------------------------
    # replay loop
    # ------------------------------------------------------------------
    def replay(self, trace: Trace, finalize: bool = True):
        store = self.store
        prof = store.profiler
        with prof.span("expand"):
            ex = expand_trace(trace, store.config.logical_blocks)
        n = ex.num_requests
        window = store.config.coalesce_window_us
        cb = store.config.chunk.chunk_blocks
        stats = store.stats
        has_sla = bool(store._sla_groups)
        idle_sla = has_sla and store.config.sla_mode == "idle" \
            and window > 0
        # Plain-int columns: the chunk-construction arithmetic and the
        # scalar bursts never touch NumPy scalars.
        self._cols = (trace.ops.tolist(), trace.offsets.tolist(),
                      trace.sizes.tolist(), ex.timestamps.tolist())
        ts = self._cols[3]
        bs = self._bs = ex.block_start.tolist()
        self._btl = ex.block_ts.tolist()
        self._wb = ex.writes_before.tolist()
        # Single-user-group fast build (SepGC/MiDA-shaped policies): with
        # every user block provably bound for one group, chunk capacity is
        # a closed form over write-gap prefix sums instead of the
        # incremental adversarial construction.
        single = (idle_sla or not has_sla) and len(self._user_gids) == 1
        if single:
            widx = np.flatnonzero(trace.ops == OP_WRITE)
            wts = ex.timestamps[widx]
            gaps = np.zeros(widx.shape[0], dtype=np.int64)
            if widx.shape[0] > 1:
                gaps[1:] = np.diff(wts) >= window
            self._widx = widx.tolist()
            self._wts = wts.tolist()
            self._wgap = np.cumsum(gaps).tolist()
        obs_on = store._obs_on
        attr_on = self._attr_on
        attr = self._attr
        store.batched_mode = True
        try:
            i = 0
            while i < n:
                store.tick(ts[i])
                with prof.span("chunk_build"):
                    if single:
                        j, gids = self._build_chunk_single(ex, i, window)
                    elif idle_sla or not has_sla:
                        j, gids = self._build_chunk(ex, i, window)
                    else:
                        j = self._deadline_free_span(ex, i, ts[i], window)
                        gids = None
                if j <= i:
                    # Not even the current request is provably GC-free:
                    # scalar burst, where GC fires natively.  The tick for
                    # request i already ran above — re-ticking could
                    # double-fire a deadline the policy re-armed during
                    # the first scan.
                    with prof.span("scalar_burst"):
                        i2 = self._scalar_burst(i)
                    if attr_on:
                        attr.on_scalar_burst(i2 - i, bs[i2] - bs[i])
                    i = i2
                    continue
                # -- apply the chunk ---------------------------------------
                nwrites = self._wb[j] - self._wb[i]
                nreads = (j - i) - nwrites
                stats.write_requests += nwrites
                stats.read_requests += nreads
                if obs_on and nreads:
                    store.obs.on_read_bulk(nreads, ts[j - 1])
                wb0, wb1 = bs[i], bs[j]
                if wb1 > wb0:
                    lbas = ex.lbas[wb0:wb1]
                    bts = ex.block_ts[wb0:wb1]
                    if gids is None:
                        gids = store.policy.place_user_batch(
                            lbas, bts, store.user_seq)
                    splitter = self._make_splitter(ex, i, j, gids, window,
                                                   cb) if idle_sla else None
                    with prof.span("apply"):
                        store.apply_user_batch(lbas, bts, gids,
                                               splitter=splitter)
                elif idle_sla:
                    # Read-only chunk: no appends can arm anything new, but
                    # already-armed deadlines still fire at the scalar ticks.
                    t_end = ts[j - 1]
                    while True:
                        nd = store.next_deadline()
                        if nd is None or nd > t_end:
                            break
                        store.tick(ts[bisect_left(ts, nd)])
                store.now_us = ts[j - 1]
                if attr_on:
                    attr.on_chunk(self._chunk_cause, j - i, wb1 - wb0)
                i = j
        finally:
            store.batched_mode = False
        if finalize:
            store.finalize()
        return stats

    # ------------------------------------------------------------------
    # incremental chunk construction
    # ------------------------------------------------------------------
    def _build_chunk(self, ex, i: int, window: int):
        """Grow a provably GC-free chunk of requests ``[i, j)`` by placed
        increments; return ``(j, gids)``.

        Increments span up to ``_SPAN_WINDOWS`` SLA windows.  Fires armed
        by the increment's own (not yet placed) appends are bounded by
        window counting: under idle-mode timers a group's deadline fires
        are at least one window apart and the earliest span-armed fire is
        one window after the span starts, so a span of duration ``d``
        adds at most ``d // window`` fires per SLA group on top of the
        placed-block accounting (pre-chunk pending ``sites``, promoted
        gaps between placed touches, and the trailing gap).  For a
        sub-window span the extra charge is zero, recovering the exact
        single-window accounting.  After an increment is placed the
        per-group counts, last touches, and fire sites are updated from
        the actual group ids — including gaps *inside* the increment —
        so the next increment starts from a tight bound instead of a
        whole-chunk worst case.

        Returns ``(i, None)`` when not even the first request fits.
        """
        store = self.store
        pool = store.pool
        sb = pool.segment_blocks
        slack = pool.free_segments - store.config.gc_free_low - 1
        if slack < 0:
            return i, None
        bs = self._bs
        ts = self._cols[3]
        btl = self._btl
        n = ex.num_requests
        if self.max_chunk_requests is not None:
            n = min(n, i + self.max_chunk_requests)
        ngroups = len(store.groups)
        is_sla = self._is_sla
        fire_unit = self._fire_unit
        max_blocks = self.max_chunk_blocks
        # Post-tick snapshot: per-group open-segment headroom, and one
        # reserved fire for every SLA group entering the chunk with
        # pending blocks (its pre-chunk timer may expire mid-chunk).
        fill = pool.fill
        head = [0] * ngroups
        for g in store.groups:
            if g.open_seg is not None:
                head[g.gid] = sb - int(fill[g.open_seg])
        sites = sum(1 for g in store._sla_groups
                    if g.buffer.pending_blocks)
        counts = [0] * ngroups
        last_tb = [0] * ngroups
        wb_chunk = bs[i]

        user_gids = self._user_gids
        nuser = len(user_gids)
        nsla_user = sum(1 for g in user_gids if is_sla[g])

        def cap_parts(t_end: int) -> tuple[int, int]:
            """``(capacity, fire_reserve)`` for additional blocks placed on
            any user-placeable group such that free segments provably stay
            above the GC low watermark; capacity is ``-1`` when already
            placed blocks alone exhaust the slack.  Splitting the two
            terms lets attribution tell a reserve-bound stall apart from
            a raw-capacity one."""
            a_user = 0
            h1 = []
            trail = 0
            for g in user_gids:
                over = counts[g] - head[g]
                if over > 0:
                    a_user += (over + sb - 1) // sb
                    h1.append((-over) % sb + 1)
                else:
                    h1.append(1 - over)
                if is_sla[g] and counts[g] > 0 \
                        and t_end - last_tb[g] >= window:
                    trail += 1
            allowed = slack - a_user
            if allowed < 0:
                return -1, 0
            if nsla_user:
                # Fires armed by the unplaced span itself (see docstring).
                trail += nsla_user * ((t_end - ts[j]) // window)
            # Cheapest schedule forcing allowed + 1 allocations: open
            # groups in ascending first-allocation cost (headroom + 1),
            # then whole segments; one block less is safe anywhere.
            h1.sort()
            k = allowed + 1
            cap = h1[0] - 1
            if k > 1:
                take = min(k - 1, nuser - 1)
                for f in h1[1:1 + take]:
                    cap += f if f < sb else sb
                cap += (k - 1 - take) * sb
            return cap, (sites + trail) * fire_unit

        def x_max(t_end: int) -> int:
            """Max additional blocks, placed on any user-placeable group,
            that provably keep free segments above the GC low watermark."""
            cap, reserve = cap_parts(t_end)
            return cap - reserve if cap >= 0 else -1

        def feasible_capped(k: int, span_cums, wb_j: int) -> bool:
            """Candidates-aware feasibility of the span ``[j, k)``.

            ``span_cums[idx][b]`` counts, among the span's first ``b + 1``
            blocks, those whose candidate set includes ``user_gids[idx]``
            — an upper bound ``U_g`` on what the placement can push into
            the group.  Fire padding and shadow appends (up to ``R``
            blocks) land only in SLA groups, so each SLA group's cap is
            relaxed by ``R`` and the adversary's block budget is
            ``x + R``; non-SLA groups are capped by their candidate
            blocks alone.  The chunk is safe when the
            cheapest schedule forcing ``allowed + 1`` segment allocations
            under those per-group caps costs more than that budget —
            the caps-only relaxation of the true assignment problem, so
            always conservative.
            """
            x = bs[k] - wb_j
            t_end = ts[k - 1]
            a_user = 0
            trail = 0
            firsts = []
            for g in user_gids:
                over = counts[g] - head[g]
                if over > 0:
                    a_user += (over + sb - 1) // sb
                    firsts.append((-over) % sb + 1)
                else:
                    firsts.append(1 - over)
                if is_sla[g] and counts[g] > 0 \
                        and t_end - last_tb[g] >= window:
                    trail += 1
            allowed = slack - a_user
            if allowed < 0:
                return False
            if nsla_user:
                # Span-armed fires, as in x_max.
                trail += nsla_user * ((t_end - ts[j]) // window)
            budget = x + (sites + trail) * fire_unit
            relax = (sites + trail) * fire_unit
            kneed = allowed + 1
            fs = []
            total_extra = 0
            for idx in range(nuser):
                cap_g = span_cums[idx][x - 1] if x > 0 else 0
                if is_sla[user_gids[idx]]:
                    cap_g += relax
                f = firsts[idx]
                if cap_g < f:
                    continue  # cannot even force this group's first alloc
                fs.append(f)
                total_extra += (cap_g - f) // sb
            if kneed > len(fs) + total_extra:
                return True  # kneed allocations are unforceable outright
            fs.sort()
            if kneed <= len(fs):
                cost = sum(fs[:kneed])
            else:
                cost = sum(fs) + (kneed - len(fs)) * sb
            return budget < cost

        probe = store.policy.candidate_user_gids if self._has_candidates \
            else None

        placed: list[np.ndarray] = []
        has_sla = bool(store._sla_groups)
        attr_on = self._attr_on
        cause = None
        j = i
        while j < n and bs[j] - wb_chunk < max_blocks:
            budget_blocks = max_blocks - (bs[j] - wb_chunk)
            if has_sla:
                hi = min(bisect_left(ts, ts[j] + window), n)
            else:
                hi = n
            hi = self._cap_blocks(j, hi, budget_blocks)
            if hi <= j:
                # The next request's blocks alone blow the block budget.
                cause = CAUSE_MAX_BLOCKS
                break
            wb_j = bs[j]
            # Binary search the largest feasible request span.  The cheap
            # any-placement bound (x_max) is tried first; only when it
            # cannot cover a span does the engine probe the policy's
            # per-block candidate groups for the tighter capped bound.
            span_cums = None
            if bs[hi] - wb_j <= x_max(ts[hi - 1]):
                k = hi
                if has_sla and hi < n:
                    # The whole one-window span fits on the cheap bound:
                    # widen the horizon (capacity permitting) so loose
                    # regimes amortize the per-increment probe/placement
                    # overhead instead of stepping window by window.
                    # Tight regimes never reach this, keeping their
                    # per-window accounting exact.
                    wide = min(
                        bisect_left(ts, ts[j] + _SPAN_WINDOWS * window), n)
                    wide = self._cap_blocks(j, wide, budget_blocks)
                    if wide > hi:
                        if bs[wide] - wb_j <= x_max(ts[wide - 1]):
                            k = wide
                        else:
                            lo, h2 = hi, wide
                            while lo < h2 - 1:
                                mid = (lo + h2) // 2
                                if bs[mid] - wb_j <= x_max(ts[mid - 1]):
                                    lo = mid
                                else:
                                    h2 = mid
                            k = lo
            else:
                if probe is not None:
                    if bs[hi] == wb_j:
                        # Write-free span: the capped bound still applies
                        # (only fire padding consumes capacity), with
                        # empty per-group candidate prefix sums.
                        span_cums = [[] for _ in user_gids]
                    else:
                        cand = probe(ex.lbas[wb_j:bs[hi]],
                                     ex.block_ts[wb_j:bs[hi]],
                                     store.user_seq + (wb_j - wb_chunk))
                        if cand is not None:
                            primary, alt = cand
                            span_cums = []
                            for g in user_gids:
                                mask = primary == g
                                mask |= alt == g
                                span_cums.append(np.cumsum(mask).tolist())
                if span_cums is not None \
                        and feasible_capped(hi, span_cums, wb_j):
                    k = hi
                else:
                    lo = j
                    while lo < hi - 1:
                        mid = (lo + hi) // 2
                        if bs[mid] - wb_j <= x_max(ts[mid - 1]) \
                                or (span_cums is not None
                                    and feasible_capped(mid, span_cums,
                                                        wb_j)):
                            lo = mid
                        else:
                            hi = mid
                    k = lo
            if k <= j:
                if attr_on:
                    if span_cums is not None:
                        # Stalled while the candidate-capped bound was the
                        # operative (tighter) constraint.
                        cause = CAUSE_CANDIDATE
                    else:
                        # Would one more request have fit without the
                        # worst-case fire reserve?
                        c_cap, c_res = cap_parts(ts[j])
                        need = bs[j + 1] - bs[j]
                        if c_cap >= 0 and need <= c_cap \
                                and need > c_cap - c_res:
                            cause = CAUSE_DEADLINE_RESERVE
                        else:
                            cause = CAUSE_GC_CAPACITY
                break
            wb_k = bs[k]
            if wb_k > wb_j:
                gids = store.policy.place_user_batch(
                    ex.lbas[wb_j:wb_k], ex.block_ts[wb_j:wb_k],
                    store.user_seq + (wb_j - wb_chunk))
                placed.append(gids)
                n_inc = wb_k - wb_j
                g0 = int(gids[0])
                if n_inc == 1 or (int(gids[n_inc - 1]) == g0
                                  and not (gids != g0).any()):
                    # Single-group increment (the common case for
                    # few-group policies): near-O(1) bookkeeping.
                    if is_sla[g0]:
                        if counts[g0] > 0 \
                                and btl[wb_j] - last_tb[g0] >= window:
                            sites += 1
                        if btl[wb_k - 1] - btl[wb_j] >= window:
                            # Window-sized rests inside the increment are
                            # fire sites too (multi-window spans only).
                            sites += int(np.count_nonzero(
                                np.diff(ex.block_ts[wb_j:wb_k])
                                >= window))
                    counts[g0] += n_inc
                    last_tb[g0] = btl[wb_k - 1]
                else:
                    # A group already touched in the chunk whose rest
                    # before a touch here spans a full window is promoted
                    # to a fire site (covers gaps between increments and,
                    # for multi-window spans, gaps inside one).
                    b = wb_j
                    for g in gids.tolist():
                        tb = btl[b]
                        b += 1
                        if is_sla[g] and counts[g] > 0 \
                                and tb - last_tb[g] >= window:
                            sites += 1
                        counts[g] += 1
                        last_tb[g] = tb
            j = k
        if attr_on:
            if cause is None:
                # Loop-condition exit: either the (possibly capped)
                # request horizon or the block budget ran out.
                if j >= n:
                    cause = CAUSE_MAX_REQUESTS if n < ex.num_requests \
                        else CAUSE_TRACE_END
                else:
                    cause = CAUSE_MAX_BLOCKS
            self._chunk_cause = cause
        if j <= i:
            return i, None
        if not placed:
            return j, None
        gids = placed[0] if len(placed) == 1 else np.concatenate(placed)
        return j, gids

    def _build_chunk_single(self, ex, i: int, window: int):
        """Closed-form chunk for policies whose user placement domain is
        one group; return ``(j, gids)``.

        All of a chunk's user blocks land in group ``g0``, so the
        adversarial capacity bound collapses: the chunk consumes
        ``written_blocks + fire_sites * fire_unit`` slots of ``g0``'s
        headroom plus ``slack`` whole segments, and the fire sites are an
        exact count — one reserved per SLA group entering with pending
        blocks, plus every gap of at least one window between the chunk's
        consecutive write requests (precomputed prefix sums), plus the
        trailing gap.  One feasibility probe is O(1), the chunk is found
        with a single binary search, and placement happens once.
        """
        store = self.store
        pool = store.pool
        slack = pool.free_segments - store.config.gc_free_low - 1
        if slack < 0:
            return i, None
        sb = pool.segment_blocks
        g0 = self._user_gids[0]
        grp = store.groups[g0]
        head0 = sb - int(pool.fill[grp.open_seg]) \
            if grp.open_seg is not None else 0
        cap = head0 + slack * sb
        bs = self._bs
        ts = self._cols[3]
        n = ex.num_requests
        if self.max_chunk_requests is not None:
            n = min(n, i + self.max_chunk_requests)
        max_blocks = self.max_chunk_blocks
        if not store._sla_groups:
            # No SLA windows anywhere: capacity is consumed by writes only.
            j = min(self._cap_blocks(i, n, min(cap, max_blocks)), n)
            if self._attr_on:
                if j >= ex.num_requests:
                    self._chunk_cause = CAUSE_TRACE_END
                elif j >= n:
                    self._chunk_cause = CAUSE_MAX_REQUESTS
                elif cap <= max_blocks:
                    self._chunk_cause = CAUSE_GC_CAPACITY
                else:
                    self._chunk_cause = CAUSE_MAX_BLOCKS
        else:
            fu = self._fire_unit
            sites0 = sum(1 for g in store._sla_groups
                         if g.buffer.pending_blocks)
            widx = self._widx
            wts = self._wts
            wgp = self._wgap
            w0 = bisect_left(widx, i)

            def feasible(j: int) -> bool:
                a = bs[j] - bs[i]
                if a > max_blocks:
                    return False
                w1 = bisect_left(widx, j)
                if w1 <= w0:
                    return True  # read-only span consumes nothing
                sites = sites0 + wgp[w1 - 1] - wgp[w0]
                if ts[j - 1] - wts[w1 - 1] >= window:
                    sites += 1
                return a + sites * fu <= cap

            if feasible(n):
                j = n
            else:
                lo, hi = i, n
                while lo < hi - 1:
                    mid = (lo + hi) // 2
                    if feasible(mid):
                        lo = mid
                    else:
                        hi = mid
                j = lo
            if self._attr_on:
                # Binary-search invariant: feasible(j), not feasible(j+1)
                # (when j < n) — re-derive which check failed.
                if j >= ex.num_requests:
                    self._chunk_cause = CAUSE_TRACE_END
                elif j >= n:
                    self._chunk_cause = CAUSE_MAX_REQUESTS
                else:
                    a = bs[j + 1] - bs[i]
                    if a > max_blocks:
                        self._chunk_cause = CAUSE_MAX_BLOCKS
                    elif a > cap:
                        self._chunk_cause = CAUSE_GC_CAPACITY
                    else:
                        self._chunk_cause = CAUSE_DEADLINE_RESERVE
        if j <= i:
            return i, None
        wb0, wb1 = bs[i], bs[j]
        if wb1 <= wb0:
            return j, None
        gids = store.policy.place_user_batch(
            ex.lbas[wb0:wb1], ex.block_ts[wb0:wb1], store.user_seq)
        return j, gids

    def _deadline_free_span(self, ex, i: int, t_i: int,
                            window: int) -> int:
        """Conservative chunk for ``"first"`` mode or a zero window: span
        requests strictly below both the earliest armed deadline and
        ``first_ts + window`` (deadlines armed inside land at or beyond
        that), capped so worst-case placement cannot trip GC."""
        store = self.store
        ts = self._cols[3]
        horizon = t_i + window
        nd = store.next_deadline()
        if nd is not None and nd < horizon:
            horizon = nd
        j_h = bisect_left(ts, horizon)
        if j_h <= i:
            j_h = i + 1  # window == 0: one request per chunk
        j = j_h
        if self.max_chunk_requests is not None:
            j = min(j, i + self.max_chunk_requests)
        gc_safe = self._gc_safe_blocks()
        budget = min(gc_safe, self.max_chunk_blocks)
        jc = self._cap_blocks(i, j, budget)
        if self._attr_on:
            if jc < j:
                self._chunk_cause = CAUSE_GC_CAPACITY \
                    if gc_safe <= self.max_chunk_blocks \
                    else CAUSE_MAX_BLOCKS
            elif jc >= ex.num_requests:
                self._chunk_cause = CAUSE_TRACE_END
            elif jc < j_h:
                self._chunk_cause = CAUSE_MAX_REQUESTS
            else:
                self._chunk_cause = CAUSE_DEADLINE_HORIZON
        return jc

    def _gc_safe_blocks(self) -> int:
        """Largest block count that cannot trip the GC low watermark.

        ``needed()`` fires once free segments drop to ``gc_free_low``; the
        cheapest way a placement could get there is to fill every group's
        open-segment headroom first (one allocation each after
        ``headroom + 1`` appends), then whole segments.  One block below
        the cheapest schedule that forces ``free - gc_free_low``
        allocations is therefore safe under *any* placement.
        """
        store = self.store
        pool = store.pool
        allocs = pool.free_segments - store.config.gc_free_low - 1
        if allocs < 0:
            return 0
        sb = pool.segment_blocks
        firsts = sorted(
            (1 if store.groups[g].open_seg is None
             else sb - int(pool.fill[store.groups[g].open_seg]) + 1)
            for g in self._user_gids)
        k = allocs + 1
        cost = sum(firsts[:k]) + max(0, k - len(firsts)) * sb
        return cost - 1

    def _cap_blocks(self, i: int, j: int, budget: int) -> int:
        """Shrink ``j`` so the span's written blocks fit ``budget``."""
        bs = self._bs
        wb0 = bs[i]
        if bs[j] - wb0 <= budget:
            return j
        return bisect_right(bs, wb0 + budget) - 1

    # ------------------------------------------------------------------
    # scalar fallback
    # ------------------------------------------------------------------
    def _scalar_burst(self, i: int) -> int:
        """Replay requests through the scalar path until GC restores the
        high watermark (or a short cap passes), then return the next
        request index.  The caller already ticked request ``i``'s time."""
        store = self.store
        stats = store.stats
        pool = store.pool
        high = store.config.gc_free_high
        obs_on = store._obs_on
        ops, offs, szs, ts = self._cols
        n = len(ops)
        stop = min(n, i + _BURST_REQUESTS)
        first = True
        # Per-block user-write hooks would dominate the burst; defer them
        # into one bulk report (engine preconditions guarantee the
        # recorder is batch-capable whenever obs is on).
        store._defer_user_obs = obs_on
        written = 0
        last_lba = -1
        t = 0
        try:
            while i < n:
                t = ts[i]
                if not first:
                    store.tick(t)
                first = False
                if ops[i] != OP_WRITE:
                    stats.read_requests += 1
                    if obs_on:
                        store.obs.on_read(offs[i], t)
                else:
                    stats.write_requests += 1
                    off = offs[i]
                    for lba in range(off, off + szs[i]):
                        store.write_block(lba, t)
                    written += szs[i]
                    last_lba = off + szs[i] - 1
                i += 1
                if pool.free_segments >= high or i >= stop:
                    break
        finally:
            store._defer_user_obs = False
        if obs_on and written:
            store.obs.on_user_write_bulk(written, last_lba, t)
        return i

    # ------------------------------------------------------------------
    # in-chunk deadline fires
    # ------------------------------------------------------------------
    def _make_splitter(self, ex, i: int, j: int, gids: np.ndarray,
                       window: int, cb: int):
        """Build the ``apply_user_batch`` splitter for an idle-mode chunk.

        The splitter is called with the next unapplied block offset and
        returns ``(end_block, tick_ts)``: apply blocks up to ``end_block``
        then (unless ``tick_ts`` is None) run ``store.tick(tick_ts)``.
        Fire prediction is exact: between fires, each SLA group's
        pending count grows by one per routed block (mod the chunk
        capacity, which clears the timer) and its deadline is its last
        append plus the window; at each predicted fire the store's real
        tick runs and live buffer state is re-read, so aggregation and
        multi-group fires need no modelling here.
        """
        store = self.store
        ts = self._cols[3]
        bs = self._bs
        bs0 = bs[i]
        block_ts = self._btl[bs0:bs[j]]
        nb = len(block_ts)
        t_end = ts[j - 1]
        # Per-SLA-group block positions within the chunk, ascending.
        sla_groups = store._sla_groups
        positions = [np.flatnonzero(gids == g.gid).tolist()
                     for g in sla_groups]

        def splitter(pos_block: int) -> tuple[int, int | None]:
            fire = _NO_FIRE
            for group, pos in zip(sla_groups, positions):
                f = _group_fire(group, pos, pos_block, block_ts, t_end,
                                window, cb)
                if f is not None and (fire is None or f < fire):
                    fire = f
            if fire is _NO_FIRE:
                return nb, None
            k = bisect_left(ts, fire)
            return bs[k] - bs0, ts[k]

        return splitter


def _group_fire(group, pos: list, pos_block: int, block_ts: list,
                t_end: int, window: int, cb: int) -> int | None:
    """Earliest deadline of ``group`` that a scalar tick would fire
    before the group's next append (or the chunk's end), assuming no
    other fire happens first — or ``None``.

    Walks the group's future chunk positions with early exit: only the
    FIRST live fire matters, and in fire-dense workloads it is near the
    cursor, so the walk is O(distance to that fire) rather than
    O(remaining chunk).
    """
    buf = group.buffer
    m = len(pos)
    k0 = bisect_left(pos, pos_block)
    deadline = buf.deadline_us
    if deadline is not None:
        next_touch = block_ts[pos[k0]] if k0 < m else t_end
        if next_touch >= deadline:
            return deadline
    pending = buf.pending_blocks
    for w in range(k0, m):
        pending += 1
        if pending == cb:
            pending = 0  # capacity flush clears the timer
        tb = block_ts[pos[w]]
        nt = block_ts[pos[w + 1]] if w + 1 < m else t_end
        if pending and nt >= tb + window:
            return tb + window
    return None


__all__ = ["BatchedReplayEngine"]
