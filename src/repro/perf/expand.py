"""Vectorized request expansion: trace columns → flat block stream.

The scalar replay loop expands every write request with a Python
``range(offset, offset + size)`` and re-extracts four NumPy scalars per
request.  Here the whole trace is expanded once with ``np.repeat`` and
cumulative-sum arithmetic: one int64 LBA per written block, one timestamp
per block, and the per-request boundaries into that flat stream, so the
replay engine can slice arbitrary request windows without touching Python
integers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.model import OP_WRITE, Trace


@dataclass(frozen=True)
class ExpandedTrace:
    """Flat block-stream view of one trace."""

    #: Number of requests (all ops).
    num_requests: int
    #: int64 per-request timestamps.
    timestamps: np.ndarray
    #: bool per-request write mask.
    is_write: np.ndarray
    #: int64, ``len == num_requests + 1``: ``block_start[i]`` is the flat
    #: index of request ``i``'s first written block (reads span nothing);
    #: ``block_start[-1]`` is the total written-block count.
    block_start: np.ndarray
    #: int64 LBA per written block, in stream order.
    lbas: np.ndarray
    #: int64 timestamp per written block (its request's timestamp).
    block_ts: np.ndarray
    #: int64, ``len == num_requests + 1``: running count of write requests.
    writes_before: np.ndarray


def expand_trace(trace: Trace,
                 logical_blocks: int | None = None) -> ExpandedTrace:
    """Expand ``trace`` into a flat per-block stream.

    When ``logical_blocks`` is given, every write request is bounds-checked
    up front and the first offender raises the same ``ValueError`` the
    scalar path would (the scalar path raises mid-replay, after applying
    the preceding requests; the batched engine validates before touching
    the store — observable only on invalid traces).
    """
    n = len(trace)
    ts = trace.timestamps
    is_write = trace.ops == OP_WRITE
    sizes = np.where(is_write, trace.sizes, 0)
    if logical_blocks is not None:
        ends = trace.offsets + trace.sizes
        bad = is_write & ((trace.offsets < 0) | (ends > logical_blocks))
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"request [{int(trace.offsets[i])}, {int(ends[i])}) outside "
                f"logical space [0, {logical_blocks})")
    block_start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=block_start[1:])
    total = int(block_start[-1])
    reps = sizes[is_write]
    run_ends = np.cumsum(reps)
    flat = np.arange(total, dtype=np.int64)
    starts = np.repeat(trace.offsets[is_write], reps)
    intra = flat - np.repeat(run_ends - reps, reps)
    writes_before = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(is_write, out=writes_before[1:])
    return ExpandedTrace(
        num_requests=n,
        timestamps=ts,
        is_write=is_write,
        block_start=block_start,
        lbas=starts + intra,
        block_ts=np.repeat(ts[is_write], reps),
        writes_before=writes_before,
    )
