"""Batched replay engine and performance tooling.

``repro.perf`` is the simulator's fast path: it turns a trace into a flat
block stream once (:mod:`~repro.perf.expand`), replays it in
GC-safe/deadline-safe chunks that are bit-identical to the scalar
per-request loop (:mod:`~repro.perf.engine`), and measures the result
(:mod:`~repro.perf.bench`).  :mod:`~repro.perf.tracecache` caches
synthetic traces on disk so repeated bench runs skip generation.

See ``docs/performance.md`` for the design and the equivalence argument.
"""

from repro.perf.batch import duplicate_chains
from repro.perf.engine import BatchedReplayEngine
from repro.perf.expand import ExpandedTrace, expand_trace

__all__ = [
    "BatchedReplayEngine",
    "ExpandedTrace",
    "duplicate_chains",
    "expand_trace",
]
