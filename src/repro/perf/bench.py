"""Replay-throughput bench harness and regression gate.

Measures end-to-end replay throughput (user blocks written per second)
for every placement policy on one volume of each cloud profile, under
both replay engines, and writes a ``BENCH_<date>.json`` snapshot at the
repo root.  Snapshots are diffable across commits: :func:`compare_bench`
flags any cell whose throughput dropped by more than a configurable
threshold against a previous snapshot, which is what the CI smoke job
gates on.

Timing methodology: each cell replays a *fresh* store ``repeats`` times
and keeps the best wall-clock run — the quantity under test is the
engine's cost, not the machine's scheduling noise — and the same cached
trace objects are reused across every cell so generation never pollutes
the measurement.

Observability modes form a third axis (``obs_modes``): ``off`` (no
recorder), ``metrics`` (default batch-capable :class:`ObsRecorder`), and
``trace`` (``trace_events=True``, scalar engine only — the batched
engine rejects per-event tracing, so trace x batched cells are skipped).
The snapshot's ``obs_overhead`` section reports the metrics-mode
slowdown factor (off-throughput over metrics-throughput) per cell.

Attribution forms a fourth axis (``attr_modes``): ``off`` (null sink)
and ``on`` (an :class:`AttributionRecorder` collecting chunk-bound
causes and the GC provenance ledger).  Attr-on cells run only at
``obs=off`` and feed the snapshot's ``attr_overhead`` map.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass

from repro.experiments.scale import Scale
from repro.experiments.workloads import PROFILES, fleet_for
from repro.lss.store import LogStructuredStore
from repro.placement.registry import available_policies, make_policy

#: Snapshot format version (bump on incompatible layout changes).
#: v2: cells carry an ``obs`` mode, snapshots an ``obs_overhead`` map.
#: v3: optional ``fleet`` section (sharded-replay scaling cells).
#: v4: cells carry an ``attr`` mode, snapshots an ``attr_overhead`` map.
SCHEMA_VERSION = 4

#: Default fractional throughput drop that counts as a regression.
DEFAULT_THRESHOLD = 0.25

#: Valid observability modes for the bench axis.
OBS_MODES = ("off", "metrics", "trace")

#: Valid attribution modes for the bench axis.
ATTR_MODES = ("off", "on")


@dataclass(frozen=True)
class BenchCell:
    """One (policy, workload, engine, obs, attr) throughput measurement."""

    policy: str
    workload: str
    engine: str
    seconds: float
    user_blocks: int
    blocks_per_sec: float
    obs: str = "off"
    attr: str = "off"


def _make_recorder(obs: str):
    """Fresh recorder for one timed replay (``None`` when obs is off)."""
    if obs == "off":
        return None
    from repro.obs.recorder import ObsRecorder
    if obs == "metrics":
        return ObsRecorder()
    if obs == "trace":
        return ObsRecorder(trace_events=True)
    raise ValueError(f"unknown obs mode {obs!r}; choose from {OBS_MODES}")


def _make_attribution(attr: str):
    """Fresh attribution sink for one timed replay (``None`` when off)."""
    if attr == "off":
        return None
    from repro.obs.attribution import AttributionRecorder
    if attr == "on":
        return AttributionRecorder()
    raise ValueError(
        f"unknown attr mode {attr!r}; choose from {ATTR_MODES}")


def run_bench(scale: Scale,
              policies: list[str] | None = None,
              profiles: tuple[str, ...] = PROFILES,
              engines: tuple[str, ...] = ("scalar", "batched"),
              repeats: int = 2,
              seed: int = 0,
              date: str | None = None,
              obs_modes: tuple[str, ...] = ("off",),
              attr_modes: tuple[str, ...] = ("off",)) -> dict:
    """Run the full bench matrix; returns the snapshot dict.

    One volume per profile (the first of the standard experiment fleet,
    so the trace cache is shared with the figure drivers).  ``obs_modes``
    adds instrumented cells; ``trace`` cells only run on the scalar
    engine (the batched engine rejects per-event tracing).
    ``attr_modes`` adds attribution-instrumented cells; ``attr=on``
    cells only run at ``obs=off`` so the two overhead axes never
    confound each other.
    """
    from repro.experiments.runner import store_config_for
    if policies is None:
        policies = available_policies()
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for mode in obs_modes:
        if mode not in OBS_MODES:
            raise ValueError(
                f"unknown obs mode {mode!r}; choose from {OBS_MODES}")
    for mode in attr_modes:
        if mode not in ATTR_MODES:
            raise ValueError(
                f"unknown attr mode {mode!r}; choose from {ATTR_MODES}")
    traces = {p: fleet_for(p, scale)[0] for p in profiles}
    cells: list[BenchCell] = []
    for policy_name in policies:
        for profile in profiles:
            trace = traces[profile]
            for engine in engines:
                for obs in obs_modes:
                    if obs == "trace" and engine == "batched":
                        continue
                    for attr in attr_modes:
                        if attr != "off" and obs != "off":
                            continue
                        best = None
                        blocks = 0
                        for _ in range(repeats):
                            cfg = store_config_for(scale.volume_blocks,
                                                   seed=seed)
                            store = LogStructuredStore(
                                cfg, make_policy(policy_name, cfg),
                                recorder=_make_recorder(obs),
                                attribution=_make_attribution(attr))
                            t0 = time.perf_counter()
                            stats = store.replay(trace, engine=engine)
                            dt = time.perf_counter() - t0
                            blocks = stats.user_blocks_requested
                            if best is None or dt < best:
                                best = dt
                        cells.append(BenchCell(
                            policy=policy_name, workload=profile,
                            engine=engine, obs=obs, attr=attr,
                            seconds=round(best, 6), user_blocks=blocks,
                            blocks_per_sec=round(blocks / best, 1)
                            if best else 0.0))
    return {
        "schema": SCHEMA_VERSION,
        "date": date or time.strftime("%Y-%m-%d"),
        "scale": scale.name,
        "repeats": repeats,
        "seed": seed,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cells": [asdict(c) for c in cells],
        "speedups": _speedups(cells),
        "obs_overhead": _obs_overhead(cells),
        "attr_overhead": _attr_overhead(cells),
    }


def _speedups(cells: list[BenchCell]) -> dict[str, float]:
    """batched-over-scalar throughput ratio per (policy, workload).

    Only uninstrumented cells count — the engine comparison must not be
    polluted by recorder overhead.
    """
    by_key: dict[tuple[str, str], dict[str, float]] = {}
    for c in cells:
        if c.obs != "off" or c.attr != "off":
            continue
        by_key.setdefault((c.policy, c.workload), {})[c.engine] = \
            c.blocks_per_sec
    out = {}
    for (policy, workload), eng in sorted(by_key.items()):
        if eng.get("scalar") and eng.get("batched"):
            out[f"{policy}/{workload}"] = round(
                eng["batched"] / eng["scalar"], 3)
    return out


def _obs_overhead(cells: list[BenchCell]) -> dict[str, float]:
    """Metrics-mode slowdown (off blk/s over metrics blk/s) per
    (policy, workload, engine); 1.0 means free instrumentation."""
    by_key: dict[tuple[str, str, str], dict[str, float]] = {}
    for c in cells:
        if c.attr != "off":
            continue
        by_key.setdefault((c.policy, c.workload, c.engine), {})[c.obs] = \
            c.blocks_per_sec
    out = {}
    for (policy, workload, engine), modes in sorted(by_key.items()):
        if modes.get("off") and modes.get("metrics"):
            out[f"{policy}/{workload}/{engine}"] = round(
                modes["off"] / modes["metrics"], 3)
    return out


def _attr_overhead(cells: list[BenchCell]) -> dict[str, float]:
    """Attribution slowdown (off blk/s over attr-on blk/s) per
    (policy, workload, engine), measured at ``obs=off`` on both sides;
    1.0 means free attribution."""
    by_key: dict[tuple[str, str, str], dict[str, float]] = {}
    for c in cells:
        if c.obs != "off":
            continue
        by_key.setdefault((c.policy, c.workload, c.engine), {})[c.attr] = \
            c.blocks_per_sec
    out = {}
    for (policy, workload, engine), modes in sorted(by_key.items()):
        if modes.get("off") and modes.get("on"):
            out[f"{policy}/{workload}/{engine}"] = round(
                modes["off"] / modes["on"], 3)
    return out


def run_fleet_bench(scale: Scale,
                    workers_list: tuple[int, ...] = (1, 2),
                    volumes: int = 8,
                    scheme: str = "adapt",
                    profile: str = "ali",
                    seed: int = 0) -> dict:
    """Fleet-replay scaling: blocks/sec vs worker count.

    One cell per worker count, all replaying the *same* fleet spec (so
    the per-volume work is identical and the only variable is the
    sharding).  Unlike the single-volume cells there is no best-of —
    a fleet run at smoke scale is long enough to dominate pool startup,
    and the quantity of interest is achieved end-to-end throughput.
    Returns the snapshot's ``fleet`` section.
    """
    from repro.fleet import FleetSpec, run_fleet
    spec = FleetSpec(profile=profile, scheme=scheme, num_volumes=volumes,
                     volume_blocks=scale.volume_blocks,
                     volume_requests=scale.volume_requests, seed=seed)
    cells = []
    for workers in workers_list:
        if workers < 1:
            raise ValueError("worker counts must be >= 1")
        result = run_fleet(spec, workers=workers)
        user_blocks = sum(v["stats"]["user_blocks_requested"]
                          for v in result.volumes)
        cells.append({
            "workers": workers,
            "volumes": volumes,
            "seconds": round(result.seconds, 6),
            "user_blocks": int(user_blocks),
            "blocks_per_sec": round(user_blocks / result.seconds, 1)
            if result.seconds else 0.0,
        })
    base = cells[0]["blocks_per_sec"] if cells else 0.0
    return {
        "scheme": scheme,
        "profile": profile,
        "cells": cells,
        "scaling": {
            f"{c['workers']}w": round(c["blocks_per_sec"] / base, 3)
            for c in cells if base},
    }


def bench_filename(date: str) -> str:
    return f"BENCH_{date.replace('-', '')}.json"


def write_bench(result: dict, out_dir: str = ".") -> str:
    """Write the snapshot as ``BENCH_<date>.json`` in ``out_dir``."""
    from repro.obs.atomicio import atomic_write
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, bench_filename(result["date"]))
    with atomic_write(path) as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def find_previous_bench(out_dir: str = ".",
                        exclude: str | None = None) -> str | None:
    """Latest ``BENCH_*.json`` in ``out_dir`` (dates sort lexically)."""
    try:
        names = sorted(n for n in os.listdir(out_dir)
                       if n.startswith("BENCH_") and n.endswith(".json"))
    except OSError:
        return None
    if exclude:
        ex = os.path.basename(exclude)
        names = [n for n in names if n != ex]
    return os.path.join(out_dir, names[-1]) if names else None


def compare_bench(current: dict, baseline: dict,
                  threshold: float = DEFAULT_THRESHOLD) -> list[dict]:
    """Cells whose throughput regressed by more than ``threshold``.

    Cells are matched on (policy, workload, engine, obs, attr); cells
    present in only one snapshot are ignored (policies and profiles may
    come and go).  Schema-1 baselines have no ``obs`` field and pre-v4
    baselines no ``attr`` field — their cells compare as ``off``, which
    is what they measured.  Snapshots from different scales never
    compare — a scale change is a workload change, not a regression.
    """
    if current.get("scale") != baseline.get("scale"):
        return []
    base = {(c["policy"], c["workload"], c["engine"],
             c.get("obs", "off"), c.get("attr", "off")): c
            for c in baseline.get("cells", [])}
    regressions = []
    for c in current.get("cells", []):
        b = base.get((c["policy"], c["workload"], c["engine"],
                      c.get("obs", "off"), c.get("attr", "off")))
        if b is None or not b["blocks_per_sec"]:
            continue
        change = c["blocks_per_sec"] / b["blocks_per_sec"] - 1.0
        if change < -threshold:
            regressions.append({
                "policy": c["policy"], "workload": c["workload"],
                "engine": c["engine"], "obs": c.get("obs", "off"),
                "baseline_blocks_per_sec": b["blocks_per_sec"],
                "current_blocks_per_sec": c["blocks_per_sec"],
                "change": round(change, 4),
            })
    return regressions


def render_bench(result: dict,
                 regressions: list[dict] | None = None,
                 baseline_path: str | None = None) -> str:
    """Human-readable table for the CLI and CI logs.

    The main table shows uninstrumented (``obs=off``) throughput; when
    the snapshot has instrumented cells, a second block lists the
    metrics-mode overhead factors.
    """
    from repro.experiments.report import render_table
    by_key: dict[tuple[str, str], dict[str, dict]] = {}
    for c in result["cells"]:
        if c.get("obs", "off") != "off" or c.get("attr", "off") != "off":
            continue
        by_key.setdefault((c["policy"], c["workload"]), {})[c["engine"]] = c
    rows = []
    slower = 0
    for (policy, workload), eng in sorted(by_key.items()):
        row = [policy, workload]
        for name in ("scalar", "batched"):
            c = eng.get(name)
            row.append(f"{c['blocks_per_sec']:,.0f}" if c else "-")
        ratio = result["speedups"].get(f"{policy}/{workload}")
        if ratio and ratio < 1.0:
            # The batched engine LOST to the scalar loop on this cell —
            # worth a loud marker: it usually means the chunk bounds
            # collapsed (heavy GC pressure) or the trace is too short to
            # amortize the vectorization overhead.
            row.append(f"{ratio:.2f}x !")
            slower += 1
        else:
            row.append(f"{ratio:.2f}x" if ratio else "-")
        rows.append(row)
    out = render_table(
        ["policy", "workload", "scalar blk/s", "batched blk/s", "speedup"],
        rows,
        title=f"replay throughput ({result['scale']} scale, best of "
              f"{result['repeats']})")
    if slower:
        out += (f"\n! {slower} cell(s) slower batched than scalar "
                f"(speedup < 1.00x)")
    overhead = result.get("obs_overhead") or {}
    if overhead:
        worst = max(overhead.values())
        out += (f"\nmetrics-mode overhead (off/metrics blk/s, "
                f"worst {worst:.3f}x):")
        for key, factor in sorted(overhead.items()):
            out += f"\n  {key}: {factor:.3f}x"
    attr_overhead = result.get("attr_overhead") or {}
    if attr_overhead:
        worst = max(attr_overhead.values())
        out += (f"\nattribution overhead (off/on blk/s, "
                f"worst {worst:.3f}x):")
        for key, factor in sorted(attr_overhead.items()):
            out += f"\n  {key}: {factor:.3f}x"
    fleet = result.get("fleet")
    if fleet:
        out += (f"\nfleet scaling ({fleet['scheme']}, "
                f"{fleet['cells'][0]['volumes']} x {fleet['profile']} "
                f"volumes):")
        for c in fleet["cells"]:
            ratio = fleet["scaling"].get(f"{c['workers']}w")
            out += (f"\n  {c['workers']} worker(s): "
                    f"{c['blocks_per_sec']:,.0f} blk/s"
                    + (f" ({ratio:.2f}x)" if ratio else ""))
    if regressions is None:
        return out
    if baseline_path:
        out += f"\nbaseline: {baseline_path}"
    if regressions:
        out += f"\n{len(regressions)} cell(s) regressed:"
        for r in regressions:
            out += (f"\n  {r['policy']}/{r['workload']}/{r['engine']}: "
                    f"{r['baseline_blocks_per_sec']:,.0f} -> "
                    f"{r['current_blocks_per_sec']:,.0f} blk/s "
                    f"({r['change'] * 100:+.1f}%)")
    else:
        out += "\nno cells regressed beyond threshold"
    return out


__all__ = ["ATTR_MODES", "BenchCell", "DEFAULT_THRESHOLD", "OBS_MODES",
           "SCHEMA_VERSION", "bench_filename", "compare_bench",
           "find_previous_bench", "render_bench", "run_bench",
           "run_fleet_bench", "write_bench"]
