"""Duplicate-LBA chain arithmetic shared by the batched fast paths.

A batch of user writes may touch the same LBA several times.  Scalar
replay handles this implicitly (each write reads the metadata its
predecessor just wrote); the vectorized paths need the dependency chains
explicitly: for every element, the index of its previous occurrence in the
batch, and whether it is the last occurrence (the one whose effect
survives into the per-LBA arrays).
"""

from __future__ import annotations

import numpy as np


def duplicate_chains(lbas: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Resolve duplicate-LBA dependencies inside one batch.

    Returns ``(prev, last_mask)``:

    * ``prev[i]`` — index of the previous occurrence of ``lbas[i]`` within
      the batch, or ``-1`` if ``i`` is the first occurrence.
    * ``last_mask[i]`` — ``True`` iff ``i`` is the last occurrence of its
      LBA (the write whose metadata update wins).
    """
    n = int(lbas.shape[0])
    prev = np.full(n, -1, dtype=np.int64)
    last_mask = np.ones(n, dtype=bool)
    if n < 2:
        return prev, last_mask
    order = np.argsort(lbas, kind="stable")
    sl = lbas[order]
    dup_sorted = np.empty(n, dtype=bool)
    dup_sorted[0] = False
    np.equal(sl[1:], sl[:-1], out=dup_sorted[1:])
    dup_pos = np.flatnonzero(dup_sorted)
    prev_idx = order[dup_pos - 1]
    prev[order[dup_pos]] = prev_idx
    last_mask[prev_idx] = False
    return prev, last_mask


def occurrence_index(lbas: np.ndarray) -> np.ndarray:
    """Rank of each element among equal LBAs (0 for first occurrence)."""
    n = int(lbas.shape[0])
    occ = np.zeros(n, dtype=np.int64)
    if n < 2:
        return occ
    order = np.argsort(lbas, kind="stable")
    sl = lbas[order]
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.not_equal(sl[1:], sl[:-1], out=new_run[1:])
    run_starts = np.flatnonzero(new_run)
    run_ids = np.cumsum(new_run) - 1
    occ[order] = np.arange(n, dtype=np.int64) - run_starts[run_ids]
    return occ
