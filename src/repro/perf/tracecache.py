"""On-disk cache for synthetic trace fleets.

Generating a paper-scale fleet costs longer than replaying it at smoke
scale, and every figure driver, the bench harness, and CI regenerate the
exact same deterministic fleets (fixed seed, fixed scale).  This module
memoises them on disk: a fleet is keyed by the SHA-256 of its generator
name + parameters + seed (plus a format version), and stored as one
compressed ``.npz`` holding each trace's four columns.

Layout and controls:

* cache root: ``$ADAPT_REPRO_CACHE_DIR`` or ``~/.cache/adapt-repro/``,
  one ``traces/<key>.npz`` per fleet;
* opt-out: ``ADAPT_REPRO_NO_TRACE_CACHE=1`` in the environment, the
  ``--no-trace-cache`` CLI flag, or :func:`set_enabled` in code;
* writes are atomic (temp file + ``os.replace``), so concurrent
  processes can only ever observe complete files;
* corrupt or unreadable cache files are treated as misses and
  overwritten, never raised.

The key deliberately includes a ``_FORMAT_VERSION`` that must be bumped
whenever generator semantics change; stale entries then simply stop
being hit (``clear`` prunes them).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Callable, Sequence

import numpy as np

from repro.trace.model import Trace

#: Bump when generator output or the npz layout changes incompatibly.
_FORMAT_VERSION = 1

#: Module-level switch flipped by ``--no-trace-cache`` (env wins if set).
_enabled = True


def set_enabled(enabled: bool) -> None:
    """Enable/disable the cache for this process (e.g. CLI opt-out)."""
    global _enabled
    _enabled = enabled


def cache_enabled() -> bool:
    """Whether lookups/stores are active right now."""
    if os.environ.get("ADAPT_REPRO_NO_TRACE_CACHE"):
        return False
    return _enabled


def cache_dir() -> str:
    """Resolved cache root (not created until first store)."""
    root = os.environ.get("ADAPT_REPRO_CACHE_DIR")
    if not root:
        root = os.path.join(os.path.expanduser("~"), ".cache",
                            "adapt-repro")
    return root


def fleet_key(generator: str, params: dict) -> str:
    """Stable content key for one fleet request.

    ``params`` must be JSON-serialisable; the generator's seed belongs in
    it — two fleets differing only by seed must never collide.
    """
    payload = json.dumps(
        {"v": _FORMAT_VERSION, "generator": generator, "params": params},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _path_for(key: str) -> str:
    return os.path.join(cache_dir(), "traces", f"{key}.npz")


def load_fleet(key: str) -> list[Trace] | None:
    """Return the cached fleet for ``key``, or ``None`` on miss/corruption."""
    if not cache_enabled():
        return None
    path = _path_for(key)
    try:
        with np.load(path, allow_pickle=False) as z:
            count = int(z["count"])
            volumes = [str(v) for v in z["volumes"]]
            traces = []
            for i in range(count):
                traces.append(Trace(
                    z[f"t{i}_timestamps"], z[f"t{i}_ops"],
                    z[f"t{i}_offsets"], z[f"t{i}_sizes"],
                    volume=volumes[i]))
            return traces
    except (OSError, KeyError, ValueError, IndexError):
        return None


def store_fleet(key: str, traces: Sequence[Trace]) -> str | None:
    """Atomically persist ``traces`` under ``key``; returns the path, or
    ``None`` when the cache is disabled or the filesystem refuses."""
    if not cache_enabled():
        return None
    path = _path_for(key)
    arrays: dict[str, np.ndarray] = {
        "count": np.int64(len(traces)),
        "volumes": np.array([t.volume for t in traces]),
    }
    for i, t in enumerate(traces):
        arrays[f"t{i}_timestamps"] = t.timestamps
        arrays[f"t{i}_ops"] = t.ops
        arrays[f"t{i}_offsets"] = t.offsets
        arrays[f"t{i}_sizes"] = t.sizes
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez_compressed(f, **arrays)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return None
    return path


def cached_fleet(generator: str, params: dict,
                 build: Callable[[], Sequence[Trace]]) -> list[Trace]:
    """Memoise ``build()`` under ``(generator, params)``.

    The returned traces are fresh objects either way (a cache hit
    deserialises new arrays), so callers may mutate them freely.
    """
    key = fleet_key(generator, params)
    fleet = load_fleet(key)
    if fleet is not None:
        return fleet
    fleet = list(build())
    store_fleet(key, fleet)
    return fleet


def clear() -> int:
    """Delete every cached fleet; returns the number of files removed."""
    root = os.path.join(cache_dir(), "traces")
    removed = 0
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    for name in names:
        if name.endswith(".npz"):
            try:
                os.unlink(os.path.join(root, name))
                removed += 1
            except OSError:
                pass
    return removed


__all__ = ["cache_dir", "cache_enabled", "cached_fleet", "clear",
           "fleet_key", "load_fleet", "set_enabled", "store_fleet"]
