"""On-disk cache for synthetic trace fleets.

Generating a paper-scale fleet costs longer than replaying it at smoke
scale, and every figure driver, the bench harness, and CI regenerate the
exact same deterministic fleets (fixed seed, fixed scale).  This module
memoises them on disk: a fleet is keyed by the SHA-256 of its generator
name + parameters + seed (plus a format version), and stored as one
compressed ``.npz`` holding each trace's four columns.

Layout and controls:

* cache root: ``$ADAPT_REPRO_CACHE_DIR`` or ``~/.cache/adapt-repro/``,
  one ``traces/<key>.npz`` per fleet;
* opt-out: ``ADAPT_REPRO_NO_TRACE_CACHE=1`` in the environment, the
  ``--no-trace-cache`` CLI flag, or :func:`set_enabled` in code;
* writes are atomic (temp file + ``os.replace``), so concurrent
  processes can only ever observe complete files;
* corrupt or unreadable cache files are treated as misses and
  overwritten, never raised;
* total size is capped: ``ADAPT_REPRO_TRACE_CACHE_MAX_MB`` (default
  :data:`DEFAULT_MAX_MB`) bounds the ``traces/`` directory, with
  least-recently-*used* entries evicted after each store — a cache hit
  refreshes the entry's mtime, so hot fleets survive.

The key deliberately includes a ``_FORMAT_VERSION`` that must be bumped
whenever generator semantics change; stale entries then simply stop
being hit (``clear`` prunes them, and the size cap ages them out).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Callable, Sequence

import numpy as np

from repro.trace.model import Trace

#: Bump when generator output or the npz layout changes incompatibly.
#: v2: per-tenant hashed seed derivation replaced order-dependent
#: ``spawn_rngs`` enumeration in ``generate_fleet``.
_FORMAT_VERSION = 2

#: Default size cap (MiB) for the trace cache directory.
DEFAULT_MAX_MB = 512

#: Environment override for the size cap; ``0`` disables eviction.
MAX_MB_ENV = "ADAPT_REPRO_TRACE_CACHE_MAX_MB"

#: Module-level switch flipped by ``--no-trace-cache`` (env wins if set).
_enabled = True


def set_enabled(enabled: bool) -> None:
    """Enable/disable the cache for this process (e.g. CLI opt-out)."""
    global _enabled
    _enabled = enabled


def cache_enabled() -> bool:
    """Whether lookups/stores are active right now."""
    if os.environ.get("ADAPT_REPRO_NO_TRACE_CACHE"):
        return False
    return _enabled


def cache_dir() -> str:
    """Resolved cache root (not created until first store)."""
    root = os.environ.get("ADAPT_REPRO_CACHE_DIR")
    if not root:
        root = os.path.join(os.path.expanduser("~"), ".cache",
                            "adapt-repro")
    return root


def fleet_key(generator: str, params: dict) -> str:
    """Stable content key for one fleet request.

    ``params`` must be JSON-serialisable; the generator's seed belongs in
    it — two fleets differing only by seed must never collide.
    """
    payload = json.dumps(
        {"v": _FORMAT_VERSION, "generator": generator, "params": params},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def max_cache_bytes() -> int:
    """Resolved size cap in bytes; ``0`` means unlimited."""
    raw = os.environ.get(MAX_MB_ENV)
    if raw is None or raw == "":
        return DEFAULT_MAX_MB * 1024 * 1024
    try:
        mb = float(raw)
    except ValueError:
        return DEFAULT_MAX_MB * 1024 * 1024
    return max(0, int(mb * 1024 * 1024))


def _path_for(key: str) -> str:
    return os.path.join(cache_dir(), "traces", f"{key}.npz")


def _touch(path: str) -> None:
    """Refresh ``path``'s mtime so LRU eviction sees it as recently used."""
    try:
        os.utime(path)
    except OSError:
        pass


def evict_lru(limit_bytes: int | None = None) -> int:
    """Evict least-recently-used entries until under the cap.

    ``limit_bytes`` defaults to :func:`max_cache_bytes`; ``0`` (or less)
    disables eviction.  Returns the number of files removed.  Races with
    concurrent processes are benign: an unlink of an already-removed file
    is ignored, and a concurrently re-stored entry simply survives until
    the next store.
    """
    if limit_bytes is None:
        limit_bytes = max_cache_bytes()
    if limit_bytes <= 0:
        return 0
    root = os.path.join(cache_dir(), "traces")
    entries = []
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".npz"):
            continue
        path = os.path.join(root, name)
        try:
            st = os.stat(path)
        except OSError:
            continue
        entries.append((st.st_mtime, st.st_size, path))
    total = sum(size for _, size, _ in entries)
    removed = 0
    for _, size, path in sorted(entries):
        if total <= limit_bytes:
            break
        try:
            os.unlink(path)
        except OSError:
            continue
        total -= size
        removed += 1
    return removed


def load_fleet(key: str) -> list[Trace] | None:
    """Return the cached fleet for ``key``, or ``None`` on miss/corruption."""
    if not cache_enabled():
        return None
    path = _path_for(key)
    try:
        with np.load(path, allow_pickle=False) as z:
            count = int(z["count"])
            volumes = [str(v) for v in z["volumes"]]
            traces = []
            for i in range(count):
                traces.append(Trace(
                    z[f"t{i}_timestamps"], z[f"t{i}_ops"],
                    z[f"t{i}_offsets"], z[f"t{i}_sizes"],
                    volume=volumes[i]))
        _touch(path)
        return traces
    except (OSError, KeyError, ValueError, IndexError):
        return None


def store_fleet(key: str, traces: Sequence[Trace]) -> str | None:
    """Atomically persist ``traces`` under ``key``; returns the path, or
    ``None`` when the cache is disabled or the filesystem refuses."""
    if not cache_enabled():
        return None
    path = _path_for(key)
    arrays: dict[str, np.ndarray] = {
        "count": np.int64(len(traces)),
        "volumes": np.array([t.volume for t in traces]),
    }
    for i, t in enumerate(traces):
        arrays[f"t{i}_timestamps"] = t.timestamps
        arrays[f"t{i}_ops"] = t.ops
        arrays[f"t{i}_offsets"] = t.offsets
        arrays[f"t{i}_sizes"] = t.sizes
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez_compressed(f, **arrays)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return None
    evict_lru()
    return path


def cached_fleet(generator: str, params: dict,
                 build: Callable[[], Sequence[Trace]]) -> list[Trace]:
    """Memoise ``build()`` under ``(generator, params)``.

    The returned traces are fresh objects either way (a cache hit
    deserialises new arrays), so callers may mutate them freely.
    """
    key = fleet_key(generator, params)
    fleet = load_fleet(key)
    if fleet is not None:
        return fleet
    fleet = list(build())
    store_fleet(key, fleet)
    return fleet


def clear() -> int:
    """Delete every cached fleet; returns the number of files removed."""
    root = os.path.join(cache_dir(), "traces")
    removed = 0
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    for name in names:
        if name.endswith(".npz"):
            try:
                os.unlink(os.path.join(root, name))
                removed += 1
            except OSError:
                pass
    return removed


__all__ = ["DEFAULT_MAX_MB", "MAX_MB_ENV", "cache_dir", "cache_enabled",
           "cached_fleet", "clear", "evict_lru", "fleet_key",
           "load_fleet", "max_cache_bytes", "set_enabled", "store_fleet"]
