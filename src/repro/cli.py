"""Command-line interface: regenerate any figure of the paper.

Examples::

    adapt-repro list
    adapt-repro fig8 --scale smoke
    adapt-repro fig11 --scale default
    adapt-repro replay --scheme adapt --profile ali --volumes 3
    adapt-repro replay --scheme adapt --metrics-out out/
    adapt-repro obs --scheme adapt --out obs-out/
    adapt-repro obs --scheme adapt --no-trace --timeline-every 4096
    adapt-repro obs --scheme adapt --no-trace --attribution
    adapt-repro analyze --trace run.trace.json --attribution a.json
    adapt-repro bench --scale default
    adapt-repro bench --obs off,metrics --profile-out bench.trace.json
    adapt-repro bench --fleet-workers 1,2,4 --fleet-volumes 16
    REPRO_SCALE=smoke adapt-repro bench --check
    adapt-repro fleet --volumes 64 --workers 4 --out fleet-out
    adapt-repro fleet --volumes 64 --workers 4 --out fleet-out --resume
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import scale as scale_mod
from repro.experiments.report import render_table


def _get_scale(name: str):
    return scale_mod._PRESETS[name]


def _cmd_fig2(args) -> str:
    from repro.experiments.fig2 import render_fig2, run_fig2
    return render_fig2(run_fig2(_get_scale(args.scale)))


def _cmd_fig3(args) -> str:
    from repro.experiments.fig3 import render_fig3, run_fig3
    return render_fig3(run_fig3(_get_scale(args.scale)))


def _cmd_fig8(args) -> str:
    from repro.experiments.fig8 import render_fig8, run_fig8
    return render_fig8(run_fig8(_get_scale(args.scale)))


def _cmd_fig9(args) -> str:
    from repro.experiments.fig9 import render_fig9, run_fig9
    return render_fig9(run_fig9(_get_scale(args.scale)))


def _cmd_fig10(args) -> str:
    from repro.experiments.fig10 import render_fig10, run_fig10
    return render_fig10(run_fig10(_get_scale(args.scale)))


def _cmd_fig11(args) -> str:
    from repro.experiments.fig11 import (render_fig11, run_fig11_density,
                                         run_fig11_skew)
    s = _get_scale(args.scale)
    return render_fig11(run_fig11_density(s) + run_fig11_skew(s))


def _cmd_fig12(args) -> str:
    from repro.experiments.fig12 import (render_fig12, run_fig12a,
                                         run_fig12b)
    s = _get_scale(args.scale)
    return render_fig12(run_fig12a(s), run_fig12b(s))


def _cmd_ablation(args) -> str:
    from repro.experiments.ablation import (render_ablation,
                                            run_mechanism_ablation,
                                            run_victim_ablation)
    s = _get_scale(args.scale)
    return render_ablation(run_mechanism_ablation(s) +
                           run_victim_ablation(s))


def _cmd_multistream(args) -> str:
    from repro.experiments.multistream import (render_multistream,
                                               run_multistream)
    return render_multistream(run_multistream(_get_scale(args.scale)))


def _cmd_shared(args) -> str:
    from repro.experiments.shared_store import (render_shared_store,
                                                run_shared_store)
    return render_shared_store(run_shared_store(_get_scale(args.scale)))


def _export_observability(recorder, out_dir: str, stem: str) -> list[str]:
    """Write the observability artifacts for one replay; returns the
    paths written.  Exporters create parent directories and write
    atomically, so ``out_dir`` may not exist yet."""
    from repro.obs.exporters import (write_events_jsonl, write_prometheus,
                                     write_timeline_csv,
                                     write_timeseries_csv)
    events = os.path.join(out_dir, f"{stem}.events.jsonl")
    series = os.path.join(out_dir, f"{stem}.timeseries.csv")
    prom = os.path.join(out_dir, f"{stem}.prom")
    write_events_jsonl(recorder.tracer, events)
    write_timeseries_csv(recorder, series)
    write_prometheus(recorder.registry, prom)
    written = [events, series, prom]
    if recorder.timeline is not None and len(recorder.timeline):
        timeline = os.path.join(out_dir, f"{stem}.timeline.csv")
        write_timeline_csv(recorder.timeline, timeline)
        written.append(timeline)
    return written


def _cmd_replay(args) -> str:
    from repro.experiments.runner import replay_volume
    from repro.obs.recorder import ObsRecorder
    from repro.trace.synthetic.cloud import generate_fleet
    s = _get_scale(args.scale)
    fleet = generate_fleet(args.profile, args.volumes,
                           unique_blocks=s.volume_blocks,
                           num_requests=s.volume_requests, seed=args.seed)
    rows = []
    written: list[str] = []
    for trace in fleet:
        recorder = None
        if args.metrics_out:
            spill = os.path.join(args.metrics_out,
                                 f"{trace.volume}.events.jsonl")
            recorder = ObsRecorder(spill_path=spill)
        r = replay_volume(args.scheme, trace, victim=args.victim,
                          logical_blocks=s.volume_blocks, seed=args.seed,
                          recorder=recorder)
        if recorder is not None:
            written += _export_observability(recorder, args.metrics_out,
                                             trace.volume)
        rows.append([r.volume, r.write_amplification, r.padding_ratio,
                     r.gc_ratio])
    table = render_table(["volume", "WA", "padding_ratio", "gc_ratio"],
                         rows, title=f"{args.scheme} on {args.profile} "
                                     f"({args.victim})")
    if written:
        table += "\nmetrics written:\n" + "\n".join(
            f"  {p}" for p in written)
    return table


def _cmd_validate(args) -> tuple[str, bool]:
    """Differential sweep: every requested policy vs the dict-based oracle.

    Returns the rendered report and whether every cell matched.
    """
    from repro.validate.differential import (default_workloads,
                                             render_report,
                                             run_differential)
    policies = args.policies.split(",") if args.policies else None
    requests = 600 if args.scale == "smoke" else 1200
    workloads = default_workloads(num_requests=requests, seed=args.seed)
    report = run_differential(policies=policies, workloads=workloads,
                              victim=args.victim, seed=args.seed,
                              engine=args.engine)
    out = render_report(report)
    if not report.ok:
        out += (f"\nVALIDATION FAILED: {len(report.failures)} cell(s) "
                f"diverged from the oracle")
    return out, report.ok


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _cmd_obs(args) -> str:
    """Replay one volume with observability and export artifacts.

    Default mode traces every event (scalar replay).  ``--no-trace``
    keeps only aggregated metrics, which is batch-capable and rides the
    fast engine.  ``--timeline-every N`` additionally records a replay
    timeline sampled every N user blocks.
    """
    from repro.experiments.runner import replay_volume
    from repro.obs.recorder import ObsRecorder
    from repro.obs.timeline import ReplayTimeline
    from repro.trace.synthetic.cloud import generate_fleet
    s = _get_scale(args.scale)
    trace = generate_fleet(args.profile, 1, unique_blocks=s.volume_blocks,
                           num_requests=s.volume_requests,
                           seed=args.seed)[0]
    spill = os.path.join(args.out, f"{trace.volume}.events.jsonl")
    timeline = None
    if args.timeline_every:
        timeline = ReplayTimeline(every_blocks=args.timeline_every)
    recorder = ObsRecorder(sample_every_blocks=args.sample_every,
                           spill_path=spill,
                           trace_events=not args.no_trace,
                           event_sample_every=args.event_sample_every,
                           timeline=timeline)
    attribution = None
    if args.attribution:
        from repro.obs.attribution import AttributionRecorder
        attribution = AttributionRecorder()
    result = replay_volume(args.scheme, trace, victim=args.victim,
                           logical_blocks=s.volume_blocks, seed=args.seed,
                           recorder=recorder, attribution=attribution)
    written = _export_observability(recorder, args.out, trace.volume)
    if attribution is not None:
        from repro.obs.attribution import write_attribution_json
        attr_path = os.path.join(args.out,
                                 f"{trace.volume}.attribution.json")
        write_attribution_json(result.attribution, attr_path)
        written.append(attr_path)
    counts = recorder.tracer.counts
    rows = [[k, counts[k]] for k in sorted(counts)]
    rows.append(["(series rows)", len(recorder.series)])
    if timeline is not None:
        rows.append(["(timeline rows)", len(timeline)])
    table = render_table(
        ["event", "count"], rows,
        title=f"{args.scheme} on {trace.volume}: "
              f"WA={result.write_amplification:.3f} "
              f"padding={result.padding_ratio:.3f} "
              f"gc={result.gc_ratio:.3f}")
    return table + "\nartifacts:\n" + "\n".join(f"  {p}" for p in written)


def _cmd_bench(args) -> tuple[str, bool]:
    """Throughput bench + snapshot + optional regression gate.

    Returns the rendered report and whether the gate passed (always
    True without ``--check``).
    """
    from repro.perf import tracecache
    from repro.perf.bench import (compare_bench, find_previous_bench,
                                  render_bench, run_bench, write_bench)
    if args.no_trace_cache:
        tracecache.set_enabled(False)
    if args.scale:
        scale = _get_scale(args.scale)
    else:
        scale = scale_mod.current_scale("default")
    policies = args.policies.split(",") if args.policies else None
    engines = tuple(args.engines.split(","))
    obs_modes = tuple(args.obs.split(","))
    kwargs = {}
    if args.workloads:
        from repro.experiments.workloads import PROFILES
        profiles = tuple(args.workloads.split(","))
        unknown = [p for p in profiles if p not in PROFILES]
        if unknown:
            return (f"unknown workload(s) {','.join(unknown)}; "
                    f"choose from {','.join(PROFILES)}", False)
        kwargs["profiles"] = profiles
    attr_modes = tuple(args.attr.split(","))
    result = run_bench(scale, policies=policies, engines=engines,
                       repeats=args.repeats, seed=args.seed,
                       obs_modes=obs_modes, attr_modes=attr_modes,
                       **kwargs)
    if args.fleet_workers:
        from repro.perf.bench import run_fleet_bench
        workers = tuple(int(w) for w in args.fleet_workers.split(","))
        result["fleet"] = run_fleet_bench(
            scale, workers_list=workers, volumes=args.fleet_volumes,
            seed=args.seed)
    path = write_bench(result, args.out)
    baseline_path = args.baseline or find_previous_bench(
        args.out, exclude=path)
    regressions: list | None = None
    if baseline_path:
        import json
        try:
            with open(baseline_path) as f:
                baseline = json.load(f)
        except (OSError, ValueError) as exc:
            return (f"cannot read baseline {baseline_path}: {exc}",
                    not args.check)
        regressions = compare_bench(result, baseline,
                                    threshold=args.threshold)
    out = render_bench(result, regressions, baseline_path)
    out += f"\nsnapshot written: {path}"
    ok = not (args.check and regressions)
    if not ok:
        out += (f"\nBENCH FAILED: {len(regressions)} cell(s) regressed "
                f"more than {args.threshold * 100:.0f}%")
    return out, ok


def _cmd_analyze(args) -> tuple[str, bool]:
    """Bottleneck explainer over profiler/attribution/timeline artifacts.

    Returns the rendered report and whether at least one artifact was
    readable (so a typo'd path exits non-zero instead of printing an
    empty report).
    """
    from repro.obs.analyze import (analyze, load_chrome_trace,
                                   load_timeline_tail, render_report,
                                   write_report_json)
    import json as _json
    trace = attribution = timeline = None
    errors: list[str] = []
    if args.trace:
        try:
            trace = load_chrome_trace(args.trace)
        except (OSError, ValueError) as exc:
            errors.append(f"cannot read trace {args.trace}: {exc}")
    if args.attribution:
        try:
            with open(args.attribution, encoding="utf-8") as f:
                attribution = _json.load(f)
        except (OSError, ValueError) as exc:
            errors.append(
                f"cannot read attribution {args.attribution}: {exc}")
    if args.timeline:
        try:
            timeline = load_timeline_tail(args.timeline)
        except (OSError, ValueError) as exc:
            errors.append(f"cannot read timeline {args.timeline}: {exc}")
    loaded = [x for x in (trace, attribution, timeline) if x is not None]
    report = analyze(trace=trace, attribution=attribution,
                     timeline=timeline)
    out = render_report(report)
    if errors:
        out += "\n".join(errors) + "\n"
    if args.out:
        path = write_report_json(report, args.out)
        out += f"report written: {path}"
    return out.rstrip(), bool(loaded) and not errors


def _cmd_fleet(args) -> tuple[str, bool]:
    """Sharded fleet replay with checkpoint/resume.

    Returns the rendered fleet report and whether the run completed
    (an interrupted run exits non-zero so scripts notice and resume).
    """
    from repro.fleet import FleetSpec, render_fleet, run_fleet
    s = _get_scale(args.scale)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.chunk_requests is not None:
        overrides["chunk_requests"] = args.chunk_requests
    spec = FleetSpec(
        profile=args.profile, scheme=args.scheme, victim=args.victim,
        num_volumes=args.volumes,
        volume_blocks=args.volume_blocks or s.volume_blocks,
        volume_requests=args.volume_requests or s.volume_requests,
        engine=args.engine, collect_metrics=args.metrics,
        timeline_every=args.timeline_every,
        collect_attribution=args.attribution, **overrides)
    result = run_fleet(spec, workers=args.workers,
                       checkpoint_every=args.checkpoint_every,
                       out_dir=args.out, resume=args.resume)
    if not result.complete:
        done = len(result.volumes)
        out = (f"fleet run interrupted: {done}/{spec.num_volumes} "
               f"volume(s) finished")
        if args.out:
            out += (f"\ncheckpoints in {args.out}; rerun with --resume "
                    f"and the same --workers to continue")
        return out, False
    out = render_fleet(result.summary)
    out += (f"\n{result.chunks_replayed} chunk(s) replayed across "
            f"{result.num_shards} shard(s) in {result.seconds:.2f}s")
    if result.summary_path:
        out += f"\nsummary written: {result.summary_path}"
    return out, True


_FIGS = {
    "fig2": _cmd_fig2, "fig3": _cmd_fig3, "fig8": _cmd_fig8,
    "fig9": _cmd_fig9, "fig10": _cmd_fig10, "fig11": _cmd_fig11,
    "fig12": _cmd_fig12, "ablation": _cmd_ablation,
    "multistream": _cmd_multistream, "shared-store": _cmd_shared,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adapt-repro",
        description="Regenerate the ADAPT (ICPP'25) evaluation figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_profile_out(p):
        p.add_argument("--profile-out", default=None, metavar="JSON",
                       help="write a Chrome trace_event phase profile "
                            "of the run to JSON (load in about:tracing "
                            "or speedscope) and print the top phases")

    for name in _FIGS:
        p = sub.add_parser(name, help=f"run the {name} experiment")
        p.add_argument("--scale", default="smoke",
                       choices=["smoke", "default", "paper"])
        add_profile_out(p)

    p = sub.add_parser("replay", help="replay one scheme on a fleet")
    p.add_argument("--scheme", default="adapt")
    p.add_argument("--profile", default="ali",
                   choices=["ali", "tencent", "msrc"])
    p.add_argument("--victim", default="greedy")
    p.add_argument("--volumes", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scale", default="smoke",
                   choices=["smoke", "default", "paper"])
    p.add_argument("--metrics-out", default=None, metavar="DIR",
                   help="export per-volume observability artifacts "
                        "(events JSONL, time-series CSV, Prometheus "
                        "snapshot) into DIR")
    add_profile_out(p)

    p = sub.add_parser("obs", help="replay one volume with full "
                                   "observability and export artifacts")
    p.add_argument("--scheme", default="adapt")
    p.add_argument("--profile", default="ali",
                   choices=["ali", "tencent", "msrc"])
    p.add_argument("--victim", default="greedy")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scale", default="smoke",
                   choices=["smoke", "default", "paper"])
    p.add_argument("--out", default="obs-out", metavar="DIR",
                   help="artifact output directory (default: obs-out)")
    p.add_argument("--sample-every", type=_positive_int, default=1024,
                   metavar="BLOCKS",
                   help="time-series sampling period in user blocks")
    p.add_argument("--no-trace", action="store_true",
                   help="skip per-event tracing; aggregated metrics only "
                        "(batch-capable, so the fast engine is used)")
    p.add_argument("--event-sample-every", type=_positive_int, default=1,
                   metavar="N", help="keep every Nth traced event "
                                     "(default: 1, keep all)")
    p.add_argument("--timeline-every", type=_positive_int, default=None,
                   metavar="BLOCKS",
                   help="record a replay timeline (WA, padding, "
                        "occupancy, threshold) every BLOCKS user blocks "
                        "and export it as CSV")
    p.add_argument("--attribution", action="store_true",
                   help="collect causal attribution (chunk-bound causes, "
                        "GC provenance, per-group WA ledger) and export "
                        "<volume>.attribution.json")
    add_profile_out(p)

    p = sub.add_parser("analyze",
                       help="explain a run's bottlenecks from its "
                            "profiler trace, attribution JSON, and/or "
                            "timeline artifacts")
    p.add_argument("--trace", default=None, metavar="JSON",
                   help="Chrome trace_event profile "
                        "(from any command's --profile-out)")
    p.add_argument("--attribution", default=None, metavar="JSON",
                   help="attribution snapshot "
                        "(from obs --attribution or fleet --attribution)")
    p.add_argument("--timeline", default=None, metavar="CSV",
                   help="replay timeline CSV/JSONL "
                        "(from obs --timeline-every)")
    p.add_argument("--out", default=None, metavar="JSON",
                   help="also write the report as JSON (atomic)")

    p = sub.add_parser("validate",
                       help="differential sweep: fast store vs the "
                            "dict-based oracle for every placement policy")
    p.add_argument("--policies", default=None, metavar="A,B,...",
                   help="comma-separated policy names "
                        "(default: all registered)")
    p.add_argument("--victim", default="greedy",
                   choices=["greedy", "cost-benefit"],
                   help="victim policy (the oracle supports only the "
                        "deterministic ones)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scale", default="smoke",
                   choices=["smoke", "default"])
    p.add_argument("--engine", default="batched",
                   choices=["batched", "scalar", "auto"],
                   help="replay engine driving the fast store "
                        "(default: batched, so the sweep also proves "
                        "engine equivalence)")

    p = sub.add_parser("bench",
                       help="measure replay throughput per policy x "
                            "workload x engine; write BENCH_<date>.json")
    p.add_argument("--scale", default=None,
                   choices=["smoke", "default", "paper"],
                   help="workload scale (default: $REPRO_SCALE or "
                        "'default')")
    p.add_argument("--policies", default=None, metavar="A,B,...",
                   help="comma-separated policy names "
                        "(default: all registered)")
    p.add_argument("--workloads", default=None, metavar="W,W,...",
                   help="comma-separated workload profiles to bench "
                        "(e.g. ali,tencent; default: all profiles)")
    p.add_argument("--engines", default="scalar,batched",
                   metavar="E,E", help="engines to time "
                                       "(default: scalar,batched)")
    p.add_argument("--repeats", "--repeat", type=_positive_int, default=2,
                   dest="repeats", metavar="N",
                   help="replays per cell; best run is kept (default: 2)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=".", metavar="DIR",
                   help="snapshot directory (default: repo root)")
    p.add_argument("--baseline", default=None, metavar="JSON",
                   help="snapshot to diff against (default: newest "
                        "other BENCH_*.json in --out)")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="fractional throughput drop that counts as a "
                        "regression (default: 0.25)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero when any cell regresses beyond "
                        "the threshold")
    p.add_argument("--no-trace-cache", action="store_true",
                   help="bypass the on-disk synthetic-trace cache")
    p.add_argument("--obs", default="off", metavar="M,M",
                   help="comma-separated observability modes to bench "
                        "(off, metrics, trace; default: off). trace "
                        "cells run on the scalar engine only")
    p.add_argument("--attr", default="off", metavar="M,M",
                   help="comma-separated attribution modes to bench "
                        "(off, on; default: off). 'on' cells measure "
                        "causal-attribution overhead")
    p.add_argument("--fleet-workers", default=None, metavar="N,N",
                   help="also bench sharded fleet replay at these worker "
                        "counts (e.g. 1,2,4); adds a 'fleet' section to "
                        "the snapshot")
    p.add_argument("--fleet-volumes", type=_positive_int, default=8,
                   metavar="N",
                   help="fleet size for --fleet-workers cells "
                        "(default: 8)")
    add_profile_out(p)

    p = sub.add_parser("fleet",
                       help="sharded multi-process fleet replay with "
                            "streaming ingestion and checkpoint/resume")
    p.add_argument("--volumes", type=_positive_int, default=8,
                   help="tenant volume count (default: 8)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker process count == shard count; a resumed "
                        "run must reuse it (default: 1)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   metavar="CHUNKS",
                   help="checkpoint each shard every CHUNKS replayed "
                        "chunks (0 disables; requires --out)")
    p.add_argument("--resume", action="store_true",
                   help="resume from checkpoints in --out")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="artifact directory: fleet_summary.json, "
                        "fleet_runinfo.json, checkpoints/, timelines/")
    p.add_argument("--scheme", default="adapt")
    p.add_argument("--profile", default="ali",
                   choices=["ali", "tencent", "msrc"])
    p.add_argument("--victim", default="greedy")
    p.add_argument("--scale", default="smoke",
                   choices=["smoke", "default", "paper"],
                   help="per-volume size preset (default: smoke); "
                        "--volume-blocks/--volume-requests override")
    p.add_argument("--volume-blocks", type=_positive_int, default=None,
                   help="per-volume logical blocks (overrides --scale)")
    p.add_argument("--volume-requests", type=_positive_int, default=None,
                   help="per-volume request count (overrides --scale)")
    p.add_argument("--seed", type=int, default=None,
                   help="fleet master seed (default: the experiment "
                        "fleets' seed)")
    p.add_argument("--chunk-requests", type=_positive_int, default=None,
                   metavar="N",
                   help="streaming chunk size in requests (per-volume "
                        "replay memory is O(N))")
    p.add_argument("--engine", default="auto",
                   choices=["auto", "batched", "scalar"])
    p.add_argument("--metrics", action="store_true",
                   help="attach a metrics recorder per volume and carry "
                        "snapshots into the summary")
    p.add_argument("--attribution", action="store_true",
                   help="collect per-volume causal attribution and merge "
                        "it deterministically into the summary")
    p.add_argument("--timeline-every", type=_positive_int, default=None,
                   metavar="BLOCKS",
                   help="export a per-volume replay timeline CSV sampled "
                        "every BLOCKS user blocks (requires --out)")
    add_profile_out(p)
    return parser


def _dispatch(args) -> tuple[str, bool]:
    if args.command == "replay":
        return _cmd_replay(args), True
    if args.command == "obs":
        return _cmd_obs(args), True
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    return _FIGS[args.command](args), True


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:", ", ".join(sorted(_FIGS)),
              "+ replay, obs, analyze, validate, bench, fleet")
        return 0
    profile_out = getattr(args, "profile_out", None)
    if not profile_out:
        out, ok = _dispatch(args)
        print(out)
        return 0 if ok else 1
    # Install a process-global phase profiler around the whole command;
    # stores constructed during the run pick it up and report spans.
    from repro.obs import profile as obs_profile
    profiler = obs_profile.PhaseProfiler()
    obs_profile.set_current(profiler)
    try:
        out, ok = _dispatch(args)
    finally:
        obs_profile.set_current(None)
    profiler.write_chrome_trace(profile_out)
    print(out)
    print(profiler.top_table())
    print(f"profile written: {profile_out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
