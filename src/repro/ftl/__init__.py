"""In-device FTL model: quantifies the multi-stream claim of §3.1.

ADAPT "can also leverage SSDs' multi-stream capability to reduce in-device
WA by mapping groups to streams one-to-one".  This package provides a
page-mapped FTL with per-stream active flash blocks and a bridge that feeds
it the store's physical chunk writes and segment erases, so the in-device
write amplification of single-stream vs per-group-stream placement can be
measured directly.
"""

from repro.ftl.nand import FlashGeometry, PageMappedFTL
from repro.ftl.bridge import StreamBridge, measure_device_wa

__all__ = ["FlashGeometry", "PageMappedFTL", "StreamBridge",
           "measure_device_wa"]
