"""Bridge between the LSS store and the device FTL.

Subscribes to the store's physical events: every chunk flush becomes
``chunk_blocks`` page programs on the device (stream = the group id in
multi-stream mode, 0 otherwise), and every segment reclamation becomes a
trim of the segment's page range — the discard a production LSS issues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.ftl.nand import FlashGeometry, PageMappedFTL
from repro.lss.store import LogStructuredStore
from repro.trace.model import Trace


class StreamBridge:
    """Feeds a store's flush/erase stream into a :class:`PageMappedFTL`."""

    def __init__(self, store: LogStructuredStore,
                 multi_stream: bool = True,
                 pages_per_block: int = 64,
                 flash_op: float = 0.15) -> None:
        if not 0 < flash_op < 1:
            raise ConfigError("flash_op must be in (0, 1)")
        self.store = store
        self.multi_stream = multi_stream
        logical_pages = store.config.physical_blocks
        num_streams = len(store.groups) if multi_stream else 1
        blocks_needed = int(logical_pages * (1 + flash_op)) \
            // pages_per_block + num_streams + 8
        self.ftl = PageMappedFTL(
            FlashGeometry(num_blocks=blocks_needed,
                          pages_per_block=pages_per_block),
            logical_pages=logical_pages,
            num_streams=num_streams,
        )
        store.flush_listeners.append(self._on_flush)
        store.reclaim_listeners.append(self._on_reclaim)

    def _on_flush(self, group, flush, device_lba_start: int) -> None:
        stream = group.gid if self.multi_stream else 0
        for lpn in range(device_lba_start,
                         device_lba_start + flush.total_blocks):
            self.ftl.write(lpn, stream)

    def _on_reclaim(self, seg: int) -> None:
        seg_blocks = self.store.config.segment_blocks
        self.ftl.trim(seg * seg_blocks, seg_blocks)

    def detach(self) -> None:
        self.store.flush_listeners.remove(self._on_flush)
        self.store.reclaim_listeners.remove(self._on_reclaim)


@dataclass(frozen=True)
class DeviceWaResult:
    scheme: str
    multi_stream: bool
    host_wa: float          # LSS-level WA (blocks to array / user blocks)
    device_wa: float        # in-device WA (page programs / host pages)
    end_to_end_wa: float    # product: flash programs per user block

    @property
    def label(self) -> str:
        return "multi-stream" if self.multi_stream else "single-stream"


def measure_device_wa(scheme: str, trace: Trace, config,
                      multi_stream: bool, **policy_kwargs) -> DeviceWaResult:
    """Replay ``trace`` with an attached FTL; report host/device/total WA."""
    from repro.placement.registry import make_policy

    policy = make_policy(scheme, config, **policy_kwargs)
    store = LogStructuredStore(config, policy)
    bridge = StreamBridge(store, multi_stream=multi_stream)
    stats = store.replay(trace)
    host_wa = stats.write_amplification()
    device_wa = bridge.ftl.device_write_amplification()
    return DeviceWaResult(scheme=scheme, multi_stream=multi_stream,
                          host_wa=host_wa, device_wa=device_wa,
                          end_to_end_wa=host_wa * device_wa)
