"""Page-mapped FTL over a NAND flash model with multi-stream support.

The device exposes a flat page address space (one page = one 4 KiB block of
the array).  Writes are routed to the *active flash block* of their stream;
when no free flash block remains above the reserve, greedy device-level GC
migrates the valid pages of the min-valid flash block (into a dedicated GC
stream) and erases it.  In-device WA = (host + migrated pages) / host pages.

Streams are the whole point: if the host segregates data whose lifetimes
differ into different streams, flash blocks die wholesale and device GC
finds empty victims; if everything shares one stream, lifetimes interleave
inside flash blocks and every erase pays migration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import CapacityError, ConfigError

_NO_PAGE = -1


@dataclass(frozen=True)
class FlashGeometry:
    """NAND shape: ``num_blocks`` flash blocks of ``pages_per_block``."""

    num_blocks: int
    pages_per_block: int = 64

    def __post_init__(self) -> None:
        if self.num_blocks < 4:
            raise ConfigError("need at least 4 flash blocks")
        if self.pages_per_block < 1:
            raise ConfigError("pages_per_block must be >= 1")

    @property
    def total_pages(self) -> int:
        return self.num_blocks * self.pages_per_block


class PageMappedFTL:
    """Page-level mapping with per-stream allocation and greedy device GC.

    Args:
        geometry: NAND shape; must over-provision the logical page space.
        logical_pages: host-visible page address space.
        num_streams: write streams (stream ids in ``[0, num_streams)``);
            internal GC migrations use their own reserved stream.
        gc_reserve_blocks: free-block watermark that triggers device GC.
    """

    def __init__(self, geometry: FlashGeometry, logical_pages: int,
                 num_streams: int = 1, gc_reserve_blocks: int = 2) -> None:
        if logical_pages <= 0:
            raise ConfigError("logical_pages must be positive")
        min_need = logical_pages + \
            (num_streams + 1 + gc_reserve_blocks) * geometry.pages_per_block
        if geometry.total_pages < min_need:
            raise ConfigError(
                f"flash too small: {geometry.total_pages} pages < "
                f"{min_need} needed for {logical_pages} logical pages, "
                f"{num_streams} streams and the GC reserve")
        if num_streams < 1:
            raise ConfigError("num_streams must be >= 1")
        self.geometry = geometry
        self.logical_pages = logical_pages
        self.num_streams = num_streams
        self.gc_reserve_blocks = gc_reserve_blocks

        g = geometry
        self._page_lpn = np.full(g.total_pages, _NO_PAGE, dtype=np.int64)
        self._page_valid = np.zeros(g.total_pages, dtype=bool)
        self._block_valid = np.zeros(g.num_blocks, dtype=np.int32)
        self._block_fill = np.zeros(g.num_blocks, dtype=np.int32)
        self._mapping = np.full(logical_pages, _NO_PAGE, dtype=np.int64)

        self._free_blocks = list(range(g.num_blocks - 1, -1, -1))
        self._active: dict[int, int | None] = {
            s: None for s in range(num_streams)}
        self._gc_stream = num_streams  # internal migration stream
        self._active[self._gc_stream] = None

        self.host_pages = 0
        self.migrated_pages = 0
        self.erases = 0

    # ------------------------------------------------------------------
    # host interface
    # ------------------------------------------------------------------
    def write(self, lpn: int, stream: int = 0) -> None:
        """Program one logical page via ``stream``."""
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"lpn {lpn} out of range")
        if not 0 <= stream < self.num_streams:
            raise ValueError(f"stream {stream} out of range")
        self._invalidate(lpn)
        # Reclaim before programming so the reserve always covers the GC's
        # own migration appetite.
        self._maybe_gc()
        self._program(lpn, stream)
        self.host_pages += 1

    def trim(self, lpn_start: int, count: int) -> None:
        """Discard a logical page range (segment erase from the LSS)."""
        for lpn in range(lpn_start, lpn_start + count):
            if 0 <= lpn < self.logical_pages:
                self._invalidate(lpn)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _invalidate(self, lpn: int) -> None:
        ppn = self._mapping[lpn]
        if ppn != _NO_PAGE:
            self._page_valid[ppn] = False
            self._block_valid[ppn // self.geometry.pages_per_block] -= 1
            self._mapping[lpn] = _NO_PAGE

    def _program(self, lpn: int, stream: int) -> None:
        ppb = self.geometry.pages_per_block
        blk = self._active[stream]
        if blk is None or self._block_fill[blk] >= ppb:
            blk = self._take_free_block()
            self._active[stream] = blk
        ppn = blk * ppb + int(self._block_fill[blk])
        self._block_fill[blk] += 1
        self._page_lpn[ppn] = lpn
        self._page_valid[ppn] = True
        self._block_valid[blk] += 1
        self._mapping[lpn] = ppn

    def _take_free_block(self) -> int:
        if not self._free_blocks:
            raise CapacityError("flash device out of free blocks")
        return self._free_blocks.pop()

    def _maybe_gc(self) -> None:
        while len(self._free_blocks) <= self.gc_reserve_blocks:
            victim = self._pick_victim()
            if victim is None:
                break
            self._clean(victim)

    def _pick_victim(self) -> int | None:
        ppb = self.geometry.pages_per_block
        active = {b for b in self._active.values() if b is not None}
        candidates = [b for b in range(self.geometry.num_blocks)
                      if b not in active and self._block_fill[b] == ppb
                      and self._block_valid[b] < ppb]
        if not candidates:
            return None
        return min(candidates, key=lambda b: int(self._block_valid[b]))

    def _clean(self, victim: int) -> None:
        ppb = self.geometry.pages_per_block
        base = victim * ppb
        for ppn in range(base, base + ppb):
            if self._page_valid[ppn]:
                lpn = int(self._page_lpn[ppn])
                self._page_valid[ppn] = False
                self._block_valid[victim] -= 1
                self._mapping[lpn] = _NO_PAGE
                self._program(lpn, self._gc_stream)
                self.migrated_pages += 1
        self._page_lpn[base:base + ppb] = _NO_PAGE
        self._block_fill[victim] = 0
        self._block_valid[victim] = 0
        self.erases += 1
        self._free_blocks.append(victim)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def device_write_amplification(self) -> float:
        """(host + migrated) / host page programs."""
        if self.host_pages == 0:
            return 0.0
        return (self.host_pages + self.migrated_pages) / self.host_pages

    def free_block_count(self) -> int:
        return len(self._free_blocks)

    def check_invariants(self) -> None:
        """Expensive consistency check for tests."""
        ppb = self.geometry.pages_per_block
        for blk in range(self.geometry.num_blocks):
            lo, hi = blk * ppb, (blk + 1) * ppb
            vc = int(np.count_nonzero(self._page_valid[lo:hi]))
            if vc != int(self._block_valid[blk]):
                raise AssertionError(f"flash block {blk} valid-count drift")
        mapped = np.flatnonzero(self._mapping != _NO_PAGE)
        for lpn in mapped:
            ppn = int(self._mapping[lpn])
            if not self._page_valid[ppn] or self._page_lpn[ppn] != lpn:
                raise AssertionError(f"lpn {lpn} mapping corrupt")
        if int(self._page_valid.sum()) != mapped.size:
            raise AssertionError("valid pages != mapped lpns")
