"""WARCIP [Yang et al. '19]: write-amplification reduction by clustering
I/O pages on their rewrite intervals.

Each block's observed rewrite interval (user-write logical clock) is
assigned to the nearest of k online cluster centroids in log2 space; the
centroid is nudged toward the sample (online k-means).  The paper's
configuration is five user-written clusters plus one GC-rewritten group
(§4.1).  Blocks with no history go to the coldest cluster.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lss.config import LSSConfig
from repro.lss.group import GroupKind, GroupSpec
from repro.placement.base import PlacementPolicy
from repro.placement.registry import register


class WarcipPolicy(PlacementPolicy):
    """k rewrite-interval clusters (user writes) + 1 GC group."""

    name = "warcip"

    def __init__(self, config: LSSConfig, num_clusters: int = 5,
                 learning_rate: float = 0.05) -> None:
        super().__init__(config)
        if num_clusters < 2:
            raise ValueError("WARCIP needs at least 2 clusters")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        self.num_clusters = num_clusters
        self.learning_rate = learning_rate
        self._last_write = np.full(config.logical_blocks, -1, dtype=np.int64)
        # Centroids in log2(interval) space, spread over a plausible range:
        # one segment up to the whole logical space.
        lo = math.log2(max(config.segment_blocks, 2))
        hi = math.log2(max(config.logical_blocks * 4, 4))
        self._centroids = np.linspace(lo, hi, num_clusters)

    def group_specs(self) -> list[GroupSpec]:
        specs = [GroupSpec(f"cluster-{i}", GroupKind.USER)
                 for i in range(self.num_clusters)]
        specs.append(GroupSpec("gc", GroupKind.GC))
        return specs

    @property
    def gc_group(self) -> int:
        return self.num_clusters

    def user_placement_gids(self) -> range:
        return range(self.num_clusters)

    def place_user(self, lba: int, now_us: int) -> int:
        now = self.user_seq
        last = int(self._last_write[lba])
        self._last_write[lba] = now
        if last < 0:
            return self.num_clusters - 1  # no history: coldest cluster
        interval = math.log2(max(now - last, 1))
        cluster = int(np.argmin(np.abs(self._centroids - interval)))
        # Online k-means update keeps centroids tracking the workload.
        self._centroids[cluster] += \
            self.learning_rate * (interval - self._centroids[cluster])
        # Keep centroids ordered so cluster index keeps its hot->cold sense.
        self._centroids.sort()
        return cluster

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        """Sequential by nature (every block nudges the centroids), but
        runs the recurrence on plain Python floats and lists: with k ~ 5
        the argmin scan and the insertion that keeps the centroids sorted
        are cheaper than NumPy's per-call dispatch.  All arithmetic stays
        IEEE double (Python floats == NumPy float64), ``<`` keeps
        ``np.argmin``'s first-minimum tie-break, and in-batch duplicate
        LBAs read the interval their predecessor just wrote, so the
        result is bit-identical to the scalar loop.
        """
        lba_list = lbas.tolist()
        lasts = self._last_write[lbas].tolist()
        cents = self._centroids.tolist()
        k = self.num_clusters
        lr = self.learning_rate
        log2 = math.log2
        out = np.empty(len(lba_list), dtype=np.int64)
        written: dict[int, int] = {}
        for i, lba in enumerate(lba_list):
            last = written.get(lba)
            if last is None:
                last = lasts[i]
            written[lba] = now = start_seq + i
            if last < 0:
                out[i] = k - 1
                continue
            interval = log2(max(now - last, 1))
            cluster = 0
            best = abs(cents[0] - interval)
            for c in range(1, k):
                d = abs(cents[c] - interval)
                if d < best:
                    best = d
                    cluster = c
            out[i] = cluster
            moved = cents[cluster] + lr * (interval - cents[cluster])
            del cents[cluster]
            lo, hi = 0, k - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cents[mid] < moved:
                    lo = mid + 1
                else:
                    hi = mid
            cents.insert(lo, moved)
        self._centroids = np.array(cents)
        if written:
            self._last_write[np.fromiter(written.keys(), dtype=np.int64)] = \
                np.fromiter(written.values(), dtype=np.int64)
        return out

    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        return self.gc_group

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        return np.full(int(lbas.shape[0]), self.gc_group, dtype=np.int64)

    def memory_bytes(self) -> int:
        return self._last_write.nbytes + self._centroids.nbytes


register(WarcipPolicy.name, WarcipPolicy)
