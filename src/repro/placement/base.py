"""Placement-policy protocol shared by the baselines and ADAPT.

A policy declares its groups, routes every user block write and every GC
migration to a group, and may hook segment lifecycle events.  Policies hold
their own per-LBA metadata in NumPy arrays (never per-block objects) and
report its footprint through :meth:`memory_bytes` for the Fig 12b
experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.lss.config import LSSConfig
from repro.lss.group import Group, GroupSpec
from repro.obs.recorder import NULL_RECORDER, NullRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.lss.store import LogStructuredStore


class PlacementPolicy:
    """Base class for placement policies.

    Lifecycle: construct with the store config, pass to
    :class:`~repro.lss.store.LogStructuredStore`, which calls :meth:`bind`.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, config: LSSConfig) -> None:
        self.config = config
        self.store: "LogStructuredStore | None" = None
        self.obs: NullRecorder = NULL_RECORDER

    # ------------------------------------------------------------------
    # required interface
    # ------------------------------------------------------------------
    def group_specs(self) -> Sequence[GroupSpec]:
        """Declare the groups this policy writes to (fixed for the run)."""
        raise NotImplementedError

    def place_user(self, lba: int, now_us: int) -> int:
        """Route one user block write; return a group id.

        Called *before* the block is appended; implementations typically
        read their per-LBA metadata, decide, then update it.
        """
        raise NotImplementedError

    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        """Route one GC-migrated valid block; return a group id."""
        raise NotImplementedError

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        """Route a batch of user block writes; return one group id each.

        Contract (see ``docs/extending.md``): the batched replay engine
        guarantees that no GC run and no SLA deadline flush can occur
        while the batch is placed and applied, and that block ``i``
        observes the logical clock at ``start_seq + i``.  Implementations
        must return exactly what a scalar :meth:`place_user` loop would,
        and leave their per-LBA metadata in the same final state —
        including chains of duplicate LBAs within the batch (see
        :func:`repro.perf.batch.duplicate_chains`).

        The base implementation *is* that scalar loop (with the logical
        clock stepped per block), so every policy is batch-correct by
        default; subclasses override with vectorized versions.
        """
        store = self.store
        if store is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to a store")
        out = np.empty(int(lbas.shape[0]), dtype=np.int64)
        saved = store.user_seq
        try:
            for i, (lba, t) in enumerate(zip(lbas.tolist(),
                                             ts_us.tolist())):
                store.user_seq = start_seq + i
                out[i] = self.place_user(lba, t)
        finally:
            store.user_seq = saved
        return out

    def user_placement_gids(self) -> Sequence[int]:
        """The set of group ids :meth:`place_user` can ever return.

        Contract (see ``docs/extending.md``): the batched replay engine
        sizes its provably-GC-free chunks adversarially over *this* set —
        a group outside it can never receive user blocks, so its
        open-segment headroom cannot be drained by a chunk and it never
        forces a segment allocation.  Declaring a tight set (e.g. MiDA
        routes every user write to group 0) makes chunks much larger near
        the GC watermark; the default — every group — is always safe.
        Policies that can route user writes anywhere (e.g. via ADAPT's
        proactive demotion) must keep the default.
        """
        return range(len(self.group_specs()))

    def candidate_user_gids(self, lbas: np.ndarray, ts_us: np.ndarray,
                            start_seq: int) -> tuple[np.ndarray,
                                                     np.ndarray] | None:
        """Predict, per block, the groups :meth:`place_user` *could* route
        it to — before any placement happens.

        Contract (see ``docs/extending.md``): called by the batched replay
        engine under the same no-GC/no-deadline guarantee as
        :meth:`place_user_batch`, with block ``i`` at logical clock
        ``start_seq + i``.  Must be **pure**: no metadata writes, no
        counters, no obs events.  Return ``None`` (the default) when
        prediction is unavailable — the engine then sizes chunks
        adversarially over the full :meth:`user_placement_gids` set.
        Otherwise return ``(primary, alt)`` int64 arrays: placing any
        prefix of the batch must route block ``i`` to ``primary[i]`` or
        ``alt[i]`` (``alt[i] == -1`` claims the placement is exactly
        ``primary[i]``).  The engine uses these per-block candidate sets
        to cap how many blocks the chunk could possibly push into each
        group, which makes chunks near the GC watermark dramatically
        larger for multi-group policies.
        """
        return None

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        """Route one victim's GC-migrated valid blocks; one group id each.

        Contract (see ``docs/extending.md``): called from the batched GC
        path with one victim segment's valid LBAs in slot order.  Each
        LBA appears at most once (the mapping is a bijection onto valid
        slots) and both clocks are constant across the batch, so unlike
        :meth:`place_user_batch` there are no in-batch chains to model.
        Implementations must return exactly what a scalar
        :meth:`place_gc` loop would and leave their metadata in the same
        final state.  The base implementation is that scalar loop.
        """
        out = np.empty(int(lbas.shape[0]), dtype=np.int64)
        for i, lba in enumerate(lbas.tolist()):
            out[i] = self.place_gc(lba, victim_group, now_us)
        return out

    # ------------------------------------------------------------------
    # optional hooks
    # ------------------------------------------------------------------
    def bind(self, store: "LogStructuredStore") -> None:
        self.store = store

    def attach_obs(self, obs: NullRecorder) -> None:
        """Receive the store's observability recorder (called right after
        :meth:`bind`).  Policies with instrumented sub-components override
        this to propagate the recorder."""
        self.obs = obs

    def before_padding_flush(self, group: Group, now_us: int) -> bool:
        """Last chance to avert an SLA padding flush for ``group``.

        Return ``True`` if the policy persisted the pending data some other
        way (ADAPT's cross-group aggregation); ``False`` lets the store pad.
        """
        return False

    def on_segment_sealed(self, group_id: int, seg: int) -> None:
        """A segment of ``group_id`` filled up and became immutable."""

    def on_chunk_flush(self, group: Group, flush) -> None:
        """A chunk of ``group`` was written to the array."""

    def on_full_flush_run(self, group_id: int, flushes: int,
                          first_tokens) -> None:
        """Opt-in bulk form of :meth:`on_chunk_flush` for run appends.

        When a policy overrides this, the batched run-append path skips
        materializing the ``FULL`` :class:`ChunkFlush` objects a run
        emits and calls this once instead: ``flushes`` FULL flushes of
        ``chunk_blocks`` data blocks each (zero padding) landed in group
        ``group_id``; ``first_tokens`` holds the pre-run pending tokens
        absorbed by the *first* flush (empty when the run started on a
        chunk boundary) — the only place non-run token kinds such as
        shadow appends can hide.  An override MUST reproduce exactly the
        state updates its ``on_chunk_flush`` would have applied across
        those flushes; the equivalence suites compare the two paths.
        Padding (deadline/forced) flushes always take the materialized
        per-flush path regardless of this hook.
        """

    def on_segment_reclaimed(self, group_id: int, created_seq: int,
                             sealed_seq: int, now_seq: int,
                             valid_blocks: int) -> None:
        """GC reclaimed a segment of ``group_id``."""

    def on_gc_block(self, lba: int, from_group: int, to_group: int) -> None:
        """GC migrated ``lba`` between groups."""

    def memory_bytes(self) -> int:
        """Approximate resident metadata footprint of this policy."""
        return 0

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @property
    def user_seq(self) -> int:
        """The store's logical clock (user blocks written so far)."""
        if self.store is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to a store")
        return self.store.user_seq
