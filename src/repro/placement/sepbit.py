"""SepBIT [Wang et al., FAST '22]: separation via block invalidation time
inference.

Six classes.  User writes: infer a block's lifespan from its last user-write
distance ``v = u - u_last`` (in user-written blocks); ``v < l`` means the
block is short-lived (class 0), otherwise class 1, where ``l`` is the
exponentially averaged lifespan of class-0 segments collected by GC.  GC
rewrites: estimate *residual* lifespan from the block's age and spread
across four classes with geometrically growing age boundaries
``[l, 4l, 16l)`` etc.  This is the lifespan-based scheme ADAPT builds upon
(§3.1), so the implementation doubles as ADAPT's fallback path.
"""

from __future__ import annotations

import numpy as np

from repro.lss.config import LSSConfig
from repro.lss.group import GroupKind, GroupSpec
from repro.perf.batch import duplicate_chains
from repro.placement.base import PlacementPolicy
from repro.placement.registry import register


class SepBITPolicy(PlacementPolicy):
    """2 user classes + 4 GC classes with an inferred lifespan threshold."""

    name = "sepbit"

    HOT = 0        # short-lived user writes
    COLD = 1       # long-lived user writes
    GC_BASE = 2    # first of the four GC classes

    def __init__(self, config: LSSConfig, num_gc_groups: int = 4,
                 ewma_alpha: float = 0.5) -> None:
        super().__init__(config)
        if num_gc_groups < 1:
            raise ValueError("need at least one GC group")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.num_gc_groups = num_gc_groups
        self.ewma_alpha = ewma_alpha
        self._last_user_write = np.full(config.logical_blocks, -1,
                                        dtype=np.int64)
        # Threshold l: initialised to one segment's worth of writes, the
        # natural cold-start guess (a class-0 segment that fills and is
        # immediately invalidated has lifespan ~ segment size).
        self.threshold = float(config.segment_blocks)

    def group_specs(self) -> list[GroupSpec]:
        specs = [GroupSpec("user-hot", GroupKind.USER),
                 GroupSpec("user-cold", GroupKind.USER)]
        specs += [GroupSpec(f"gc-{i}", GroupKind.GC)
                  for i in range(self.num_gc_groups)]
        return specs

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place_user(self, lba: int, now_us: int) -> int:
        now = self.user_seq
        last = int(self._last_user_write[lba])
        self._last_user_write[lba] = now
        if last < 0:
            return self.COLD
        v = now - last
        return self.HOT if v < self.threshold else self.COLD

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        # Block i writes at logical time start_seq + i; a duplicate's
        # ``last`` is its in-batch predecessor's write time.  The
        # threshold is constant across the batch (it only moves in
        # on_segment_reclaimed, and batches are GC-free).
        n = int(lbas.shape[0])
        now = start_seq + np.arange(n, dtype=np.int64)
        last = self._last_user_write[lbas]
        prev, last_mask = duplicate_chains(lbas)
        dup = prev >= 0
        last[dup] = start_seq + prev[dup]
        gids = np.where((last >= 0) & ((now - last) < self.threshold),
                        self.HOT, self.COLD).astype(np.int64)
        self._last_user_write[lbas[last_mask]] = now[last_mask]
        return gids

    def user_placement_gids(self) -> tuple[int, ...]:
        return (self.HOT, self.COLD)

    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        age = self.block_age(lba)
        return self.GC_BASE + self.gc_class_for_age(age)

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        # The threshold only moves in on_segment_reclaimed, after the
        # whole victim is migrated: the age ladder is constant here, and
        # the class is how many geometric boundaries the age clears.
        last = self._last_user_write[lbas]
        age = np.where(last >= 0, self.user_seq - last, self.user_seq)
        cls = np.zeros(int(lbas.shape[0]), dtype=np.int64)
        bound = self.threshold * 4
        for _ in range(self.num_gc_groups - 1):
            cls += age >= bound
            bound *= 4
        return self.GC_BASE + cls

    def block_age(self, lba: int) -> int:
        last = int(self._last_user_write[lba])
        return self.user_seq - last if last >= 0 else self.user_seq

    def gc_class_for_age(self, age: int) -> int:
        """Geometric age ladder: boundaries l·4^i for i = 1..k-1."""
        bound = self.threshold * 4
        for cls in range(self.num_gc_groups - 1):
            if age < bound:
                return cls
            bound *= 4
        return self.num_gc_groups - 1

    # ------------------------------------------------------------------
    # threshold inference
    # ------------------------------------------------------------------
    def on_segment_reclaimed(self, group_id: int, created_seq: int,
                             sealed_seq: int, now_seq: int,
                             valid_blocks: int) -> None:
        if group_id != self.HOT:
            return
        lifespan = max(now_seq - created_seq, 1)
        self.threshold += self.ewma_alpha * (lifespan - self.threshold)

    def memory_bytes(self) -> int:
        return self._last_user_write.nbytes


register(SepBITPolicy.name, SepBITPolicy)
