"""SepGC [Van Houdt '14]: separate user writes from GC writes.

The simplest hot/cold split and the paper's baseline: all user writes go to
group 0, all GC rewrites to group 1.  Despite its simplicity it performs
second-best under light traffic (§4.3) because a single user-written group
maximises write-aggregation efficiency.
"""

from __future__ import annotations

import numpy as np

from repro.lss.group import GroupKind, GroupSpec
from repro.placement.base import PlacementPolicy
from repro.placement.registry import register


class SepGCPolicy(PlacementPolicy):
    """Two groups: user-written and GC-rewritten."""

    name = "sepgc"

    USER_GROUP = 0
    GC_GROUP = 1

    def group_specs(self) -> list[GroupSpec]:
        return [
            GroupSpec("user", GroupKind.USER),
            GroupSpec("gc", GroupKind.GC),
        ]

    def place_user(self, lba: int, now_us: int) -> int:
        return self.USER_GROUP

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        return np.full(int(lbas.shape[0]), self.USER_GROUP, dtype=np.int64)

    def user_placement_gids(self) -> tuple[int, ...]:
        return (self.USER_GROUP,)

    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        return self.GC_GROUP

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        return np.full(int(lbas.shape[0]), self.GC_GROUP, dtype=np.int64)


register(SepGCPolicy.name, SepGCPolicy)
