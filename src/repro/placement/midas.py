"""MIDAS-flavoured adaptive group configuration (related work [17],
Oh et al. FAST '24) — an extension beyond the paper's baselines.

MIDAS's thesis is that the *number* of level-style groups should track the
workload: too few groups mix lifetimes (hot victims still carry valid
data), too many dilute each group's traffic (paper Observation 3).  This
implementation keeps MiDA's migration-count chain but adapts the active
chain length online from per-group victim-utilisation EWMAs:

* if the chain tail's victims are still mostly valid at GC time, the
  separation is too coarse — grow the chain;
* if the two tail groups' victim utilisations are indistinguishable, the
  last level adds nothing — shrink the chain.

The full MIDAS also resizes groups via a Markov model of update intervals;
group sizing is not modelled here (segments are allocated on demand), which
is documented as a simplification in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.lss.config import LSSConfig
from repro.lss.group import GroupKind, GroupSpec
from repro.placement.base import PlacementPolicy
from repro.placement.registry import register


class MidasLitePolicy(PlacementPolicy):
    """Adaptive-length migration-count chain."""

    name = "midas-lite"

    def __init__(self, config: LSSConfig, max_groups: int = 8,
                 min_groups: int = 2, ewma_alpha: float = 0.3,
                 adapt_every_reclaims: int = 16,
                 grow_util: float = 0.55, merge_gap: float = 0.08) -> None:
        super().__init__(config)
        if not 2 <= min_groups <= max_groups:
            raise ValueError("need 2 <= min_groups <= max_groups")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.max_groups = max_groups
        self.min_groups = min_groups
        self.ewma_alpha = ewma_alpha
        self.adapt_every_reclaims = adapt_every_reclaims
        self.grow_util = grow_util
        self.merge_gap = merge_gap

        self.active_groups = min_groups
        self._migrations = np.zeros(config.logical_blocks, dtype=np.int8)
        self._victim_util = np.full(max_groups, np.nan)
        self._reclaims_since_adapt = 0
        self.adaptations: list[int] = []

    def group_specs(self) -> list[GroupSpec]:
        # The chain is declared at max length; only [0, active_groups) are
        # routed to, so shrinking never strands data.
        return [GroupSpec(f"level-{i}", GroupKind.MIXED)
                for i in range(self.max_groups)]

    # ------------------------------------------------------------------
    # routing (MiDA semantics over the active prefix)
    # ------------------------------------------------------------------
    def place_user(self, lba: int, now_us: int) -> int:
        self._migrations[lba] = 0
        return 0

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        self._migrations[lbas] = 0
        return np.zeros(int(lbas.shape[0]), dtype=np.int64)

    def user_placement_gids(self) -> tuple[int, ...]:
        return (0,)

    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        count = min(int(self._migrations[lba]) + 1, self.active_groups - 1)
        self._migrations[lba] = count
        return count

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        # active_groups only moves in on_segment_reclaimed, after the
        # whole victim is migrated, so it is constant across the batch.
        counts = np.minimum(self._migrations[lbas].astype(np.int64) + 1,
                            self.active_groups - 1)
        self._migrations[lbas] = counts
        return counts

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def on_segment_reclaimed(self, group_id: int, created_seq: int,
                             sealed_seq: int, now_seq: int,
                             valid_blocks: int) -> None:
        util = valid_blocks / self.config.segment_blocks
        prev = self._victim_util[group_id]
        if np.isnan(prev):
            self._victim_util[group_id] = util
        else:
            self._victim_util[group_id] = \
                prev + self.ewma_alpha * (util - prev)
        self._reclaims_since_adapt += 1
        if self._reclaims_since_adapt >= self.adapt_every_reclaims:
            self._reclaims_since_adapt = 0
            self._adapt()

    def _adapt(self) -> None:
        utils = self._victim_util[: self.active_groups]
        measured = np.flatnonzero(~np.isnan(utils))
        if measured.size == 0:
            return
        old = self.active_groups
        if float(np.nanmax(utils[measured])) > self.grow_util and \
                self.active_groups < self.max_groups:
            # Some level's victims are still mostly valid at GC time:
            # lifetimes are mixed inside it — deepen the chain so those
            # long-lived blocks separate out.
            self.active_groups += 1
        elif measured.size >= 2 and self.active_groups > self.min_groups:
            # The two deepest measured levels clean victims of
            # indistinguishable utilisation: the last level separates
            # nothing — shrink the chain.
            a, b = measured[-1], measured[-2]
            if abs(float(utils[a]) - float(utils[b])) < self.merge_gap:
                self.active_groups -= 1
                self._victim_util[self.active_groups:] = np.nan
        if self.active_groups != old:
            self.adaptations.append(self.active_groups)

    def memory_bytes(self) -> int:
        return int(self._migrations.nbytes + self._victim_util.nbytes)


register(MidasLitePolicy.name, MidasLitePolicy)
