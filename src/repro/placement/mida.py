"""MiDA [Park et al. '21]: lifetime classification by migration count.

A block's group index is the number of times GC has migrated it since its
last user write: fresh user writes go to group 0, each GC survival bumps the
block one group higher (capped).  The paper configures eight groups that all
handle user and GC writes (§4.1), hence MIXED groups with the SLA window —
which is exactly why MiDA shows 33–45 % padding traffic in Observation 2.
"""

from __future__ import annotations

import numpy as np

from repro.lss.config import LSSConfig
from repro.lss.group import GroupKind, GroupSpec
from repro.placement.base import PlacementPolicy
from repro.placement.registry import register


class MiDAPolicy(PlacementPolicy):
    """Migration-count groups: user writes reset to 0, GC increments."""

    name = "mida"

    def __init__(self, config: LSSConfig, num_groups: int = 8) -> None:
        super().__init__(config)
        if num_groups < 2:
            raise ValueError("MiDA needs at least 2 groups")
        self.num_groups = num_groups
        self._migrations = np.zeros(config.logical_blocks, dtype=np.int8)

    def group_specs(self) -> list[GroupSpec]:
        return [GroupSpec(f"mig-{i}", GroupKind.MIXED)
                for i in range(self.num_groups)]

    def place_user(self, lba: int, now_us: int) -> int:
        self._migrations[lba] = 0
        return 0

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        self._migrations[lbas] = 0
        return np.zeros(int(lbas.shape[0]), dtype=np.int64)

    def user_placement_gids(self) -> tuple[int, ...]:
        return (0,)

    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        count = min(int(self._migrations[lba]) + 1, self.num_groups - 1)
        self._migrations[lba] = count
        return count

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        counts = np.minimum(self._migrations[lbas].astype(np.int64) + 1,
                            self.num_groups - 1)
        self._migrations[lbas] = counts
        return counts

    def memory_bytes(self) -> int:
        return self._migrations.nbytes


register(MiDAPolicy.name, MiDAPolicy)
