"""Data-placement policies: the five baselines of §4.1 plus the registry.

ADAPT itself lives in :mod:`repro.core` and registers here.
"""

from repro.placement.base import PlacementPolicy
from repro.placement.registry import available_policies, make_policy, register
from repro.placement.sepgc import SepGCPolicy
from repro.placement.dac import DACPolicy
from repro.placement.warcip import WarcipPolicy
from repro.placement.mida import MiDAPolicy
from repro.placement.sepbit import SepBITPolicy
from repro.placement.midas import MidasLitePolicy

__all__ = [
    "PlacementPolicy",
    "available_policies",
    "make_policy",
    "register",
    "SepGCPolicy",
    "DACPolicy",
    "WarcipPolicy",
    "MiDAPolicy",
    "SepBITPolicy",
    "MidasLitePolicy",
]
