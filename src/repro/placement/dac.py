"""DAC — Dynamic dAta Clustering [Chiang et al. '99].

Blocks migrate between k temperature regions: an update *promotes* a block
one region hotter (it proved itself recently written), a GC migration
*demotes* it one region colder (it survived a cleaning pass).  The paper
configures five regions handling both user and GC writes (§4.1), so all
groups are MIXED: user-facing with the SLA window.
"""

from __future__ import annotations

import numpy as np

from repro.lss.config import LSSConfig
from repro.lss.group import GroupKind, GroupSpec
from repro.perf.batch import duplicate_chains, occurrence_index
from repro.placement.base import PlacementPolicy
from repro.placement.registry import register


class DACPolicy(PlacementPolicy):
    """k mixed temperature regions with promote-on-write / demote-on-GC."""

    name = "dac"

    def __init__(self, config: LSSConfig, num_regions: int = 5) -> None:
        super().__init__(config)
        if num_regions < 2:
            raise ValueError("DAC needs at least 2 regions")
        self.num_regions = num_regions
        # Region 0 is the coldest. New blocks start there.
        self._region = np.zeros(config.logical_blocks, dtype=np.int8)
        self._written = np.zeros(config.logical_blocks, dtype=bool)

    def group_specs(self) -> list[GroupSpec]:
        return [GroupSpec(f"region-{i}", GroupKind.MIXED)
                for i in range(self.num_regions)]

    def place_user(self, lba: int, now_us: int) -> int:
        if self._written[lba]:
            new = min(int(self._region[lba]) + 1, self.num_regions - 1)
        else:
            new = 0
            self._written[lba] = True
        self._region[lba] = new
        return new

    def place_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         start_seq: int) -> np.ndarray:
        # The k-th in-batch occurrence of an LBA sees the region its
        # predecessor just wrote, so a run of duplicates climbs the
        # promote ladder one region per write: min(base + occ, top).
        occ = occurrence_index(lbas)
        base = np.where(self._written[lbas],
                        self._region[lbas].astype(np.int64) + 1, 0)
        gids = np.minimum(base + occ, self.num_regions - 1)
        _, last_mask = duplicate_chains(lbas)
        self._region[lbas[last_mask]] = gids[last_mask]
        self._written[lbas] = True
        return gids

    def place_gc(self, lba: int, victim_group: int, now_us: int) -> int:
        new = max(int(self._region[lba]) - 1, 0)
        self._region[lba] = new
        return new

    def place_gc_batch(self, lbas: np.ndarray, victim_group: int,
                       now_us: int) -> np.ndarray:
        new = np.maximum(self._region[lbas].astype(np.int64) - 1, 0)
        self._region[lbas] = new
        return new

    def memory_bytes(self) -> int:
        return self._region.nbytes + self._written.nbytes


register(DACPolicy.name, DACPolicy)
