"""Name-based registry of placement policies.

Keeps experiment code declarative: ``make_policy("sepbit", cfg)``.  ADAPT
registers itself here when :mod:`repro.core` is imported; the registry
imports it lazily so ``repro.placement`` has no dependency on the core
package.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.lss.config import LSSConfig
from repro.placement.base import PlacementPolicy

_REGISTRY: dict[str, Callable[..., PlacementPolicy]] = {}

#: Policy names whose classes live outside repro.placement; imported on
#: first use.
_LAZY_MODULES = {"adapt": "repro.core.policy"}


def register(name: str,
             factory: Callable[..., PlacementPolicy]) -> None:
    """Register a policy factory under ``name`` (idempotent re-register of
    the same factory is allowed; clobbering a different one is an error)."""
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(f"policy name {name!r} already registered")
    _REGISTRY[name] = factory


def available_policies() -> list[str]:
    """All known policy names (including lazily loaded ones)."""
    return sorted(set(_REGISTRY) | set(_LAZY_MODULES))


def make_policy(name: str, config: LSSConfig, **kwargs) -> PlacementPolicy:
    """Instantiate a placement policy by registry name."""
    if name not in _REGISTRY and name in _LAZY_MODULES:
        importlib.import_module(_LAZY_MODULES[name])
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; available: "
            f"{available_policies()}") from None
    return factory(config, **kwargs)
