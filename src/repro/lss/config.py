"""Configuration of the log-structured store."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.array.chunk import ChunkGeometry
from repro.array.raid5 import Raid5Config
from repro.common.errors import ConfigError


def default_segment_blocks(logical_blocks: int,
                           chunk_blocks: int = 16) -> int:
    """A segment size that keeps per-group pinned space small relative to
    the volume: ~1/128 of the logical space, chunk-aligned, in [2 chunks,
    256 blocks]."""
    target = logical_blocks // 128
    seg = max(2 * chunk_blocks, min(256, target))
    return -(-seg // chunk_blocks) * chunk_blocks


@dataclass(frozen=True)
class LSSConfig:
    """Shape and policy knobs of one simulated store instance.

    Defaults follow the paper's setup (§4.1): 4 KiB blocks, 64 KiB chunks,
    100 µs coalescing SLA.  Segment size and over-provisioning are the usual
    LSS-simulation knobs; the physical pool is ``logical`` segments times
    ``1 + over_provisioning``.

    Attributes:
        logical_blocks: size of the volume's logical address space in blocks.
        segment_blocks: blocks per segment (must be a chunk multiple).
        chunk: block/chunk geometry of the underlying array.
        over_provisioning: extra physical space fraction (0.25 = 25 %).
        coalesce_window_us: SLA window before a partial chunk is padded.
        sla_mode: ``"idle"`` (window restarts on each append; matches the
            paper's Fig 11 behaviour) or ``"first"`` (fixed deadline from
            the first pending block).
        gc_free_low: GC triggers when free segments drop to this level.
        gc_free_high: GC cleans until free segments recover to this level.
        victim_policy: victim-selection policy name (see ``lss.victim``).
        raid: RAID-5 shape for parity accounting.
        seed: RNG seed for stochastic victim policies.
    """

    logical_blocks: int
    segment_blocks: int = 256
    chunk: ChunkGeometry = field(default_factory=ChunkGeometry)
    over_provisioning: float = 0.25
    coalesce_window_us: int = 100
    sla_mode: str = "idle"
    gc_free_low: int = 4
    gc_free_high: int = 8
    victim_policy: str = "greedy"
    raid: Raid5Config = field(default_factory=Raid5Config)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.logical_blocks <= 0:
            raise ConfigError("logical_blocks must be positive")
        if self.segment_blocks <= 0:
            raise ConfigError("segment_blocks must be positive")
        if self.segment_blocks % self.chunk.chunk_blocks:
            raise ConfigError(
                f"segment_blocks={self.segment_blocks} must be a multiple of "
                f"chunk_blocks={self.chunk.chunk_blocks}")
        if self.over_provisioning <= 0:
            raise ConfigError("over_provisioning must be > 0")
        if self.coalesce_window_us < 0:
            raise ConfigError("coalesce_window_us must be >= 0")
        if self.sla_mode not in ("idle", "first"):
            raise ConfigError(f"unknown sla_mode {self.sla_mode!r}")
        if not 0 < self.gc_free_low <= self.gc_free_high:
            raise ConfigError("need 0 < gc_free_low <= gc_free_high")

    @property
    def logical_segments(self) -> int:
        return -(-self.logical_blocks // self.segment_blocks)

    @property
    def physical_segments(self) -> int:
        return int(round(self.logical_segments * (1 + self.over_provisioning)))

    @property
    def physical_blocks(self) -> int:
        return self.physical_segments * self.segment_blocks

    @property
    def segment_chunks(self) -> int:
        return self.segment_blocks // self.chunk.chunk_blocks

    def validate_for_groups(self, num_groups: int) -> None:
        """Check that the physical pool can host ``num_groups`` pinned open
        segments plus the GC watermark headroom."""
        need = self.logical_segments + self.gc_free_high + num_groups + 1
        if self.physical_segments < need:
            raise ConfigError(
                f"physical pool too small: {self.physical_segments} segments "
                f"< {need} required for {num_groups} groups (raise "
                f"over_provisioning, shrink segment_blocks, or grow the "
                f"volume)")
