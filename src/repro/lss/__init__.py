"""Log-structured storage simulator.

Segments of fixed size are filled append-only through per-group coalescing
chunks; garbage collection selects victim segments, migrates their valid
blocks according to the active placement policy, and reclaims the space.
All per-block metadata lives in NumPy struct-of-arrays (see DESIGN.md).
"""

from repro.lss.config import LSSConfig
from repro.lss.group import GroupKind, GroupSpec
from repro.lss.stats import StoreStats
from repro.lss.store import LogStructuredStore
from repro.lss.victim import available_victim_policies, make_victim_policy

__all__ = [
    "LSSConfig",
    "GroupKind",
    "GroupSpec",
    "LogStructuredStore",
    "StoreStats",
    "available_victim_policies",
    "make_victim_policy",
]
