"""Victim-segment selection policies for garbage collection.

The paper evaluates Greedy and Cost-Benefit (§4.2); d-choice, Windowed
Greedy and Random Greedy from its related-work section are implemented as
well and exercised by the ablation benches.  All policies refuse to pick a
segment with zero garbage (cleaning it frees nothing) and return ``None``
when no productive victim exists.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.lss.segment import SegmentPool


class VictimPolicy:
    """Base class; subclasses implement :meth:`select`."""

    name = "abstract"

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self.rng = make_rng(rng)

    def select(self, pool: SegmentPool, now_seq: int) -> int | None:
        raise NotImplementedError

    @staticmethod
    def _productive(pool: SegmentPool, segs: np.ndarray) -> np.ndarray:
        """Filter out segments with no reclaimable space."""
        return segs[pool.valid_count[segs] < pool.segment_blocks]


class GreedyVictim(VictimPolicy):
    """Pick the sealed segment with the fewest valid blocks."""

    name = "greedy"

    def select(self, pool: SegmentPool, now_seq: int) -> int | None:
        segs = self._productive(pool, pool.sealed_segments())
        if segs.size == 0:
            return None
        return int(segs[np.argmin(pool.valid_count[segs])])


class CostBenefitVictim(VictimPolicy):
    """Rosenblum & Ousterhout's cost-benefit: max (1-u)·age / (1+u).

    ``age`` is measured in user-written blocks since the segment sealed,
    the standard logical clock for trace-driven WA studies.
    """

    name = "cost-benefit"

    def select(self, pool: SegmentPool, now_seq: int) -> int | None:
        segs = self._productive(pool, pool.sealed_segments())
        if segs.size == 0:
            return None
        u = pool.valid_count[segs] / pool.segment_blocks
        age = np.maximum(now_seq - pool.sealed_seq[segs], 1)
        score = (1.0 - u) * age / (1.0 + u)
        return int(segs[np.argmax(score)])


class DChoiceVictim(VictimPolicy):
    """d-choice [Van Houdt '13]: greedy among d uniformly sampled segments."""

    name = "d-choice"

    def __init__(self, d: int = 10,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__(rng)
        if d < 1:
            raise ValueError("d must be >= 1")
        self.d = d

    def select(self, pool: SegmentPool, now_seq: int) -> int | None:
        segs = self._productive(pool, pool.sealed_segments())
        if segs.size == 0:
            return None
        k = min(self.d, segs.size)
        sample = self.rng.choice(segs, size=k, replace=False)
        return int(sample[np.argmin(pool.valid_count[sample])])


class WindowedGreedyVictim(VictimPolicy):
    """Windowed Greedy [Hu et al. '09]: greedy restricted to the w oldest
    sealed segments (FIFO window)."""

    name = "windowed-greedy"

    def __init__(self, window: int = 32,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__(rng)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def select(self, pool: SegmentPool, now_seq: int) -> int | None:
        segs = pool.sealed_segments()
        if segs.size == 0:
            return None
        order = np.argsort(pool.sealed_seq[segs], kind="stable")
        oldest = segs[order[: self.window]]
        oldest = self._productive(pool, oldest)
        if oldest.size == 0:  # window full of zero-garbage segments
            oldest = self._productive(pool, segs)
            if oldest.size == 0:
                return None
        return int(oldest[np.argmin(pool.valid_count[oldest])])


class RandomGreedyVictim(VictimPolicy):
    """Random Greedy [Li et al. '13 variant]: uniform pick among sealed
    segments whose utilisation is within ``slack`` of the greedy minimum."""

    name = "random-greedy"

    def __init__(self, slack: float = 0.1,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__(rng)
        if not 0.0 <= slack <= 1.0:
            raise ValueError("slack must be in [0, 1]")
        self.slack = slack

    def select(self, pool: SegmentPool, now_seq: int) -> int | None:
        segs = self._productive(pool, pool.sealed_segments())
        if segs.size == 0:
            return None
        vc = pool.valid_count[segs]
        cutoff = vc.min() + self.slack * pool.segment_blocks
        near = segs[vc <= cutoff]
        return int(self.rng.choice(near))


_POLICIES: dict[str, type[VictimPolicy]] = {
    cls.name: cls
    for cls in (GreedyVictim, CostBenefitVictim, DChoiceVictim,
                WindowedGreedyVictim, RandomGreedyVictim)
}


def available_victim_policies() -> list[str]:
    return sorted(_POLICIES)


def make_victim_policy(name: str,
                       rng: np.random.Generator | int | None = None,
                       **kwargs) -> VictimPolicy:
    """Instantiate a victim policy by name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown victim policy {name!r}; available: "
            f"{available_victim_policies()}") from None
    return cls(rng=rng, **kwargs)
