"""Traffic accounting for the store: the numbers behind every figure.

Write amplification follows the paper's definition for LSS-on-array
deployments: *all* flash block writes — user data, GC rewrites, shadow
substitutes and zero-padding — divided by the blocks the user asked to
write.  Padding is included because it "exacerbates the actual write
amplification ratio" (§1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.array.raid5 import Raid5Accounting


@dataclass
class GroupTraffic:
    """Per-group block-write breakdown (Fig 3a's bars)."""

    name: str
    kind: str
    user_blocks: int = 0
    gc_blocks: int = 0
    shadow_blocks: int = 0
    padding_blocks: int = 0
    chunk_flushes: int = 0
    deadline_flushes: int = 0
    forced_flushes: int = 0

    @property
    def data_blocks(self) -> int:
        return self.user_blocks + self.gc_blocks + self.shadow_blocks

    @property
    def total_blocks(self) -> int:
        return self.data_blocks + self.padding_blocks

    def padding_fraction(self) -> float:
        """Padding share of this group's write volume."""
        total = self.total_blocks
        return self.padding_blocks / total if total else 0.0


@dataclass
class StoreStats:
    """Aggregated counters for one store instance."""

    user_blocks_requested: int = 0
    read_requests: int = 0
    write_requests: int = 0
    gc_passes: int = 0
    gc_segments_reclaimed: int = 0
    gc_blocks_migrated: int = 0
    groups: list[GroupTraffic] = field(default_factory=list)
    raid: Raid5Accounting = field(default_factory=Raid5Accounting)

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------
    @property
    def user_blocks_written(self) -> int:
        return sum(g.user_blocks for g in self.groups)

    @property
    def gc_blocks_written(self) -> int:
        return sum(g.gc_blocks for g in self.groups)

    @property
    def shadow_blocks_written(self) -> int:
        return sum(g.shadow_blocks for g in self.groups)

    @property
    def padding_blocks_written(self) -> int:
        return sum(g.padding_blocks for g in self.groups)

    @property
    def flash_blocks_written(self) -> int:
        return sum(g.total_blocks for g in self.groups)

    # ------------------------------------------------------------------
    # headline metrics
    # ------------------------------------------------------------------
    def write_amplification(self) -> float:
        """Total flash block writes per user-requested block write."""
        if self.user_blocks_requested == 0:
            return 0.0
        return self.flash_blocks_written / self.user_blocks_requested

    def padding_traffic_ratio(self) -> float:
        """Padding share of total flash writes (Fig 9's x-axis)."""
        total = self.flash_blocks_written
        return self.padding_blocks_written / total if total else 0.0

    def gc_traffic_ratio(self) -> float:
        total = self.flash_blocks_written
        return self.gc_blocks_written / total if total else 0.0

    def summary(self) -> dict[str, float]:
        """Flat dict of headline metrics (handy for report tables)."""
        return {
            "user_blocks_requested": float(self.user_blocks_requested),
            "read_requests": float(self.read_requests),
            "write_requests": float(self.write_requests),
            "flash_blocks_written": float(self.flash_blocks_written),
            "gc_blocks_written": float(self.gc_blocks_written),
            "shadow_blocks_written": float(self.shadow_blocks_written),
            "padding_blocks_written": float(self.padding_blocks_written),
            "write_amplification": self.write_amplification(),
            "padding_traffic_ratio": self.padding_traffic_ratio(),
            "gc_traffic_ratio": self.gc_traffic_ratio(),
            "gc_passes": float(self.gc_passes),
            "gc_segments_reclaimed": float(self.gc_segments_reclaimed),
        }
