"""Crash recovery: rebuild the volatile mapping from on-media metadata.

A production LSS keeps the LBA→location table in RAM and reconstructs it
after a crash by scanning segment summaries: every slot records its LBA and
a monotone write stamp, and the newest stamp per LBA wins (stale copies and
padding slots are garbage).  The simulator persists exactly that metadata in
the segment pool (``slot_lba`` / ``slot_seq``), so recovery here is the real
algorithm, and the tests assert it reproduces the live mapping bit-for-bit
after arbitrary churn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lss.segment import NO_LBA, SEG_FREE, SegmentPool
from repro.lss.store import UNMAPPED, LogStructuredStore


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of a recovery scan."""

    mapping: np.ndarray          # rebuilt LBA -> location table
    slot_valid: np.ndarray       # rebuilt per-slot validity
    valid_count: np.ndarray      # rebuilt per-segment valid counts
    segments_scanned: int
    live_blocks: int


def scan_pool(pool: SegmentPool, logical_blocks: int) -> RecoveryResult:
    """Rebuild mapping and validity from slot metadata alone."""
    mapping = np.full(logical_blocks, UNMAPPED, dtype=np.int64)
    best_seq = np.zeros(logical_blocks, dtype=np.int64)

    live = pool.state != SEG_FREE
    segments_scanned = int(np.count_nonzero(live))

    # Vectorised newest-wins scan: consider every written slot of every
    # live segment; order by stamp so later assignment wins.
    seg_ids = np.flatnonzero(live)
    if seg_ids.size:
        lbas = pool.slot_lba[seg_ids].ravel()
        seqs = pool.slot_seq[seg_ids].ravel()
        blocks = pool.segment_blocks
        locs = (seg_ids[:, None] * blocks +
                np.arange(blocks)[None, :]).ravel()
        written = lbas != NO_LBA
        lbas, seqs, locs = lbas[written], seqs[written], locs[written]
        order = np.argsort(seqs, kind="stable")
        lbas, seqs, locs = lbas[order], seqs[order], locs[order]
        mapping[lbas] = locs          # later (newer) rows overwrite
        best_seq[lbas] = seqs

    slot_valid = np.zeros_like(pool.slot_valid)
    mapped = np.flatnonzero(mapping != UNMAPPED)
    seg_of = mapping[mapped] // pool.segment_blocks
    slot_of = mapping[mapped] % pool.segment_blocks
    slot_valid[seg_of, slot_of] = True
    valid_count = slot_valid.sum(axis=1).astype(np.int32)

    return RecoveryResult(
        mapping=mapping,
        slot_valid=slot_valid,
        valid_count=valid_count,
        segments_scanned=segments_scanned,
        live_blocks=int(mapped.size),
    )


def recover_store(store: LogStructuredStore) -> RecoveryResult:
    """Simulate a crash-restart: rebuild and install the store's volatile
    state from the pool's on-media metadata, returning the scan result.

    Note the simulator's RAM-buffered chunks are already slot-assigned, so
    "crash" here means losing only the *derived* tables — the same scope a
    real system covers with its segment summaries.
    """
    result = scan_pool(store.pool, store.config.logical_blocks)
    store.mapping[:] = result.mapping
    store.pool.slot_valid[:] = result.slot_valid
    store.pool.valid_count[:] = result.valid_count
    return result


def verify_recovery(store: LogStructuredStore) -> RecoveryResult:
    """Rebuild without installing and assert it matches the live state."""
    result = scan_pool(store.pool, store.config.logical_blocks)
    if not np.array_equal(result.mapping, store.mapping):
        diff = np.flatnonzero(result.mapping != store.mapping)
        raise AssertionError(
            f"recovered mapping diverges at {diff.size} LBAs "
            f"(first: {diff[:5]})")
    if not np.array_equal(result.slot_valid, store.pool.slot_valid):
        raise AssertionError("recovered slot validity diverges")
    if not np.array_equal(result.valid_count, store.pool.valid_count):
        raise AssertionError("recovered valid counts diverge")
    return result
