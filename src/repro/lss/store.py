"""The log-structured store: ties groups, segment pool, GC and placement
together and replays traces.

The store is placement-agnostic: any object implementing the
:class:`repro.placement.base.PlacementPolicy` protocol can drive it, which
is how the five baselines and ADAPT share one simulator.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.common.errors import ConfigError
from repro.lss.config import LSSConfig
from repro.lss.gc import GarbageCollector
from repro.lss.group import Group, GroupKind
from repro.lss.segment import ORIGIN_USER, SegmentPool
from repro.lss.stats import StoreStats
from repro.lss.victim import make_victim_policy
from repro.obs import profile as obs_profile
from repro.obs.attribution import NULL_ATTRIBUTION, NullAttribution
from repro.obs.recorder import NULL_RECORDER, NullRecorder
from repro.trace.model import OP_WRITE, Trace

#: Encoded-mapping value for "never written".
UNMAPPED: int = -1


class LogStructuredStore:
    """One simulated LSS volume on an SSD array.

    Args:
        config: store geometry and GC knobs.
        policy: a placement policy instance (not yet bound to a store).
        recorder: observability sink (:class:`repro.obs.ObsRecorder`);
            defaults to the shared no-op recorder, which keeps every
            instrumented hot path at a cached-boolean cost.
        auditor: optional :class:`repro.validate.InvariantAuditor`; when
            set, the store notifies it after every accepted user block and
            at finalize so cross-structure invariants are checked on a
            cadence while the replay is in flight.
        attribution: causal-attribution sink
            (:class:`repro.obs.attribution.AttributionRecorder`); defaults
            to the shared no-op sink.  When enabled the segment pool
            tracks per-slot origin/epoch provenance and GC emits victim
            attribution records.
    """

    def __init__(self, config: LSSConfig, policy,
                 recorder: NullRecorder | None = None,
                 auditor=None,
                 attribution: NullAttribution | None = None) -> None:
        self.config = config
        self.policy = policy
        self.obs = NULL_RECORDER if recorder is None else recorder
        self._obs_on = self.obs.enabled
        self.attribution = (NULL_ATTRIBUTION if attribution is None
                            else attribution)
        self._attr_on = self.attribution.enabled
        #: Set by the batched engine around scalar bursts when the
        #: recorder is batch-capable: per-block user-write hooks are
        #: skipped and the burst reports one ``on_user_write_bulk`` at
        #: its end (identical counter totals, chunk-granular cadence).
        self._defer_user_obs = False
        #: The process-global phase profiler, captured at construction so
        #: replay/GC spans attribute to the profiler active when the run
        #: was set up (NULL_PROFILER unless a CLI --profile-out or a test
        #: installed one).
        self.profiler = obs_profile.current()
        self._auditor = auditor

        specs = policy.group_specs()
        if not specs:
            raise ConfigError("placement policy declared no groups")
        config.validate_for_groups(len(specs))

        self.pool = SegmentPool(config.physical_segments,
                                config.segment_blocks)
        if self._attr_on:
            self.pool.enable_provenance()
        self.mapping = np.full(config.logical_blocks, UNMAPPED,
                               dtype=np.int64)
        self.stats = StoreStats()
        self.groups: list[Group] = []
        for gid, spec in enumerate(specs):
            group = Group(gid, spec, self)
            self.groups.append(group)
            self.stats.groups.append(group.traffic)
        # Bind observability after groups exist: a recorder-attached
        # timeline derives its occupancy columns from the group list.
        self.attribution.bind_store(self)
        self.obs.bind_store(self)
        self._sla_groups = [g for g in self.groups
                            if g.spec.kind in (GroupKind.USER,
                                               GroupKind.MIXED)]
        #: Lazy min-heap of (deadline_us, gid) entries: every SLA buffer
        #: with an armed timer keeps at least one entry at or below its
        #: actual deadline, so tick() is O(1) until a deadline really
        #: fires.  Stale entries are popped and revalidated lazily.
        self._deadline_heap: list[tuple[int, int]] = []
        for g in self._sla_groups:
            g.buffer.bind_deadline_heap(self._deadline_heap)

        self.victim_policy = make_victim_policy(config.victim_policy,
                                                rng=config.seed)
        self.gc = GarbageCollector(self)

        #: Logical clock: number of user block writes accepted so far.
        self.user_seq = 0
        self.now_us = 0
        #: Set by the batched replay engine while it drives the store;
        #: gates the vectorized GC-migration path (bit-identical results,
        #: see ``GarbageCollector.clean_segment``).  The scalar engine
        #: never sets it, keeping the per-block reference path intact.
        self.batched_mode = False
        #: True when chunk flushes have no consumer that needs the
        #: materialized :class:`ChunkFlush` (policy keeps the base no-op
        #: ``on_chunk_flush``/``before_padding_flush`` hooks, and
        #: observability is either off or batch-capable — the bulk obs
        #: hooks on the counted paths reproduce the per-flush metric
        #: updates exactly): run appends may then account FULL flushes in
        #: bulk and ``tick`` may fire deadlines through the lean counted
        #: path instead of materializing each ChunkFlush.
        from repro.placement.base import PlacementPolicy
        base_flush_hook = (
            type(policy).on_chunk_flush is PlacementPolicy.on_chunk_flush)
        obs_ok = not self._obs_on or self.obs.batch_capable
        self._fast_flush = (
            base_flush_hook
            and type(policy).before_padding_flush
            is PlacementPolicy.before_padding_flush
            and obs_ok)
        #: Weaker flag for *run appends only*: FULL flushes emitted inside
        #: an append run never involve padding or deadline decisions, so a
        #: policy that overrides ``on_chunk_flush`` can still opt into the
        #: counted bulk path by providing ``on_full_flush_run`` — the
        #: closed form of its per-flush hook over a run of FULL flushes
        #: (ADAPT's write monitors do).  ``before_padding_flush`` overrides
        #: do not matter here, only for ``tick``.
        self._fast_full = (
            (base_flush_hook
             or type(policy).on_full_flush_run
             is not PlacementPolicy.on_full_flush_run)
            and obs_ok)
        #: Optional observers of physical events (e.g. the FTL bridge):
        #: called as fn(group, flush, device_lba_start) and fn(segment).
        self.flush_listeners: list = []
        self.reclaim_listeners: list = []
        policy.bind(self)
        policy.attach_obs(self.obs)
        if auditor is not None:
            auditor.attach(self)

    # ------------------------------------------------------------------
    # request processing
    # ------------------------------------------------------------------
    def process_request(self, ts_us: int, op: int, offset: int,
                        size: int) -> None:
        """Apply one trace request (``size`` blocks starting at ``offset``)."""
        self.tick(ts_us)
        if op != OP_WRITE:
            self.stats.read_requests += 1
            if self._obs_on:
                self.obs.on_read(offset, ts_us)
            return
        self.stats.write_requests += 1
        end = offset + size
        if offset < 0 or end > self.config.logical_blocks:
            raise ValueError(
                f"request [{offset}, {end}) outside logical space "
                f"[0, {self.config.logical_blocks})")
        for lba in range(offset, end):
            self.write_block(lba, ts_us)

    def write_block(self, lba: int, now_us: int) -> None:
        """Append one user block write for ``lba``."""
        old = self.mapping[lba]
        if old != UNMAPPED:
            self.pool.invalidate(int(old))
        gid = self.policy.place_user(lba, now_us)
        loc = self.groups[gid].append_user(lba, now_us)
        self.mapping[lba] = loc
        if self._attr_on:
            # Birth epoch = pre-increment user_seq; GC migrations carry
            # it forward while flipping the origin to ORIGIN_GC.
            self.pool.slot_origin_flat[loc] = ORIGIN_USER
            self.pool.slot_epoch_flat[loc] = self.user_seq
        self.user_seq += 1
        self.stats.user_blocks_requested += 1
        if self._obs_on and not self._defer_user_obs:
            self.obs.on_user_write(lba, now_us)
        if self.gc.needed():
            self.gc.run(now_us)
        if self._auditor is not None:
            self._auditor.on_user_write(self)

    def read_block(self, lba: int) -> bool:
        """Return whether ``lba`` has ever been written (reads do not touch
        the log; they only matter for workload realism)."""
        return bool(self.mapping[lba] != UNMAPPED)

    def tick(self, now_us: int) -> None:
        """Advance simulated time: fire SLA deadline flushes that are due.

        The common case — no deadline due — costs one heap-top comparison
        instead of the former O(#groups) scan.  When the validated next
        deadline is due, the exact legacy ascending-gid scan runs (the
        firing order is observable: ADAPT's aggregation moves blocks
        between groups mid-scan), so firing semantics are unchanged.

        The placement policy gets a chance to avert each padding flush
        (ADAPT's cross-group aggregation hooks in here, §3.3).
        """
        self.now_us = now_us
        nd = self.next_deadline()
        if nd is None or now_us < nd:
            return
        if self._fast_flush and not self.flush_listeners:
            # Fast-flush policies keep the base (no-op)
            # ``before_padding_flush``, so the scan reduces to firing
            # every due group through the lean counted path.
            for group in self._sla_groups:
                buf = group.buffer
                if buf.pending_blocks == 0:
                    continue
                deadline = buf.deadline_us
                if deadline is not None and now_us >= deadline:
                    group.fire_deadline_fast(now_us)
            return
        for group in self._sla_groups:
            if group.buffer.pending_blocks == 0:
                continue
            deadline = group.buffer.deadline_us
            if deadline is None or now_us < deadline:
                continue
            if self.policy.before_padding_flush(group, now_us):
                continue  # policy persisted the data another way
            group.poll_deadline(now_us)

    def next_deadline(self) -> int | None:
        """The earliest armed SLA deadline across all groups, or ``None``.

        Pops stale heap entries until the top matches its buffer's live
        deadline.  Only the entry the buffer still tracks (its
        ``heap_entry_us``) is re-pushed at the moved deadline; any other
        popped entry is a leftover from an already-flushed episode whose
        live successor is elsewhere in the heap — re-pushing those would
        duplicate them without bound.
        """
        heap = self._deadline_heap
        while heap:
            d, gid = heap[0]
            buf = self.groups[gid].buffer
            actual = buf.deadline_us
            if actual == d:
                return d
            heapq.heappop(heap)
            if d != buf.heap_entry_us:
                continue
            buf.sync_heap_entry(actual)
            if actual is not None:
                heapq.heappush(heap, (actual, gid))
        return None

    def apply_user_batch(self, lbas: np.ndarray, ts_us: np.ndarray,
                         gids: np.ndarray, splitter=None) -> None:
        """Apply a pre-placed batch of user writes in one vectorized pass.

        The caller — the batched replay engine — guarantees that no GC
        trigger can occur anywhere inside the batch; under that guarantee
        the deferred mapping update and invalidation below are
        unobservable and the final state is bit-identical to a scalar
        ``write_block`` loop.  Duplicate LBAs are handled by invalidating
        each occurrence's predecessor.

        ``splitter`` interleaves SLA deadline fires: called with the next
        unapplied block offset, it returns ``(end_block, tick_ts)`` —
        blocks up to ``end_block`` are appended, then ``tick(tick_ts)``
        runs the real deadline scan; ``tick_ts is None`` ends the batch.
        Flushes never feed back into placement, so the pre-computed
        ``gids`` stay exact across fires.
        """
        from repro.perf.batch import duplicate_chains
        n = int(lbas.shape[0])
        if n == 0:
            return
        old = self.mapping[lbas]
        prev, last_mask = duplicate_chains(lbas)
        locs = np.empty(n, dtype=np.int64)
        start_seq = self.user_seq
        lba_list = lbas.tolist()
        ts_list = ts_us.tolist()
        run_ends = np.flatnonzero(np.diff(gids)).tolist()
        run_ends = [e + 1 for e in run_ends]
        run_ends.append(n)
        ri = 0  # index of the run covering the apply cursor
        pos = 0
        while True:
            end, tick_at = (n, None) if splitter is None \
                else splitter(pos)
            b = pos
            while b < end:
                while run_ends[ri] <= b:
                    ri += 1
                b1 = min(run_ends[ri], end)
                group = self.groups[int(gids[b])]
                locs[b:b1] = group.append_user_run(
                    lbas[b:b1], lba_list[b:b1], ts_list[b:b1],
                    start_seq + b)
                self.user_seq = start_seq + b1
                b = b1
            pos = end
            if tick_at is None:
                break
            self.tick(tick_at)
        if self._attr_on:
            # Same tags the scalar loop writes one block at a time: batch
            # epochs are the pre-increment user_seq of each block.
            self.pool.slot_origin_flat[locs] = ORIGIN_USER
            self.pool.slot_epoch_flat[locs] = np.arange(
                start_seq, start_seq + n, dtype=np.int64)
        self.stats.user_blocks_requested += n
        if self._obs_on:
            self.obs.on_user_write_bulk(n, lba_list[-1], ts_list[-1])
        # Deferred invalidation: first occurrences kill their pre-batch
        # location, later occurrences kill their predecessor's fresh slot.
        dup = prev >= 0
        old[dup] = locs[prev[dup]]
        dead = old[old != UNMAPPED]
        if dead.size:
            self.pool.invalidate_many(dead)
        self.mapping[lbas[last_mask]] = locs[last_mask]
        if self._auditor is not None:
            self._auditor.on_user_batch(self, n)

    # ------------------------------------------------------------------
    # replay and finalisation
    # ------------------------------------------------------------------
    def replay(self, trace: Trace, finalize: bool = True,
               engine: str = "auto") -> StoreStats:
        """Replay a whole trace and return the stats object.

        Args:
            trace: the request stream.
            finalize: force-flush pending chunks at end of trace.
            engine: ``"batched"`` (vectorized chunked replay,
                ``repro.perf``), ``"scalar"`` (the per-request reference
                loop), or ``"auto"`` (batched when its preconditions hold:
                no flush listeners, and observability either off or
                batch-capable — the default :class:`ObsRecorder` is; only
                ``trace_events=True`` recorders fall back to the scalar
                loop for their exact per-event cadence).  Both engines
                produce bit-identical final state and metric totals; the
                differential and obs-equivalence suites enforce it.
        """
        if engine not in ("auto", "batched", "scalar"):
            raise ValueError(f"unknown replay engine {engine!r}")
        if engine == "batched" or (
                engine == "auto"
                and (not self._obs_on or self.obs.batch_capable)
                and not self.flush_listeners):
            from repro.perf.engine import BatchedReplayEngine
            return BatchedReplayEngine(self).replay(trace, finalize=finalize)
        ts = trace.timestamps.tolist()
        ops = trace.ops.tolist()
        offs = trace.offsets.tolist()
        szs = trace.sizes.tolist()
        for t, op, off, sz in zip(ts, ops, offs, szs):
            self.process_request(t, op, off, sz)
        if finalize:
            self.finalize()
        return self.stats

    def finalize(self) -> None:
        """Flush every pending chunk (padded) at end of run."""
        with self.profiler.span("finalize"):
            now = self.now_us + self.config.coalesce_window_us
            for group in self.groups:
                group.force_flush(now)
            if self._obs_on:
                self.obs.on_finalize(self.stats)
            if self._attr_on:
                self.attribution.on_finalize(self)
            if self._auditor is not None:
                self._auditor.on_finalize(self)

    # ------------------------------------------------------------------
    # hooks and introspection
    # ------------------------------------------------------------------
    def on_chunk_flush(self, group: Group, flush) -> None:
        """Account a chunk write against the RAID layer and inform the
        placement policy (ADAPT's write monitors hang off this)."""
        self.stats.raid.add_chunks(1)
        self.policy.on_chunk_flush(group, flush)
        if self.flush_listeners:
            # Flush accounting runs before sealing, so the open segment is
            # the one this chunk wrote into, and its fill pointer already
            # covers the chunk's data + padding slots.
            seg = group.open_seg
            start = seg * self.config.segment_blocks \
                + int(self.pool.fill[seg]) - flush.total_blocks
            for fn in self.flush_listeners:
                fn(group, flush, start)

    def on_segment_reclaimed_physical(self, seg: int) -> None:
        """GC erased physical segment ``seg`` (FTL bridges trim on this)."""
        for fn in self.reclaim_listeners:
            fn(seg)

    def group_occupancy(self) -> np.ndarray:
        """Blocks currently resident per group, counting sealed + open
        segments (Fig 3b's group-size distribution)."""
        pool = self.pool
        owned = pool.group >= 0
        return np.bincount(pool.group[owned].astype(np.int64),
                           weights=pool.valid_count[owned],
                           minlength=len(self.groups)).astype(np.int64)

    def check_invariants(self) -> None:
        """Cross-structure consistency (tests only): every mapped LBA points
        at a valid slot holding that LBA, and valid slot count matches the
        number of mapped LBAs."""
        self.pool.check_invariants()
        mapped = np.flatnonzero(self.mapping != UNMAPPED)
        locs = self.mapping[mapped]
        seg, slot = np.divmod(locs, self.pool.segment_blocks)
        invalid = np.flatnonzero(~self.pool.slot_valid[seg, slot])
        if invalid.size:
            i = invalid[0]
            raise AssertionError(f"lba {int(mapped[i])} maps to invalid "
                                 f"slot {int(locs[i])}")
        held = self.pool.slot_lba[seg, slot]
        wrong = np.flatnonzero(held != mapped)
        if wrong.size:
            i = wrong[0]
            raise AssertionError(
                f"lba {int(mapped[i])} maps to slot holding "
                f"{int(held[i])}")
        total_valid = int(self.pool.valid_count.sum())
        if total_valid != mapped.size:
            raise AssertionError(
                f"{total_valid} valid slots but {mapped.size} mapped LBAs")
