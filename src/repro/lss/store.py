"""The log-structured store: ties groups, segment pool, GC and placement
together and replays traces.

The store is placement-agnostic: any object implementing the
:class:`repro.placement.base.PlacementPolicy` protocol can drive it, which
is how the five baselines and ADAPT share one simulator.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.lss.config import LSSConfig
from repro.lss.gc import GarbageCollector
from repro.lss.group import Group, GroupKind
from repro.lss.segment import SegmentPool
from repro.lss.stats import StoreStats
from repro.lss.victim import make_victim_policy
from repro.obs.recorder import NULL_RECORDER, NullRecorder
from repro.trace.model import OP_WRITE, Trace

#: Encoded-mapping value for "never written".
UNMAPPED: int = -1


class LogStructuredStore:
    """One simulated LSS volume on an SSD array.

    Args:
        config: store geometry and GC knobs.
        policy: a placement policy instance (not yet bound to a store).
        recorder: observability sink (:class:`repro.obs.ObsRecorder`);
            defaults to the shared no-op recorder, which keeps every
            instrumented hot path at a cached-boolean cost.
        auditor: optional :class:`repro.validate.InvariantAuditor`; when
            set, the store notifies it after every accepted user block and
            at finalize so cross-structure invariants are checked on a
            cadence while the replay is in flight.
    """

    def __init__(self, config: LSSConfig, policy,
                 recorder: NullRecorder | None = None,
                 auditor=None) -> None:
        self.config = config
        self.policy = policy
        self.obs = NULL_RECORDER if recorder is None else recorder
        self._obs_on = self.obs.enabled
        self._auditor = auditor

        specs = policy.group_specs()
        if not specs:
            raise ConfigError("placement policy declared no groups")
        config.validate_for_groups(len(specs))

        self.pool = SegmentPool(config.physical_segments,
                                config.segment_blocks)
        self.mapping = np.full(config.logical_blocks, UNMAPPED,
                               dtype=np.int64)
        self.stats = StoreStats()
        self.obs.bind_store(self)
        self.groups: list[Group] = []
        for gid, spec in enumerate(specs):
            group = Group(gid, spec, self)
            self.groups.append(group)
            self.stats.groups.append(group.traffic)
        self._sla_groups = [g for g in self.groups
                            if g.spec.kind in (GroupKind.USER,
                                               GroupKind.MIXED)]

        self.victim_policy = make_victim_policy(config.victim_policy,
                                                rng=config.seed)
        self.gc = GarbageCollector(self)

        #: Logical clock: number of user block writes accepted so far.
        self.user_seq = 0
        self.now_us = 0
        #: Optional observers of physical events (e.g. the FTL bridge):
        #: called as fn(group, flush, device_lba_start) and fn(segment).
        self.flush_listeners: list = []
        self.reclaim_listeners: list = []
        policy.bind(self)
        policy.attach_obs(self.obs)
        if auditor is not None:
            auditor.attach(self)

    # ------------------------------------------------------------------
    # request processing
    # ------------------------------------------------------------------
    def process_request(self, ts_us: int, op: int, offset: int,
                        size: int) -> None:
        """Apply one trace request (``size`` blocks starting at ``offset``)."""
        self.tick(ts_us)
        if op != OP_WRITE:
            self.stats.read_requests += 1
            if self._obs_on:
                self.obs.on_read(offset, ts_us)
            return
        self.stats.write_requests += 1
        end = offset + size
        if offset < 0 or end > self.config.logical_blocks:
            raise ValueError(
                f"request [{offset}, {end}) outside logical space "
                f"[0, {self.config.logical_blocks})")
        for lba in range(offset, end):
            self.write_block(lba, ts_us)

    def write_block(self, lba: int, now_us: int) -> None:
        """Append one user block write for ``lba``."""
        old = self.mapping[lba]
        if old != UNMAPPED:
            self.pool.invalidate(int(old))
        gid = self.policy.place_user(lba, now_us)
        loc = self.groups[gid].append_user(lba, now_us)
        self.mapping[lba] = loc
        self.user_seq += 1
        self.stats.user_blocks_requested += 1
        if self._obs_on:
            self.obs.on_user_write(lba, now_us)
        if self.gc.needed():
            self.gc.run(now_us)
        if self._auditor is not None:
            self._auditor.on_user_write(self)

    def read_block(self, lba: int) -> bool:
        """Return whether ``lba`` has ever been written (reads do not touch
        the log; they only matter for workload realism)."""
        return bool(self.mapping[lba] != UNMAPPED)

    def tick(self, now_us: int) -> None:
        """Advance simulated time: fire SLA deadline flushes that are due.

        The placement policy gets a chance to avert each padding flush
        (ADAPT's cross-group aggregation hooks in here, §3.3).
        """
        self.now_us = now_us
        for group in self._sla_groups:
            if group.buffer.pending_blocks == 0:
                continue
            deadline = group.buffer.deadline_us
            if deadline is None or now_us < deadline:
                continue
            if self.policy.before_padding_flush(group, now_us):
                continue  # policy persisted the data another way
            group.poll_deadline(now_us)

    # ------------------------------------------------------------------
    # replay and finalisation
    # ------------------------------------------------------------------
    def replay(self, trace: Trace, finalize: bool = True) -> StoreStats:
        """Replay a whole trace and return the stats object."""
        ts, ops = trace.timestamps, trace.ops
        offs, szs = trace.offsets, trace.sizes
        for i in range(len(trace)):
            self.process_request(int(ts[i]), int(ops[i]), int(offs[i]),
                                 int(szs[i]))
        if finalize:
            self.finalize()
        return self.stats

    def finalize(self) -> None:
        """Flush every pending chunk (padded) at end of run."""
        now = self.now_us + self.config.coalesce_window_us
        for group in self.groups:
            group.force_flush(now)
        if self._obs_on:
            self.obs.on_finalize(self.stats)
        if self._auditor is not None:
            self._auditor.on_finalize(self)

    # ------------------------------------------------------------------
    # hooks and introspection
    # ------------------------------------------------------------------
    def on_chunk_flush(self, group: Group, flush) -> None:
        """Account a chunk write against the RAID layer and inform the
        placement policy (ADAPT's write monitors hang off this)."""
        self.stats.raid.add_chunks(1)
        self.policy.on_chunk_flush(group, flush)
        if self.flush_listeners:
            # Flush accounting runs before sealing, so the open segment is
            # the one this chunk wrote into, and its fill pointer already
            # covers the chunk's data + padding slots.
            seg = group.open_seg
            start = seg * self.config.segment_blocks \
                + int(self.pool.fill[seg]) - flush.total_blocks
            for fn in self.flush_listeners:
                fn(group, flush, start)

    def on_segment_reclaimed_physical(self, seg: int) -> None:
        """GC erased physical segment ``seg`` (FTL bridges trim on this)."""
        for fn in self.reclaim_listeners:
            fn(seg)

    def group_occupancy(self) -> np.ndarray:
        """Blocks currently resident per group, counting sealed + open
        segments (Fig 3b's group-size distribution)."""
        occ = np.zeros(len(self.groups), dtype=np.int64)
        pool = self.pool
        for seg in range(pool.num_segments):
            g = int(pool.group[seg])
            if g >= 0:
                occ[g] += int(pool.valid_count[seg])
        return occ

    def check_invariants(self) -> None:
        """Cross-structure consistency (tests only): every mapped LBA points
        at a valid slot holding that LBA, and valid slot count matches the
        number of mapped LBAs."""
        self.pool.check_invariants()
        mapped = np.flatnonzero(self.mapping != UNMAPPED)
        for lba in mapped:
            loc = int(self.mapping[lba])
            seg, slot = divmod(loc, self.pool.segment_blocks)
            if not self.pool.slot_valid[seg, slot]:
                raise AssertionError(f"lba {lba} maps to invalid slot {loc}")
            if self.pool.slot_lba[seg, slot] != lba:
                raise AssertionError(
                    f"lba {lba} maps to slot holding "
                    f"{self.pool.slot_lba[seg, slot]}")
        total_valid = int(self.pool.valid_count.sum())
        if total_valid != mapped.size:
            raise AssertionError(
                f"{total_valid} valid slots but {mapped.size} mapped LBAs")
