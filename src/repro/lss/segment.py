"""Physical segment pool backed by NumPy struct-of-arrays.

Per the HPC guides, no per-block Python objects exist: block ownership and
validity live in two 2-D arrays indexed ``[segment, slot]``, and per-segment
metadata in flat arrays.  A *location* is encoded as
``segment * segment_blocks + slot``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CapacityError

SEG_FREE: int = 0
SEG_OPEN: int = 1
SEG_SEALED: int = 2

NO_LBA: int = -1

# Slot provenance origins (only tracked when attribution is enabled).
ORIGIN_NONE: int = 0
ORIGIN_USER: int = 1
ORIGIN_GC: int = 2


class SegmentPool:
    """Fixed pool of physical segments with slot-level bookkeeping."""

    def __init__(self, num_segments: int, segment_blocks: int) -> None:
        if num_segments <= 0 or segment_blocks <= 0:
            raise ValueError("pool dimensions must be positive")
        self.num_segments = num_segments
        self.segment_blocks = segment_blocks

        self.slot_lba = np.full((num_segments, segment_blocks), NO_LBA,
                                dtype=np.int64)
        self.slot_valid = np.zeros((num_segments, segment_blocks), dtype=bool)
        #: Monotone per-slot write stamp — the on-media ordering metadata a
        #: real LSS persists so crash recovery can replay the log and let
        #: the newest copy of each LBA win (see ``lss.recovery``).
        self.slot_seq = np.zeros((num_segments, segment_blocks),
                                 dtype=np.int64)
        self._append_seq = 0

        self.state = np.full(num_segments, SEG_FREE, dtype=np.uint8)
        self.group = np.full(num_segments, -1, dtype=np.int16)
        self.fill = np.zeros(num_segments, dtype=np.int32)
        self.valid_count = np.zeros(num_segments, dtype=np.int32)
        self.created_seq = np.zeros(num_segments, dtype=np.int64)
        self.sealed_seq = np.zeros(num_segments, dtype=np.int64)

        self._free = list(range(num_segments - 1, -1, -1))

        # Optional provenance plane (attribution): who wrote each slot
        # (ORIGIN_USER vs ORIGIN_GC) and its birth epoch — the store's
        # user_seq at first write, preserved across GC migrations.
        self.slot_origin: np.ndarray | None = None
        self.slot_epoch: np.ndarray | None = None
        self.slot_origin_flat: np.ndarray | None = None
        self.slot_epoch_flat: np.ndarray | None = None

    # ------------------------------------------------------------------
    # provenance (attribution)
    # ------------------------------------------------------------------
    def enable_provenance(self) -> None:
        """Allocate the per-slot origin/epoch plane (idempotent).

        Kept out of ``__init__`` so attribution-off runs pay neither the
        memory nor the tagging writes.
        """
        if self.slot_origin is not None:
            return
        self.slot_origin = np.full((self.num_segments, self.segment_blocks),
                                   ORIGIN_NONE, dtype=np.uint8)
        self.slot_epoch = np.zeros((self.num_segments, self.segment_blocks),
                                   dtype=np.int64)
        self.slot_origin_flat = self.slot_origin.reshape(-1)
        self.slot_epoch_flat = self.slot_epoch.reshape(-1)

    def __getstate__(self) -> dict:
        # The flat provenance views alias the 2-D arrays; naive pickling
        # materializes them as independent copies and silently breaks
        # the aliasing after a fleet checkpoint restore.  Drop them here
        # and rebuild in __setstate__.
        state = self.__dict__.copy()
        state["slot_origin_flat"] = None
        state["slot_epoch_flat"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.slot_origin is not None:
            self.slot_origin_flat = self.slot_origin.reshape(-1)
            self.slot_epoch_flat = self.slot_epoch.reshape(-1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def free_segments(self) -> int:
        return len(self._free)

    def allocate(self, group: int, now_seq: int) -> int:
        """Take a free segment, mark it OPEN for ``group``."""
        if not self._free:
            raise CapacityError("segment pool exhausted (GC watermarks "
                                "cannot be honoured)")
        seg = self._free.pop()
        self.state[seg] = SEG_OPEN
        self.group[seg] = group
        self.fill[seg] = 0
        self.valid_count[seg] = 0
        self.created_seq[seg] = now_seq
        return seg

    def seal(self, seg: int, now_seq: int) -> None:
        if self.state[seg] != SEG_OPEN:
            raise ValueError(f"segment {seg} is not open")
        if self.fill[seg] != self.segment_blocks:
            raise ValueError(f"segment {seg} sealed before it was full")
        self.state[seg] = SEG_SEALED
        self.sealed_seq[seg] = now_seq

    def reclaim(self, seg: int) -> None:
        """Erase a sealed segment and return it to the free pool."""
        if self.state[seg] != SEG_SEALED:
            raise ValueError(f"segment {seg} is not sealed")
        if self.valid_count[seg] != 0:
            raise ValueError(
                f"segment {seg} still holds {self.valid_count[seg]} valid "
                f"blocks; migrate them before reclaiming")
        self.slot_lba[seg, :] = NO_LBA
        self.slot_valid[seg, :] = False
        self.slot_seq[seg, :] = 0
        if self.slot_origin is not None:
            self.slot_origin[seg, :] = ORIGIN_NONE
            self.slot_epoch[seg, :] = 0
        self.state[seg] = SEG_FREE
        self.group[seg] = -1
        self.fill[seg] = 0
        self._free.append(seg)

    # ------------------------------------------------------------------
    # slot operations
    # ------------------------------------------------------------------
    def append_block(self, seg: int, lba: int) -> int:
        """Place ``lba`` into the next slot of open segment ``seg``;
        return the encoded location."""
        slot = int(self.fill[seg])
        if slot >= self.segment_blocks:
            raise CapacityError(f"segment {seg} overflow")
        self.slot_lba[seg, slot] = lba
        self.slot_valid[seg, slot] = True
        self._append_seq += 1
        self.slot_seq[seg, slot] = self._append_seq
        self.fill[seg] = slot + 1
        self.valid_count[seg] += 1
        return seg * self.segment_blocks + slot

    def append_many(self, seg: int, lbas: np.ndarray) -> int:
        """Place a run of LBAs into consecutive slots of open segment
        ``seg``; return the first slot index.

        Equivalent to calling :meth:`append_block` once per LBA (including
        the per-slot ``slot_seq`` stamps), but with slice writes.  The run
        must fit in the segment's remaining capacity.
        """
        slot = int(self.fill[seg])
        n = int(lbas.shape[0])
        if slot + n > self.segment_blocks:
            raise CapacityError(f"segment {seg} overflow")
        self.slot_lba[seg, slot:slot + n] = lbas
        self.slot_valid[seg, slot:slot + n] = True
        s0 = self._append_seq + 1
        self._append_seq += n
        self.slot_seq[seg, slot:slot + n] = np.arange(s0, s0 + n,
                                                      dtype=np.int64)
        self.fill[seg] = slot + n
        self.valid_count[seg] += n
        return slot

    def append_padding(self, seg: int, nblocks: int) -> None:
        """Consume ``nblocks`` slots with dead zero-padding."""
        slot = int(self.fill[seg])
        if slot + nblocks > self.segment_blocks:
            raise CapacityError(f"segment {seg} padding overflow")
        # slots keep NO_LBA / invalid: dead on arrival.
        self.fill[seg] = slot + nblocks

    def invalidate(self, loc: int) -> None:
        """Mark the block at encoded location ``loc`` invalid."""
        seg, slot = divmod(loc, self.segment_blocks)
        if not self.slot_valid[seg, slot]:
            raise ValueError(f"location {loc} already invalid")
        self.slot_valid[seg, slot] = False
        self.valid_count[seg] -= 1

    def invalidate_many(self, locs: np.ndarray) -> None:
        """Vectorized :meth:`invalidate` over distinct encoded locations."""
        flat_valid = self.slot_valid.reshape(-1)
        state = flat_valid[locs]
        if not state.all():
            bad = int(locs[np.flatnonzero(~state)[0]])
            raise ValueError(f"location {bad} already invalid")
        flat_valid[locs] = False
        per_seg = np.bincount(locs // self.segment_blocks,
                              minlength=self.num_segments)
        self.valid_count -= per_seg.astype(self.valid_count.dtype)

    def invalidate_all(self, seg: int) -> None:
        """Invalidate every valid block of ``seg`` in one row write.

        Equivalent to calling :meth:`invalidate` for each of the
        segment's valid slots — used by batched GC, which migrates a
        victim's full valid set and therefore knows the survivor count
        is zero without per-slot bookkeeping.
        """
        self.slot_valid[seg, :] = False
        self.valid_count[seg] = 0

    def location_of(self, seg: int, slot: int) -> int:
        return seg * self.segment_blocks + slot

    def valid_lbas(self, seg: int) -> np.ndarray:
        """LBAs of the valid blocks in ``seg`` (in slot order)."""
        mask = self.slot_valid[seg]
        return self.slot_lba[seg][mask]

    def sealed_segments(self) -> np.ndarray:
        return np.flatnonzero(self.state == SEG_SEALED)

    def utilization(self, seg: int) -> float:
        """Valid fraction of a segment's capacity."""
        return float(self.valid_count[seg]) / self.segment_blocks

    def check_invariants(self) -> None:
        """Expensive consistency check used by tests and property-based
        testing; never called in hot paths."""
        for seg in range(self.num_segments):
            vc = int(np.count_nonzero(self.slot_valid[seg]))
            if vc != int(self.valid_count[seg]):
                raise AssertionError(
                    f"segment {seg}: cached valid_count {self.valid_count[seg]}"
                    f" != actual {vc}")
            if self.state[seg] == SEG_FREE:
                if vc != 0 or self.fill[seg] != 0:
                    raise AssertionError(f"free segment {seg} not empty")
            if np.any(self.slot_valid[seg, self.fill[seg]:]):
                raise AssertionError(
                    f"segment {seg}: valid slot beyond fill pointer")
