"""Groups: the placement-visible streams of the log.

A group owns one open segment and one open (coalescing) chunk at a time
(paper §3.1).  User-facing groups flush chunks under the SLA window and pad;
GC-facing groups write in bulk and only flush full chunks.  Append kinds are
tracked per block so the per-group traffic breakdown of Fig 3 falls out of
the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

from repro.array.coalescing import ChunkFlush, CoalescingBuffer, FlushReason
from repro.lss.stats import GroupTraffic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lss.store import LogStructuredStore


class GroupKind(Enum):
    USER = "user"   # receives user writes; SLA window applies
    GC = "gc"       # receives GC rewrites; bulk writes, no SLA padding
    MIXED = "mixed"  # receives both (DAC/MiDA style); SLA window applies


@dataclass(frozen=True)
class GroupSpec:
    """Declarative description of one group, provided by the policy."""

    name: str
    kind: GroupKind


# Append kinds for traffic accounting.
APPEND_USER = 0
APPEND_GC = 1
APPEND_SHADOW = 2


class Group:
    """Runtime state of one group inside a store."""

    def __init__(self, gid: int, spec: GroupSpec,
                 store: "LogStructuredStore") -> None:
        self.gid = gid
        self.spec = spec
        self.store = store
        cfg = store.config
        window = (cfg.coalesce_window_us
                  if spec.kind in (GroupKind.USER, GroupKind.MIXED) else None)
        self.buffer = CoalescingBuffer(cfg.chunk.chunk_blocks, window,
                                       sla_mode=cfg.sla_mode,
                                       obs=store.obs, owner_gid=gid,
                                       owner_name=spec.name)
        self.open_seg: int | None = None
        self.traffic = GroupTraffic(name=spec.name, kind=spec.kind.value)
        #: Tokens at index < _shadow_mark already have substitutes persisted
        #: elsewhere (cross-group aggregation watermark, §3.3).
        self._shadow_mark = 0
        #: Blocks shadow-appended into the current open segment; compared
        #: against the group's average padding size by the aggregation
        #: stop-condition (Eq. 1 context).
        self.segment_shadow_bytes = 0

    # ------------------------------------------------------------------
    # segment management
    # ------------------------------------------------------------------
    def _ensure_open_segment(self) -> int:
        if self.open_seg is None:
            self.open_seg = self.store.pool.allocate(self.gid,
                                                     self.store.user_seq)
            self.segment_shadow_bytes = 0
        return self.open_seg

    def _maybe_seal(self) -> None:
        seg = self.open_seg
        if seg is not None and \
                self.store.pool.fill[seg] == self.store.pool.segment_blocks:
            self.store.pool.seal(seg, self.store.user_seq)
            self.store.policy.on_segment_sealed(self.gid, seg)
            self.open_seg = None

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def append_user(self, lba: int, now_us: int) -> int:
        return self._append_data(lba, now_us, APPEND_USER)

    def append_gc(self, lba: int, now_us: int) -> int:
        return self._append_data(lba, now_us, APPEND_GC)

    def append_shadow(self, lba: int, now_us: int) -> None:
        """Persist a substitute copy of a hot pending block in this group's
        open chunk (shadow append, §3.3).

        The substitute is accounted as written traffic but its slot is dead
        on arrival: the canonical copy remains the (pending) original in the
        hot group, which will be persisted by the lazy append.
        """
        seg = self._ensure_open_segment()
        self.store.pool.append_padding(seg, 1)  # dead slot, real write
        flush = self.buffer.append((APPEND_SHADOW, lba), now_us)
        self.segment_shadow_bytes += self.store.config.chunk.block_bytes
        if flush is not None:
            self._account_flush(flush)
        self._maybe_seal()

    def append_user_run(self, lbas, lba_list: list[int],
                        ts_list: list[int], start_seq: int):
        """Batched equivalent of calling :meth:`append_user` per block.

        ``lbas`` is the int64 array of the run, ``lba_list``/``ts_list``
        its pre-converted Python lists (token tuples want plain ints).
        Block ``i`` of the run behaves as if ``store.user_seq`` were
        ``start_seq + i`` (segment created/sealed stamps).  The caller —
        the batched replay engine — guarantees that no GC trigger and no
        SLA deadline can occur inside the run, which is what makes the
        deferred bookkeeping bit-identical to the scalar path.

        Returns the int64 array of encoded locations.
        """
        pool = self.store.pool
        sb = pool.segment_blocks
        fast = self.store._fast_full and not self.store.flush_listeners
        n = len(lba_list)
        locs = np.empty(n, dtype=np.int64)
        done = 0
        while done < n:
            if self.open_seg is None:
                self.open_seg = pool.allocate(self.gid, start_seq + done)
                self.segment_shadow_bytes = 0
            seg = self.open_seg
            take = min(n - done, sb - int(pool.fill[seg]))
            slot0 = pool.append_many(seg, lbas[done:done + take])
            base = seg * sb + slot0
            locs[done:done + take] = np.arange(base, base + take,
                                               dtype=np.int64)
            self._append_run_tokens(APPEND_USER,
                                    lba_list[done:done + take],
                                    ts_list[done:done + take], fast)
            done += take
            if pool.fill[seg] == sb:
                pool.seal(seg, start_seq + done - 1)
                self.store.policy.on_segment_sealed(self.gid, seg)
                self.open_seg = None
        return locs

    def append_gc_run(self, lbas, lba_list: list[int],
                      now_us: int) -> np.ndarray:
        """Batched equivalent of calling :meth:`append_gc` per block.

        GC migrations happen at one instant of both clocks — ``now_us``
        and ``store.user_seq`` are constant across the run — so segment
        created/sealed stamps and buffer timers need no per-block
        stepping.  The caller (the batched GC path) guarantees nothing
        can interleave inside the run.  Returns the encoded locations.
        """
        pool = self.store.pool
        sb = pool.segment_blocks
        seq = self.store.user_seq
        fast = self.store._fast_full and not self.store.flush_listeners
        n = len(lba_list)
        locs = np.empty(n, dtype=np.int64)
        done = 0
        while done < n:
            if self.open_seg is None:
                self.open_seg = pool.allocate(self.gid, seq)
                self.segment_shadow_bytes = 0
            seg = self.open_seg
            take = min(n - done, sb - int(pool.fill[seg]))
            slot0 = pool.append_many(seg, lbas[done:done + take])
            base = seg * sb + slot0
            locs[done:done + take] = np.arange(base, base + take,
                                               dtype=np.int64)
            self._append_run_tokens(APPEND_GC,
                                    lba_list[done:done + take],
                                    [now_us] * take, fast)
            done += take
            if pool.fill[seg] == sb:
                pool.seal(seg, seq)
                self.store.policy.on_segment_sealed(self.gid, seg)
                self.open_seg = None
        return locs

    def _append_run_tokens(self, kind: int, lba_slice: list[int],
                           ts_slice: list[int], fast: bool) -> None:
        """Feed one segment-bounded run portion into the coalescing
        buffer and account its FULL flushes.

        With ``fast`` (no per-flush consumer: base ``on_chunk_flush``,
        observability off or batch-capable, no flush listeners) the
        flushes are counted, not materialized; the traffic, RAID and
        bulk-obs updates below are exactly what per-flush
        :meth:`_account_flush` calls would produce for all-FULL flushes.
        Otherwise each ChunkFlush goes through the full accounting path.
        """
        buf = self.buffer
        if not fast:
            for flush in buf.append_run(kind, lba_slice, ts_slice):
                self._account_flush(flush)
            return
        p = buf.pending_blocks
        pend = buf.pending_tokens \
            if p and p + len(lba_slice) >= buf.chunk_blocks else ()
        nf, new_flushed = buf.append_run_counted(kind, lba_slice, ts_slice)
        if not nf:
            return
        t = self.traffic
        fu = fg = fs = 0
        for k, _lba in pend:
            if k == APPEND_USER:
                fu += 1
            elif k == APPEND_GC:
                fg += 1
            else:
                fs += 1
        if kind == APPEND_USER:
            fu += new_flushed
        else:
            fg += new_flushed
        t.user_blocks += fu
        t.gc_blocks += fg
        t.shadow_blocks += fs
        t.chunk_flushes += nf
        if self._shadow_mark and self.store._obs_on:
            # The first FULL flush is the lazy append of the shadowed
            # backlog; it fired at the stamp of the token that filled it.
            self.store.obs.on_lazy_append(
                self.gid, min(self._shadow_mark, buf.chunk_blocks),
                ts_slice[buf.chunk_blocks - p - 1])
        self._shadow_mark = 0
        self.store.stats.raid.add_chunk_ios(nf)
        self.store.policy.on_full_flush_run(self.gid, nf, pend)
        if self.store._obs_on:
            self.store.obs.on_full_flush_bulk(
                self.gid, self.spec.name, nf, buf.chunk_blocks,
                ts_slice[-1])

    def _append_data(self, lba: int, now_us: int, kind: int) -> int:
        seg = self._ensure_open_segment()
        loc = self.store.pool.append_block(seg, lba)
        flush = self.buffer.append((kind, lba), now_us)
        if flush is not None:
            self._account_flush(flush)
        self._maybe_seal()
        return loc

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def poll_deadline(self, now_us: int) -> ChunkFlush | None:
        """Emit a padded DEADLINE flush if the SLA window expired."""
        flush = self.buffer.poll(now_us)
        if flush is not None:
            self._pad_segment(flush)
            self._account_flush(flush)
            self._maybe_seal()
        return flush

    def fire_deadline_fast(self, now_us: int) -> None:
        """Deadline flush without materializing the :class:`ChunkFlush`.

        Only valid under the store's fast-flush conditions (base
        ``on_chunk_flush``, observability off or batch-capable, no flush
        listeners) with the deadline already checked as due — the counter
        and obs updates below are exactly what :meth:`poll_deadline`
        would produce then.
        """
        buf = self.buffer
        tokens = buf._tokens
        data = len(tokens)
        pad = buf.chunk_blocks - data
        t = self.traffic
        fu = fg = fs = 0
        for k, _lba in tokens:
            if k == APPEND_USER:
                fu += 1
            elif k == APPEND_GC:
                fg += 1
            else:
                fs += 1
        t.user_blocks += fu
        t.gc_blocks += fg
        t.shadow_blocks += fs
        t.padding_blocks += pad
        t.chunk_flushes += 1
        t.deadline_flushes += 1
        tokens.clear()
        buf._timer_start_us = None
        buf._heap_entry_us = None
        if pad and self.open_seg is not None:
            self.store.pool.append_padding(self.open_seg, pad)
        self._shadow_mark = 0
        self.store.stats.raid.add_chunks(1)
        if self.store._obs_on:
            self.store.obs.on_deadline_flush(self.gid, self.spec.name,
                                             data, pad, now_us)
        self._maybe_seal()

    def force_flush(self, now_us: int) -> ChunkFlush | None:
        flush = self.buffer.force_flush(now_us)
        if flush is not None:
            self._pad_segment(flush)
            self._account_flush(flush)
            self._maybe_seal()
        return flush

    def _pad_segment(self, flush: ChunkFlush) -> None:
        if flush.padding_blocks and self.open_seg is not None:
            self.store.pool.append_padding(self.open_seg,
                                           flush.padding_blocks)

    def _account_flush(self, flush: ChunkFlush) -> None:
        t = self.traffic
        for kind, _lba in flush.tokens:
            if kind == APPEND_USER:
                t.user_blocks += 1
            elif kind == APPEND_GC:
                t.gc_blocks += 1
            else:
                t.shadow_blocks += 1
        t.padding_blocks += flush.padding_blocks
        t.chunk_flushes += 1
        if flush.reason is FlushReason.DEADLINE:
            t.deadline_flushes += 1
        elif flush.reason is FlushReason.FORCED:
            t.forced_flushes += 1
        if self._shadow_mark and self.store._obs_on:
            # Pending blocks below the watermark already had substitutes
            # persisted elsewhere; this flush is their lazy append (§3.3).
            self.store.obs.on_lazy_append(
                self.gid, min(self._shadow_mark, flush.data_blocks),
                flush.time_us)
        self._shadow_mark = 0
        self.store.on_chunk_flush(self, flush)

    # ------------------------------------------------------------------
    # cross-group aggregation support
    # ------------------------------------------------------------------
    @property
    def unshadowed_pending(self) -> tuple[tuple[int, int], ...]:
        """Pending tokens that do not yet have a substitute elsewhere."""
        return self.buffer.pending_tokens[self._shadow_mark:]

    def mark_all_shadowed(self, now_us: int) -> None:
        """Record that every pending block now has a substitute, and restart
        the aggregation timer (the original chunk keeps its blocks)."""
        self._shadow_mark = self.buffer.pending_blocks
        self.buffer.reset_timer(now_us)

    def mark_partially_shadowed(self, count: int, now_us: int) -> None:
        """Advance the shadow watermark by ``count`` pending blocks; if the
        whole backlog is now substituted, restart the aggregation timer."""
        self._shadow_mark = min(self._shadow_mark + count,
                                self.buffer.pending_blocks)
        if self._shadow_mark == self.buffer.pending_blocks:
            self.buffer.reset_timer(now_us)
