"""Garbage-collection engine.

Implements the four-phase process of §2.1: victim selection, validity scan,
valid-block migration (routed through the placement policy's GC placement),
and reclamation.  GC runs when the free-segment pool drops to the low
watermark and cleans until the high watermark is restored.

Migration has two bit-identical implementations: the scalar per-block
reference loop, and a vectorized path used while the batched replay engine
drives the store (``store.batched_mode``).  The batched path may hoist all
placement decisions above all appends and defer invalidation, mapping
updates, and ``on_gc_block`` to vectorized passes because, within one
victim, nothing the append path touches feeds back into ``place_gc``
(policies read only per-LBA metadata and clocks that are constant during a
cleaning pass) and every valid LBA appears exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.lss.segment import ORIGIN_GC, SEG_SEALED
from repro.placement.base import PlacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.lss.store import LogStructuredStore


class GarbageCollector:
    """Watermark-driven cleaner bound to one store."""

    def __init__(self, store: "LogStructuredStore") -> None:
        self.store = store
        #: Policies with the base no-op ``on_gc_block`` skip the per-block
        #: notification loop on the batched path.
        self._notify_gc_block = type(store.policy).on_gc_block \
            is not PlacementPolicy.on_gc_block

    def needed(self) -> bool:
        return self.store.pool.free_segments <= self.store.config.gc_free_low

    def run(self, now_us: int) -> int:
        """Clean until the high watermark; return segments reclaimed."""
        store = self.store
        pool = store.pool
        reclaimed = 0
        with store.profiler.span("gc"):
            while pool.free_segments < store.config.gc_free_high:
                victim = store.victim_policy.select(pool, store.user_seq)
                if victim is None:
                    break  # no productive victim; stop rather than spin
                self.clean_segment(victim, now_us)
                reclaimed += 1
        return reclaimed

    def clean_segment(self, victim: int, now_us: int) -> None:
        """Migrate the victim's valid blocks and reclaim it."""
        store = self.store
        pool = store.pool
        if pool.state[victim] != SEG_SEALED:
            raise ValueError(f"GC victim {victim} is not sealed")
        victim_group = int(pool.group[victim])

        lbas = pool.valid_lbas(victim)
        stats = store.stats
        stats.gc_passes += 1
        attr_on = store._attr_on
        if attr_on:
            # Victim attribution must be taken before migration: both
            # migration paths clear the victim's slot_valid plane.
            orig = pool.slot_origin[victim][pool.slot_valid[victim]]
            gc_origin = int(np.count_nonzero(orig == ORIGIN_GC))
            store.attribution.on_gc_victim(
                victim_group,
                store.user_seq - int(pool.created_seq[victim]),
                int(lbas.size), pool.segment_blocks,
                int(lbas.size) - gc_origin, gc_origin)
        if store.batched_mode and lbas.size:
            self._migrate_batch(lbas, victim, victim_group, now_us)
        else:
            for lba in lbas:
                lba = int(lba)
                dest = store.policy.place_gc(lba, victim_group, now_us)
                old_loc = store.mapping[lba]
                # The canonical copy must be the one in the victim; anything
                # else means mapping and slot bookkeeping diverged.
                if old_loc // pool.segment_blocks != victim:
                    raise AssertionError(
                        f"mapping for lba {lba} points outside victim "
                        f"{victim}")
                new_loc = store.groups[dest].append_gc(lba, now_us)
                if attr_on:
                    # Preserve the birth epoch, flip origin: a later
                    # ORIGIN_GC read means "migrated at least twice".
                    pool.slot_epoch_flat[new_loc] = \
                        pool.slot_epoch_flat[old_loc]
                    pool.slot_origin_flat[new_loc] = ORIGIN_GC
                pool.invalidate(old_loc)
                store.mapping[lba] = new_loc
                stats.gc_blocks_migrated += 1
                store.policy.on_gc_block(lba, victim_group, dest)

        store.policy.on_segment_reclaimed(
            group_id=victim_group,
            created_seq=int(pool.created_seq[victim]),
            sealed_seq=int(pool.sealed_seq[victim]),
            now_seq=store.user_seq,
            valid_blocks=int(lbas.size),
        )
        pool.reclaim(victim)
        stats.gc_segments_reclaimed += 1
        if store._obs_on:
            store.obs.on_gc_pass(victim, victim_group, int(lbas.size),
                                 now_us)
        store.on_segment_reclaimed_physical(victim)

    def _migrate_batch(self, lbas: np.ndarray, victim: int,
                       victim_group: int, now_us: int) -> None:
        """Vectorized valid-block migration, bit-identical to the scalar
        loop (see the module docstring for why the reordering is safe)."""
        store = self.store
        pool = store.pool
        n = int(lbas.shape[0])
        old_locs = store.mapping[lbas]
        seg_of = old_locs // pool.segment_blocks
        if (seg_of != victim).any():
            bad = int(lbas[np.flatnonzero(seg_of != victim)[0]])
            raise AssertionError(
                f"mapping for lba {bad} points outside victim {victim}")
        dests = store.policy.place_gc_batch(lbas, victim_group, now_us)
        lba_list = lbas.tolist()
        d0 = int(dests[0])
        if not (dests != d0).any():
            # Single destination (every GC-group-routing baseline).
            locs = store.groups[d0].append_gc_run(lbas, lba_list, now_us)
        else:
            locs = np.empty(n, dtype=np.int64)
            change = np.flatnonzero(np.diff(dests)) + 1
            bounds = [0] + change.tolist() + [n]
            for b0, b1 in zip(bounds[:-1], bounds[1:]):
                group = store.groups[int(dests[b0])]
                locs[b0:b1] = group.append_gc_run(lbas[b0:b1],
                                                  lba_list[b0:b1], now_us)
        if store._attr_on:
            # Gather epochs before scatter: old slots live in the victim,
            # new slots outside it, so the planes never alias.
            epochs = pool.slot_epoch_flat[old_locs]
            pool.slot_origin_flat[locs] = ORIGIN_GC
            pool.slot_epoch_flat[locs] = epochs
        # The batch is exactly the victim's valid set (checked above), so
        # the per-slot invalidation walk collapses to one row reset.
        pool.invalidate_all(victim)
        store.mapping[lbas] = locs
        store.stats.gc_blocks_migrated += n
        if self._notify_gc_block:
            dest_list = dests.tolist()
            for idx, lba in enumerate(lba_list):
                store.policy.on_gc_block(lba, victim_group,
                                         dest_list[idx])


__all__ = ["GarbageCollector"]
