"""Garbage-collection engine.

Implements the four-phase process of §2.1: victim selection, validity scan,
valid-block migration (routed through the placement policy's GC placement),
and reclamation.  GC runs when the free-segment pool drops to the low
watermark and cleans until the high watermark is restored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lss.segment import SEG_SEALED

if TYPE_CHECKING:  # pragma: no cover
    from repro.lss.store import LogStructuredStore


class GarbageCollector:
    """Watermark-driven cleaner bound to one store."""

    def __init__(self, store: "LogStructuredStore") -> None:
        self.store = store

    def needed(self) -> bool:
        return self.store.pool.free_segments <= self.store.config.gc_free_low

    def run(self, now_us: int) -> int:
        """Clean until the high watermark; return segments reclaimed."""
        store = self.store
        pool = store.pool
        reclaimed = 0
        while pool.free_segments < store.config.gc_free_high:
            victim = store.victim_policy.select(pool, store.user_seq)
            if victim is None:
                break  # no productive victim; stop rather than spin
            self.clean_segment(victim, now_us)
            reclaimed += 1
        return reclaimed

    def clean_segment(self, victim: int, now_us: int) -> None:
        """Migrate the victim's valid blocks and reclaim it."""
        store = self.store
        pool = store.pool
        if pool.state[victim] != SEG_SEALED:
            raise ValueError(f"GC victim {victim} is not sealed")
        victim_group = int(pool.group[victim])

        lbas = pool.valid_lbas(victim)
        stats = store.stats
        stats.gc_passes += 1
        for lba in lbas:
            lba = int(lba)
            dest = store.policy.place_gc(lba, victim_group, now_us)
            old_loc = store.mapping[lba]
            # The canonical copy must be the one in the victim; anything
            # else means mapping and slot bookkeeping diverged.
            if old_loc // pool.segment_blocks != victim:
                raise AssertionError(
                    f"mapping for lba {lba} points outside victim {victim}")
            new_loc = store.groups[dest].append_gc(lba, now_us)
            pool.invalidate(old_loc)
            store.mapping[lba] = new_loc
            stats.gc_blocks_migrated += 1
            store.policy.on_gc_block(lba, victim_group, dest)

        store.policy.on_segment_reclaimed(
            group_id=victim_group,
            created_seq=int(pool.created_seq[victim]),
            sealed_seq=int(pool.sealed_seq[victim]),
            now_seq=store.user_seq,
            valid_blocks=int(lbas.size),
        )
        pool.reclaim(victim)
        stats.gc_segments_reclaimed += 1
        if store._obs_on:
            store.obs.on_gc_pass(victim, victim_group, int(lbas.size),
                                 now_us)
        store.on_segment_reclaimed_physical(victim)
