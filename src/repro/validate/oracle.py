"""Reference oracle: a deliberately slow, dict-based LSS store.

The oracle is an independent re-implementation of the log-structured store's
bookkeeping — mapping table, segment pool, coalescing buffers, GC, traffic
and parity accounting — written with plain dicts, lists and loops so that
every rule is spelled out in the most obvious way possible.  It drives the
*same* placement-policy objects through the same call sequence as the fast
store (``repro.lss.store.LogStructuredStore``), so replaying one trace
through both and diffing the final mapping tables and traffic statistics
(:mod:`repro.validate.differential`) checks the fast store's NumPy
bookkeeping against an obviously-correct model.

What is shared and what is not:

* Shared: the placement policies under test (they are inputs, not subjects
  of re-implementation), the dumb record types they expect
  (:class:`~repro.array.coalescing.ChunkFlush`,
  :class:`~repro.lss.group.GroupSpec`) and the config object.
* Re-implemented: every piece of mutable store state and every rule that
  updates it — slot bookkeeping, seal/reclaim lifecycle, SLA deadline
  handling, zero-padding, GC victim selection, traffic counters and RAID-5
  parity accounting.

Determinism: the oracle supports the deterministic victim policies
(``greedy``, ``cost-benefit``) and refuses the stochastic ones — replaying
an RNG-driven victim stream bit-exactly would require sharing the RNG with
the fast store, which would defeat the point of an independent model.
"""

from __future__ import annotations

from repro.array.coalescing import ChunkFlush, FlushReason
from repro.common.errors import (CapacityError, ConfigError, ValidationError)
from repro.lss.config import LSSConfig
from repro.lss.group import (APPEND_GC, APPEND_SHADOW, APPEND_USER,
                             GroupKind)
from repro.obs.recorder import NULL_RECORDER
from repro.trace.model import OP_WRITE, Trace

#: Mirrors ``repro.lss.store.UNMAPPED`` / ``repro.lss.segment.NO_LBA``.
UNMAPPED = -1
NO_LBA = -1

#: Victim policies the oracle can follow deterministically.
ORACLE_VICTIM_POLICIES = ("greedy", "cost-benefit")


class OracleBuffer:
    """Pure-python re-statement of the chunk-coalescing SLA semantics."""

    def __init__(self, chunk_blocks: int, window_us: int | None,
                 sla_mode: str) -> None:
        self.chunk_blocks = chunk_blocks
        self.window_us = window_us
        self.sla_mode = sla_mode
        self._tokens: list = []
        self._timer_start_us: int | None = None

    @property
    def pending_blocks(self) -> int:
        return len(self._tokens)

    @property
    def free_slots(self) -> int:
        return self.chunk_blocks - len(self._tokens)

    @property
    def pending_tokens(self) -> tuple:
        return tuple(self._tokens)

    @property
    def deadline_us(self) -> int | None:
        if self.window_us is None or self._timer_start_us is None:
            return None
        return self._timer_start_us + self.window_us

    def reset_timer(self, now_us: int) -> None:
        if self._tokens:
            self._timer_start_us = now_us

    def append(self, token, now_us: int) -> ChunkFlush | None:
        if not self._tokens or self.sla_mode == "idle":
            self._timer_start_us = now_us
        self._tokens.append(token)
        if len(self._tokens) >= self.chunk_blocks:
            return self._emit(FlushReason.FULL, now_us, pad=False)
        return None

    def poll(self, now_us: int) -> ChunkFlush | None:
        dl = self.deadline_us
        if dl is not None and now_us >= dl and self._tokens:
            return self._emit(FlushReason.DEADLINE, now_us, pad=True)
        return None

    def force_flush(self, now_us: int) -> ChunkFlush | None:
        if not self._tokens:
            return None
        return self._emit(FlushReason.FORCED, now_us, pad=True)

    def _emit(self, reason: FlushReason, now_us: int,
              pad: bool) -> ChunkFlush:
        tokens = tuple(self._tokens)
        padding = self.chunk_blocks - len(tokens) if pad else 0
        self._tokens.clear()
        self._timer_start_us = None
        return ChunkFlush(reason=reason, tokens=tokens,
                          data_blocks=len(tokens), padding_blocks=padding,
                          time_us=now_us)


class OracleSegment:
    """One physical segment as explicit per-slot lists."""

    __slots__ = ("lba", "valid", "seq", "state", "group", "fill",
                 "created_seq", "sealed_seq")

    def __init__(self, blocks: int) -> None:
        self.lba = [NO_LBA] * blocks
        self.valid = [False] * blocks
        self.seq = [0] * blocks
        self.state = "free"          # free | open | sealed
        self.group = -1
        self.fill = 0
        self.created_seq = 0
        self.sealed_seq = 0

    def valid_count(self) -> int:
        """Counted from the slots every time — nothing cached to go stale."""
        return sum(1 for v in self.valid if v)


class OraclePool:
    """Dict-of-segments pool; every count is recomputed from the slots."""

    def __init__(self, num_segments: int, segment_blocks: int) -> None:
        self.num_segments = num_segments
        self.segment_blocks = segment_blocks
        self.segments = {s: OracleSegment(segment_blocks)
                         for s in range(num_segments)}
        # Same free-list discipline as the fast pool: initialised so segment
        # 0 is handed out first, reclaimed segments are reused LIFO.
        self._free = list(range(num_segments - 1, -1, -1))
        self._append_seq = 0

    @property
    def free_segments(self) -> int:
        return len(self._free)

    def allocate(self, group: int, now_seq: int) -> int:
        if not self._free:
            raise CapacityError("oracle segment pool exhausted")
        seg = self._free.pop()
        rec = self.segments[seg]
        rec.state = "open"
        rec.group = group
        rec.fill = 0
        rec.created_seq = now_seq
        return seg

    def seal(self, seg: int, now_seq: int) -> None:
        rec = self.segments[seg]
        if rec.state != "open":
            raise ValueError(f"oracle segment {seg} is not open")
        if rec.fill != self.segment_blocks:
            raise ValueError(f"oracle segment {seg} sealed before full")
        rec.state = "sealed"
        rec.sealed_seq = now_seq

    def reclaim(self, seg: int) -> None:
        rec = self.segments[seg]
        if rec.state != "sealed":
            raise ValueError(f"oracle segment {seg} is not sealed")
        if rec.valid_count() != 0:
            raise ValueError(f"oracle segment {seg} still holds valid blocks")
        rec.lba = [NO_LBA] * self.segment_blocks
        rec.valid = [False] * self.segment_blocks
        rec.seq = [0] * self.segment_blocks
        rec.state = "free"
        rec.group = -1
        rec.fill = 0
        self._free.append(seg)

    def append_block(self, seg: int, lba: int) -> int:
        rec = self.segments[seg]
        slot = rec.fill
        if slot >= self.segment_blocks:
            raise CapacityError(f"oracle segment {seg} overflow")
        rec.lba[slot] = lba
        rec.valid[slot] = True
        self._append_seq += 1
        rec.seq[slot] = self._append_seq
        rec.fill = slot + 1
        return seg * self.segment_blocks + slot

    def append_padding(self, seg: int, nblocks: int) -> None:
        rec = self.segments[seg]
        if rec.fill + nblocks > self.segment_blocks:
            raise CapacityError(f"oracle segment {seg} padding overflow")
        rec.fill += nblocks

    def invalidate(self, loc: int) -> None:
        seg, slot = divmod(loc, self.segment_blocks)
        rec = self.segments[seg]
        if not rec.valid[slot]:
            raise ValueError(f"oracle location {loc} already invalid")
        rec.valid[slot] = False

    def valid_lbas(self, seg: int) -> list[int]:
        rec = self.segments[seg]
        return [rec.lba[i] for i in range(self.segment_blocks)
                if rec.valid[i]]

    def sealed_segments(self) -> list[int]:
        return [s for s in range(self.num_segments)
                if self.segments[s].state == "sealed"]


def _greedy_victim(pool: OraclePool, now_seq: int) -> int | None:
    """Fewest valid blocks; ties go to the lowest segment id (the fast
    policy's ``argmin`` keeps the first occurrence of an ascending scan)."""
    best, best_vc = None, None
    for seg in pool.sealed_segments():
        vc = pool.segments[seg].valid_count()
        if vc >= pool.segment_blocks:
            continue  # zero garbage: cleaning frees nothing
        if best is None or vc < best_vc:
            best, best_vc = seg, vc
    return best


def _cost_benefit_victim(pool: OraclePool, now_seq: int) -> int | None:
    """max (1-u)·age/(1+u); ties go to the lowest segment id."""
    best, best_score = None, None
    for seg in pool.sealed_segments():
        rec = pool.segments[seg]
        vc = rec.valid_count()
        if vc >= pool.segment_blocks:
            continue
        u = vc / pool.segment_blocks
        age = max(now_seq - rec.sealed_seq, 1)
        score = (1.0 - u) * age / (1.0 + u)
        if best is None or score > best_score:
            best, best_score = seg, score
    return best


_VICTIM_FNS = {"greedy": _greedy_victim, "cost-benefit": _cost_benefit_victim}


class OracleRaid:
    """Independent RAID-5 parity re-derivation.

    Walks every data chunk of an I/O through the stripe layout one at a
    time and charges one parity chunk per distinct stripe the I/O touches.
    """

    def __init__(self, num_devices: int) -> None:
        self.data_columns = num_devices - 1
        self.data_chunks = 0
        self.parity_chunks = 0
        self._pos = 0  # cumulative chunk position in the stripe walk

    def add_chunks(self, n: int) -> int:
        if n <= 0:
            return 0
        stripes = set()
        for i in range(n):
            stripes.add((self._pos + i) // self.data_columns)
        self._pos += n
        self.data_chunks += n
        self.parity_chunks += len(stripes)
        return len(stripes)


class OracleStats:
    """Traffic counters kept as plain ints and per-group dicts."""

    def __init__(self, num_devices: int) -> None:
        self.user_blocks_requested = 0
        self.read_requests = 0
        self.write_requests = 0
        self.gc_passes = 0
        self.gc_segments_reclaimed = 0
        self.gc_blocks_migrated = 0
        self.group_traffic: list[dict] = []
        self.raid = OracleRaid(num_devices)

    def _total(self, key: str) -> int:
        return sum(g[key] for g in self.group_traffic)

    @property
    def user_blocks_written(self) -> int:
        return self._total("user_blocks")

    @property
    def gc_blocks_written(self) -> int:
        return self._total("gc_blocks")

    @property
    def shadow_blocks_written(self) -> int:
        return self._total("shadow_blocks")

    @property
    def padding_blocks_written(self) -> int:
        return self._total("padding_blocks")

    @property
    def flash_blocks_written(self) -> int:
        return (self.user_blocks_written + self.gc_blocks_written
                + self.shadow_blocks_written + self.padding_blocks_written)

    def summary(self) -> dict[str, float]:
        """Same keys and formulas as ``StoreStats.summary`` so the
        differential harness can diff the dicts directly."""
        user = self.user_blocks_requested
        flash = self.flash_blocks_written
        return {
            "user_blocks_requested": float(user),
            "read_requests": float(self.read_requests),
            "write_requests": float(self.write_requests),
            "flash_blocks_written": float(flash),
            "gc_blocks_written": float(self.gc_blocks_written),
            "shadow_blocks_written": float(self.shadow_blocks_written),
            "padding_blocks_written": float(self.padding_blocks_written),
            "write_amplification": flash / user if user else 0.0,
            "padding_traffic_ratio":
                self.padding_blocks_written / flash if flash else 0.0,
            "gc_traffic_ratio":
                self.gc_blocks_written / flash if flash else 0.0,
            "gc_passes": float(self.gc_passes),
            "gc_segments_reclaimed": float(self.gc_segments_reclaimed),
        }


def _new_traffic(name: str, kind: str) -> dict:
    return {"name": name, "kind": kind, "user_blocks": 0, "gc_blocks": 0,
            "shadow_blocks": 0, "padding_blocks": 0, "chunk_flushes": 0,
            "deadline_flushes": 0, "forced_flushes": 0}


class OracleGroup:
    """One placement-visible stream; presents the surface policies use
    (``buffer``, ``unshadowed_pending``, ``append_shadow``, ...)."""

    def __init__(self, gid: int, spec, store: "OracleStore") -> None:
        self.gid = gid
        self.spec = spec
        self.store = store
        cfg = store.config
        window = (cfg.coalesce_window_us
                  if spec.kind in (GroupKind.USER, GroupKind.MIXED)
                  else None)
        self.buffer = OracleBuffer(cfg.chunk.chunk_blocks, window,
                                   cfg.sla_mode)
        self.open_seg: int | None = None
        self.traffic = _new_traffic(spec.name, spec.kind.value)
        self._shadow_mark = 0
        self.segment_shadow_bytes = 0

    # -- segment lifecycle ---------------------------------------------
    def _ensure_open_segment(self) -> int:
        if self.open_seg is None:
            self.open_seg = self.store.pool.allocate(self.gid,
                                                     self.store.user_seq)
            self.segment_shadow_bytes = 0
        return self.open_seg

    def _maybe_seal(self) -> None:
        seg = self.open_seg
        if seg is not None and \
                self.store.pool.segments[seg].fill == \
                self.store.pool.segment_blocks:
            self.store.pool.seal(seg, self.store.user_seq)
            self.store.policy.on_segment_sealed(self.gid, seg)
            self.open_seg = None

    # -- appends --------------------------------------------------------
    def append_user(self, lba: int, now_us: int) -> int:
        return self._append_data(lba, now_us, APPEND_USER)

    def append_gc(self, lba: int, now_us: int) -> int:
        return self._append_data(lba, now_us, APPEND_GC)

    def append_shadow(self, lba: int, now_us: int) -> None:
        seg = self._ensure_open_segment()
        self.store.pool.append_padding(seg, 1)  # dead slot, real write
        flush = self.buffer.append((APPEND_SHADOW, lba), now_us)
        self.segment_shadow_bytes += self.store.config.chunk.block_bytes
        if flush is not None:
            self._account_flush(flush)
        self._maybe_seal()

    def _append_data(self, lba: int, now_us: int, kind: int) -> int:
        seg = self._ensure_open_segment()
        loc = self.store.pool.append_block(seg, lba)
        flush = self.buffer.append((kind, lba), now_us)
        if flush is not None:
            self._account_flush(flush)
        self._maybe_seal()
        return loc

    # -- flushing -------------------------------------------------------
    def poll_deadline(self, now_us: int) -> ChunkFlush | None:
        flush = self.buffer.poll(now_us)
        if flush is not None:
            self._pad_segment(flush)
            self._account_flush(flush)
            self._maybe_seal()
        return flush

    def force_flush(self, now_us: int) -> ChunkFlush | None:
        flush = self.buffer.force_flush(now_us)
        if flush is not None:
            self._pad_segment(flush)
            self._account_flush(flush)
            self._maybe_seal()
        return flush

    def _pad_segment(self, flush: ChunkFlush) -> None:
        if flush.padding_blocks and self.open_seg is not None:
            self.store.pool.append_padding(self.open_seg,
                                           flush.padding_blocks)

    def _account_flush(self, flush: ChunkFlush) -> None:
        t = self.traffic
        for kind, _lba in flush.tokens:
            if kind == APPEND_USER:
                t["user_blocks"] += 1
            elif kind == APPEND_GC:
                t["gc_blocks"] += 1
            else:
                t["shadow_blocks"] += 1
        t["padding_blocks"] += flush.padding_blocks
        t["chunk_flushes"] += 1
        if flush.reason is FlushReason.DEADLINE:
            t["deadline_flushes"] += 1
        elif flush.reason is FlushReason.FORCED:
            t["forced_flushes"] += 1
        self._shadow_mark = 0
        self.store.on_chunk_flush(self, flush)

    # -- cross-group aggregation surface --------------------------------
    @property
    def unshadowed_pending(self) -> tuple:
        return self.buffer.pending_tokens[self._shadow_mark:]

    def mark_all_shadowed(self, now_us: int) -> None:
        self._shadow_mark = self.buffer.pending_blocks
        self.buffer.reset_timer(now_us)

    def mark_partially_shadowed(self, count: int, now_us: int) -> None:
        self._shadow_mark = min(self._shadow_mark + count,
                                self.buffer.pending_blocks)
        if self._shadow_mark == self.buffer.pending_blocks:
            self.buffer.reset_timer(now_us)


class OracleStore:
    """The reference store: same request semantics, dict bookkeeping.

    Drives any :class:`~repro.placement.base.PlacementPolicy` instance
    (pass a *fresh* one — policies are stateful and must not be shared with
    a concurrently running fast store).
    """

    def __init__(self, config: LSSConfig, policy) -> None:
        self.config = config
        self.policy = policy
        self.obs = NULL_RECORDER
        self._obs_on = False

        specs = policy.group_specs()
        if not specs:
            raise ConfigError("placement policy declared no groups")
        config.validate_for_groups(len(specs))
        if config.victim_policy not in _VICTIM_FNS:
            raise ValidationError(
                f"oracle supports deterministic victim policies "
                f"{ORACLE_VICTIM_POLICIES}, not {config.victim_policy!r}")
        self._select_victim = _VICTIM_FNS[config.victim_policy]

        self.pool = OraclePool(config.physical_segments,
                               config.segment_blocks)
        self.mapping: dict[int, int] = {}
        self.stats = OracleStats(config.raid.num_devices)
        self.groups: list[OracleGroup] = []
        for gid, spec in enumerate(specs):
            group = OracleGroup(gid, spec, self)
            self.groups.append(group)
            self.stats.group_traffic.append(group.traffic)
        self._sla_groups = [g for g in self.groups
                            if g.spec.kind in (GroupKind.USER,
                                               GroupKind.MIXED)]
        self.user_seq = 0
        self.now_us = 0
        policy.bind(self)
        policy.attach_obs(self.obs)

    # -- request processing --------------------------------------------
    def process_request(self, ts_us: int, op: int, offset: int,
                        size: int) -> None:
        self.tick(ts_us)
        if op != OP_WRITE:
            self.stats.read_requests += 1
            return
        self.stats.write_requests += 1
        end = offset + size
        if offset < 0 or end > self.config.logical_blocks:
            raise ValueError(
                f"request [{offset}, {end}) outside logical space "
                f"[0, {self.config.logical_blocks})")
        for lba in range(offset, end):
            self.write_block(lba, ts_us)

    def write_block(self, lba: int, now_us: int) -> None:
        old = self.mapping.get(lba, UNMAPPED)
        if old != UNMAPPED:
            self.pool.invalidate(old)
        gid = self.policy.place_user(lba, now_us)
        loc = self.groups[gid].append_user(lba, now_us)
        self.mapping[lba] = loc
        self.user_seq += 1
        self.stats.user_blocks_requested += 1
        if self._gc_needed():
            self._gc_run(now_us)

    def read_block(self, lba: int) -> bool:
        return self.mapping.get(lba, UNMAPPED) != UNMAPPED

    def tick(self, now_us: int) -> None:
        self.now_us = now_us
        for group in self._sla_groups:
            if group.buffer.pending_blocks == 0:
                continue
            deadline = group.buffer.deadline_us
            if deadline is None or now_us < deadline:
                continue
            if self.policy.before_padding_flush(group, now_us):
                continue
            group.poll_deadline(now_us)

    # -- replay ---------------------------------------------------------
    def replay(self, trace: Trace, finalize: bool = True) -> OracleStats:
        for i in range(len(trace)):
            self.process_request(int(trace.timestamps[i]),
                                 int(trace.ops[i]),
                                 int(trace.offsets[i]),
                                 int(trace.sizes[i]))
        if finalize:
            self.finalize()
        return self.stats

    def finalize(self) -> None:
        now = self.now_us + self.config.coalesce_window_us
        for group in self.groups:
            group.force_flush(now)

    # -- hooks ----------------------------------------------------------
    def on_chunk_flush(self, group: OracleGroup, flush: ChunkFlush) -> None:
        self.stats.raid.add_chunks(1)
        self.policy.on_chunk_flush(group, flush)

    # -- garbage collection ---------------------------------------------
    def _gc_needed(self) -> bool:
        return self.pool.free_segments <= self.config.gc_free_low

    def _gc_run(self, now_us: int) -> int:
        reclaimed = 0
        while self.pool.free_segments < self.config.gc_free_high:
            victim = self._select_victim(self.pool, self.user_seq)
            if victim is None:
                break
            self._gc_clean(victim, now_us)
            reclaimed += 1
        return reclaimed

    def _gc_clean(self, victim: int, now_us: int) -> None:
        pool = self.pool
        rec = pool.segments[victim]
        if rec.state != "sealed":
            raise ValueError(f"oracle GC victim {victim} is not sealed")
        victim_group = rec.group
        lbas = pool.valid_lbas(victim)
        self.stats.gc_passes += 1
        for lba in lbas:
            dest = self.policy.place_gc(lba, victim_group, now_us)
            old_loc = self.mapping.get(lba, UNMAPPED)
            if old_loc // pool.segment_blocks != victim:
                raise AssertionError(
                    f"oracle mapping for lba {lba} points outside victim "
                    f"{victim}")
            new_loc = self.groups[dest].append_gc(lba, now_us)
            pool.invalidate(old_loc)
            self.mapping[lba] = new_loc
            self.stats.gc_blocks_migrated += 1
            self.policy.on_gc_block(lba, victim_group, dest)
        self.policy.on_segment_reclaimed(
            group_id=victim_group,
            created_seq=rec.created_seq,
            sealed_seq=rec.sealed_seq,
            now_seq=self.user_seq,
            valid_blocks=len(lbas),
        )
        pool.reclaim(victim)
        self.stats.gc_segments_reclaimed += 1

    # -- introspection ---------------------------------------------------
    def group_occupancy(self) -> list[int]:
        occ = [0] * len(self.groups)
        for seg in range(self.pool.num_segments):
            rec = self.pool.segments[seg]
            if rec.group >= 0:
                occ[rec.group] += rec.valid_count()
        return occ

    def mapping_table(self) -> dict[int, int]:
        """Final LBA → encoded location table (only mapped LBAs)."""
        return dict(self.mapping)

    def check_invariants(self) -> None:
        """Self-consistency of the oracle itself (slow, loop-based)."""
        pool = self.pool
        for seg in range(pool.num_segments):
            rec = pool.segments[seg]
            if rec.state == "free" and (rec.valid_count() or rec.fill):
                raise AssertionError(f"oracle free segment {seg} not empty")
            for slot in range(rec.fill, pool.segment_blocks):
                if rec.valid[slot]:
                    raise AssertionError(
                        f"oracle segment {seg}: valid slot past fill")
        for lba, loc in self.mapping.items():
            seg, slot = divmod(loc, pool.segment_blocks)
            rec = pool.segments[seg]
            if not rec.valid[slot]:
                raise AssertionError(
                    f"oracle lba {lba} maps to invalid slot {loc}")
            if rec.lba[slot] != lba:
                raise AssertionError(
                    f"oracle lba {lba} maps to slot holding {rec.lba[slot]}")
        total_valid = sum(pool.segments[s].valid_count()
                          for s in range(pool.num_segments))
        if total_valid != len(self.mapping):
            raise AssertionError(
                f"oracle: {total_valid} valid slots but "
                f"{len(self.mapping)} mapped LBAs")
