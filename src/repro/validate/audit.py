"""Pluggable invariant auditing for the fast store.

Extends ``LogStructuredStore.check_invariants`` into a catalogue of named,
independently re-derived consistency laws, runnable on a configurable
cadence while a replay is in flight.  Each check raises
:class:`~repro.common.errors.InvariantViolation` naming the broken law;
violations are also surfaced through the observability recorder as
``audit_violation`` events so they show up in exported traces.

The invariant catalogue:

``mapping-bijection``
    Every mapped LBA points at a valid slot holding that LBA, no two LBAs
    share a slot, and every valid slot is referenced by the mapping.
``segment-valid-counts``
    The cached per-segment ``valid_count`` equals both the slot-level truth
    and the number of mapping entries landing in that segment.
``group-occupancy``
    Per-group resident blocks sum to the mapped-LBA count; free segments
    carry no group, no fill and no valid slots.
``coalescing-bounds``
    Pending chunks never reach capacity, closed groups hold no pending
    blocks, the open segment's fill is chunk-phase-aligned with the pending
    chunk, no SLA deadline lies in the past, and zero-padding per group is
    bounded by its padded-flush count.
``traffic-conservation``
    The paper's conservation law (§1/§3): device writes = user + GC +
    shadow + padding; requested user blocks equal the store's logical
    clock and equal flushed-plus-pending user blocks; GC migrations equal
    flushed-plus-pending GC blocks.
``raid-parity-accounting``
    RAID-5 accounting matches an independent re-derivation: data chunks
    equal chunk flushes, the stripe cursor equals ``data % columns``, and
    parity lies within the exact bounds of a sequential stripe walk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.common.errors import InvariantViolation
from repro.lss.group import (APPEND_GC, APPEND_SHADOW, APPEND_USER)
from repro.lss.segment import SEG_FREE
from repro.lss.store import UNMAPPED

if TYPE_CHECKING:  # pragma: no cover
    from repro.lss.store import LogStructuredStore

CheckFn = Callable[["LogStructuredStore"], None]


def _fail(invariant: str, detail: str) -> None:
    raise InvariantViolation(invariant, detail)


# ----------------------------------------------------------------------
# the invariant catalogue
# ----------------------------------------------------------------------
def check_mapping_bijection(store: "LogStructuredStore") -> None:
    name = "mapping-bijection"
    pool = store.pool
    mapped = np.flatnonzero(store.mapping != UNMAPPED)
    locs = store.mapping[mapped]
    if locs.size and (locs.min() < 0 or
                      locs.max() >= pool.num_segments * pool.segment_blocks):
        _fail(name, "mapping entry outside the physical pool")
    seg, slot = np.divmod(locs, pool.segment_blocks)
    bad = np.flatnonzero(~pool.slot_valid[seg, slot])
    if bad.size:
        lba = int(mapped[bad[0]])
        _fail(name, f"lba {lba} maps to invalid slot "
                    f"{int(store.mapping[lba])}")
    wrong = np.flatnonzero(pool.slot_lba[seg, slot] != mapped)
    if wrong.size:
        lba = int(mapped[wrong[0]])
        _fail(name, f"lba {lba} maps to a slot holding a different lba")
    if np.unique(locs).size != locs.size:
        _fail(name, "two LBAs map to the same physical slot")
    total_valid = int(np.count_nonzero(pool.slot_valid))
    if total_valid != mapped.size:
        _fail(name, f"{total_valid} valid slots but {mapped.size} mapped "
                    f"LBAs (orphaned valid slot)")


def check_segment_valid_counts(store: "LogStructuredStore") -> None:
    name = "segment-valid-counts"
    pool = store.pool
    actual = np.count_nonzero(pool.slot_valid, axis=1)
    diff = np.flatnonzero(actual != pool.valid_count)
    if diff.size:
        s = int(diff[0])
        _fail(name, f"segment {s}: cached valid_count "
                    f"{int(pool.valid_count[s])} != slot truth "
                    f"{int(actual[s])}")
    mapped = np.flatnonzero(store.mapping != UNMAPPED)
    seg_of = store.mapping[mapped] // pool.segment_blocks
    per_seg = np.bincount(seg_of, minlength=pool.num_segments)
    diff = np.flatnonzero(per_seg != pool.valid_count)
    if diff.size:
        s = int(diff[0])
        _fail(name, f"segment {s}: {int(per_seg[s])} mapping entries but "
                    f"valid_count {int(pool.valid_count[s])}")


def check_group_occupancy(store: "LogStructuredStore") -> None:
    name = "group-occupancy"
    pool = store.pool
    free = pool.state == SEG_FREE
    if np.any(pool.group[free] != -1):
        _fail(name, "free segment still assigned to a group")
    if np.any(pool.fill[free] != 0) or np.any(pool.valid_count[free] != 0):
        _fail(name, "free segment with non-zero fill or valid count")
    if np.any(pool.fill > pool.segment_blocks):
        _fail(name, "segment fill beyond capacity")
    occ = store.group_occupancy()
    mapped = int(np.count_nonzero(store.mapping != UNMAPPED))
    if int(occ.sum()) != mapped:
        _fail(name, f"group occupancy sums to {int(occ.sum())} but "
                    f"{mapped} LBAs are mapped")


def check_coalescing_bounds(store: "LogStructuredStore") -> None:
    name = "coalescing-bounds"
    chunk_blocks = store.config.chunk.chunk_blocks
    for group in store.groups:
        buf = group.buffer
        pending = buf.pending_blocks
        if pending >= chunk_blocks:
            _fail(name, f"group {group.gid}: {pending} pending blocks >= "
                        f"chunk capacity {chunk_blocks}")
        if group.open_seg is None:
            if pending:
                _fail(name, f"group {group.gid}: pending blocks with no "
                            f"open segment")
        else:
            fill = int(store.pool.fill[group.open_seg])
            if fill % chunk_blocks != pending:
                _fail(name, f"group {group.gid}: open-segment fill {fill} "
                            f"out of chunk phase with {pending} pending")
        deadline = buf.deadline_us
        if pending == 0 and deadline is not None:
            _fail(name, f"group {group.gid}: armed SLA timer on an empty "
                        f"chunk")
        if deadline is not None and deadline < store.now_us:
            _fail(name, f"group {group.gid}: SLA deadline {deadline} in "
                        f"the past (now {store.now_us})")
        t = group.traffic
        padded = t.deadline_flushes + t.forced_flushes
        if t.padding_blocks > padded * (chunk_blocks - 1):
            _fail(name, f"group {group.gid}: {t.padding_blocks} padding "
                        f"blocks exceed {padded} padded flushes x "
                        f"{chunk_blocks - 1}")


def _pending_by_kind(store: "LogStructuredStore") -> dict[int, int]:
    pending = {APPEND_USER: 0, APPEND_GC: 0, APPEND_SHADOW: 0}
    for group in store.groups:
        for kind, _lba in group.buffer.pending_tokens:
            pending[kind] += 1
    return pending


def check_traffic_conservation(store: "LogStructuredStore") -> None:
    name = "traffic-conservation"
    stats = store.stats
    for g in stats.groups:
        for key in ("user_blocks", "gc_blocks", "shadow_blocks",
                    "padding_blocks"):
            if getattr(g, key) < 0:
                _fail(name, f"group {g.name}: negative {key}")
    flash = stats.flash_blocks_written
    parts = (stats.user_blocks_written + stats.gc_blocks_written
             + stats.shadow_blocks_written + stats.padding_blocks_written)
    if flash != parts:
        _fail(name, f"device writes {flash} != user+gc+shadow+padding "
                    f"{parts}")
    if stats.user_blocks_requested != store.user_seq:
        _fail(name, f"{stats.user_blocks_requested} user blocks requested "
                    f"but logical clock at {store.user_seq}")
    pending = _pending_by_kind(store)
    if stats.user_blocks_written + pending[APPEND_USER] != \
            stats.user_blocks_requested:
        _fail(name, f"user blocks flushed {stats.user_blocks_written} + "
                    f"pending {pending[APPEND_USER]} != requested "
                    f"{stats.user_blocks_requested}")
    if stats.gc_blocks_written + pending[APPEND_GC] != \
            stats.gc_blocks_migrated:
        _fail(name, f"gc blocks flushed {stats.gc_blocks_written} + "
                    f"pending {pending[APPEND_GC]} != migrated "
                    f"{stats.gc_blocks_migrated}")


def check_raid_parity_accounting(store: "LogStructuredStore") -> None:
    name = "raid-parity-accounting"
    raid = store.stats.raid
    cols = raid.config.data_columns
    flushes = sum(g.chunk_flushes for g in store.stats.groups)
    if raid.data_chunks != flushes:
        _fail(name, f"{raid.data_chunks} data chunks accounted but "
                    f"{flushes} chunk flushes recorded")
    if raid._stripe_fill != raid.data_chunks % cols:
        _fail(name, f"stripe cursor {raid._stripe_fill} != data_chunks "
                    f"mod columns ({raid.data_chunks % cols})")
    if raid.data_chunks:
        lo = -(-raid.data_chunks // cols)  # ceil: at least one per stripe
        if not lo <= raid.parity_chunks <= raid.data_chunks:
            _fail(name, f"parity {raid.parity_chunks} outside "
                        f"[{lo}, {raid.data_chunks}]")
    elif raid.parity_chunks:
        _fail(name, "parity chunks written before any data chunk")


#: Name → check function; the auditor default runs all of them in order.
INVARIANT_CHECKS: dict[str, CheckFn] = {
    "mapping-bijection": check_mapping_bijection,
    "segment-valid-counts": check_segment_valid_counts,
    "group-occupancy": check_group_occupancy,
    "coalescing-bounds": check_coalescing_bounds,
    "traffic-conservation": check_traffic_conservation,
    "raid-parity-accounting": check_raid_parity_accounting,
}


class InvariantAuditor:
    """Cadence-driven invariant auditing hook for one store.

    Pass an instance to ``LogStructuredStore(..., auditor=...)``: the store
    calls :meth:`on_user_write` after every accepted user block and
    :meth:`on_finalize` at end of replay.  Every ``every_blocks`` user
    blocks (and at finalize) the auditor runs its check catalogue; the
    first violated invariant raises :class:`InvariantViolation` after
    emitting an ``audit_violation`` observability event.

    Args:
        every_blocks: audit cadence in accepted user blocks (``0`` disables
            the cadence; only explicit :meth:`audit` / finalize runs).
        checks: names from :data:`INVARIANT_CHECKS` (default: all).
    """

    def __init__(self, every_blocks: int = 4096,
                 checks: Iterable[str] | None = None) -> None:
        if every_blocks < 0:
            raise ValueError("every_blocks must be >= 0")
        self.every_blocks = every_blocks
        names = list(INVARIANT_CHECKS) if checks is None else list(checks)
        unknown = [n for n in names if n not in INVARIANT_CHECKS]
        if unknown:
            raise ValueError(
                f"unknown invariant check(s) {unknown}; available: "
                f"{sorted(INVARIANT_CHECKS)}")
        self.check_names = names
        self.audits_run = 0
        self.violations = 0
        self._since = 0

    # -- store-facing hooks ---------------------------------------------
    def attach(self, store: "LogStructuredStore") -> None:
        """Called by the store when the auditor is installed."""
        self._since = 0

    def on_user_write(self, store: "LogStructuredStore") -> None:
        if not self.every_blocks:
            return
        self._since += 1
        if self._since >= self.every_blocks:
            self.audit(store)

    def on_user_batch(self, store: "LogStructuredStore",
                      nblocks: int) -> None:
        """Batch-cadence variant of :meth:`on_user_write`.

        The batched replay engine applies user blocks in chunks and calls
        this once per chunk.  The catalogue runs once (on the consistent
        post-chunk state) whenever the chunk crossed the cadence, but
        ``audits_run`` advances by every crossing the scalar path would
        have audited, so the counter is engine-independent.
        """
        if not self.every_blocks or nblocks <= 0:
            return
        fires = (self._since + nblocks) // self.every_blocks
        leftover = (self._since + nblocks) % self.every_blocks
        if fires:
            self.audit(store)
            self.audits_run += fires - 1
        self._since = leftover

    def on_finalize(self, store: "LogStructuredStore") -> None:
        self.audit(store)

    # -- the audit -------------------------------------------------------
    def audit(self, store: "LogStructuredStore") -> None:
        """Run every configured check; raise on the first violation."""
        self._since = 0
        self.audits_run += 1
        for check_name in self.check_names:
            try:
                INVARIANT_CHECKS[check_name](store)
            except InvariantViolation as exc:
                self.violations += 1
                if store.obs.enabled:
                    store.obs.on_audit_violation(exc.invariant, exc.detail,
                                                 store.now_us)
                raise
        if store.obs.enabled:
            store.obs.count("lss_audits_total")
