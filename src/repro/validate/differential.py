"""Differential replay: fast store vs. dict-based oracle.

Replays the same trace through the NumPy-backed
:class:`~repro.lss.store.LogStructuredStore` and the pure-python
:class:`~repro.validate.oracle.OracleStore`, each driving its own fresh
instance of the same placement policy, then diffs

* the final LBA → location mapping table,
* the traffic summary (``StoreStats.summary`` keys, exact equality),
* per-group traffic breakdowns,
* RAID-5 data/parity chunk accounting, and
* per-group occupancy.

Any divergence means the two independently written bookkeeping
implementations disagree — the fast store's vectorised state machine no
longer matches the obviously-correct model.  The fast replay additionally
runs under an :class:`~repro.validate.audit.InvariantAuditor`, so a sweep
exercises the invariant catalogue on live stores as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lss.config import LSSConfig
from repro.lss.store import UNMAPPED, LogStructuredStore
from repro.placement.registry import available_policies, make_policy
from repro.trace.model import Trace
from repro.validate.audit import InvariantAuditor
from repro.validate.oracle import OracleStore

#: Mapping/stat mismatches listed per cell before truncation.
MAX_DIFFS_LISTED = 8


def differential_config(logical_blocks: int = 1024,
                        victim: str = "greedy",
                        seed: int = 0) -> LSSConfig:
    """A small, GC-churny store shape: 4-block chunks, 16-block segments,
    enough over-provisioning headroom for the widest policy group set."""
    from repro.array.chunk import ChunkGeometry
    return LSSConfig(
        logical_blocks=logical_blocks,
        segment_blocks=16,
        chunk=ChunkGeometry(chunk_bytes=16 * 1024),  # 4 blocks per chunk
        over_provisioning=0.6,
        gc_free_low=4,
        gc_free_high=6,
        victim_policy=victim,
        seed=seed,
    )


def default_workloads(logical_blocks: int = 1024,
                      num_requests: int = 1200,
                      seed: int = 1) -> list[Trace]:
    """The standard differential workload set: the three cloud profiles
    plus an update-heavy YCSB-A stream, all scaled to the tiny store."""
    from repro.trace.synthetic.cloud import generate_fleet
    from repro.trace.synthetic.ycsb import DensityPreset, generate_ycsb_a
    traces = []
    for profile in ("ali", "tencent", "msrc"):
        traces.append(generate_fleet(profile, 1,
                                     unique_blocks=logical_blocks,
                                     num_requests=num_requests,
                                     seed=seed)[0])
    traces.append(generate_ycsb_a(
        unique_blocks=logical_blocks,
        num_writes=max(num_requests // 2, 1),
        density=DensityPreset.MEDIUM, seed=seed))
    return traces


@dataclass
class CellResult:
    """Outcome of one (policy, trace) differential cell."""

    policy: str
    workload: str
    fast_wa: float
    oracle_wa: float
    mapping_diffs: int
    stat_diffs: list[str] = field(default_factory=list)
    audits_run: int = 0

    @property
    def ok(self) -> bool:
        return self.mapping_diffs == 0 and not self.stat_diffs


@dataclass
class DifferentialReport:
    """All cells of one sweep."""

    cells: list[CellResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cells)

    @property
    def failures(self) -> list[CellResult]:
        return [c for c in self.cells if not c.ok]


def diff_mappings(fast: LogStructuredStore, oracle: OracleStore) -> int:
    """Number of LBAs whose final physical location differs."""
    oracle_map = oracle.mapping_table()
    diffs = 0
    for lba in range(fast.config.logical_blocks):
        f = int(fast.mapping[lba])
        o = oracle_map.get(lba, UNMAPPED)
        if f != o:
            diffs += 1
    return diffs


def diff_stats(fast: LogStructuredStore,
               oracle: OracleStore) -> list[str]:
    """Human-readable list of every statistic the two stores disagree on."""
    diffs: list[str] = []
    fs, os_ = fast.stats.summary(), oracle.stats.summary()
    for key in fs:
        if fs[key] != os_.get(key):
            diffs.append(f"summary.{key}: fast={fs[key]} "
                         f"oracle={os_.get(key)}")
    fr, orr = fast.stats.raid, oracle.stats.raid
    if fr.data_chunks != orr.data_chunks:
        diffs.append(f"raid.data_chunks: fast={fr.data_chunks} "
                     f"oracle={orr.data_chunks}")
    if fr.parity_chunks != orr.parity_chunks:
        diffs.append(f"raid.parity_chunks: fast={fr.parity_chunks} "
                     f"oracle={orr.parity_chunks}")
    for fg, og in zip(fast.stats.groups, oracle.stats.group_traffic):
        for key in ("user_blocks", "gc_blocks", "shadow_blocks",
                    "padding_blocks", "chunk_flushes", "deadline_flushes",
                    "forced_flushes"):
            fv, ov = getattr(fg, key), og[key]
            if fv != ov:
                diffs.append(f"group[{fg.name}].{key}: fast={fv} "
                             f"oracle={ov}")
    focc = [int(x) for x in fast.group_occupancy()]
    oocc = oracle.group_occupancy()
    if focc != oocc:
        diffs.append(f"group_occupancy: fast={focc} oracle={oocc}")
    return diffs[:MAX_DIFFS_LISTED]


def run_cell(policy_name: str, trace: Trace, config: LSSConfig,
             audit_every: int = 512, engine: str = "batched") -> CellResult:
    """Replay ``trace`` through both stores under ``policy_name``.

    ``engine`` selects the fast store's replay engine (the oracle is
    always the scalar dict model); the default exercises the batched
    path so every sweep doubles as an engine-equivalence proof.
    """
    auditor = InvariantAuditor(every_blocks=audit_every)
    fast = LogStructuredStore(config, make_policy(policy_name, config),
                              auditor=auditor)
    fast.replay(trace, engine=engine)
    fast.check_invariants()

    oracle = OracleStore(config, make_policy(policy_name, config))
    oracle.replay(trace)
    oracle.check_invariants()

    return CellResult(
        policy=policy_name,
        workload=trace.volume,
        fast_wa=fast.stats.write_amplification(),
        oracle_wa=oracle.stats.summary()["write_amplification"],
        mapping_diffs=diff_mappings(fast, oracle),
        stat_diffs=diff_stats(fast, oracle),
        audits_run=auditor.audits_run,
    )


def run_differential(policies: list[str] | None = None,
                     workloads: list[Trace] | None = None,
                     logical_blocks: int = 1024,
                     num_requests: int = 1200,
                     victim: str = "greedy",
                     seed: int = 1,
                     audit_every: int = 512,
                     engine: str = "batched") -> DifferentialReport:
    """Sweep policies x workloads; every registered policy by default."""
    if policies is None:
        policies = available_policies()
    if workloads is None:
        workloads = default_workloads(logical_blocks, num_requests, seed)
    config = differential_config(logical_blocks, victim=victim, seed=seed)
    report = DifferentialReport()
    for policy in policies:
        for trace in workloads:
            report.cells.append(run_cell(policy, trace, config,
                                         audit_every=audit_every,
                                         engine=engine))
    return report


def render_report(report: DifferentialReport) -> str:
    """Table + failure detail for the CLI and CI logs."""
    from repro.experiments.report import render_table
    rows = []
    for c in report.cells:
        rows.append([f"{c.policy}", c.workload, f"{c.fast_wa:.4f}",
                     f"{c.oracle_wa:.4f}", c.mapping_diffs,
                     len(c.stat_diffs), c.audits_run,
                     "ok" if c.ok else "FAIL"])
    out = render_table(
        ["policy", "workload", "WA(fast)", "WA(oracle)", "map_diffs",
         "stat_diffs", "audits", "status"],
        rows, title="differential sweep: fast store vs oracle")
    for c in report.failures:
        out += f"\nFAIL {c.policy} on {c.workload}:"
        if c.mapping_diffs:
            out += f"\n  {c.mapping_diffs} mapping entries differ"
        for d in c.stat_diffs:
            out += f"\n  {d}"
    if report.ok:
        out += (f"\nall {len(report.cells)} cells match the oracle "
                f"(zero mapping/stats diffs)")
    return out
