"""repro.validate — differential oracle, invariant auditor, and the
validation harness tying them together.

Three layers:

* :mod:`repro.validate.oracle` — a deliberately slow, dict-based reference
  implementation of the LSS store (no NumPy) that replays the same traces
  through the same placement policies.
* :mod:`repro.validate.audit` — a catalogue of named cross-structure
  invariants and a cadence-driven :class:`InvariantAuditor` hook for the
  fast store.
* :mod:`repro.validate.differential` — a sweep harness that replays traces
  through both implementations and diffs mappings and statistics.
"""

from repro.validate.audit import INVARIANT_CHECKS, InvariantAuditor
from repro.validate.differential import (CellResult, DifferentialReport,
                                         default_workloads,
                                         differential_config, render_report,
                                         run_cell, run_differential)
from repro.validate.oracle import ORACLE_VICTIM_POLICIES, OracleStore

__all__ = [
    "INVARIANT_CHECKS",
    "InvariantAuditor",
    "CellResult",
    "DifferentialReport",
    "default_workloads",
    "differential_config",
    "render_report",
    "run_cell",
    "run_differential",
    "ORACLE_VICTIM_POLICIES",
    "OracleStore",
]
