"""Analytic models and cross-checks for the simulator.

``wa_model`` implements the classical closed-form write-amplification
analyses for log-structured stores (greedy and LFS cost-benefit under
uniform random traffic); tests cross-validate the simulator against them,
which is the standard way trace-driven GC simulators are sanity-checked in
the literature the paper builds on (Hu et al. '09; Van Houdt '13/'14).
"""

from repro.analysis.wa_model import (
    lfs_wa_uniform,
    steady_state_utilization,
    wa_bounds_uniform,
)

__all__ = ["lfs_wa_uniform", "steady_state_utilization",
           "wa_bounds_uniform"]
