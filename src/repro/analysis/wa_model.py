"""Closed-form write-amplification analysis for uniform random traffic.

The classical FIFO/LFS cleaning analysis (Rosenblum '92 as formalised by
Hu et al. SYSTOR '09): under uniform random small writes with device
utilisation ``rho = logical / physical``, the expected valid fraction of a
segment at cleaning time is the fixed point of

    u = exp((u - 1) / rho)

and the cleaning write amplification is ``WA = 1 / (1 - u)``.

Greedy victim selection only improves on FIFO (it cleans the emptiest
segment instead of the oldest; Van Houdt SIGMETRICS '13 derives it as the
d → ∞ limit of d-choices), so the FIFO value is a sound *upper bound* for
the simulator's greedy WA on uniform traffic, and 1.0 is the trivial lower
bound.  The tests cross-validate the simulator against this bracket — the
standard sanity check for trace-driven GC simulators.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigError


def steady_state_utilization(rho: float, tol: float = 1e-12) -> float:
    """Fixed point ``u = exp((u - 1) / rho)`` of the FIFO/LFS analysis.

    ``rho`` is device utilisation (logical / physical capacity); the
    returned ``u`` is the expected valid fraction of a cleaned segment
    under uniform random writes with FIFO cleaning.
    """
    if not 0 < rho < 1:
        raise ConfigError(f"rho must be in (0, 1), got {rho}")
    u = rho  # good seed; the iteration is a contraction on (0, 1)
    for _ in range(100_000):
        nxt = math.exp((u - 1.0) / rho)
        if abs(nxt - u) < tol:
            return nxt
        u = nxt
    return u


def lfs_wa_uniform(rho: float) -> float:
    """FIFO/LFS cleaning WA for uniform random writes:
    ``WA = 1 / (1 - u)`` with ``u`` from :func:`steady_state_utilization`."""
    u = steady_state_utilization(rho)
    return 1.0 / (1.0 - u)


def wa_bounds_uniform(rho: float) -> tuple[float, float]:
    """(lower, upper) WA bracket for any cleaner on uniform traffic:
    the trivial floor and the FIFO ceiling (greedy/cost-benefit sit in
    between, close to the ceiling's order of magnitude)."""
    return 1.0, lfs_wa_uniform(rho)
