"""Shared-log consolidation bench (extension experiment)."""

from repro.experiments.shared_store import (
    render_shared_store,
    run_shared_store,
)

from benchmarks.conftest import run_once


def test_ablation_shared_store(benchmark, emit):
    rows = run_once(benchmark, run_shared_store)
    emit("ablation_shared_store", render_shared_store(rows))

    by = {(r.scheme, r.deployment): r for r in rows}
    schemes = {r.scheme for r in rows}
    for scheme in schemes:
        pv = by[(scheme, "per-volume")]
        sh = by[(scheme, "shared")]
        # Consolidation must never make padding materially worse (ties are
        # expected for single-user-group schemes whose chunks already fill).
        assert sh.padding_ratio <= pv.padding_ratio * 1.05, scheme
        assert sh.write_amplification >= 1.0
    # The headline benefit concentrates where grouping splits sparse
    # streams: ADAPT gains from consolidation on both padding and WA.
    adapt_pv = by[("adapt", "per-volume")]
    adapt_sh = by[("adapt", "shared")]
    assert adapt_sh.padding_ratio < adapt_pv.padding_ratio
    assert adapt_sh.write_amplification < adapt_pv.write_amplification
    # ADAPT remains the best shared-store scheme.
    shared = {s: by[(s, "shared")].write_amplification for s in schemes}
    assert shared["adapt"] <= min(shared.values()) * 1.05, shared