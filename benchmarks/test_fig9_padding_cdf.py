"""Fig 9 — padding-traffic CDF bench (reuses the Fig 8 sweep)."""

from repro.experiments.fig9 import render_fig9, run_fig9
from repro.experiments.workloads import PROFILES

from benchmarks.conftest import run_once


def test_fig9_padding_cdf(benchmark, emit):
    rows = run_once(benchmark, run_fig9)
    emit("fig9_padding_cdf", render_fig9(rows))

    for victim in ("greedy", "cost-benefit"):
        for profile in PROFILES:
            cell = {r.scheme: r for r in rows
                    if r.victim == victim and r.profile == profile}
            # ADAPT's mean padding ratio beats every temperature-based
            # baseline (paper: 40-72.1 % reduction).
            adapt = cell["adapt"].mean_padding_ratio
            for baseline in ("dac", "warcip", "mida", "sepbit"):
                assert adapt <= cell[baseline].mean_padding_ratio + 1e-9, (
                    victim, profile, baseline)
            # CDF dominance at the 25 % cut-off (the paper's Ali example:
            # >=88 % of ADAPT volumes below 25 % padding vs ~70 % SepBIT).
            assert cell["adapt"].frac_below_25pct >= \
                cell["sepbit"].frac_below_25pct - 1e-9

    # Reduction magnitude vs SepBIT somewhere in the sweep should reach
    # the paper's band.
    greedy_ali = {r.scheme: r for r in rows
                  if r.victim == "greedy" and r.profile == "ali"}
    reduction = 1 - greedy_ali["adapt"].mean_padding_ratio / \
        max(greedy_ali["sepbit"].mean_padding_ratio, 1e-9)
    assert reduction > 0.2, reduction
